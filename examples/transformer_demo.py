#!/usr/bin/env python3
"""Transformer workloads on the overlay, end to end.

Three stops:

1. **TinyAttention, bit-true** — a single-path attention chain runs
   through the cycle-level pipeline simulator: projections on the
   overlay, the score matmul streaming the layernorm output through the
   weight port (`weight_source`), softmax/layernorm/residual on the
   host CPU, every accelerated layer golden-checked.
2. **Conformance** — the same workload through the full-stack harness:
   search, sim vs golden, serving, fault-masked recompile, ABFT,
   host-kernel determinism.
3. **Mixed precision** — the int8/bf16 deployment of a one-block
   encoder, with per-layer SQNR and the model-size compression.

Run:  python examples/transformer_demo.py
"""

from __future__ import annotations

import numpy as np

from repro.analysis.quantization import mixed_precision_report
from repro.conformance import conformance_summary, run_workload_conformance
from repro.overlay.config import OverlayConfig
from repro.sim import NetworkSimulator
from repro.sim.functional import random_layer_operands
from repro.workloads import WORKLOADS, build_workload
from repro.workloads.models import (
    build_tiny_attention,
    transformer_precision_spec,
)


def main() -> None:
    rng = np.random.default_rng(2020)
    config = OverlayConfig(d1=3, d2=2, d3=2)

    # ---------------------------------------------------------------- #
    # 1. TinyAttention through the bit-true pipeline simulator.
    # ---------------------------------------------------------------- #
    net = build_tiny_attention()
    print(f"network: {net.name}, {len(net.layers)} layers "
          f"({len(net.accelerated_layers())} on the overlay, "
          f"{len(net.host_layers())} on the host)")
    weights = {
        layer.name: random_layer_operands(layer, rng)[0]
        for layer in net.accelerated_layers()
        if getattr(layer, "weight_source", None) is None
    }
    first = net.layers[0]
    inputs = rng.integers(
        -127, 128, size=(first.n_features, first.batch)
    ).astype(np.int16)
    run = NetworkSimulator(config).run(net, inputs, weights)
    print(f"\n{'layer':8s} {'kind':8s} {'overlay cyc':>12s} {'host cyc':>9s}")
    for stage in run.stages:
        print(f"{stage.name:8s} {stage.kind:8s} "
              f"{stage.overlay_cycles:12d} {stage.host_cycles:9d}")
    bound = "host" if run.host_bound else "overlay"
    print(f"pipelined: {run.pipelined_cycles} cycles ({bound}-bound), "
          f"output {run.output.shape}, every overlay layer golden-checked")

    # ---------------------------------------------------------------- #
    # 2. The full-stack conformance harness on the same workload.
    # ---------------------------------------------------------------- #
    print("\nconformance (search -> sim vs golden -> serve -> faults -> "
          "abft -> host):")
    report = run_workload_conformance(WORKLOADS["TinyAttention"], config)
    print(conformance_summary([report]))

    # ---------------------------------------------------------------- #
    # 3. Mixed precision on the one-block encoder.
    # ---------------------------------------------------------------- #
    net = build_workload("Transformer-mixed")
    mp = mixed_precision_report(
        net, transformer_precision_spec(net), np.random.default_rng(7)
    )
    print(f"\nmixed precision for {net.name}:")
    print(f"{'layer':16s} {'precision':>9s} {'SQNR dB':>8s} {'bytes':>7s}")
    for row in mp.rows:
        print(f"{row.name:16s} {row.precision:>9s} "
              f"{row.sqnr_db:8.1f} {row.stored_bytes:7d}")
    print(f"model {mp.model_bytes} B vs int16 {mp.int16_bytes} B "
          f"-> {mp.compression:.2f}x smaller, "
          f"min SQNR {mp.min_sqnr_db:.1f} dB")


if __name__ == "__main__":
    main()
