#!/usr/bin/env python3
"""The serving runtime end to end: batching, load, and replica scaling.

Serves the sentiment seqLSTM — the paper's §I motivating case for
batching: its tied-gate MMs are weight-bandwidth-bound at batch 1, so
every streamed weight amortized over a batch converts directly into
sustained throughput. The demo walks three system views:

1. the batch → service-time curve (compiled schedules per batch size);
2. offered-load sweep: p99 latency stays flat below saturation, then
   knees as the queue takes over;
3. replica scaling at fixed load: two overlays halve the tail.

Run:  PYTHONPATH=src python examples/serving_demo.py  [--grid 6,4,4]
"""

from __future__ import annotations

import argparse

from repro.overlay.config import OverlayConfig
from repro.serving import (
    AdmissionPolicy,
    BatchPolicy,
    BatchServiceModel,
    ReplicaService,
    ServingEngine,
    make_requests,
    poisson_arrivals,
)
from repro.workloads.mlperf import build_model

MAX_BATCH = 8


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--grid", default="6,4,4", help="overlay D1,D2,D3")
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()
    d1, d2, d3 = (int(x) for x in args.grid.split(","))
    config = OverlayConfig(d1=d1, d2=d2, d3=d3)

    network = build_model("Sentimental-seqLSTM")
    service = BatchServiceModel(network, config)

    print(f"{network.name} on a {d1}x{d2}x{d3} overlay "
          f"({config.n_tpe} TPEs @ {config.clk_h_mhz:.0f} MHz)\n")

    # 1. Batch cost curve: per-request service time falls with batch.
    print("batch -> service time (compiled schedules, weights streamed):")
    print(f"{'batch':>6s} {'batch ms':>10s} {'ms/request':>11s} "
          f"{'speedup':>8s}")
    per1 = service.service_s(1)
    for batch in (1, 2, 4, 8):
        cost = service.service_s(batch)
        print(f"{batch:6d} {cost * 1e3:10.2f} {cost / batch * 1e3:11.2f} "
              f"{per1 / (cost / batch):7.2f}x")

    saturated = MAX_BATCH / service.service_s(MAX_BATCH)
    policy = BatchPolicy(max_batch=MAX_BATCH, max_wait_s=5e-3)

    # 2. Offered-load sweep on one replica.
    print(f"\noffered-load sweep (one replica; saturation ~ "
          f"{saturated:.0f} req/s):")
    print(f"{'load':>6s} {'req/s':>8s} {'p50 ms':>8s} {'p99 ms':>8s} "
          f"{'SLO miss':>9s} {'util':>7s}")
    for frac in (0.3, 0.6, 0.9, 1.2):
        engine = ServingEngine(
            ReplicaService(service, n_replicas=1),
            batch_policy=policy,
            admission_policy=AdmissionPolicy(capacity=256),
            slo_s=0.1,
        )
        requests = make_requests(
            poisson_arrivals(frac * saturated, 200, seed=args.seed),
            network.name,
        )
        report = engine.run(requests)
        print(f"{frac:6.1f} {frac * saturated:8.1f} "
              f"{report.p50_s * 1e3:8.2f} {report.p99_s * 1e3:8.2f} "
              f"{report.slo_violation_rate:9.2%} "
              f"{report.mean_utilization:7.1%}")

    # 3. Replica scaling at a load that saturates one overlay.
    rate = 1.2 * saturated
    print(f"\nreplica scaling at {rate:.0f} req/s:")
    for replicas in (1, 2, 4):
        engine = ServingEngine(
            ReplicaService(service, n_replicas=replicas),
            batch_policy=policy,
            admission_policy=AdmissionPolicy(capacity=256),
            slo_s=0.1,
        )
        requests = make_requests(
            poisson_arrivals(rate, 200, seed=args.seed), network.name
        )
        report = engine.run(requests)
        print(f"  {replicas} replica(s): {report.throughput_rps:7.1f} req/s "
              f"sustained, p99 {report.p99_s * 1e3:7.2f} ms, "
              f"SLO miss {report.slo_violation_rate:6.2%}")

    print("\nfull report at the last operating point:\n")
    print(report.describe())


if __name__ == "__main__":
    main()
