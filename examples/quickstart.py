#!/usr/bin/env python3
"""Quickstart: schedule one layer, inspect the schedule, simulate it.

Walks the core FTDL flow on a small overlay so everything — including the
cycle-level architectural simulation — runs in seconds:

1. describe a convolution layer;
2. let the compiler search the mapping-vector space (Objective 1);
3. lower the winning schedule to controller instructions;
4. execute them on the cycle simulator and check the output bit-exactly
   against the golden model.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro import (
    ConvLayer,
    CycleSimulator,
    OverlayConfig,
    compile_schedule,
    schedule_layer,
)
from repro.sim.functional import random_layer_operands


def main() -> None:
    # A small overlay: 4-TPE SuperBlocks, 2 columns, 2 rows (16 TPEs).
    config = OverlayConfig(
        d1=4, d2=2, d3=2,
        s_actbuf_words=128,
        s_wbuf_words=1024,
        s_psumbuf_words=2048,
        clk_h_mhz=650.0,
    )
    print(f"overlay: {config.d1}x{config.d2}x{config.d3} "
          f"({config.n_tpe} TPEs, peak {config.peak_gops:.0f} GOPS)")

    # A 3x3 convolution layer.
    layer = ConvLayer(
        name="demo_conv",
        in_channels=8,
        out_channels=16,
        in_h=16,
        in_w=16,
        kernel_h=3,
        kernel_w=3,
        padding=1,
    )
    print(f"layer: {layer.name}, {layer.maccs:,} MACCs, "
          f"{layer.weight_words:,} weight words")

    # 1. Compile: search the mapping-vector space for minimum latency.
    schedule = schedule_layer(layer, config, objective="performance")
    est = schedule.estimate
    print("\nbest schedule:")
    print(f"  mapping vectors : {schedule.mapping.describe()}")
    print(f"  execution time  : {est.c_exe:,} cycles "
          f"({est.c_exe / config.clk_h_mhz:.1f} us at CLK_h)")
    print(f"  bound by        : {est.bottleneck}")
    print(f"  hardware eff.   : {est.hardware_efficiency:.1%}")
    print(f"  WBUF efficiency : {est.e_wbuf:.2f}")

    # 2. Lower to controller instructions (the InstBUS stream).
    compiled = compile_schedule(schedule)
    stream = compiled.encoded()[0]
    print(f"\ncodegen: {compiled.n_rows} row programs, "
          f"{len(stream)} bytes per row InstBUS stream")

    # 3. Simulate cycle-by-cycle and verify against the golden model.
    weights, acts = random_layer_operands(layer, np.random.default_rng(7))
    run = CycleSimulator(config).run_layer(compiled, weights, acts)
    print("\nsimulation:")
    print(f"  cycles          : {run.cycles:,} "
          f"(analytical model said {est.c_exe:,})")
    print(f"  useful MACCs    : {run.useful_maccs:,} of {run.issued_maccs:,} issued")
    print(f"  measured eff.   : {run.hardware_efficiency:.1%}")
    print(f"  golden match    : {run.golden_match}")
    print(f"  DRAM traffic    : {run.trace.total_bytes('RD'):,} B read, "
          f"{run.trace.total_bytes('WR'):,} B written")


if __name__ == "__main__":
    main()
