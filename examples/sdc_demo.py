#!/usr/bin/env python3
"""Silent-data-corruption end to end: syndromes, campaigns, policies.

Three views of the integrity subsystem, all seeded and virtual-clocked
(rerun with the same seed → identical numbers):

1. the syndrome algebra on one CONV layer: a clean run, a corrected
   accumulator upset, and an escalated weight-word upset, each decoded
   from the row/column checksum signature;
2. a seeded bit-flip campaign over weights, activations, and
   accumulators — detection rate, corrections, and the measured ABFT
   overhead against the compiler model's closed form;
3. the serving-policy ladder: one fault schedule replayed under
   ``off``, ``detect``, ``detect-reexecute``, and ``detect-correct``,
   showing detected corruption move between dropped, re-executed, and
   corrected-in-place.

Run:  PYTHONPATH=src python examples/sdc_demo.py  [--seed 7]
"""

from __future__ import annotations

import argparse

import numpy as np

from repro.compiler.model import abft_overhead
from repro.faults import generate_fault_schedule
from repro.integrity import (
    IntegrityPolicy,
    abft_layer_output,
    run_sdc_campaign,
)
from repro.overlay.config import OverlayConfig
from repro.serving import (
    BatchPolicy,
    BatchServiceModel,
    ReplicaService,
    RetryPolicy,
    ServingEngine,
    make_requests,
    poisson_arrivals,
)
from repro.sim.functional import golden_layer_output, random_layer_operands
from repro.workloads.layers import ConvLayer
from repro.workloads.models import build_smallcnn


def syndrome_walkthrough(seed: int) -> None:
    layer = ConvLayer("demo", in_channels=4, out_channels=6, in_h=8,
                      in_w=8, kernel_h=3, kernel_w=3, padding=1)
    rng = np.random.default_rng(seed)
    weights, acts = random_layer_operands(layer, rng)
    golden = golden_layer_output(layer, weights, acts)

    print("1. syndrome algebra on one 4->6 3x3 CONV")
    clean = abft_layer_output(layer, weights, acts)
    print(f"   clean run        : detected={clean.detected}; data region "
          f"equals golden bit-for-bit: "
          f"{bool(np.array_equal(clean.output, golden))}")

    upset = abft_layer_output(layer, weights, acts, psum_flips=((37, 20),))
    print(f"   accumulator upset: 1 row + 1 col syndrome with equal "
          f"deltas -> corrected at {upset.corrected_at} "
          f"({upset.n_row_syndromes + upset.n_col_syndromes} residual "
          f"syndromes); equals golden: "
          f"{bool(np.array_equal(upset.output, golden))}")

    smear = abft_layer_output(layer, weights, acts, weight_flips=((5, 11),))
    print(f"   weight-word upset: rows silent "
          f"({smear.n_row_syndromes}), {smear.n_col_syndromes} col "
          f"syndromes fire -> uncorrectable, escalate to re-execution")

    model = abft_overhead(layer)
    print(f"   checksum cost    : {model.checksum_maccs} MACCs on "
          f"{model.base_maccs} ({model.overhead_fraction:.2%}; closed "
          f"form 1/rows + 1/cols + 1/(rows*cols)), measured "
          f"{clean.checksum_maccs}")


def campaign(seed: int, trials: int) -> None:
    layer = ConvLayer("victim", in_channels=6, out_channels=8, in_h=10,
                      in_w=10, kernel_h=3, kernel_w=3, padding=1)
    print(f"\n2. seeded bit-flip campaign ({trials} flips, 6->8 3x3 CONV)")
    for policy in (IntegrityPolicy.DETECT, IntegrityPolicy.DETECT_CORRECT):
        report = run_sdc_campaign(layer, policy=policy, trials=trials,
                                  seed=seed)
        print(f"   {policy.value:15s}: {report.n_corrupting} corrupting / "
              f"{report.n_benign} benign; detected "
              f"{report.n_detected}/{report.n_corrupting} "
              f"({report.detection_rate:.0%}), corrected "
              f"{report.n_corrected}, served corrupt "
              f"{report.n_served_corrupt}")
    by_site = ", ".join(f"{site}={n}" for site, n in report.by_site.items())
    print(f"   flip sites (proportional to bit counts): {by_site}")


def policy_ladder(seed: int) -> None:
    config = OverlayConfig(d1=3, d2=2, d3=2)
    network = build_smallcnn()
    service = ReplicaService(BatchServiceModel(network, config),
                             n_replicas=2)
    times = poisson_arrivals(2500.0, 300, seed=seed)
    faults = generate_fault_schedule(
        seed=seed, duration_s=times[-1] - times[0],
        replicas=service.replica_names(), grid=config,
        tpe_fault_rate_hz=30.0, stuck_fraction=0.0,
        bitflip_rate_hz=80.0, correctable_fraction=0.5,
        dram_words=network.weight_words,
    )
    print(f"\n3. serving-policy ladder — {network.name} x2 on "
          f"{config.d1}x{config.d2}x{config.d3}, {faults.describe()}")
    for policy in IntegrityPolicy:
        engine = ServingEngine(
            service,
            batch_policy=BatchPolicy(max_batch=8, max_wait_s=2e-3),
            slo_s=20e-3,
            fault_schedule=faults,
            retry_policy=RetryPolicy(max_attempts=3),
            integrity_policy=policy,
        )
        report = engine.run(
            make_requests(times, network.name, deadline_s=40e-3)
        )
        counts = report.integrity_counts
        print(f"   {policy.value:16s}: availability "
              f"{report.availability:7.2%}, p99 "
              f"{report.p99_s * 1e3:6.2f} ms, detected "
              f"{counts.get('sdc_detected', 0):2d} (corrected "
              f"{counts.get('corrected', 0)}, re-executed "
              f"{counts.get('reexecuted', 0)}, dropped "
              f"{counts.get('dropped', 0)})")
    print("   off matches the pre-integrity engine bit for bit; the "
          "detecting policies trade latency for a zero-served-corrupt "
          "guarantee")


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--trials", type=int, default=60)
    args = parser.parse_args()
    syndrome_walkthrough(args.seed)
    campaign(args.seed, args.trials)
    policy_ladder(args.seed)


if __name__ == "__main__":
    main()
