#!/usr/bin/env python3
"""Multi-FPGA weight-stationary deployment (§II-B1).

The paper notes that when a model's weights cannot reside on one chip, a
multi-FPGA system partitions the model across devices so the weight-
stationary scheme still applies.  This example uses
:mod:`repro.analysis.partition` to build that deployment:

1. partition the network's layers across devices, balancing *unique*
   weight bytes (tied weight groups stay together);
2. per device, check whether the partition's *stored* weights fit the
   aggregate WBUF; if so, compile with resident weights — the §III-A1
   preload — removing the per-frame weight stream from the DRAM budget;
3. pipeline the devices and compare against a single streaming device.

Run:  python examples/multi_fpga.py [--model GoogLeNet] [--devices 8]
"""

from __future__ import annotations

import argparse

from repro import PAPER_EXAMPLE_CONFIG, build_model, evaluate_network
from repro.analysis.partition import plan_deployment
from repro.units import BYTES_PER_WORD


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--devices", type=int, default=8)
    parser.add_argument("--model", default="GoogLeNet")
    args = parser.parse_args()

    config = PAPER_EXAMPLE_CONFIG
    net = build_model(args.model)
    wbuf_budget = config.n_tpe * config.s_wbuf_words * BYTES_PER_WORD
    print(f"model {net.name}: {net.weight_bytes / 1e6:.2f} MB of weights; "
          f"one device holds {wbuf_budget / 1e6:.2f} MB of WBUF -> "
          f"{'fits' if net.weight_bytes <= wbuf_budget else 'needs partitioning'}")

    # Reference: everything on one device, weights streamed per frame.
    single = evaluate_network(net, config)
    print(f"\nsingle device (streaming): {single.fps:8.1f} inferences/s, "
          f"eff {single.hardware_efficiency:.1%}")

    plan = plan_deployment(net, config, n_devices=args.devices)
    print(f"\npartitioned across {plan.n_devices} devices "
          f"(balanced by unique weight bytes, Objective 2 schedules):")
    for stage in plan.stages:
        part = stage.partition
        result = stage.result
        print(f"  {part.name}: {len(part.accelerated_layers()):3d} layers, "
              f"{part.weight_bytes / 1e6:6.2f} MB unique "
              f"({stage.stored_bytes / 1e6:6.2f} MB stored, "
              f"{'resident' if stage.resident else 'streamed'}), "
              f"{result.total_cycles:9,d} cycles, "
              f"eff {result.hardware_efficiency:.1%}")

    print(f"\n{plan.n_devices}-device pipeline: {plan.pipeline_fps:8.1f} "
          f"inferences/s ({plan.pipeline_fps / single.fps:.1f}x one device; "
          f"stage-balanced, one frame in flight per device; "
          f"{'all weights resident' if plan.all_resident else 'some stages stream'})")


if __name__ == "__main__":
    main()
