#!/usr/bin/env python3
"""Schedule-space exploration: objectives, rooflines, and Objective 3.

A compiler-side tour of §IV on one GoogLeNet layer:

* top-k schedules under Objective 1 (performance) and Objective 2
  (performance/WBUF balance), rendered as a roofline scatter (Fig. 7);
* what each winning mapping vector actually says;
* Objective 3 — the best (D1, D2, D3) grid at the same 1200-TPE cost.

Run:  python examples/schedule_explorer.py [--layer 3a.b2.3x3]
"""

from __future__ import annotations

import argparse

from repro import PAPER_EXAMPLE_CONFIG, ScheduleSearch, build_model, get_device
from repro.analysis.ascii_plot import scatter_plot
from repro.analysis.roofline import ridge_intensity, roofline_points
from repro.compiler.hwsearch import search_hardware_config


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--layer", default="3a.b2.3x3",
                        help="GoogLeNet layer name to explore")
    parser.add_argument("--top-k", type=int, default=200)
    args = parser.parse_args()

    config = PAPER_EXAMPLE_CONFIG
    net = build_model("GoogLeNet")
    layer = next(
        l for l in net.accelerated_layers() if l.name == args.layer
    )
    print(f"layer {layer.name}: {layer.maccs:,} MACCs, "
          f"loops {layer.loop_sizes}")
    print(f"overlay: D1={config.d1}, D2={config.d2}, D3={config.d3}, "
          f"peak {config.peak_gops:.0f} GOPS, "
          f"ridge {ridge_intensity(config):.0f} ops/byte")

    for objective in ("performance", "balance"):
        schedules = ScheduleSearch(
            layer, config, objective=objective, top_k=args.top_k
        ).run()
        points = roofline_points(schedules)
        best = schedules[0]
        print(f"\n--- objective: {objective} "
              f"(top-{len(schedules)} of "
              f"{ScheduleSearch(layer, config).candidates_evaluated or '...'} "
              f"candidates) ---")
        print("winner:", best.describe())
        est = best.estimate
        print(f"  C_comp={est.c_comp:,}  C_actbus={est.c_actbus:,}  "
              f"C_psumbus={est.c_psumbus:,}  C_dram_rd={est.c_dram_rd:,}  "
              f"C_dram_wr={est.c_dram_wr:,}")
        markers = [
            "#" if p.e_wbuf >= 0.8 else "+" if p.e_wbuf >= 0.5 else "."
            for p in points
        ]
        print(scatter_plot(
            [p.intensity_ops_per_byte for p in points],
            [p.attained_gops for p in points],
            markers=markers,
            title=f"roofline, {objective} (marker: # E>=0.8, + E>=0.5, . below)",
            log_x=True,
        ))

    print("\n--- Objective 3: best grid at 1200 TPEs on the vu125 ---")
    result = search_hardware_config(
        layer, config, device=get_device("vu125"),
        spatial_beam=40, temporal_beam=60,
    )
    for grid, schedule in result.ranking[:8]:
        est = schedule.estimate
        print(f"  {str(grid):>14s}  {est.c_exe:9,d} cycles  "
              f"eff {est.hardware_efficiency:6.1%}  E_WBUF {est.e_wbuf:.2f}")
    print(f"best grid: {result.ranking[0][0]} "
          f"(paper's example uses ({config.d1}, {config.d2}, {config.d3}))")


if __name__ == "__main__":
    main()
