#!/usr/bin/env python3
"""Observability end to end: trace a compile + chaos-serving run.

Walks the `repro.trace` API over a two-replica SmallCNN deployment:

1. compile with tracing on — the schedule search's phase spans and
   pruning counters on the compiler's step clock;
2. serve seeded traffic under a seeded fault schedule — request
   lifecycle trees (queue → compute → dram), fault/failover instants,
   latency histogram;
3. reconcile — recompute p50/p99 and MTTR from the trace alone and
   check them against the engine's own report (they match exactly);
4. export — Chrome trace JSON next to this script plus the Prometheus
   text exposition on stdout.

Everything runs on virtual clocks with explicit seeds: rerun it and
every number, span, and exported byte is identical.

Run:  PYTHONPATH=src python examples/trace_demo.py  [--grid 3,2,2]
"""

from __future__ import annotations

import argparse
import pathlib

from repro.compiler.cache import ScheduleCache
from repro.faults import generate_fault_schedule
from repro.overlay.config import OverlayConfig
from repro.serving import (
    BatchPolicy,
    BatchServiceModel,
    ReplicaService,
    RetryPolicy,
    ServingEngine,
    make_requests,
    poisson_arrivals,
)
from repro.serving.metrics import percentile
from repro.trace import (
    MetricsRegistry,
    Tracer,
    chrome_trace_json,
    prometheus_text,
)
from repro.workloads.models import build_smallcnn


def parse_grid(text: str) -> tuple[int, int, int]:
    d1, d2, d3 = (int(x) for x in text.split(","))
    return d1, d2, d3


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--grid", type=parse_grid, default=(3, 2, 2))
    parser.add_argument("--seed", type=int, default=7)
    args = parser.parse_args()

    d1, d2, d3 = args.grid
    config = OverlayConfig(d1=d1, d2=d2, d3=d3)
    network = build_smallcnn()
    registry = MetricsRegistry()

    # ---- 1. compile, traced on the step clock ------------------------ #
    compile_tracer = Tracer(unit="step")
    cache = ScheduleCache(config, tracer=compile_tracer, metrics=registry)
    model = BatchServiceModel(network, config, cache=cache)
    for batch_size in (1, 2, 4):
        model.service_s(batch_size)
    root = compile_tracer.roots()[0]
    print(f"== compile: {len(compile_tracer.spans)} spans over "
          f"{compile_tracer.roots()[-1].end} steps")
    print(f"   first search {root.name!r}: "
          + ", ".join(f"{c.name} {c.duration:.0f} steps"
                      for c in compile_tracer.children_of(root)))
    evaluated = registry.counter("search_candidates_evaluated", "")
    print(f"   candidates priced: "
          f"{evaluated.value(objective='performance'):.0f}; cache "
          f"{registry.counter('schedule_cache_hits', '').value():.0f} hits")

    # ---- 2. serve under faults, traced on the virtual clock ---------- #
    serve_tracer = Tracer(unit="s")
    service = ReplicaService(model, n_replicas=2)
    times = poisson_arrivals(900.0, 150, seed=args.seed)
    faults = generate_fault_schedule(
        seed=args.seed, duration_s=times[-1] - times[0],
        replicas=service.replica_names(), grid=config,
        crash_rate_hz=6.0, mean_repair_s=0.02, slowdown_rate_hz=3.0,
        bitflip_rate_hz=10.0, correctable_fraction=0.8,
        metrics=registry,
    )
    engine = ServingEngine(
        service,
        batch_policy=BatchPolicy(max_batch=4, max_wait_s=2e-3),
        fault_schedule=faults,
        retry_policy=RetryPolicy(),
        tracer=serve_tracer,
        metrics=registry,
    )
    report = engine.run(make_requests(times, network.name, deadline_s=0.05))
    print(f"\n== serve: {report.n_completed} completed / "
          f"{report.n_dropped} dropped under {faults.describe()}")
    print(f"   {len(serve_tracer.spans)} spans, "
          f"{len(serve_tracer.instants)} instants; "
          f"well-formed: {not serve_tracer.validate()}")

    # ---- 3. reconcile the trace against the report ------------------- #
    durations = sorted(
        span.duration for span in serve_tracer.find("request")
        if span.args["status"] == "completed"
    )
    repairs = [i.args["repair_s"] for i in serve_tracer.instants
               if i.name == "health.up"]
    mttr = sum(repairs) / len(repairs) if repairs else 0.0
    print("\n== reconcile (trace-derived == report, exactly)")
    print(f"   p50  : {percentile(durations, 50) * 1e3:.3f} ms "
          f"(report {report.p50_s * 1e3:.3f}) "
          f"match={percentile(durations, 50) == report.p50_s}")
    print(f"   p99  : {percentile(durations, 99) * 1e3:.3f} ms "
          f"(report {report.p99_s * 1e3:.3f}) "
          f"match={percentile(durations, 99) == report.p99_s}")
    health = report.health
    print(f"   MTTR : {mttr * 1e3:.3f} ms "
          f"(report {health.mttr_s * 1e3:.3f}) "
          f"match={mttr == health.mttr_s}")

    # ---- 4. export --------------------------------------------------- #
    out = pathlib.Path(__file__).with_name("trace_demo.trace.json")
    out.write_text(chrome_trace_json(
        {"compiler": compile_tracer, "serving": serve_tracer}
    ) + "\n")
    print(f"\n== export: Chrome trace -> {out.name} "
          f"(open in chrome://tracing or ui.perfetto.dev)")
    print("\n" + prometheus_text(registry), end="")


if __name__ == "__main__":
    main()
