#!/usr/bin/env python3
"""ImageNet inference on the paper's example platform (§V-C).

Compiles GoogLeNet and ResNet50 layer-by-layer onto the 1200-TPE overlay
(D1=12, D2=5, D3=20 on the UltraScale vu125 at 650 MHz, 26 GB/s DRAM),
then reports per-layer and end-to-end results: FPS, hardware efficiency,
bottlenecks, power, and the comparison against the Table II prior works.

This is the exact experiment behind the paper's headline numbers
(402.6 / 151.2 FPS, 27.6 GOPS/W).  Expect a couple of minutes of compile
time — the scheduler explores tens of thousands of mapping vectors per
distinct layer shape.

Run:  python examples/imagenet_inference.py [--model GoogLeNet|ResNet50]
"""

from __future__ import annotations

import argparse

from repro import PAPER_EXAMPLE_CONFIG, build_model, evaluate_network, get_device
from repro.analysis.comparison import build_table2, format_table2
from repro.dram.power import estimate_power
from repro.dram.spec import DDR4_2400
from repro.power.model import estimate_overlay_power


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--model",
        choices=["GoogLeNet", "ResNet50", "both"],
        default="both",
    )
    args = parser.parse_args()
    models = ["GoogLeNet", "ResNet50"] if args.model == "both" else [args.model]

    config = PAPER_EXAMPLE_CONFIG
    device = get_device("vu125")
    print(f"platform: {device.name}, {config.n_tpe} TPEs "
          f"(D1={config.d1}, D2={config.d2}, D3={config.d3}) "
          f"@ {config.clk_h_mhz:.0f} MHz, DRAM {config.dram_rd_gbps:.0f} GB/s")

    results = {}
    for name in models:
        net = build_model(name)
        print(f"\ncompiling {name} "
              f"({len(net.accelerated_layers())} CONV/MM layers, "
              f"{net.accelerated_maccs / 1e9:.2f} GMACs/frame) ...")
        result = evaluate_network(net, config)
        results[name] = result

        print(f"  {'layer':22s} {'cycles':>10s} {'eff':>7s} {'bound':>8s} "
              f"{'E_WBUF':>7s}")
        for layer in result.layers[:8]:
            est = layer.schedule.estimate
            print(f"  {layer.name:22s} {layer.cycles:10,d} "
                  f"{layer.hardware_efficiency:7.1%} {layer.bottleneck:>8s} "
                  f"{est.e_wbuf:7.2f}")
        if len(result.layers) > 8:
            print(f"  ... {len(result.layers) - 8} more layers")

        dram = estimate_power(
            result.dram_trace(), DDR4_2400, result.total_cycles,
            config.clk_h_mhz,
        )
        power = estimate_overlay_power(
            config, device, result.hardware_efficiency, dram
        )
        print(f"  => {result.fps:.1f} FPS, "
              f"network efficiency {result.hardware_efficiency:.1%}, "
              f"{result.attained_gops:.0f} GOPS attained")
        print(f"  => power {power.total_w:.1f} W "
              f"({power.gops_per_watt(result.attained_gops):.1f} GOPS/W); "
              f"host EWOP load {result.host_ewop_ops / 1e6:.1f} Mops/frame")

    if len(results) == 2:
        print("\nTable II comparison (prior works rescaled to 1200 DSPs):")
        rows = build_table2(results, device)
        print(format_table2(rows, list(results)))


if __name__ == "__main__":
    main()
