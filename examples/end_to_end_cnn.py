#!/usr/bin/env python3
"""End-to-end CNN inference, simulated cycle by cycle (§II-A pipeline).

Pushes one input through a small sequential CNN with every stage executed
on the reproduction's own machinery:

* CONV/MM layers: compiled by the FTDL scheduler, lowered to controller
  instructions, executed on the cycle-level overlay model, and verified
  bit-exactly against the golden NumPy pipeline;
* layer boundaries: fixed-point requantization back to int16;
* EWOP layers (ReLU, pooling): the host CPU model, pipelined with the
  overlay — reproducing the paper's claim that host EWOP never becomes
  the bound.

Also sweeps quantization precision on the first conv to show why the
paper's 16-bit choice is comfortable (~6 dB SQNR per bit).

Run:  python examples/end_to_end_cnn.py
"""

from __future__ import annotations

import numpy as np

from repro import OverlayConfig
from repro.analysis.quantization import precision_sweep
from repro.sim import HostCpu, NetworkSimulator
from repro.sim.functional import random_layer_operands
from repro.workloads.models import build_smallcnn


def main() -> None:
    rng = np.random.default_rng(2020)
    net = build_smallcnn()
    config = OverlayConfig(
        d1=4, d2=2, d3=2,
        s_actbuf_words=128, s_wbuf_words=1024, s_psumbuf_words=2048,
        clk_h_mhz=650.0,
    )
    print(f"network: {net.name}, {len(net.layers)} layers "
          f"({len(net.accelerated_layers())} on the overlay), "
          f"{net.accelerated_maccs:,} MACCs/inference")
    print(f"overlay: {config.d1}x{config.d2}x{config.d3} "
          f"({config.n_tpe} TPEs) @ {config.clk_h_mhz:.0f} MHz\n")

    weights = {
        layer.name: random_layer_operands(layer, rng, magnitude=40)[0]
        for layer in net.accelerated_layers()
    }
    image = rng.integers(-100, 101, size=(3, 32, 32)).astype(np.int16)

    simulator = NetworkSimulator(config, host=HostCpu(ops_per_cycle=16.0))
    run = simulator.run(net, image, weights)

    print(f"{'stage':10s} {'kind':6s} {'overlay cyc':>12s} {'host cyc':>9s} "
          f"{'requant shift':>14s}")
    for stage in run.stages:
        print(f"{stage.name:10s} {stage.kind:6s} "
              f"{stage.overlay_cycles:12,d} {stage.host_cycles:9,d} "
              f"{stage.shift:14d}")
    us = run.pipelined_cycles / config.clk_h_mhz
    print(f"\noverlay total : {run.overlay_cycles:,} cycles")
    print(f"host total    : {run.host_cycles:,} cycles "
          f"({run.host_cycles / run.overlay_cycles:.1%} of overlay — "
          f"{'host-bound!' if run.host_bound else 'hidden by pipelining'})")
    print(f"pipelined     : {run.pipelined_cycles:,} cycles = {us:.1f} us "
          f"-> {1e6 / us:.0f} inferences/s")
    logits = run.output.ravel()
    print(f"class scores  : {logits.tolist()}  (argmax = {int(logits.argmax())})")
    print("every CONV/MM stage verified bit-exactly against the golden model.")

    print("\nquantization sweep on conv1 (Gaussian operands):")
    print(f"{'bits':>5s} {'SQNR dB':>9s} {'effective bits':>15s}")
    for report in precision_sweep(net.accelerated_layers()[0], rng):
        print(f"{report.n_bits:5d} {report.sqnr_db:9.1f} "
              f"{report.effective_bits:15.1f}")
    print("16-bit (the paper's deployment point) leaves a huge margin.")


if __name__ == "__main__":
    main()
