#!/usr/bin/env python3
"""Scalability study: deploy the overlay across devices and scales.

Reproduces the paper's central hardware claim (Fig. 6) interactively:
place FTDL overlays of growing size on two FPGA families, estimate the
post-place-and-route fmax, and contrast it with a boundary-fed systolic
array on the same fabric — the architecture-layout mismatch in numbers.

Also demonstrates the §III-D deployment checks: which grid shapes a
device can host, and the resource report per configuration.

Run:  python examples/scaleup_study.py
"""

from __future__ import annotations

from repro import (
    OverlayConfig,
    TimingModel,
    get_device,
    list_devices,
    place_overlay,
    place_systolic,
    plan_double_pump,
    resource_report,
)
from repro.analysis.ascii_plot import line_plot

SWEEPS = {
    "vu125": [(12, 1, 5), (12, 1, 10), (12, 1, 20), (12, 2, 20),
              (12, 3, 20), (12, 4, 20), (12, 5, 20)],
    "7vx330t": [(10, 1, 4), (10, 1, 8), (10, 1, 16), (10, 2, 16),
                (10, 4, 16), (10, 6, 16), (10, 7, 16)],
}


def sweep_device(name: str) -> None:
    device = get_device(name)
    model = TimingModel(device)
    print(f"\n{name}: {device.n_dsp_total} DSPs in "
          f"{len(device.dsp_columns)} columns of {device.dsps_per_column}")
    print(f"  {'grid':>14s} {'DSPs':>6s} {'fmax':>6s} {'%peak':>7s} "
          f"{'CLK_l':>6s}  resources")
    xs, ftdl_fmax = [], []
    for grid in SWEEPS[name]:
        placement = place_overlay(device, *grid)
        report = model.report(placement)
        plan = plan_double_pump(device, target_clk_h_mhz=report.fmax_mhz)
        config = OverlayConfig(*grid, clk_h_mhz=plan.clk_h_mhz)
        resources = resource_report(config, device)
        print(f"  {str(grid):>14s} {placement.n_dsp_used:6d} "
              f"{report.fmax_mhz:6.0f} {report.fmax_fraction:7.1%} "
              f"{plan.clk_l_mhz:6.0f}  "
              f"DSP {resources.dsp_utilization:.0%} / "
              f"BRAM {resources.bram_utilization:.0%} / "
              f"CLB {resources.clb_utilization:.0%}")
        xs.append(float(placement.n_dsp_used))
        ftdl_fmax.append(report.fmax_mhz)

    # The contrast: a systolic array grown over the same fabric.
    systolic_fmax = []
    for r, c in [(8, 8), (12, 12), (16, 16), (20, 20), (24, 24), (28, 28),
                 (33, 33)]:
        placement = place_systolic(device, r, c)
        systolic_fmax.append(model.report(placement, double_pump=False).fmax_mhz)
    print()
    print(line_plot(
        xs,
        {"ftdl": ftdl_fmax, "systolic": systolic_fmax},
        title=f"{name}: post-P&R fmax (MHz) vs scale "
              f"(x: DSPs used by FTDL / PE count for systolic)",
    ))


def main() -> None:
    print("catalogued devices:", ", ".join(list_devices()))
    for name in SWEEPS:
        sweep_device(name)
    print("\nTakeaway: FTDL's fmax is flat and >= 88 % of the DSP limit at "
          "every scale; the boundary-fed systolic array collapses below "
          "250 MHz as its feed nets stretch across the die.")


if __name__ == "__main__":
    main()
