#!/usr/bin/env python3
"""Fault injection end to end: crash/failover, retries, degraded grids.

Three robustness views of a two-replica SmallCNN deployment, all on the
deterministic virtual clock (rerun with the same seed → identical
numbers):

1. a clean baseline vs a chaos run replaying a seeded fault schedule —
   availability, retries, MTTR, and the drop-reason breakdown;
2. one surgical crash with failover: the aborted batch retries on the
   surviving replica under the capped-backoff, deadline-aware policy;
3. the degradation curve: mask a growing fraction of TPEs, recompile on
   the largest healthy sub-grid, and watch modeled throughput track the
   surviving grid instead of cliffing.

Run:  PYTHONPATH=src python examples/chaos_demo.py  [--grid 3,2,2]
"""

from __future__ import annotations

import argparse

from repro.faults import (
    FaultSchedule,
    ReplicaCrash,
    ReplicaRecovery,
    degraded_compile,
    generate_fault_schedule,
    random_tpe_mask,
)
from repro.overlay.config import OverlayConfig
from repro.serving import (
    AdmissionPolicy,
    BatchPolicy,
    BatchServiceModel,
    ReplicaService,
    RetryPolicy,
    ServingEngine,
    make_requests,
    poisson_arrivals,
)
from repro.workloads.models import build_smallcnn


def build_engine(service_model, faults=None):
    return ServingEngine(
        ReplicaService(service_model, n_replicas=2),
        batch_policy=BatchPolicy(max_batch=8, max_wait_s=2e-3),
        admission_policy=AdmissionPolicy(capacity=256),
        slo_s=50e-3,
        fault_schedule=faults,
        retry_policy=RetryPolicy(max_attempts=3, backoff_base_s=1e-3),
    )


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--grid", default="3,2,2", help="overlay D1,D2,D3")
    parser.add_argument("--seed", type=int, default=7)
    args = parser.parse_args()
    d1, d2, d3 = (int(x) for x in args.grid.split(","))
    config = OverlayConfig(d1=d1, d2=d2, d3=d3)

    network = build_smallcnn()
    service_model = BatchServiceModel(network, config)
    print(f"{network.name} on 2x {d1}x{d2}x{d3} overlay replicas "
          f"({config.n_tpe} TPEs each @ {config.clk_h_mhz:.0f} MHz)\n")

    def fresh_requests():
        return make_requests(
            poisson_arrivals(600.0, 300, seed=args.seed),
            network.name, deadline_s=0.100,
        )

    # 1. Baseline vs seeded chaos.
    baseline = build_engine(service_model).run(fresh_requests())
    faults = generate_fault_schedule(
        seed=args.seed, duration_s=0.5, replicas=["overlay0", "overlay1"],
        grid=config, crash_rate_hz=6.0, mean_repair_s=0.03,
        slowdown_rate_hz=2.0, tpe_fault_rate_hz=2.0, bitflip_rate_hz=10.0,
        link_fault_rate_hz=1.0,
    )
    chaos = build_engine(service_model, faults).run(fresh_requests())
    print(f"injected: {faults.describe()}\n")
    print(f"{'':>16s} {'baseline':>10s} {'chaos':>10s}")
    rows = [
        ("availability", f"{baseline.availability:.2%}",
         f"{chaos.availability:.2%}"),
        ("p99 ms", f"{baseline.p99_s * 1e3:.2f}",
         f"{chaos.p99_s * 1e3:.2f}"),
        ("SLO miss", f"{baseline.slo_violation_rate:.2%}",
         f"{chaos.slo_violation_rate:.2%}"),
        ("dropped", f"{baseline.n_dropped}", f"{chaos.n_dropped}"),
        ("retries", f"{baseline.n_retries}", f"{chaos.n_retries}"),
    ]
    for name, base, under in rows:
        print(f"{name:>16s} {base:>10s} {under:>10s}")
    if chaos.health is not None:
        print(f"\nchaos health: {chaos.health.describe()}")
    if chaos.drop_reasons:
        print(f"drop reasons: {chaos.drop_reasons}")

    # 2. One crash, one failover.
    surgical = FaultSchedule.from_events([
        ReplicaCrash(0.1015, "overlay0"),
        ReplicaRecovery(0.2015, "overlay0"),
    ])
    report = build_engine(service_model, surgical).run(fresh_requests())
    retried = [r for r in report.completed if r.attempts > 1]
    print(f"\nsurgical crash at t=101.5 ms (recovery at 201.5 ms): "
          f"availability {report.availability:.2%}, "
          f"{len(retried)} request(s) failed over"
          + (f" to {retried[0].replica}" if retried else ""))

    # 3. Degraded-grid compilation curve.
    print("\nmasked TPEs -> recompiled throughput "
          "(largest healthy sub-grid):")
    from repro.compiler.search import schedule_network
    healthy_cycles = sum(
        s.cycles for s in schedule_network(network, config)
    )
    for fraction in (0.05, 0.10, 0.20):
        mask = random_tpe_mask(config, fraction, seed=args.seed)
        result = degraded_compile(
            network, config, mask, healthy_cycles=healthy_cycles
        )
        d = result.degraded
        print(f"  {fraction:5.0%} masked -> {d.d1}x{d.d2}x{d.d3} "
              f"({result.tpe_fraction_kept:.0%} TPEs), throughput "
              f"{result.throughput_factor:.1%} of healthy")

    print("\nchaos report under the seeded schedule:\n")
    print(chaos.describe())


if __name__ == "__main__":
    main()
