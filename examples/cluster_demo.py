#!/usr/bin/env python3
"""Fleet serving end to end: a 100-board fleet survives a rack loss.

One seeded campaign on the deterministic virtual clock (rerun with the
same seed → identical numbers, down to the last per-tenant counter):

1. build a 10-rack × 10-board fleet serving SmallCNN, two tenants at
   2:1 fair-share weights, offered load at ~90% of fleet capacity;
2. power off rack0 — 10% of capacity — mid-load, and restore it a few
   milliseconds later: the router drains the members instantly, aborted
   batches fail over under hedged deadline-aware retries, and the rack
   re-admits through the compiled-schedule cold start;
3. print the recovery story: the windowed p99 spiking and returning to
   baseline, availability, per-tenant conservation accounting, and the
   per-domain health rollup.

Run:  PYTHONPATH=src python examples/cluster_demo.py  [--seed 7]
"""

from __future__ import annotations

import argparse

from repro.cluster import (
    ClusterEngine,
    FleetService,
    RackPowerLoss,
    RackPowerRestore,
    TenantPolicy,
    build_fleet,
    weight_load_s,
)
from repro.faults import FaultSchedule
from repro.overlay.config import OverlayConfig
from repro.serving import (
    AdmissionPolicy,
    BatchPolicy,
    BatchServiceModel,
    RetryPolicy,
    make_requests,
    poisson_arrivals,
)
from repro.tools.cluster import assign_tenants
from repro.workloads.models import build_smallcnn

MAX_BATCH = 16
N_REQUESTS = 30_000
TENANTS = {"alpha": 2.0, "beta": 1.0}


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--seed", type=int, default=7)
    args = parser.parse_args()

    config = OverlayConfig(d1=3, d2=2, d3=2, s_actbuf_words=64,
                           s_wbuf_words=256, s_psumbuf_words=512,
                           clk_h_mhz=650.0)
    network = build_smallcnn()
    model = BatchServiceModel(network, config)
    topology = build_fleet(10, 10)
    service = FleetService(model, topology)

    per_board = MAX_BATCH / model.service_s(MAX_BATCH)
    rate = 0.90 * topology.n_boards * per_board
    span_s = N_REQUESTS / rate
    loss_s, restore_s = 0.25 * span_s, 0.40 * span_s

    print(f"{network.name} on {topology.describe()} "
          f"({config.n_tpe} TPEs per board @ {config.clk_h_mhz:.0f} MHz)")
    print(f"capacity ~{topology.n_boards * per_board:,.0f} req/s, "
          f"offering {rate:,.0f} req/s for {span_s * 1e3:.1f} ms")
    print(f"cold start (weight reload): "
          f"{weight_load_s(model) * 1e6:.1f} us/board")
    print(f"rack0 power loss at {loss_s * 1e3:.2f} ms, restored at "
          f"{restore_s * 1e3:.2f} ms\n")

    faults = FaultSchedule.from_events([
        RackPowerLoss(at_s=loss_s, replica="rack0"),
        RackPowerRestore(at_s=restore_s, replica="rack0"),
    ])
    requests = make_requests(
        poisson_arrivals(rate, N_REQUESTS, seed=args.seed), network.name,
    )
    assign_tenants(requests, TENANTS)

    engine = ClusterEngine(
        service,
        batch_policy=BatchPolicy(max_batch=MAX_BATCH, max_wait_s=1e-3),
        admission_policy=AdmissionPolicy(capacity=20_000),
        slo_s=50e-3,
        fault_schedule=faults,
        retry_policy=RetryPolicy(max_attempts=4, backoff_base_s=0.5e-3),
        tenant_policy=TenantPolicy(weights=dict(TENANTS)),
    )
    report = engine.run(requests)

    window_s = span_s / 24
    curve = report.windowed_p99(window_s)
    peak = max(p99 for _, p99 in curve)
    print("windowed p99 around the outage "
          f"({window_s * 1e3:.2f} ms windows):")
    for t, p99 in curve:
        marker = " <- rack0 down" if loss_s <= t - window_s <= restore_s \
            else ""
        bar = "#" * round(56 * p99 / peak)
        print(f"  t={t * 1e3:7.2f} ms  p99={p99 * 1e6:9.1f} us  "
              f"{bar}{marker}")

    print(f"\navailability     : {report.availability:.4%} "
          f"(rack0 was 10% of capacity)")
    print(f"drains/re-admits : {report.drains}/{report.readmits}, "
          f"{report.cold_starts} cold starts, "
          f"{report.hedged_dispatches} hedged dispatches, "
          f"{report.core.n_retries} retries")
    identity = "HOLDS" if report.conserved else "VIOLATED"
    print(f"accounting       : {identity} over "
          f"{len(report.per_tenant)} tenants")
    for stats in report.per_tenant.values():
        print(f"  tenant {stats.describe()}")

    print("\nfull cluster report:\n")
    print(report.describe())


if __name__ == "__main__":
    main()
