#!/usr/bin/env python3
"""The compile fast path, end to end: memo, disk store, parallel fan-out.

Compiles SmallCNN four ways and shows they are byte-for-byte identical
while getting progressively cheaper:

1. **baseline** — plain sequential search, nothing shared;
2. **shared temporal memo** — a second compile reuses the search's
   per-remainder temporal enumerations (batch sweeps and fault-mask
   recompiles only re-search what actually changed);
3. **persistent store** — schedules round-trip through an on-disk
   content-addressed store, so a process restart loads instead of
   searching (the recorded step charge is replayed, keeping traces
   identical warm or cold);
4. **parallel fan-out** — independent layer searches spread over a
   multiprocessing pool and merge deterministically.

Also flips the cycle simulator between its two functional engines —
the per-MACC reference datapath walk and the vectorized NumPy lattice
enumeration — and checks they agree bit for bit.

Run:  PYTHONPATH=src python examples/compile_cache_demo.py
"""

from __future__ import annotations

import tempfile

import numpy as np

from repro.compiler import (
    compile_schedule,
    parallel_schedule_network,
    schedule_network,
)
from repro.compiler.cache import ScheduleCache
from repro.compiler.memo import TemporalMemo
from repro.compiler.persist import PersistentScheduleStore
from repro.overlay.config import OverlayConfig
from repro.sim.cycle import CycleSimulator
from repro.sim.functional import random_layer_operands
from repro.workloads.layers import MatMulLayer
from repro.workloads.models import build_smallcnn


def main() -> None:
    config = OverlayConfig(3, 2, 2)
    network = build_smallcnn()
    layers = network.accelerated_layers()

    # 1. Baseline: plain sequential compile.
    baseline = schedule_network(network, config)
    print(f"baseline: {len(baseline)} layers scheduled on "
          f"{config.d1}x{config.d2}x{config.d3}")

    # 2. One shared memo across a batch-size sweep: later searches reuse
    #    the temporal enumerations the first one produced.
    memo = TemporalMemo()
    for batch in (1, 2, 4, 8):
        layer = MatMulLayer("head", in_features=64, out_features=32,
                            batch=batch)
        cache = ScheduleCache(config, temporal_memo=memo)
        cache.schedule(layer)
    print(f"memo after batch sweep: {memo.describe()}")

    with tempfile.TemporaryDirectory() as root:
        # 3. Cold process fills the store; a "restarted" one loads it.
        cold = ScheduleCache(config, store=PersistentScheduleStore(root))
        cold_schedules = [cold.schedule(layer) for layer in layers]
        print(f"cold start : {cold.describe()}")

        warm = ScheduleCache(config, store=PersistentScheduleStore(root))
        warm_schedules = [warm.schedule(layer) for layer in layers]
        print(f"warm start : {warm.describe()}")

        # 4. Parallel fan-out (falls back in-process when pools are
        #    unavailable — results are identical either way).
        fanned = parallel_schedule_network(network, config, max_workers=4)

    for a, b, c, d in zip(baseline, cold_schedules, warm_schedules, fanned):
        assert a.mapping == b.mapping == c.mapping == d.mapping
        assert a.estimate == b.estimate == c.estimate == d.estimate
    print("all four compile paths returned identical schedules")

    # Functional engines: reference datapath walk vs vectorized lattice.
    layer = layers[0]
    compiled = compile_schedule(baseline[0])
    weights, acts = random_layer_operands(layer, np.random.default_rng(0))
    reference = CycleSimulator(config, functional_engine="reference")
    vectorized = CycleSimulator(config)
    out_ref, useful_ref, _ = reference._functional(compiled, weights, acts)
    out_vec, useful_vec, _ = vectorized._functional(compiled, weights, acts)
    assert np.array_equal(out_ref, out_vec) and useful_ref == useful_vec
    print(f"simulator engines agree bit-for-bit on {layer.name} "
          f"({useful_vec:,} useful MACCs)")


if __name__ == "__main__":
    main()
