"""Functional model of one tiled processing element (paper §III-A).

A TPE couples one DSP (16-bit MACC), one BRAM18 (weight buffer), and CLB
distributed RAM (double-buffered activation buffer).  The model is bit-true
for the datapath: 16-bit two's-complement operands, exact 32-bit products,
and a 48-bit wrapping accumulator chain like the DSP48 cascade.

The cycle-level behaviour (when buffers swap, how the cascade fills) lives
in :mod:`repro.sim.cycle`; this class only owns state and single operations
so it can also be unit-tested in isolation.
"""

from __future__ import annotations

import numpy as np

from repro.errors import SimulationError
from repro.fixedpoint import to_int16, wrap48


class TPE:
    """State and datapath of a single TPE.

    Args:
        s_wbuf_words: Weight buffer capacity (one BRAM18 = 1024 words).
        s_actbuf_words: Total activation buffer capacity; split into two
            double-buffer halves when ``double_buffer`` is set, otherwise
            used as a single full-capacity buffer.
        double_buffer: Whether loads overlap compute (§III-E).
    """

    def __init__(
        self,
        s_wbuf_words: int,
        s_actbuf_words: int,
        double_buffer: bool = True,
    ):
        if s_wbuf_words < 1 or s_actbuf_words < 2:
            raise SimulationError(
                f"invalid buffer sizes wbuf={s_wbuf_words} actbuf={s_actbuf_words}"
            )
        self.s_wbuf_words = s_wbuf_words
        self.s_actbuf_words = s_actbuf_words
        self.double_buffer = double_buffer
        self.wbuf = np.zeros(s_wbuf_words, dtype=np.int16)
        half = s_actbuf_words // 2 if double_buffer else s_actbuf_words
        self._act_halves = [
            np.zeros(half, dtype=np.int16),
            np.zeros(half, dtype=np.int16),
        ]
        self._compute_half = 0

    # ------------------------------------------------------------------ #
    # buffers
    # ------------------------------------------------------------------ #
    @property
    def actbuf_half_words(self) -> int:
        """Capacity of one tile-holding region of the ActBUF."""
        return len(self._act_halves[0])

    def load_weights(self, base: int, values: np.ndarray) -> None:
        """Preload ``values`` into WBUF starting at word ``base``."""
        end = base + len(values)
        if base < 0 or end > self.s_wbuf_words:
            raise SimulationError(
                f"weight load [{base}:{end}) overflows WBUF of {self.s_wbuf_words}"
            )
        self.wbuf[base:end] = to_int16(values)

    def load_activations(self, values: np.ndarray) -> None:
        """Fill the *shadow* half of the ActBUF (the communication side)."""
        shadow = self._act_halves[1 - self._compute_half]
        if len(values) > len(shadow):
            raise SimulationError(
                f"activation tile of {len(values)} words overflows ActBUF "
                f"half of {len(shadow)}"
            )
        shadow[: len(values)] = to_int16(values)
        shadow[len(values):] = 0

    def swap_actbuf(self) -> None:
        """Exchange compute/communication roles of the two ActBUF halves."""
        self._compute_half = 1 - self._compute_half

    # ------------------------------------------------------------------ #
    # datapath
    # ------------------------------------------------------------------ #
    def read_weight(self, addr: int) -> int:
        """Read one weight word (BRAM port, CLK_l domain)."""
        if not 0 <= addr < self.s_wbuf_words:
            raise SimulationError(f"WBUF address {addr} out of range")
        return int(self.wbuf[addr])

    def read_activation(self, addr: int) -> int:
        """Read one activation word from the compute half (CLK_h domain)."""
        half = self._act_halves[self._compute_half]
        if not 0 <= addr < len(half):
            raise SimulationError(f"ActBUF address {addr} out of range")
        return int(half[addr])

    def macc(self, w_addr: int, act_addr: int, cascade_in: int = 0) -> int:
        """One MACC: ``cascade_in + weight * activation`` wrapped to 48 bits.

        ``cascade_in`` is the accumulation arriving on the DSP cascade from
        the previous TPE in the SuperBlock chain.
        """
        product = self.read_weight(w_addr) * self.read_activation(act_addr)
        return wrap48(cascade_in + product)
