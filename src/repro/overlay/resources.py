"""Resource accounting of an overlay configuration against a device."""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ResourceError
from repro.fpga.devices import Device
from repro.fpga.placement import (
    BRAMS_PER_PSUMBUF,
    CLBS_PER_CONTROLLER,
    CLBS_PER_TPE,
    place_overlay,
)
from repro.overlay.config import OverlayConfig


@dataclass(frozen=True)
class ResourceReport:
    """Primitive usage of one overlay configuration on one device."""

    device: str
    n_dsp: int
    n_bram18: int
    n_clb: int
    dsp_utilization: float
    bram_utilization: float
    clb_utilization: float
    fits: bool

    def describe(self) -> str:
        status = "fits" if self.fits else "DOES NOT FIT"
        return (
            f"{self.device}: DSP {self.n_dsp} ({self.dsp_utilization:.0%}), "
            f"BRAM18 {self.n_bram18} ({self.bram_utilization:.0%}), "
            f"CLB {self.n_clb} ({self.clb_utilization:.0%}) - {status}"
        )


def resource_report(config: OverlayConfig, device: Device) -> ResourceReport:
    """Account ``config``'s primitive usage on ``device``.

    Uses the same per-element costs as the placer; a config that does not
    fit is still reported (``fits=False``) rather than raising, so sweeps
    can chart the failure boundary.
    """
    n_tpe = config.n_tpe
    n_superblocks = config.n_superblocks
    n_dsp = n_tpe
    n_bram = n_tpe + n_superblocks * BRAMS_PER_PSUMBUF
    n_clb = n_tpe * CLBS_PER_TPE + config.d3 * CLBS_PER_CONTROLLER

    fits = True
    try:
        place_overlay(device, config.d1, config.d2, config.d3)
    except ResourceError:
        fits = False

    return ResourceReport(
        device=device.name,
        n_dsp=n_dsp,
        n_bram18=n_bram,
        n_clb=n_clb,
        dsp_utilization=n_dsp / device.n_dsp_total,
        bram_utilization=n_bram / device.n_bram18_total,
        clb_utilization=n_clb / device.n_clb_total,
        fits=fits,
    )
