"""SuperBlock-row controller: instruction decode and control-flow expansion.

The controller turns one COMPUTE instruction into the periodic
double-buffered control flow of List 1: a stream of phase events the cycle
simulator consumes.  Phases per LoopX iteration: a PSumBUF update, then L
iterations of (ActBUF update, T MACC cycles).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from repro.errors import SimulationError
from repro.overlay.isa import Instruction, OpKind


@dataclass(frozen=True)
class Phase:
    """One control-flow phase of List 1.

    Attributes:
        kind: ``"psum_update"``, ``"act_update"`` or ``"compute"``.
        x: LoopX index.
        l: LoopL index (0 for psum_update phases).
        words: Transfer size for update phases (0 for compute).
        cycles: Duration in CLK_h cycles for compute phases (0 for updates,
            whose duration the buses decide).
    """

    kind: str
    x: int
    l: int
    words: int
    cycles: int


class Controller:
    """Decoder/expander for one SuperBlock row."""

    def __init__(self, instruction: Instruction):
        instruction.validate()
        self.instruction = instruction

    def phases(self) -> Iterator[Phase]:
        """Yield the List-1 phase stream of a COMPUTE instruction.

        Raises:
            SimulationError: for non-COMPUTE opcodes (LOAD_WEIGHT and
                WRITE_BACK are single transfers, expanded by the caller).
        """
        inst = self.instruction
        if inst.op != OpKind.COMPUTE:
            raise SimulationError(
                f"controller expands COMPUTE instructions, got {inst.op.name}"
            )
        for x in range(inst.x):
            yield Phase(
                kind="psum_update", x=x, l=0, words=inst.psum_tile_words, cycles=0
            )
            for l in range(inst.l):
                yield Phase(
                    kind="act_update", x=x, l=l, words=inst.act_tile_words, cycles=0
                )
                yield Phase(kind="compute", x=x, l=l, words=0, cycles=inst.t)
