"""Bus occupancy models for ActBUS, PSumBUS, and InstBUS.

A :class:`BusModel` is a serialized transfer resource: requests queue in
arrival order at a fixed words-per-cycle rate.  The cycle simulator uses
one instance per physical bus (one ActBUS per row, one PSumBUS per
SuperBlock column) to account for contention.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import SimulationError
from repro.units import ceil_div


@dataclass
class BusModel:
    """One serialized bus.

    Attributes:
        name: Identifier for reports (e.g. ``"actbus.row3"``).
        words_per_cycle: Transfer rate.
        next_free: First cycle at which the bus can accept a new transfer.
        busy_cycles: Total cycles spent transferring.
        words_moved: Total words transferred.
    """

    name: str
    words_per_cycle: float
    next_free: int = 0
    busy_cycles: int = 0
    words_moved: int = 0

    def transfer(self, start_cycle: int, words: int) -> int:
        """Occupy the bus for ``words`` starting no earlier than
        ``start_cycle``; returns the completion cycle."""
        if words < 0:
            raise SimulationError(f"negative transfer of {words} words on {self.name}")
        if self.words_per_cycle <= 0:
            raise SimulationError(f"bus {self.name} has no bandwidth")
        begin = max(start_cycle, self.next_free)
        duration = int(-(-words // self.words_per_cycle)) if words else 0
        self.next_free = begin + duration
        self.busy_cycles += duration
        self.words_moved += words
        return self.next_free

    def utilization(self, total_cycles: int) -> float:
        """Fraction of ``total_cycles`` the bus spent transferring."""
        if total_cycles <= 0:
            return 0.0
        return min(1.0, self.busy_cycles / total_cycles)
