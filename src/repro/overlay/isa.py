"""Controller instruction set of the FTDL overlay.

Each SuperBlock-row controller is configured over the InstBUS with one
instruction per layer pass (paper §III-B).  An instruction carries the
three temporal trip counts of List 1 (``X``, ``L``, ``T``), the buffer tile
geometry, and control flags; the controller expands it into the periodic
double-buffered control flow.

Instructions encode to exactly 16 bytes (128 bits) so an instruction stream
can be preloaded through a 128-bit InstBUS word per layer.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.errors import IsaError


class OpKind(enum.IntEnum):
    """Instruction opcodes understood by the SuperBlock controller."""

    NOP = 0
    #: Execute the X/L/T loop nest of MACC operations (List 1).
    COMPUTE = 1
    #: Stream weights from DRAM into the WBUFs (FPGA initialization phase).
    LOAD_WEIGHT = 2
    #: Drain PSumBUF to the PSumBUS without computing (multi-pass flush).
    WRITE_BACK = 3


#: Flag bits in :attr:`Instruction.flags`.
FLAG_DOUBLE_BUFFER = 1 << 0
#: Results of this pass are partial and will be re-accumulated (multi-pass
#: or multi-SuperBlock reduction finished by a host EWOP).
FLAG_EWOP_ACCUMULATE = 1 << 1
#: Last instruction of the stream.
FLAG_LAST = 1 << 2

_FIELDS = (
    # (name, bit width)
    ("op", 4),
    ("x", 20),
    ("l", 20),
    ("t", 20),
    ("act_tile_words", 14),
    ("psum_tile_words", 14),
    ("wbuf_base", 12),
    ("psum_base", 12),
    ("flags", 8),
)
_TOTAL_BITS = sum(width for _, width in _FIELDS)
assert _TOTAL_BITS <= 128


@dataclass(frozen=True)
class Instruction:
    """One decoded controller instruction.

    Attributes:
        op: Opcode.
        x: Trip count of LoopX (PSumBUF update period, List 1).
        l: Trip count of LoopL (ActBUF update period).
        t: Trip count of LoopT (one MACC per CLK_h cycle).
        act_tile_words: Words written into the ActBUF each LoopL iteration.
        psum_tile_words: Words exchanged with the PSumBUS each LoopX
            iteration per SuperBlock.
        wbuf_base: Starting word address of this layer's weights in WBUF.
        psum_base: Starting word address of the live tile in PSumBUF.
        flags: Bitwise OR of the ``FLAG_*`` constants.
    """

    op: OpKind
    x: int = 1
    l: int = 1
    t: int = 1
    act_tile_words: int = 0
    psum_tile_words: int = 0
    wbuf_base: int = 0
    psum_base: int = 0
    flags: int = FLAG_DOUBLE_BUFFER

    @property
    def double_buffer(self) -> bool:
        return bool(self.flags & FLAG_DOUBLE_BUFFER)

    @property
    def ewop_accumulate(self) -> bool:
        return bool(self.flags & FLAG_EWOP_ACCUMULATE)

    @property
    def last(self) -> bool:
        return bool(self.flags & FLAG_LAST)

    @property
    def total_macc_cycles(self) -> int:
        """MACC cycles issued by this instruction (X * L * T)."""
        return self.x * self.l * self.t

    def validate(self) -> None:
        """Raise :class:`IsaError` if any field overflows its encoding."""
        for name, width in _FIELDS:
            value = int(getattr(self, name))
            if value < 0 or value >= (1 << width):
                raise IsaError(
                    f"field {name}={value} does not fit in {width} bits"
                )
        if self.op == OpKind.COMPUTE and min(self.x, self.l, self.t) < 1:
            raise IsaError(
                f"COMPUTE requires positive trip counts, got "
                f"({self.x}, {self.l}, {self.t})"
            )


def encode_instruction(inst: Instruction) -> bytes:
    """Pack ``inst`` into its 16-byte InstBUS representation."""
    inst.validate()
    word = 0
    shift = 0
    for name, width in _FIELDS:
        word |= int(getattr(inst, name)) << shift
        shift += width
    return word.to_bytes(16, "little")


def decode_instruction(raw: bytes) -> Instruction:
    """Unpack a 16-byte InstBUS word back into an :class:`Instruction`.

    Raises:
        IsaError: if ``raw`` is not exactly 16 bytes or the opcode is
            unknown.
    """
    if len(raw) != 16:
        raise IsaError(f"instruction must be 16 bytes, got {len(raw)}")
    word = int.from_bytes(raw, "little")
    values: dict[str, int] = {}
    shift = 0
    for name, width in _FIELDS:
        values[name] = (word >> shift) & ((1 << width) - 1)
        shift += width
    if (word >> shift) != 0:
        raise IsaError("instruction has non-zero padding bits")
    try:
        values["op"] = OpKind(values["op"])
    except ValueError:
        raise IsaError(f"unknown opcode {values['op']}") from None
    return Instruction(**values)
