"""Functional model of a SuperBlock (paper §III-B).

A SuperBlock chains ``D1`` TPEs on the DSP cascade — one MACC per TPE per
cycle, partial sums flowing down the chain — and owns a double-buffered
partial-sum buffer (PSumBUF) fed by the chain's tail.
"""

from __future__ import annotations

import numpy as np

from repro.errors import SimulationError
from repro.overlay.tpe import TPE
from repro.fixedpoint import wrap48


class SuperBlock:
    """``d1`` cascaded TPEs plus a PSumBUF.

    Args:
        d1: Chain length.
        s_wbuf_words: Per-TPE weight buffer capacity.
        s_actbuf_words: Per-TPE activation buffer capacity.
        s_psumbuf_words: Total PSumBUF capacity (split into double-buffer
            halves when ``double_buffer`` is set).
        double_buffer: Whether buffer updates overlap compute (§III-E).
    """

    def __init__(
        self,
        d1: int,
        s_wbuf_words: int,
        s_actbuf_words: int,
        s_psumbuf_words: int,
        double_buffer: bool = True,
    ):
        if d1 < 1:
            raise SimulationError(f"SuperBlock needs >= 1 TPE, got {d1}")
        self.tpes = [
            TPE(s_wbuf_words, s_actbuf_words, double_buffer)
            for _ in range(d1)
        ]
        self.s_psumbuf_words = s_psumbuf_words
        self.double_buffer = double_buffer
        half = s_psumbuf_words // 2 if double_buffer else s_psumbuf_words
        self._psum_halves = [
            np.zeros(half, dtype=np.int64),
            np.zeros(half, dtype=np.int64),
        ]
        self._compute_half = 0

    @property
    def d1(self) -> int:
        return len(self.tpes)

    @property
    def psum_half_words(self) -> int:
        return len(self._psum_halves[0])

    # ------------------------------------------------------------------ #
    def cascade_macc(self, w_addrs: list[int], act_addrs: list[int]) -> int:
        """One cascade pass: every TPE contributes one MACC.

        ``w_addrs[i]`` / ``act_addrs[i]`` address TPE ``i``'s buffers; the
        result is the 48-bit-wrapped sum of all products, exactly what the
        DSP cascade delivers at the chain tail after ``d1`` stages.
        """
        if len(w_addrs) != self.d1 or len(act_addrs) != self.d1:
            raise SimulationError(
                f"cascade needs {self.d1} address pairs, got "
                f"{len(w_addrs)}/{len(act_addrs)}"
            )
        acc = 0
        for tpe, w_addr, act_addr in zip(self.tpes, w_addrs, act_addrs):
            acc = tpe.macc(w_addr, act_addr, cascade_in=acc)
        return acc

    # ------------------------------------------------------------------ #
    def accumulate_psum(self, addr: int, value: int) -> None:
        """Add ``value`` into the live PSumBUF half at ``addr`` (wrapping)."""
        half = self._psum_halves[self._compute_half]
        if not 0 <= addr < len(half):
            raise SimulationError(f"PSumBUF address {addr} out of range")
        half[addr] = wrap48(int(half[addr]) + value)

    def read_psums(self, n_words: int) -> np.ndarray:
        """Read the first ``n_words`` of the live half (PSumBUS drain)."""
        half = self._psum_halves[self._compute_half]
        if n_words > len(half):
            raise SimulationError(
                f"PSumBUF drain of {n_words} exceeds half of {len(half)}"
            )
        return half[:n_words].copy()

    def clear_psums(self) -> None:
        """Zero the live half (start of a fresh accumulation tile)."""
        self._psum_halves[self._compute_half][:] = 0

    def swap_psumbuf(self) -> None:
        """Exchange compute/communication halves of the PSumBUF."""
        self._compute_half = 1 - self._compute_half

    def swap_actbufs(self) -> None:
        """Swap every TPE's ActBUF halves (end of a LoopL iteration)."""
        for tpe in self.tpes:
            tpe.swap_actbuf()
