"""Overlay configuration: dimensions, buffer sizes, and derived quantities.

An :class:`OverlayConfig` is the hardware half of every scheduling problem
(paper §III-D): the grid shape ``(D1, D2, D3)``, the per-buffer capacities,
the bus widths, and the off-chip bandwidth.  The compiler searches mapping
vectors *for* a config; :func:`repro.overlay.resources.resource_report`
checks a config *against* a device.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.errors import ResourceError
from repro.fpga.primitives import BRAM18_WORDS
from repro.units import OPS_PER_MACC, gbps_to_words_per_cycle


@dataclass(frozen=True)
class OverlayConfig:
    """One fully parameterized FTDL overlay instance.

    Attributes:
        d1: TPEs per SuperBlock (cascade-chain length).
        d2: SuperBlock columns (SIMD width of one row).
        d3: SuperBlock rows (independent controllers).
        s_actbuf_words: Activation buffer per TPE, in 16-bit words.  Built
            from CLB distributed RAM; the paper quotes 64-256 words.  The
            capacity covers both double-buffer halves.
        s_wbuf_words: Weight buffer per TPE, in words (one BRAM18 = 1024).
        s_psumbuf_words: Partial-sum buffer per SuperBlock, in words
            (1024-4096 in the paper); covers both double-buffer halves.
        actbus_words_per_cycle: Bandwidth of one row's ActBUS in words per
            CLK_h cycle.  ``None`` (default) means one word per TPE of a
            SuperBlock — a ``16 * D1``-bit pipelined row bus, which makes
            the per-round cost equal the paper's ``f_act(TT)`` (Eqn 8)
            whenever the D1 TPEs hold disjoint reduction slices.
        psumbus_words_per_cycle: Bandwidth of one column's PSumBUS, in words
            per CLK_h cycle (shared by the D3 rows of that column); the
            default models a 64-bit streaming bus.
        dram_rd_gbps: Off-chip read bandwidth, GB/s.
        dram_wr_gbps: Off-chip write bandwidth, GB/s.
        clk_h_mhz: DSP clock (MHz); the paper's example runs at 650.
        double_pump: Whether BRAM runs at CLK_h / 2 with two-cycle weight
            reuse (the FTDL scheme).
        double_buffer: Whether ActBUF/PSumBUF overlap communication with
            computation (§III-E).  Disabled only for the ablation study.
        weights_resident: Whether the workload's weights are preloaded into
            WBUF at initialization (§III-A1's weight-stationary scheme) and
            never stream from DRAM at run time.  True models the paper's
            single-layer/multi-FPGA setting where the model fits on chip;
            the default False streams each layer's weights, which is what a
            full network on one device requires.
    """

    d1: int
    d2: int
    d3: int
    s_actbuf_words: int = 128
    s_wbuf_words: int = BRAM18_WORDS
    s_psumbuf_words: int = 2048
    actbus_words_per_cycle: float | None = None
    psumbus_words_per_cycle: float = 4.0
    dram_rd_gbps: float = 26.0
    dram_wr_gbps: float = 26.0
    clk_h_mhz: float = 650.0
    double_pump: bool = True
    double_buffer: bool = True
    weights_resident: bool = False

    def __post_init__(self) -> None:
        if min(self.d1, self.d2, self.d3) < 1:
            raise ResourceError(
                f"overlay dimensions must be >= 1, got "
                f"({self.d1}, {self.d2}, {self.d3})"
            )
        for name in ("s_actbuf_words", "s_wbuf_words", "s_psumbuf_words"):
            if getattr(self, name) < 2:
                raise ResourceError(f"{name} must be >= 2, got {getattr(self, name)}")
        if self.clk_h_mhz <= 0:
            raise ResourceError(f"clk_h_mhz must be positive, got {self.clk_h_mhz}")

    # ------------------------------------------------------------------ #
    # derived quantities
    # ------------------------------------------------------------------ #
    @property
    def grid(self) -> tuple[int, int, int]:
        """The ``(D1, D2, D3)`` shape as a tuple (e.g. for mask keys)."""
        return (self.d1, self.d2, self.d3)

    @property
    def n_tpe(self) -> int:
        """Total TPEs (== DSPs == MACCs per cycle at full utilization)."""
        return self.d1 * self.d2 * self.d3

    @property
    def n_superblocks(self) -> int:
        return self.d2 * self.d3

    @property
    def pipeline_latency(self) -> int:
        """TPE-chain fill latency inside a SuperBlock (paper: Lat = D1 + 6)."""
        return self.d1 + 6

    @property
    def peak_gops(self) -> float:
        """Theoretical throughput at clk_h, in GOPS (2 ops per MACC)."""
        return OPS_PER_MACC * self.n_tpe * self.clk_h_mhz * 1e-3

    @property
    def actbuf_usable_words(self) -> int:
        """Words available to one schedule tile in the ActBUF.

        With double-buffering only half the physical buffer holds the live
        tile; without it the whole buffer is available.
        """
        return self.s_actbuf_words // 2 if self.double_buffer else self.s_actbuf_words

    @property
    def psumbuf_usable_words(self) -> int:
        """Words available to one schedule tile in the PSumBUF."""
        if self.double_buffer:
            return self.s_psumbuf_words // 2
        return self.s_psumbuf_words

    @property
    def actbus_wpc(self) -> float:
        """Effective ActBUS bandwidth (words per CLK_h cycle per row)."""
        if self.actbus_words_per_cycle is not None:
            return self.actbus_words_per_cycle
        return float(self.d1)

    def dram_rd_words_per_cycle(self) -> float:
        """Off-chip read bandwidth in words per CLK_h cycle."""
        return gbps_to_words_per_cycle(self.dram_rd_gbps, self.clk_h_mhz)

    def dram_wr_words_per_cycle(self) -> float:
        """Off-chip write bandwidth in words per CLK_h cycle."""
        return gbps_to_words_per_cycle(self.dram_wr_gbps, self.clk_h_mhz)

    def with_grid(self, d1: int, d2: int, d3: int) -> "OverlayConfig":
        """Return a copy with a different grid shape (used by Objective 3)."""
        return replace(self, d1=d1, d2=d2, d3=d3)


#: The example configuration of the paper's §V-C evaluation: 1200 TPEs on
#: the UltraScale vu125 at 650 MHz with 26 GB/s of DRAM bandwidth.
PAPER_EXAMPLE_CONFIG = OverlayConfig(d1=12, d2=5, d3=20)
