"""Architectural model of the FTDL overlay (paper §III).

The overlay is a ``D1 x D2 x D3`` grid: ``D1`` TPEs chained by the DSP
cascade form a SuperBlock; ``D2`` SuperBlock columns share a row's control
and activation broadcast (SIMD); ``D3`` independent SuperBlock rows share a
column-wise partial-sum bus.
"""

from repro.overlay.config import OverlayConfig, PAPER_EXAMPLE_CONFIG
from repro.overlay.isa import Instruction, OpKind, encode_instruction, decode_instruction
from repro.overlay.resources import ResourceReport, resource_report
from repro.overlay.tpe import TPE
from repro.overlay.superblock import SuperBlock
from repro.overlay.buses import BusModel
from repro.overlay.controller import Controller

__all__ = [
    "OverlayConfig",
    "PAPER_EXAMPLE_CONFIG",
    "Instruction",
    "OpKind",
    "encode_instruction",
    "decode_instruction",
    "ResourceReport",
    "resource_report",
    "TPE",
    "SuperBlock",
    "BusModel",
    "Controller",
]
