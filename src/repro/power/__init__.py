"""FPGA power model: component-level dynamic + static power."""

from repro.power.model import PowerReport, estimate_overlay_power

__all__ = ["PowerReport", "estimate_overlay_power"]
