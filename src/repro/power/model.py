"""Component-level power model of a running overlay.

Power = dynamic (per-primitive energy x clock x activity) + clock tree +
static leakage + DRAM interface.  Activity factors are calibrated so the
paper's example configuration (1200 TPEs, 650 MHz, ~81 % efficiency on
GoogLeNet) lands near its reported 45.8 W / 27.6 GOPS/W; the *relative*
behaviour (power tracking frequency, utilization, and design size) is what
the model is used for.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.dram.power import DramPowerReport
from repro.errors import FTDLError
from repro.fpga.devices import Device
from repro.fpga.placement import BRAMS_PER_PSUMBUF, CLBS_PER_CONTROLLER, CLBS_PER_TPE
from repro.overlay.config import OverlayConfig

#: Fraction of CLB primitives toggling in a typical cycle.
CLB_ACTIVITY = 0.15
#: BRAM port activity under the double-pump fetch pattern.
BRAM_ACTIVITY = 0.9
#: Clock-tree power per TPE at 650 MHz (W), scaled linearly with CLK_h.
CLOCK_W_PER_TPE_650 = 0.004
#: Static leakage: per-DSP share of the powered die plus a fixed base.
STATIC_W_PER_DSP = 0.003
STATIC_BASE_W = 2.0


@dataclass(frozen=True)
class PowerReport:
    """Power breakdown of one overlay execution."""

    dsp_w: float
    bram_w: float
    clb_w: float
    clock_w: float
    static_w: float
    dram_w: float

    @property
    def total_w(self) -> float:
        return (
            self.dsp_w + self.bram_w + self.clb_w
            + self.clock_w + self.static_w + self.dram_w
        )

    def gops_per_watt(self, attained_gops: float) -> float:
        """Power efficiency for a given attained throughput."""
        if self.total_w <= 0:
            return 0.0
        return attained_gops / self.total_w


def estimate_overlay_power(
    config: OverlayConfig,
    device: Device,
    utilization: float,
    dram_report: DramPowerReport | None = None,
) -> PowerReport:
    """Estimate the power of ``config`` running on ``device``.

    Args:
        config: Overlay configuration (clocks, grid shape).
        device: Target device (primitive energies, size).
        utilization: MACC-slot utilization, i.e. the hardware efficiency —
            idle DSPs are clock-gated and contribute no dynamic power.
        dram_report: Optional DRAM power from :mod:`repro.dram.power`; its
            average power is added when provided.
    """
    if not 0.0 <= utilization <= 1.0:
        raise FTDLError(f"utilization must be in [0, 1], got {utilization}")
    f_h = config.clk_h_mhz * 1e6
    f_l = f_h / 2 if config.double_pump else f_h

    n_tpe = config.n_tpe
    n_bram = n_tpe + config.n_superblocks * BRAMS_PER_PSUMBUF
    n_clb = n_tpe * CLBS_PER_TPE + config.d3 * CLBS_PER_CONTROLLER

    dsp_w = n_tpe * device.dsp.energy_per_op_pj * 1e-12 * f_h * utilization
    bram_w = n_bram * device.bram.energy_per_op_pj * 1e-12 * f_l * BRAM_ACTIVITY
    clb_w = n_clb * device.clb.energy_per_op_pj * 1e-12 * f_h * CLB_ACTIVITY
    clock_w = n_tpe * CLOCK_W_PER_TPE_650 * (config.clk_h_mhz / 650.0)
    static_w = STATIC_BASE_W + device.n_dsp_total * STATIC_W_PER_DSP
    dram_w = dram_report.average_power_w if dram_report is not None else 0.0

    return PowerReport(
        dsp_w=dsp_w,
        bram_w=bram_w,
        clb_w=clb_w,
        clock_w=clock_w,
        static_w=static_w,
        dram_w=dram_w,
    )
