"""Serving-side integrity policies: what to do about a checksum mismatch.

Kept free of heavy imports so both the serving engine and the CLI tools
can depend on it without cycles.
"""

from __future__ import annotations

import enum

from repro.errors import IntegrityError


class IntegrityPolicy(enum.Enum):
    """How the serving engine treats results under SDC-capable faults.

    * ``OFF`` — pre-integrity behaviour, bit for bit: the engine plays
      the omniscient oracle and aborts the batch the moment a
      corrupting fault fires (no checksums, no detection cost).
    * ``DETECT`` — ABFT checksums verify every result; a corrupted
      batch runs to completion, fails verification at retirement, and
      is dropped (counted, never silently served).
    * ``DETECT_REEXECUTE`` — detection plus recovery: a failed batch is
      re-queued through the deadline-aware retry path and re-executed
      on a healthy replica.
    * ``DETECT_CORRECT`` — strongest: single-element accumulator
      corruptions are repaired in place from the row/column syndromes
      (no re-execution latency); everything else falls back to
      re-execution.
    """

    OFF = "off"
    DETECT = "detect"
    DETECT_REEXECUTE = "detect-reexecute"
    DETECT_CORRECT = "detect-correct"

    @classmethod
    def parse(cls, text: "str | IntegrityPolicy") -> "IntegrityPolicy":
        """Accept a policy or its CLI spelling (case-insensitive,
        ``_``/``-`` interchangeable)."""
        if isinstance(text, cls):
            return text
        normalized = str(text).strip().lower().replace("_", "-")
        for member in cls:
            if member.value == normalized:
                return member
        choices = ", ".join(m.value for m in cls)
        raise IntegrityError(
            f"unknown integrity policy {text!r} (choose from: {choices})"
        )

    @property
    def detects(self) -> bool:
        """Checksums are computed and verified."""
        return self is not IntegrityPolicy.OFF

    @property
    def reexecutes(self) -> bool:
        """A detected-uncorrectable result is retried, not just dropped."""
        return self in (
            IntegrityPolicy.DETECT_REEXECUTE, IntegrityPolicy.DETECT_CORRECT,
        )

    @property
    def corrects(self) -> bool:
        """Localizable single-element corruptions are repaired in place."""
        return self is IntegrityPolicy.DETECT_CORRECT
