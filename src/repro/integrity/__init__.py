"""repro.integrity: ABFT checksums, SDC injection, and recovery policy.

The overlay's fault layer (:mod:`repro.faults`) models *when* upsets
strike; this package closes the loop on *what they do to the numbers*:

* :mod:`~repro.integrity.abft` — checksum-protected golden kernels that
  detect, localize, and (when unambiguous) correct single-element
  corruptions under the overlay's 48-bit wrap arithmetic.
* :mod:`~repro.integrity.inject` — maps fault events and campaign draws
  onto concrete bit-flips in stored operands and accumulators.
* :mod:`~repro.integrity.policy` — the serving-side escalation ladder
  (off / detect / detect+re-execute / detect+correct).
* :mod:`~repro.integrity.campaign` — seeded injection campaigns with
  exact outcome accounting.
"""

from repro.integrity.abft import (
    AbftResult,
    abft_conv2d_int16,
    abft_layer_output,
    abft_matmul_int16,
)
from repro.integrity.campaign import SdcCampaignReport, run_sdc_campaign
from repro.integrity.inject import (
    SITES,
    BitFlip,
    draw_layer_flips,
    flip_from_event,
    flips_from_schedule,
    operand_sizes,
    split_flips,
)
from repro.integrity.policy import IntegrityPolicy

__all__ = [
    "AbftResult",
    "BitFlip",
    "IntegrityPolicy",
    "SITES",
    "SdcCampaignReport",
    "abft_conv2d_int16",
    "abft_layer_output",
    "abft_matmul_int16",
    "draw_layer_flips",
    "flip_from_event",
    "flips_from_schedule",
    "operand_sizes",
    "run_sdc_campaign",
    "split_flips",
]
