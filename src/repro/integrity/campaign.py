"""Seeded SDC injection campaigns over the ABFT-protected kernels.

A campaign is the integrity analogue of the chaos harness: inject a
known population of single bit-flips into a layer's weights,
activations, and accumulators, run the ABFT kernel on every corrupted
execution, and account for exactly what happened to each flip —
detected, corrected, re-executed, missed, or benign.  Everything is
seeded, so a campaign is a pure function of ``(layer, policy, trials,
seed)`` and its report diffs cleanly against a golden file.

Ground truth per trial comes from the *unprotected* functional path:
:func:`~repro.sim.functional.corrupted_layer_output` under the same
flip tells us whether the upset actually changed the result (a flip
into an operand that multiplies only zeros is *benign* — invisible mod
2**48 — and no checksum can or should fire on it).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

import numpy as np

from repro.errors import FaultError
from repro.integrity.abft import abft_layer_output
from repro.integrity.inject import SITES, draw_layer_flips, split_flips
from repro.integrity.policy import IntegrityPolicy
from repro.sim.functional import (
    corrupted_layer_output,
    golden_layer_output,
    random_layer_operands,
)
from repro.trace.metrics import MetricsRegistry, as_metrics
from repro.workloads.layers import ConvLayer, MatMulLayer


@dataclass(frozen=True)
class SdcCampaignReport:
    """Outcome accounting of one injection campaign.

    Counter identities (checked by the test suite):

    * ``n_injected == n_benign + n_corrupting``
    * ``n_corrupting == n_detected + n_missed``
    * ``n_detected == n_corrected + n_reexecuted + n_dropped`` (for the
      detecting policies; under ``OFF`` nothing is detected)
    * ``n_served_corrupt`` — corrupted results that reached the caller;
      the whole point is driving this to zero.

    Attributes:
        layer: Layer name the campaign ran on.
        policy: Integrity policy exercised.
        seed: Campaign seed.
        n_injected: Bit-flips injected (one per trial).
        n_benign: Flips the unprotected golden path proves harmless.
        n_corrupting: Flips that changed the unprotected result.
        n_detected: Corrupting flips flagged by a checksum syndrome.
        n_missed: Corrupting flips no syndrome fired on (must be 0).
        n_corrected: Detections repaired in place from the syndromes.
        n_reexecuted: Detections recovered by re-running the layer.
        n_dropped: Detections surfaced as errors (policy without a
            recovery path).
        n_served_corrupt: Final outputs that differ from the fault-free
            golden result.
        n_false_alarms: Benign flips that still raised a syndrome
            (possible when a flip changes stored words without changing
            the wrapped data region).
        by_site: Injected-flip count per site class.
        detected_by_site: Detected-corruption count per site class.
    """

    layer: str
    policy: IntegrityPolicy
    seed: int
    n_injected: int
    n_benign: int
    n_corrupting: int
    n_detected: int
    n_missed: int
    n_corrected: int
    n_reexecuted: int
    n_dropped: int
    n_served_corrupt: int
    n_false_alarms: int
    by_site: dict[str, int] = field(default_factory=dict)
    detected_by_site: dict[str, int] = field(default_factory=dict)

    @property
    def detection_rate(self) -> float:
        """Detected fraction of corrupting flips (1.0 when none)."""
        if self.n_corrupting == 0:
            return 1.0
        return self.n_detected / self.n_corrupting

    def describe(self) -> str:
        lines = [
            f"SDC campaign on {self.layer!r} "
            f"(policy={self.policy.value}, seed={self.seed}):",
            f"  injected {self.n_injected} flips: "
            f"{self.n_corrupting} corrupting, {self.n_benign} benign",
            f"  detection {self.n_detected}/{self.n_corrupting} "
            f"({self.detection_rate:.1%}), {self.n_missed} missed",
            f"  recovery: {self.n_corrected} corrected in place, "
            f"{self.n_reexecuted} re-executed, {self.n_dropped} dropped",
            f"  served corrupt: {self.n_served_corrupt}; "
            f"false alarms: {self.n_false_alarms}",
        ]
        sites = ", ".join(
            f"{site}={self.by_site.get(site, 0)}"
            f"/{self.detected_by_site.get(site, 0)}det"
            for site in SITES
        )
        lines.append(f"  by site (injected/detected): {sites}")
        return "\n".join(lines)


def run_sdc_campaign(
    layer: ConvLayer | MatMulLayer,
    *,
    policy: "IntegrityPolicy | str" = IntegrityPolicy.DETECT_CORRECT,
    trials: int = 200,
    seed: int = 0,
    site: str | None = None,
    magnitude: int = 127,
    metrics: MetricsRegistry | None = None,
) -> SdcCampaignReport:
    """Inject ``trials`` seeded single bit-flips and account for each.

    Every trial draws fresh operands and one flip, establishes ground
    truth on the unprotected kernel, then plays the flip through the
    ABFT kernel under ``policy``.  The ABFT data region is also
    cross-checked against the unprotected corrupted output bit for bit
    (before any correction), tying the two injection paths together.

    Args:
        layer: CONV or MM layer to strike.
        policy: Integrity policy (or its CLI spelling).
        trials: Flips to inject (one per trial).
        seed: Seeds both the operand draws and the flip draws.
        site: Restrict strikes to one site class (``"weight"`` /
            ``"act"`` / ``"psum"``); ``None`` distributes by bit count.
        magnitude: Operand magnitude bound for the random draws.
        metrics: Optional registry; receives ``sdc_injected`` /
            ``sdc_detected`` / ``sdc_recovered`` counters.

    Raises:
        FaultError: for a non-positive trial count.
    """
    policy = IntegrityPolicy.parse(policy)
    if trials < 1:
        raise FaultError(f"campaign needs trials >= 1, got {trials}")
    np_rng = np.random.default_rng(seed)
    flip_rng = random.Random(seed)
    registry = as_metrics(metrics)

    n_benign = n_corrupting = n_detected = n_missed = 0
    n_corrected = n_reexecuted = n_dropped = n_served_corrupt = 0
    n_false_alarms = 0
    by_site: dict[str, int] = {s: 0 for s in SITES}
    detected_by_site: dict[str, int] = {s: 0 for s in SITES}

    for _ in range(trials):
        weights, acts = random_layer_operands(layer, np_rng, magnitude)
        flip = draw_layer_flips(layer, flip_rng, site=site)
        by_site[flip.site] += 1
        w_flips, a_flips, p_flips = split_flips((flip,))

        golden = golden_layer_output(layer, weights, acts)
        corrupted = corrupted_layer_output(
            layer, weights, acts,
            weight_flips=w_flips, act_flips=a_flips, psum_flips=p_flips,
        )
        corrupting = bool(np.any(corrupted != golden))
        if corrupting:
            n_corrupting += 1
        else:
            n_benign += 1

        if not policy.detects:
            # Unprotected datapath: whatever the flip produced is served.
            if corrupting:
                n_served_corrupt += 1
            continue

        result = abft_layer_output(
            layer, weights, acts,
            weight_flips=w_flips, act_flips=a_flips, psum_flips=p_flips,
        )
        if not result.corrected and np.any(result.output != corrupted):
            raise FaultError(
                f"ABFT data region diverged from the unprotected corrupted "
                f"output on layer {layer.name!r} ({flip.site} flip)"
            )

        if corrupting and result.detected:
            n_detected += 1
            detected_by_site[flip.site] += 1
        elif corrupting:
            n_missed += 1
        elif result.detected:
            n_false_alarms += 1

        if result.detected:
            if policy.corrects and result.corrected:
                n_corrected += 1
                served = result.output
            elif policy.reexecutes:
                n_reexecuted += 1
                served = golden_layer_output(layer, weights, acts)
            else:
                n_dropped += 1
                served = None
        else:
            served = result.output
        if served is not None and np.any(served != golden):
            n_served_corrupt += 1

    if registry.enabled:
        labels = {"layer": layer.name, "policy": policy.value}
        registry.counter("sdc_injected", "bit-flips injected").inc(
            trials, **labels)
        registry.counter("sdc_detected", "corruptions detected").inc(
            n_detected, **labels)
        registry.counter("sdc_recovered", "corrected + re-executed").inc(
            n_corrected + n_reexecuted, **labels)

    return SdcCampaignReport(
        layer=layer.name,
        policy=policy,
        seed=seed,
        n_injected=trials,
        n_benign=n_benign,
        n_corrupting=n_corrupting,
        n_detected=n_detected,
        n_missed=n_missed,
        n_corrected=n_corrected,
        n_reexecuted=n_reexecuted,
        n_dropped=n_dropped,
        n_served_corrupt=n_served_corrupt,
        n_false_alarms=n_false_alarms,
        by_site=by_site,
        detected_by_site=detected_by_site,
    )
