"""ABFT-protected golden kernels: checksum GEMM under wrap48.

Algorithm-based fault tolerance (Huang & Abraham) fits the FTDL overlay
exactly because every accelerated layer is a tiled GEMM: augment the
weight matrix with one checksum row (column sums) and the activation
matrix with one checksum column (row sums), run the *same* int16 MACC /
48-bit-wrap datapath over the encoded operands, and every output
inherits two independent parities.  Because ``wrap48`` is congruence
mod 2**48 and the checksum identities are linear, they hold **exactly**
under the overlay's wrapping arithmetic — there is no floating-point
tolerance to tune, a syndrome is either zero or a real corruption.

Encode-then-corrupt ordering defines the threat model: checksums are
computed from the clean operands (the host encodes weights at deploy
time and activations before the DRAM round-trip), then faults strike
the stored words or the accumulators.  The syndrome algebra then
separates the three corruption classes:

==================  =======================  ==========================
corruption          syndrome signature       recovery
==================  =======================  ==========================
psum (one element)  one row + one col, with  correct in place
                    equal deltas             (delta is the syndrome)
weight word         columns fire, rows       detect; re-execute
                    silent                   (whole row corrupted)
activation word     rows fire, columns       detect; re-execute
                    silent                   (whole column corrupted)
==================  =======================  ==========================

Only the unambiguous single-element signature is ever corrected; every
other non-clean signature is reported uncorrectable so an operand
corruption that happens to collapse onto few syndromes (e.g. a weight
flip whose row of activations is mostly zero) can never be
mis-corrected.  CONV layers reduce to the same machinery through an
exact im2col per channel group, so the data region matches
:func:`repro.sim.functional.conv2d_int16` bit for bit.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import IntegrityError, SimulationError
from repro.fixedpoint import flip_int16_bit, flip_wrap48_bit, to_int16, wrap48
from repro.workloads.layers import ConvLayer, MatMulLayer

#: ``(flat_index, bit)`` pairs, matching repro.sim.functional's injection.
FlipSpec = tuple[tuple[int, int], ...]


@dataclass(frozen=True)
class AbftResult:
    """Outcome of one ABFT-protected layer execution.

    Attributes:
        output: Data output (checksums stripped), in the layer's output
            shape, *after* any in-place correction.
        detected: At least one checksum syndrome was non-zero.
        corrected: Every non-zero syndrome was localized to a single
            output element and repaired; the output equals the
            fault-free golden result.
        n_row_syndromes / n_col_syndromes: Non-zero row/column syndrome
            counts summed over channel groups — the signature the
            corruption class is read from.
        corrected_at: Output coordinates repaired, in the layer's
            output indexing (``(n, p)`` for MM, ``(m, oh, ow)`` for
            CONV).
        data_maccs: MACCs spent on the data region (the unprotected
            kernel's work).
        checksum_maccs: Extra MACCs spent computing checksum rows,
            columns, and cross-checks — the measured ABFT overhead that
            must agree with the compiler model's checksum-work term.
    """

    output: np.ndarray
    detected: bool
    corrected: bool
    n_row_syndromes: int
    n_col_syndromes: int
    corrected_at: tuple[tuple[int, ...], ...]
    data_maccs: int
    checksum_maccs: int

    @property
    def clean(self) -> bool:
        return not self.detected

    @property
    def overhead_fraction(self) -> float:
        """Measured checksum work as a fraction of the data work."""
        return self.checksum_maccs / self.data_maccs

    def output_or_raise(self) -> np.ndarray:
        """The verified output, or :class:`IntegrityError` when the
        corruption was detected but not correctable (the caller must
        re-execute on a healthy replica)."""
        if self.detected and not self.corrected:
            raise IntegrityError(
                f"ABFT checksum mismatch: {self.n_row_syndromes} row / "
                f"{self.n_col_syndromes} column syndromes, not localizable "
                f"to a single element",
                detected=self.n_row_syndromes + self.n_col_syndromes,
            )
        return self.output


@dataclass
class _GemmCheck:
    """Syndrome outcome of one encoded GEMM (one channel group)."""

    data: np.ndarray                      # wrapped (rows, cols), corrected
    rows: list[int]                       # non-zero row-syndrome indices
    cols: list[int]                       # non-zero col-syndrome indices
    total_bad: bool                       # cross-check syndrome non-zero
    corrected_at: list[tuple[int, int]]   # repaired (row, col) cells

    @property
    def detected(self) -> bool:
        return bool(
            self.rows or self.cols or self.total_bad or self.corrected_at
        )

    @property
    def corrected(self) -> bool:
        return self.detected and not self.rows and not self.cols \
            and not self.total_bad


def _checked_gemm(
    w16: np.ndarray,
    a16: np.ndarray,
    col_check: np.ndarray,
    row_check: np.ndarray,
    psum_flips: list[tuple[int, int, int]],
) -> _GemmCheck:
    """Run one encoded GEMM and resolve its syndromes.

    ``w16``/``a16`` are the (possibly corrupted) stored operands;
    ``col_check``/``row_check`` the clean-encoded checksum vectors.
    ``psum_flips`` are ``(row, col, bit)`` strikes on the wrapped data
    accumulators.  int64 overflow anywhere is harmless: every quantity
    is only ever compared mod 2**48, and int64 wraps mod 2**64, a
    multiple of it.
    """
    w64 = w16.astype(np.int64)
    a64 = a16.astype(np.int64)
    data = wrap48(w64 @ a64)                    # (rows, cols)
    check_row = wrap48(col_check @ a64)         # column parities (cols,)
    check_col = wrap48(w64 @ row_check)         # row parities (rows,)
    check_total = wrap48(int(col_check @ row_check))
    for row, col, bit in psum_flips:
        data = flip_wrap48_bit(data, row * data.shape[1] + col, bit)

    row_syn = wrap48(data.sum(axis=1) - check_col)
    col_syn = wrap48(data.sum(axis=0) - check_row)
    total_syn = wrap48(int(check_col.sum()) - int(check_total))
    rows = [int(i) for i in np.nonzero(row_syn)[0]]
    cols = [int(i) for i in np.nonzero(col_syn)[0]]

    corrected_at: list[tuple[int, int]] = []
    if len(rows) == 1 and len(cols) == 1 and total_syn == 0:
        r, c = rows[0], cols[0]
        delta = int(row_syn[r])
        if wrap48(delta - int(col_syn[c])) == 0:
            # Unambiguous single-element signature: only a psum strike
            # at (r, c) produces equal row/column deltas — operand
            # corruption leaves one syndrome family silent.
            data[r, c] = wrap48(int(data[r, c]) - delta)
            corrected_at.append((r, c))
            rows, cols = [], []
    return _GemmCheck(
        data=data, rows=rows, cols=cols,
        total_bad=bool(total_syn != 0), corrected_at=corrected_at,
    )


def _check_flips(name: str, flips, size: int, bits: int) -> None:
    for index, bit in flips:
        if not 0 <= index < size:
            raise IntegrityError(
                f"{name} flip index {index} out of range for {size} words"
            )
        if not 0 <= bit < bits:
            raise IntegrityError(
                f"{name} flip bit {bit} out of range [0, {bits})"
            )


def abft_matmul_int16(
    weights: np.ndarray,
    acts: np.ndarray,
    *,
    weight_flips: FlipSpec = (),
    act_flips: FlipSpec = (),
    psum_flips: FlipSpec = (),
) -> AbftResult:
    """ABFT-protected MM: :func:`~repro.sim.functional.matmul_int16`
    with one checksum row/column and syndrome-based recovery.

    The flip arguments inject SDC after encoding: ``weight_flips`` /
    ``act_flips`` strike stored int16 words, ``psum_flips`` strike the
    wrapped 48-bit data accumulators (flat over the ``(N, P)`` output).
    With no flips the data output equals the golden kernel bit for bit.
    """
    weights = np.asarray(weights)
    acts = np.asarray(acts)
    if weights.ndim != 2 or acts.ndim != 2:
        raise SimulationError("matmul operands must be 2-D")
    if weights.shape[1] != acts.shape[0]:
        raise SimulationError(
            f"shape mismatch: W{weights.shape} @ act{acts.shape}"
        )
    n, m = weights.shape
    p = acts.shape[1]
    w16 = to_int16(weights)
    a16 = to_int16(acts)
    _check_flips("weight", weight_flips, w16.size, 16)
    _check_flips("act", act_flips, a16.size, 16)
    _check_flips("psum", psum_flips, n * p, 48)

    # Encode from the clean operands, then corrupt the stored words.
    col_check = w16.sum(axis=0, dtype=np.int64)
    row_check = a16.sum(axis=1, dtype=np.int64)
    for index, bit in weight_flips:
        w16 = flip_int16_bit(w16, index, bit)
    for index, bit in act_flips:
        a16 = flip_int16_bit(a16, index, bit)

    check = _checked_gemm(
        w16, a16, col_check, row_check,
        [(index // p, index % p, bit) for index, bit in psum_flips],
    )
    return AbftResult(
        output=check.data,
        detected=check.detected,
        corrected=check.corrected,
        n_row_syndromes=len(check.rows),
        n_col_syndromes=len(check.cols),
        corrected_at=tuple(check.corrected_at),
        data_maccs=n * m * p,
        # One checksum-row pass (m*p), one checksum-column pass (n*m),
        # and the cross-check (m) — the compiler model's m*(n + p + 1).
        checksum_maccs=m * p + n * m + m,
    )


def _im2col(
    acts64: np.ndarray, r: int, s: int, stride: int, padding: int,
    oh: int, ow: int,
) -> np.ndarray:
    """Exact im2col: rows ordered (channel, dr, ds) to match the C-order
    flattening of a ``(M, N, R, S)`` weight tensor."""
    n_ch, ih, iw = acts64.shape
    padded = np.zeros(
        (n_ch, ih + 2 * padding, iw + 2 * padding), dtype=np.int64
    )
    padded[:, padding:padding + ih, padding:padding + iw] = acts64
    mat = np.empty((n_ch * r * s, oh * ow), dtype=np.int64)
    for dr in range(r):
        for ds in range(s):
            window = padded[
                :, dr:dr + stride * oh:stride, ds:ds + stride * ow:stride,
            ].reshape(n_ch, -1)
            mat[dr * s + ds::r * s] = window
    return mat


def abft_conv2d_int16(
    weights: np.ndarray,
    acts: np.ndarray,
    stride: int = 1,
    padding: int = 0,
    groups: int = 1,
    *,
    weight_flips: FlipSpec = (),
    act_flips: FlipSpec = (),
    psum_flips: FlipSpec = (),
) -> AbftResult:
    """ABFT-protected CONV via exact per-group im2col GEMMs.

    Flip indices address the *stored* tensors — flat over the
    ``(M, N/g, R, S)`` weights, the ``(N, IH, IW)`` activations, and the
    ``(M, OH, OW)`` output accumulators — so one DRAM activation word
    that feeds several sliding windows corrupts several GEMM columns,
    exactly as it would on hardware (detected, never mis-corrected).
    """
    weights = np.asarray(weights)
    acts = np.asarray(acts)
    if weights.ndim != 4 or acts.ndim != 3:
        raise SimulationError("conv expects W(M,N/g,R,S) and act(N,IH,IW)")
    m, n_g, r, s = weights.shape
    n_a, ih, iw = acts.shape
    if m % groups or n_a % groups or n_g != n_a // groups:
        raise SimulationError(
            f"group mismatch: W{weights.shape}, act{acts.shape}, "
            f"groups={groups}"
        )
    oh = (ih + 2 * padding - r) // stride + 1
    ow = (iw + 2 * padding - s) // stride + 1
    if oh < 1 or ow < 1:
        raise SimulationError("convolution output is empty")
    w16 = to_int16(weights)
    a16 = to_int16(acts)
    _check_flips("weight", weight_flips, w16.size, 16)
    _check_flips("act", act_flips, a16.size, 16)
    _check_flips("psum", psum_flips, m * oh * ow, 48)

    m_g = m // groups
    k = n_g * r * s
    cols = oh * ow
    # Encode every group from the clean operands first.
    w_mats = [
        w16[g * m_g:(g + 1) * m_g].reshape(m_g, k).astype(np.int64)
        for g in range(groups)
    ]
    col_checks = [wm.sum(axis=0) for wm in w_mats]
    row_checks = [
        _im2col(
            a16[g * n_g:(g + 1) * n_g].astype(np.int64),
            r, s, stride, padding, oh, ow,
        ).sum(axis=1)
        for g in range(groups)
    ]
    # Corrupt the stored words, then rebuild what the hardware reads.
    for index, bit in weight_flips:
        w16 = flip_int16_bit(w16, index, bit)
    for index, bit in act_flips:
        a16 = flip_int16_bit(a16, index, bit)

    group_psums: list[list[tuple[int, int, int]]] = [[] for _ in range(groups)]
    for index, bit in psum_flips:
        ch, rest = divmod(index, cols)
        group_psums[ch // m_g].append((ch % m_g, rest, bit))

    out = np.empty((m, oh, ow), dtype=np.int64)
    detected = False
    uncorrected = False
    n_rows = n_cols = 0
    corrected_at: list[tuple[int, ...]] = []
    data_maccs = 0
    checksum_maccs = 0
    for g in range(groups):
        wm = w16[g * m_g:(g + 1) * m_g].reshape(m_g, k)
        am = _im2col(
            a16[g * n_g:(g + 1) * n_g].astype(np.int64),
            r, s, stride, padding, oh, ow,
        ).astype(np.int16, copy=False)
        check = _checked_gemm(
            wm, am.astype(np.int64), col_checks[g], row_checks[g],
            group_psums[g],
        )
        out[g * m_g:(g + 1) * m_g] = check.data.reshape(m_g, oh, ow)
        detected = detected or check.detected
        uncorrected = uncorrected or (check.detected and not check.corrected)
        n_rows += len(check.rows)
        n_cols += len(check.cols)
        corrected_at += [
            (g * m_g + row, col // ow, col % ow)
            for row, col in check.corrected_at
        ]
        data_maccs += m_g * k * cols
        checksum_maccs += k * cols + m_g * k + k
    return AbftResult(
        output=out,
        detected=detected,
        corrected=detected and not uncorrected,
        n_row_syndromes=n_rows,
        n_col_syndromes=n_cols,
        corrected_at=tuple(corrected_at),
        data_maccs=data_maccs,
        checksum_maccs=checksum_maccs,
    )


def abft_layer_output(
    layer: ConvLayer | MatMulLayer,
    weights: np.ndarray,
    acts: np.ndarray,
    *,
    weight_flips: FlipSpec = (),
    act_flips: FlipSpec = (),
    psum_flips: FlipSpec = (),
) -> AbftResult:
    """ABFT dispatch matching :func:`~repro.sim.functional
    .golden_layer_output`, with the same shape validation."""
    weights = to_int16(weights)
    acts = to_int16(acts)
    if isinstance(layer, ConvLayer):
        expected_w = (
            layer.out_channels, layer.group_in_channels,
            layer.kernel_h, layer.kernel_w,
        )
        expected_a = (layer.in_channels, layer.in_h, layer.in_w)
        if weights.shape != expected_w or acts.shape != expected_a:
            raise SimulationError(
                f"layer {layer.name!r} expects W{expected_w}/act{expected_a}, "
                f"got W{weights.shape}/act{acts.shape}"
            )
        return abft_conv2d_int16(
            weights, acts, layer.stride, layer.padding, layer.groups,
            weight_flips=weight_flips, act_flips=act_flips,
            psum_flips=psum_flips,
        )
    if isinstance(layer, MatMulLayer):
        expected_w = (layer.out_features, layer.in_features)
        expected_a = (layer.in_features, layer.batch)
        if weights.shape != expected_w or acts.shape != expected_a:
            raise SimulationError(
                f"layer {layer.name!r} expects W{expected_w}/act{expected_a}, "
                f"got W{weights.shape}/act{acts.shape}"
            )
        return abft_matmul_int16(
            weights, acts,
            weight_flips=weight_flips, act_flips=act_flips,
            psum_flips=psum_flips,
        )
    raise SimulationError(f"no ABFT model for layer kind {layer.kind}")
