"""Mapping fault events onto concrete bit-flips in layer operands.

The fault taxonomy says *when and where in the fleet* an upset strikes;
this module decides *which stored bit* it lands in, so the functional
simulation can actually corrupt data instead of abstractly poisoning a
batch.  Two sources feed it:

* :func:`flips_from_schedule` — the SDC events of a
  :class:`~repro.faults.schedule.FaultSchedule` (uncorrectable DRAM
  upsets and transient TPE faults) become operand / accumulator flips.
  A :class:`~repro.faults.events.DramBitFlip` with a ``word_addr`` is
  pinned to that word of the weights-then-activations operand space;
  anything left open is resolved by a seeded draw, so a schedule maps
  to the same flips every time.
* :func:`draw_layer_flips` — campaign-style uniform sampling over a
  chosen site class, for sweeps that want coverage rather than a
  fleet timeline.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.errors import FaultError
from repro.faults.events import DramBitFlip, FaultEvent, TPEFault
from repro.faults.schedule import FaultSchedule
from repro.workloads.layers import ConvLayer, MatMulLayer

#: Site classes a flip can strike.
SITES = ("weight", "act", "psum")


@dataclass(frozen=True)
class BitFlip:
    """One bit-flip at a named site of a layer's execution.

    Attributes:
        site: ``"weight"`` / ``"act"`` (stored int16 operand words) or
            ``"psum"`` (a wrapped 48-bit output accumulator).
        index: Flat index into the struck tensor.
        bit: Bit position — [0, 16) for operands, [0, 48) for psums.
    """

    site: str
    index: int
    bit: int

    def __post_init__(self) -> None:
        if self.site not in SITES:
            raise FaultError(f"unknown flip site {self.site!r}")
        bits = 48 if self.site == "psum" else 16
        if not 0 <= self.bit < bits:
            raise FaultError(
                f"{self.site} flip bit {self.bit} out of range [0, {bits})"
            )
        if self.index < 0:
            raise FaultError(f"flip index must be >= 0, got {self.index}")


def operand_sizes(layer: ConvLayer | MatMulLayer) -> tuple[int, int, int]:
    """(weight words, activation words, output accumulators) of a layer."""
    if isinstance(layer, ConvLayer):
        return (
            layer.out_channels * layer.group_in_channels
            * layer.kernel_h * layer.kernel_w,
            layer.in_channels * layer.in_h * layer.in_w,
            layer.out_channels * layer.out_h * layer.out_w,
        )
    if isinstance(layer, MatMulLayer):
        return (
            layer.out_features * layer.in_features,
            layer.in_features * layer.batch,
            layer.out_features * layer.batch,
        )
    raise FaultError(f"no operand map for layer kind {layer.kind}")


def split_flips(
    flips: "tuple[BitFlip, ...] | list[BitFlip]",
) -> tuple[
    tuple[tuple[int, int], ...],
    tuple[tuple[int, int], ...],
    tuple[tuple[int, int], ...],
]:
    """Split into the ``(weight_flips, act_flips, psum_flips)`` tuples
    the functional kernels take."""
    weight = tuple((f.index, f.bit) for f in flips if f.site == "weight")
    act = tuple((f.index, f.bit) for f in flips if f.site == "act")
    psum = tuple((f.index, f.bit) for f in flips if f.site == "psum")
    return weight, act, psum


def draw_layer_flips(
    layer: ConvLayer | MatMulLayer,
    rng: random.Random,
    *,
    site: str | None = None,
) -> BitFlip:
    """Draw one uniform bit-flip over a layer's fault sites.

    With ``site=None`` the site class is chosen proportionally to its
    bit count, so a campaign's strikes land where the bits actually
    are — exactly how a uniform physical upset would distribute.
    """
    w_words, a_words, p_words = operand_sizes(layer)
    if site is None:
        w_bits = w_words * 16
        a_bits = a_words * 16
        p_bits = p_words * 48
        pick = rng.randrange(w_bits + a_bits + p_bits)
        if pick < w_bits:
            site = "weight"
        elif pick < w_bits + a_bits:
            site = "act"
        else:
            site = "psum"
    if site == "weight":
        return BitFlip("weight", rng.randrange(w_words), rng.randrange(16))
    if site == "act":
        return BitFlip("act", rng.randrange(a_words), rng.randrange(16))
    if site == "psum":
        return BitFlip("psum", rng.randrange(p_words), rng.randrange(48))
    raise FaultError(f"unknown flip site {site!r}")


def flip_from_event(
    event: FaultEvent,
    layer: ConvLayer | MatMulLayer,
    rng: random.Random,
) -> BitFlip | None:
    """The bit-flip one SDC-capable fault event inflicts on ``layer``.

    * An uncorrectable :class:`DramBitFlip` strikes a stored operand
      word.  Its ``word_addr`` (taken modulo the layer's operand space,
      weights first, activations after) pins the word; without one the
      word is drawn seeded.  The bit within the word is always drawn.
    * A transient (``stuck=False``) :class:`TPEFault` strikes one
      output accumulator — an SEU in a DSP cascade corrupts the partial
      sum it was carrying.
    * Everything else (correctable flips, stuck faults, crashes, …)
      causes no silent corruption and maps to ``None``.
    """
    w_words, a_words, _ = operand_sizes(layer)
    if isinstance(event, DramBitFlip) and not event.correctable:
        if event.word_addr is not None:
            addr = event.word_addr % (w_words + a_words)
        else:
            addr = rng.randrange(w_words + a_words)
        bit = rng.randrange(16)
        if addr < w_words:
            return BitFlip("weight", addr, bit)
        return BitFlip("act", addr - w_words, bit)
    if isinstance(event, TPEFault) and not event.stuck:
        _, _, p_words = operand_sizes(layer)
        return BitFlip("psum", rng.randrange(p_words), rng.randrange(48))
    return None


def flips_from_schedule(
    schedule: FaultSchedule,
    layer: ConvLayer | MatMulLayer,
    *,
    seed: int,
    replica: str | None = None,
) -> tuple[BitFlip, ...]:
    """Resolve every SDC-capable event of a schedule to a concrete flip.

    Events are walked in schedule (time) order with one seeded RNG, so
    the same ``(schedule, layer, seed)`` always yields the same flips.
    ``replica`` restricts to one replica's events.
    """
    rng = random.Random(seed)
    flips = []
    for event in schedule.events:
        if replica is not None and event.replica != replica:
            continue
        flip = flip_from_event(event, layer, rng)
        if flip is not None:
            flips.append(flip)
    return tuple(flips)
