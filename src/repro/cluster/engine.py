"""Fleet-scale event loop: failure domains, self-healing, autoscaling.

:class:`ClusterEngine` is the fleet analogue of
:class:`~repro.serving.engine.ServingEngine` — the same discrete-event
loop over the same virtual clock, with four additions:

* **Failure domains** — the fault schedule may carry the correlated
  domain events of :mod:`repro.cluster.events` (rack power loss,
  network partition, correlated DRAM) alongside the per-board taxonomy;
  each fans out deterministically to the rack's member boards.
* **Self-healing routing** — the :class:`~repro.cluster.router.
  ClusterRouter` drains a board the instant any gate closes and
  re-admits it when the gate reopens; retried requests are *hedged*
  away from the board that just failed them when an alternative is
  free.
* **Autoscaling** — an optional :class:`~repro.cluster.autoscale.
  Autoscaler` ticks on the virtual clock, reading the fleet gauges the
  engine publishes into a :class:`MetricsRegistry`; activated boards
  pay the compiled-schedule weight-reload cold start before serving.
* **Tenancy** — arrivals carry a tenant; admission enforces per-tenant
  quotas on top of the global bound and batch formation is fair-share
  (stride) scheduled.  Accounting is conserved *per tenant*:
  ``offered == completed + rejected + dropped`` under any fault mix.

The loop body mirrors :class:`ServingEngine` statement for statement
wherever the two overlap, and every extension is gated on its feature
being exercised — so a degenerate cluster (one tenant, no autoscaler,
hedging off, board names matching the replica names, no domain events)
reproduces the single-engine run **bit for bit**, integrity policies
and all.  That equivalence is what lets the existing chaos and
integrity layers compose with the fleet unchanged, and it is enforced
by tests.
"""

from __future__ import annotations

import heapq
import itertools
import math
from collections import deque
from typing import Sequence

from repro.cluster.autoscale import (
    GAUGE_ACTIVE,
    GAUGE_P99_S,
    GAUGE_QUEUE_DEPTH,
    GAUGE_ROUTABLE,
    GAUGE_UTILIZATION,
    AutoscalePolicy,
    Autoscaler,
)
from repro.cluster.events import (
    CorrelatedDramFault,
    NetworkHeal,
    NetworkPartition,
    RackPowerLoss,
    RackPowerRestore,
)
from repro.cluster.report import ClusterReport, TenantStats
from repro.cluster.router import BoardState, ClusterRouter
from repro.cluster.service import FleetPipelineService, FleetService
from repro.cluster.tenancy import TenantPolicy, TenantQueueSet
from repro.cluster.topology import FleetTopology
from repro.errors import FaultError, ScheduleError, ServingError
from repro.faults.events import (
    DramBitFlip,
    FaultEvent,
    LinkFault,
    ReplicaCrash,
    ReplicaRecovery,
    ReplicaSlowdown,
    TPEFault,
)
from repro.faults.monitor import HealthMonitor
from repro.faults.schedule import FaultSchedule
from repro.integrity.policy import IntegrityPolicy
from repro.serving.admission import AdmissionController, AdmissionPolicy
from repro.serving.batcher import BatchPolicy
from repro.serving.engine import (
    DROP_DEADLINE,
    DROP_NO_REPLICA,
    DROP_RETRY_EXHAUSTED,
    DROP_SDC,
    trace_retired_batch,
)
from repro.serving.metrics import ServingReport, percentile
from repro.serving.request import InferenceRequest, RetryPolicy
from repro.serving.scheduler import Dispatch
from repro.trace.metrics import MetricsRegistry, as_metrics
from repro.trace.span import Tracer, as_tracer


class ClusterEngine:
    """Serve one arrival trace through a rack/board fleet.

    Args:
        service: A :class:`~repro.cluster.service.FleetService` or
            :class:`~repro.cluster.service.FleetPipelineService` (any
            service exposing ``topology`` and ``cold_start_s`` whose
            replica names are the topology's board names).
        batch_policy: Dynamic-batching knobs (fleet-wide).
        admission_policy: Global queue bound and degradation knobs.
        slo_s: Latency objective for violation accounting.
        fault_schedule: Deterministic fault events — the per-board
            taxonomy plus the correlated domain events of
            :mod:`repro.cluster.events`; merge independent schedules
            with :meth:`FaultSchedule.merge`.
        retry_policy: Backoff/attempt budget for fault retries.
        integrity_policy: ABFT handling of silent corruption; semantics
            identical to the single engine's.
        tenant_policy: Fair-share weights and per-tenant quotas.
        autoscale_policy: Enables the gauge-driven autoscaler; ``None``
            serves from the full fleet throughout.
        hedge_retries: Steer a retried request away from the board that
            failed it when any alternative board is free.
        tracer: Optional tracer; fleet transitions land as
            ``cluster.*`` instants alongside the engine's usual spans.
        metrics: Optional registry; receives the ``cluster_*`` gauges
            and counters (the autoscaler reads the gauges back).
    """

    def __init__(
        self,
        service: FleetService | FleetPipelineService,
        batch_policy: BatchPolicy | None = None,
        admission_policy: AdmissionPolicy | None = None,
        slo_s: float = 10e-3,
        fault_schedule: FaultSchedule | None = None,
        retry_policy: RetryPolicy | None = None,
        integrity_policy: "IntegrityPolicy | str" = IntegrityPolicy.OFF,
        tenant_policy: TenantPolicy | None = None,
        autoscale_policy: AutoscalePolicy | None = None,
        hedge_retries: bool = True,
        tracer: Tracer | None = None,
        metrics: MetricsRegistry | None = None,
    ):
        if slo_s <= 0:
            raise ServingError(f"slo_s must be positive, got {slo_s}")
        topology = getattr(service, "topology", None)
        if not isinstance(topology, FleetTopology):
            raise ServingError(
                "cluster engine needs a fleet service (with a topology); "
                f"got {type(service).__name__}"
            )
        if service.replica_names() != list(topology.board_names):
            raise ServingError(
                "service replica names do not match the fleet topology"
            )
        self.service = service
        self.topology = topology
        self.cold_start_s = float(getattr(service, "cold_start_s", 0.0))
        self.batch_policy = batch_policy or BatchPolicy()
        self.admission_policy = admission_policy or AdmissionPolicy()
        self.slo_s = slo_s
        self.fault_schedule = fault_schedule
        self.retry_policy = retry_policy or RetryPolicy()
        self.integrity_policy = IntegrityPolicy.parse(integrity_policy)
        self.tenant_policy = tenant_policy or TenantPolicy()
        self.autoscale_policy = autoscale_policy
        self.hedge_retries = hedge_retries
        self.tracer = as_tracer(tracer)
        self.metrics = as_metrics(metrics)

    def run(self, requests: Sequence[InferenceRequest]) -> ClusterReport:
        """Serve ``requests`` (sorted by arrival) to completion."""
        if not requests:
            raise ServingError("no requests to serve")
        if any(b.arrival_s < a.arrival_s
               for a, b in zip(requests, requests[1:])):
            raise ServingError("requests are not sorted by arrival time")
        model = requests[0].model

        queue = TenantQueueSet(self.batch_policy, self.tenant_policy)
        admission = AdmissionController(self.admission_policy)
        router = ClusterRouter(self.topology)
        tracer = self.tracer
        metrics = self.metrics
        faults: tuple[FaultEvent, ...] = (
            self.fault_schedule.events if self.fault_schedule else ()
        )
        monitor = HealthMonitor(
            list(self.topology.board_names), tracer=tracer,
            domains=self.topology.domains(),
        ) if faults else None

        scaler = Autoscaler(self.autoscale_policy, self.cold_start_s) \
            if self.autoscale_policy is not None else None
        # The autoscaler reads real gauge values back, so it needs a
        # live registry even when the caller didn't ask for metrics.
        gauges = metrics if metrics.enabled else MetricsRegistry()

        now = requests[0].arrival_s
        arrival_idx = 0
        fault_idx = 0
        seq = 0
        retry_seq = itertools.count()
        inflight: list[tuple[float, int, Dispatch]] = []
        retryq: list[tuple[float, int, InferenceRequest]] = []
        aborted: set[int] = set()
        inflight_seqs: dict[int, Dispatch] = {}
        completed: list[InferenceRequest] = []
        dropped: list[InferenceRequest] = []
        fault_counts: dict[str, int] = {}
        policy = self.integrity_policy
        corrupt: dict[int, str] = {}  # in-flight seq -> corruption cause
        integrity_counts: dict[str, int] = {}
        n_retries = 0
        masked: dict[str, set] = {}  # board -> stuck TPE coords
        depth_integral = 0.0
        depth_max = 0
        t_start = requests[0].arrival_s
        t_last_complete = t_start

        # Fleet-specific state.
        t_offered: dict[str, int] = {}
        t_completed: dict[str, int] = {}
        t_rejected: dict[str, int] = {}
        t_quota: dict[str, int] = {}
        t_dropped: dict[str, int] = {}
        last_failed: dict[int, str] = {}  # request_id -> failed board
        hedged_dispatches = 0
        drains = 0
        readmits = 0
        cold_starts = 0
        p99_window: deque[tuple[float, float]] = deque()
        last_busy_total = 0.0
        tick_interval = (
            self.autoscale_policy.interval_s
            if self.autoscale_policy is not None else math.inf
        )
        next_tick_s = t_start + tick_interval

        def drop(request: InferenceRequest, reason: str,
                 at_s: float) -> None:
            request.drop_reason = reason
            dropped.append(request)
            t_dropped[request.tenant] = t_dropped.get(request.tenant, 0) + 1
            metrics.counter(
                "serving_requests_dropped", "requests dropped, by reason"
            ).inc(reason=reason)
            tracer.add_span(
                "request", request.arrival_s, max(at_s, request.arrival_s),
                track="requests", id=request.request_id, status="dropped",
                reason=reason, attempts=request.attempts,
            )

        def retry_or_drop(request: InferenceRequest, at_s: float) -> None:
            """Requeue a fault-struck request, or drop it."""
            nonlocal n_retries
            if request.attempts >= self.retry_policy.max_attempts:
                drop(request, DROP_RETRY_EXHAUSTED, at_s)
                return
            retry_at = at_s + self.retry_policy.backoff_s(request.attempts)
            if retry_at >= request.deadline_at_s:
                drop(request, DROP_DEADLINE, at_s)
                return
            n_retries += 1
            metrics.counter(
                "serving_retries", "fault-driven retry dispatches"
            ).inc()
            tracer.instant(
                "failover.retry", at=at_s, track="engine",
                id=request.request_id, retry_at_s=retry_at,
            )
            heapq.heappush(retryq, (retry_at, next(retry_seq), request))

        def abort_inflight(board_name: str, at_s: float) -> None:
            """Poison every batch in flight on ``board_name``."""
            for seq_id, dispatch in list(inflight_seqs.items()):
                if dispatch.replica != board_name or seq_id in aborted:
                    continue
                aborted.add(seq_id)
                del inflight_seqs[seq_id]
                corrupt.pop(seq_id, None)
                router.by_name(board_name).aborted_batches += 1
                for request in dispatch.batch.requests:
                    last_failed[request.request_id] = board_name
                    retry_or_drop(request, at_s)

        def mark_corrupt(board_name: str, cause: str) -> None:
            """Silently corrupt the batches in flight on ``board_name``."""
            for seq_id, dispatch in inflight_seqs.items():
                if dispatch.replica != board_name:
                    continue
                corrupt[seq_id] = (
                    cause if seq_id not in corrupt else "multiple"
                )

        def drain_board(board: BoardState, at_s: float, cause: str) -> None:
            """A gate closed: abort in-flight work, account the outage."""
            nonlocal drains
            assert monitor is not None
            drains += 1
            abort_inflight(board.name, at_s)
            monitor.record_crash(board.name, at_s)
            tracer.instant(
                "cluster.drain", at=at_s, track=board.name, cause=cause,
            )
            metrics.counter(
                "cluster_drains", "board drain transitions, by cause"
            ).inc(cause=cause)

        def readmit_board(board: BoardState, at_s: float,
                          cause: str) -> None:
            """A gate reopened: re-admit if the board is fully up."""
            nonlocal readmits
            assert monitor is not None
            readmits += 1
            if board.up:
                monitor.record_recovery(board.name, at_s)
            tracer.instant(
                "cluster.readmit", at=at_s, track=board.name, cause=cause,
                warm_at_s=board.warm_at_s,
            )
            metrics.counter(
                "cluster_readmits", "board re-admissions, by cause"
            ).inc(cause=cause)

        def apply_board_dram(event: DramBitFlip) -> None:
            assert monitor is not None
            if not event.correctable:
                monitor.record_dram_uncorrectable(event.replica, event.at_s)
                if policy.detects:
                    mark_corrupt(event.replica, "dram_uncorrectable")
                else:
                    abort_inflight(event.replica, event.at_s)

        def apply_fault(event: FaultEvent) -> None:
            nonlocal cold_starts
            assert monitor is not None
            fault_counts[event.kind] = fault_counts.get(event.kind, 0) + 1
            metrics.counter(
                "faults_injected", "fault events applied, by kind"
            ).inc(kind=event.kind)
            tracer.instant(
                f"fault.{event.kind}", at=event.at_s, track=event.replica,
            )
            if isinstance(event, RackPowerLoss):
                for board in router.rack_boards(event.domain):
                    if board.powered:
                        drain_board(board, event.at_s, event.kind)
                router.power_down_rack(event.domain, event.at_s)
            elif isinstance(event, RackPowerRestore):
                restored = router.power_up_rack(
                    event.domain, event.at_s, self.cold_start_s
                )
                for board in restored:
                    cold_starts += 1
                    readmit_board(board, event.at_s, event.kind)
            elif isinstance(event, NetworkPartition):
                for board in router.rack_boards(event.domain):
                    if board.reachable:
                        drain_board(board, event.at_s, event.kind)
                router.partition_rack(event.domain, event.at_s)
            elif isinstance(event, NetworkHeal):
                healed = router.heal_rack(event.domain, event.at_s)
                for board in healed:
                    readmit_board(board, event.at_s, event.kind)
            elif isinstance(event, CorrelatedDramFault):
                members = [
                    b.name for b in router.rack_boards(event.domain)
                ]
                for flip in event.expand(members):
                    apply_board_dram(flip)
            elif isinstance(event, ReplicaCrash):
                board = router.by_name(event.replica)
                if board.healthy:
                    abort_inflight(event.replica, event.at_s)
                    router.crash(event.replica, event.at_s)
                    monitor.record_crash(event.replica, event.at_s)
            elif isinstance(event, ReplicaRecovery):
                board = router.recover(event.replica, event.at_s)
                if board.up:
                    monitor.record_recovery(event.replica, event.at_s)
            elif isinstance(event, ReplicaSlowdown):
                board = router.by_name(event.replica)
                if board.healthy:
                    board.slow_factor = event.factor
                    monitor.record_slowdown(event.replica, event.at_s)
            elif isinstance(event, TPEFault):
                if event.stuck:
                    coords = masked.setdefault(event.replica, set())
                    coords.add(event.coord)
                    board = router.by_name(event.replica)
                    try:
                        board.degrade_factor = (
                            self.service.degrade_slowdown(
                                frozenset(coords),
                                self.batch_policy.max_batch,
                            )
                        )
                    except (FaultError, ScheduleError):
                        # No healthy (schedulable) sub-grid left: the
                        # overlay is gone.
                        if board.healthy:
                            abort_inflight(event.replica, event.at_s)
                            router.crash(event.replica, event.at_s)
                            monitor.record_crash(event.replica, event.at_s)
                elif policy.detects:
                    mark_corrupt(event.replica, "tpe_transient")
                else:
                    abort_inflight(event.replica, event.at_s)
            elif isinstance(event, DramBitFlip):
                apply_board_dram(event)
            elif isinstance(event, LinkFault):
                abort_inflight(event.replica, event.at_s)
            admission.fault_pressure = (
                router.n_routable < router.n_active
            )

        def publish_gauges(at_s: float) -> None:
            """Refresh the fleet gauges the autoscaler consumes."""
            nonlocal last_busy_total
            gauges.gauge(
                GAUGE_QUEUE_DEPTH, "queued requests across all tenants"
            ).set(queue.depth)
            busy_total = sum(b.busy_s for b in router.boards)
            denom = tick_interval * max(1, router.n_routable)
            gauges.gauge(
                GAUGE_UTILIZATION,
                "fleet busy fraction over the last autoscale interval",
            ).set(min(1.0, max(0.0, (busy_total - last_busy_total) / denom)))
            last_busy_total = busy_total
            window_s = self.autoscale_policy.p99_window_s \
                if self.autoscale_policy is not None else math.inf
            while p99_window and p99_window[0][0] < at_s - window_s:
                p99_window.popleft()
            gauges.gauge(
                GAUGE_P99_S, "p99 latency over the completion window"
            ).set(
                percentile([lat for _, lat in p99_window], 99)
                if p99_window else 0.0
            )
            gauges.gauge(GAUGE_ACTIVE, "autoscaled-in boards").set(
                router.n_active
            )
            gauges.gauge(GAUGE_ROUTABLE, "boards eligible for work").set(
                router.n_routable
            )

        def autoscale_tick(at_s: float) -> None:
            nonlocal cold_starts
            assert scaler is not None
            publish_gauges(at_s)
            activated, deactivated = scaler.tick(at_s, gauges, router)
            for name in activated:
                cold_starts += 1
                tracer.instant(
                    "cluster.scale_up", at=at_s, track=name,
                    warm_at_s=at_s + self.cold_start_s,
                )
                metrics.counter(
                    "cluster_scale_events", "autoscaler actions, by kind"
                ).inc(kind="up")
            for name in deactivated:
                tracer.instant("cluster.scale_down", at=at_s, track=name)
                metrics.counter(
                    "cluster_scale_events", "autoscaler actions, by kind"
                ).inc(kind="down")
            admission.fault_pressure = (
                router.n_routable < router.n_active
            )

        while (arrival_idx < len(requests) or retryq or len(queue)
               or inflight_seqs):
            # Apply fault events due at the current instant first: a
            # rack dying at t must not receive work dispatched at t.
            while fault_idx < len(faults) and faults[fault_idx].at_s <= now:
                apply_fault(faults[fault_idx])
                fault_idx += 1

            # Autoscaler evaluations due at the current instant (after
            # faults: the tick sees the post-fault fleet state).
            while scaler is not None and next_tick_s <= now:
                autoscale_tick(next_tick_s)
                next_tick_s += tick_interval

            # Requeue retries that have served their backoff.
            while retryq and retryq[0][0] <= now:
                _, _, request = heapq.heappop(retryq)
                queue.push(request)
                depth_max = max(depth_max, queue.depth)

            # Admit every arrival due at the current instant, so a burst
            # landing at one timestamp batches together.
            while (arrival_idx < len(requests)
                   and requests[arrival_idx].arrival_s <= now):
                request = requests[arrival_idx]
                arrival_idx += 1
                tenant = request.tenant
                t_offered[tenant] = t_offered.get(tenant, 0) + 1
                quota = self.tenant_policy.quota(tenant)
                if quota is not None and queue.tenant_depth(tenant) >= quota:
                    t_quota[tenant] = t_quota.get(tenant, 0) + 1
                    t_rejected[tenant] = t_rejected.get(tenant, 0) + 1
                    metrics.counter(
                        "cluster_quota_rejections",
                        "arrivals refused by tenant quota",
                    ).inc(tenant=tenant)
                elif admission.admit(queue.depth):
                    queue.push(request)
                    depth_max = max(depth_max, queue.depth)
                else:
                    t_rejected[tenant] = t_rejected.get(tenant, 0) + 1

            # Shed queued requests whose deadline has already passed.
            for request in queue.expire(now):
                drop(request, DROP_DEADLINE, now)

            # Launch batches while a board is free and the policy fires.
            while True:
                degraded = admission.degraded(queue.depth)
                if not queue.ready(now, degraded=degraded):
                    break
                if router.free_board(now) is None:
                    break
                if degraded:
                    admission.degraded_dispatches += 1
                batch = queue.pop(now)
                avoid = frozenset(
                    last_failed[r.request_id] for r in batch.requests
                    if r.request_id in last_failed
                ) if self.hedge_retries else frozenset()
                board = router.free_board(now, avoid)
                assert board is not None  # a free board existed above
                if avoid and board.name not in avoid:
                    hedged_dispatches += 1
                    tracer.instant(
                        "cluster.hedged", at=now, track=board.name,
                        avoided=",".join(sorted(avoid)),
                    )
                factor = board.service_factor
                dispatch = router.dispatch(
                    board, batch, now,
                    occupancy_s=(
                        self.service.occupancy_s(batch.size) * factor
                    ),
                    latency_s=self.service.latency_s(batch.size) * factor,
                )
                for req in batch.requests:
                    req.dispatch_s = now
                    req.batch_size = batch.size
                    req.replica = dispatch.replica
                    req.attempts += 1
                seq += 1
                inflight_seqs[seq] = dispatch
                heapq.heappush(
                    inflight, (dispatch.complete_s, seq, dispatch)
                )

            # Advance the clock to the next event.
            candidates = []
            if arrival_idx < len(requests):
                candidates.append(requests[arrival_idx].arrival_s)
            if retryq:
                candidates.append(retryq[0][0])
            if inflight_seqs:
                candidates.append(inflight[0][0])
            if fault_idx < len(faults):
                candidates.append(faults[fault_idx].at_s)
            if len(queue):
                next_free = router.next_free_s()
                if math.isfinite(next_free):
                    candidates.append(
                        max(queue.next_deadline(), next_free)
                    )
                expiry = queue.next_expiry_s()
                if math.isfinite(expiry):
                    candidates.append(expiry)
            if scaler is not None and (
                candidates or (len(queue) and router.standby_boards())
            ):
                # A tick is only worth waiting for when some other event
                # will eventually fire, or the scaler could rescue
                # stranded work by activating a standby board; otherwise
                # ticking forever would spin the loop.
                candidates.append(next_tick_s)
            if not candidates:
                # No board will ever free and no event is pending:
                # strand-drop whatever is still queued or backing off.
                for request in queue.pop_all():
                    drop(request, DROP_NO_REPLICA, now)
                while retryq:
                    _, _, request = heapq.heappop(retryq)
                    drop(request, DROP_NO_REPLICA, now)
                break
            next_t = max(min(candidates), now)
            depth_integral += queue.depth * (next_t - now)
            now = next_t

            # Retire completions due at the new instant.
            while inflight and inflight[0][0] <= now:
                done_s, seq_id, dispatch = heapq.heappop(inflight)
                if seq_id in aborted:
                    aborted.discard(seq_id)
                    continue
                del inflight_seqs[seq_id]
                cause = corrupt.pop(seq_id, None)
                if cause is not None:
                    # The batch's ABFT verification fails here, after it
                    # paid its full service time.
                    integrity_counts["sdc_detected"] = (
                        integrity_counts.get("sdc_detected", 0) + 1
                    )
                    metrics.counter(
                        "integrity_events", "ABFT verification outcomes"
                    ).inc(kind="sdc_detected", cause=cause)
                    tracer.instant(
                        "integrity.sdc_detected", at=done_s,
                        track=dispatch.replica, cause=cause,
                        size=dispatch.batch.size,
                    )
                    if policy.corrects and cause == "tpe_transient":
                        # A lone accumulator upset: the row/column
                        # syndromes localize it and the repaired output
                        # re-verifies — serve the batch normally.
                        integrity_counts["corrected"] = (
                            integrity_counts.get("corrected", 0) + 1
                        )
                        metrics.counter(
                            "integrity_events", "ABFT verification outcomes"
                        ).inc(kind="corrected", cause=cause)
                        tracer.instant(
                            "integrity.corrected", at=done_s,
                            track=dispatch.replica,
                        )
                    elif policy.reexecutes:
                        integrity_counts["reexecuted"] = (
                            integrity_counts.get("reexecuted", 0) + 1
                        )
                        metrics.counter(
                            "integrity_events", "ABFT verification outcomes"
                        ).inc(kind="reexecuted", cause=cause)
                        tracer.instant(
                            "integrity.reexecuted", at=done_s,
                            track=dispatch.replica,
                            size=dispatch.batch.size,
                        )
                        for req in dispatch.batch.requests:
                            last_failed[req.request_id] = dispatch.replica
                            retry_or_drop(req, done_s)
                        continue
                    else:
                        integrity_counts["dropped"] = (
                            integrity_counts.get("dropped", 0) + 1
                        )
                        metrics.counter(
                            "integrity_events", "ABFT verification outcomes"
                        ).inc(kind="dropped", cause=cause)
                        for req in dispatch.batch.requests:
                            drop(req, DROP_SDC, done_s)
                        continue
                for req in dispatch.batch.requests:
                    req.complete_s = done_s
                    completed.append(req)
                    t_completed[req.tenant] = (
                        t_completed.get(req.tenant, 0) + 1
                    )
                    last_failed.pop(req.request_id, None)
                    p99_window.append((done_s, done_s - req.arrival_s))
                    metrics.counter(
                        "serving_requests_completed", "requests served"
                    ).inc()
                    metrics.histogram(
                        "serving_request_latency_s",
                        "end-to-end request latency, seconds",
                    ).observe(done_s - req.arrival_s)
                if tracer.enabled:
                    trace_retired_batch(
                        self.service, tracer, dispatch, done_s
                    )
                t_last_complete = max(t_last_complete, done_s)

        makespan = t_last_complete - t_start
        n_quota_rejected = sum(t_quota.values())
        if metrics.enabled:
            for name, util in router.utilization(makespan).items():
                metrics.gauge(
                    "serving_replica_utilization",
                    "busy fraction over the makespan",
                ).set(util, replica=name)
            for rack, util in router.rack_utilization(makespan).items():
                metrics.gauge(
                    "cluster_rack_utilization",
                    "mean member busy fraction over the makespan",
                ).set(util, rack=rack)
            metrics.gauge(
                "serving_queue_depth_max", "peak batcher queue depth"
            ).set(depth_max)
            metrics.counter(
                "serving_requests_rejected", "arrivals refused by admission"
            ).inc(admission.rejected + n_quota_rejected)
        core = ServingReport(
            model=model,
            completed=tuple(completed),
            n_rejected=admission.rejected + n_quota_rejected,
            slo_s=self.slo_s,
            makespan_s=makespan,
            queue_depth_time_avg=(
                depth_integral / makespan if makespan > 0 else 0.0
            ),
            queue_depth_max=depth_max,
            utilization=router.utilization(makespan),
            degraded_dispatches=admission.degraded_dispatches,
            cache_stats=self.service.cache_stats(),
            dropped=tuple(dropped),
            n_retries=n_retries,
            fault_counts=dict(sorted(fault_counts.items())),
            integrity_policy=policy.value if policy.detects else None,
            integrity_counts=dict(sorted(integrity_counts.items())),
            health=(
                monitor.finalize(t_last_complete, t_start)
                if monitor is not None else None
            ),
        )
        per_tenant = {
            tenant: TenantStats(
                tenant=tenant,
                n_offered=t_offered.get(tenant, 0),
                n_completed=t_completed.get(tenant, 0),
                n_rejected=t_rejected.get(tenant, 0),
                n_dropped=t_dropped.get(tenant, 0),
                n_quota_rejected=t_quota.get(tenant, 0),
            )
            for tenant in sorted(t_offered)
        }
        return ClusterReport(
            core=core,
            t_start_s=t_start,
            n_racks=self.topology.n_racks,
            n_boards=self.topology.n_boards,
            per_tenant=per_tenant,
            scale_ups=scaler.scale_ups if scaler else 0,
            scale_downs=scaler.scale_downs if scaler else 0,
            autoscale_ticks=scaler.ticks if scaler else 0,
            hedged_dispatches=hedged_dispatches,
            drains=drains,
            readmits=readmits,
            cold_starts=cold_starts,
            cold_start_s=self.cold_start_s,
            rack_utilization=router.rack_utilization(makespan),
        )
