"""Metrics-driven autoscaling of the serving board set.

The autoscaler runs on the virtual clock: the cluster engine ticks it
at a fixed interval, publishing the fleet gauges (queue depth,
utilization, windowed p99) into a :class:`MetricsRegistry` first — the
autoscaler *only* reads those gauges plus the router's board gates, so
its decisions are a pure function of the run's observable state and
replay deterministically.

Scale-up activates standby boards (lowest fleet index first); each
pays the compiled-schedule cold start before becoming routable, so
added capacity arrives late — exactly the dynamics a real fleet fights.
Scale-down drains the highest-index active board gracefully (no new
work, in-flight completes) after a cooldown, so chaos-driven churn
(a dead rack's backlog briefly spiking the queue) does not thrash the
serving set.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.cluster.router import ClusterRouter
from repro.errors import ServingError
from repro.serving.request import require_finite
from repro.trace.metrics import MetricsRegistry

#: Gauge names the engine publishes and the autoscaler consumes.
GAUGE_QUEUE_DEPTH = "cluster_queue_depth"
GAUGE_UTILIZATION = "cluster_utilization"
GAUGE_P99_S = "cluster_p99_s"
GAUGE_ACTIVE = "cluster_active_boards"
GAUGE_ROUTABLE = "cluster_routable_boards"


@dataclass(frozen=True)
class AutoscalePolicy:
    """Knobs for the gauge-driven scaling loop.

    Attributes:
        interval_s: Virtual-clock evaluation period.
        queue_high_per_board: Queued requests per routable board above
            which the fleet scales up.
        queue_low_per_board: Queue depth per routable board below which
            (together with ``util_low``) the fleet may scale down.
        util_low: Windowed utilization below which scale-down is
            allowed.
        p99_high_s: Optional windowed-p99 trigger — breaching it scales
            up even with a shallow queue (tail-latency-driven scaling).
        p99_window_s: Completion window the p99 gauge is computed over.
        min_active: Never drain below this many active boards.
        max_active: Never activate beyond this (None = fleet size).
        max_step: Standby boards activated per tick (scale-up slew).
        cooldown_ticks: Ticks between consecutive scale-downs, before
            the run's first scale-down, and after any scale-up before
            the next scale-down.
    """

    interval_s: float = 20e-3
    queue_high_per_board: float = 4.0
    queue_low_per_board: float = 0.5
    util_low: float = 0.35
    p99_high_s: float | None = None
    p99_window_s: float = 100e-3
    min_active: int = 1
    max_active: int | None = None
    max_step: int = 4
    cooldown_ticks: int = 3

    def __post_init__(self) -> None:
        require_finite("interval_s", self.interval_s)
        if self.interval_s <= 0:
            raise ServingError(
                f"interval_s must be positive, got {self.interval_s}"
            )
        for name, value in (
            ("queue_high_per_board", self.queue_high_per_board),
            ("queue_low_per_board", self.queue_low_per_board),
            ("util_low", self.util_low),
            ("p99_window_s", self.p99_window_s),
        ):
            require_finite(name, value)
            if value < 0:
                raise ServingError(f"{name} must be >= 0, got {value}")
        if self.queue_low_per_board >= self.queue_high_per_board:
            raise ServingError(
                f"queue_low_per_board ({self.queue_low_per_board}) must "
                f"be < queue_high_per_board ({self.queue_high_per_board})"
            )
        if self.p99_high_s is not None:
            require_finite("p99_high_s", self.p99_high_s)
            if self.p99_high_s <= 0:
                raise ServingError(
                    f"p99_high_s must be positive, got {self.p99_high_s}"
                )
        if self.min_active < 1:
            raise ServingError(
                f"min_active must be >= 1, got {self.min_active}"
            )
        if self.max_active is not None \
                and self.max_active < self.min_active:
            raise ServingError(
                f"max_active ({self.max_active}) must be >= min_active "
                f"({self.min_active})"
            )
        if self.max_step < 1:
            raise ServingError(
                f"max_step must be >= 1, got {self.max_step}"
            )
        if self.cooldown_ticks < 0:
            raise ServingError(
                f"cooldown_ticks must be >= 0, got {self.cooldown_ticks}"
            )


class Autoscaler:
    """Tick-driven scaler reading fleet gauges, mutating board gates."""

    def __init__(self, policy: AutoscalePolicy, cold_start_s: float):
        if not math.isfinite(cold_start_s) or cold_start_s < 0:
            raise ServingError(
                f"cold_start_s must be finite and >= 0, got {cold_start_s}"
            )
        self.policy = policy
        self.cold_start_s = cold_start_s
        self.scale_ups = 0
        self.scale_downs = 0
        self.ticks = 0
        self._cooldown = policy.cooldown_ticks

    def tick(
        self,
        now_s: float,
        gauges: MetricsRegistry,
        router: ClusterRouter,
    ) -> tuple[list[str], list[str]]:
        """One evaluation: returns (activated, deactivated) board names.

        Reads :data:`GAUGE_QUEUE_DEPTH`, :data:`GAUGE_UTILIZATION` and
        :data:`GAUGE_P99_S` from ``gauges`` (the engine publishes them
        immediately before the tick).
        """
        policy = self.policy
        self.ticks += 1
        depth = gauges.gauge(GAUGE_QUEUE_DEPTH).value()
        util = gauges.gauge(GAUGE_UTILIZATION).value()
        p99 = gauges.gauge(GAUGE_P99_S).value()
        per_board = depth / max(1, router.n_routable)

        # Emergency: queued work, zero routable boards, standby capacity
        # available.  Activate regardless of thresholds (and past
        # max_active if need be) — the serving set healing itself beats
        # stranding admitted work.
        emergency = depth > 0 and router.n_routable == 0
        overloaded = emergency \
            or per_board >= policy.queue_high_per_board or (
                policy.p99_high_s is not None and p99 >= policy.p99_high_s
            )
        activated: list[str] = []
        deactivated: list[str] = []
        if overloaded:
            budget = policy.max_step
            if policy.max_active is not None:
                budget = min(budget, policy.max_active - router.n_active)
            if emergency:
                budget = max(budget, 1)
            for board in router.standby_boards()[:max(0, budget)]:
                router.activate(board.name, now_s, self.cold_start_s)
                activated.append(board.name)
            if activated:
                self.scale_ups += len(activated)
                self._cooldown = policy.cooldown_ticks
        elif (per_board <= policy.queue_low_per_board
                and util <= policy.util_low
                and router.n_active > policy.min_active):
            if self._cooldown > 0:
                self._cooldown -= 1
            else:
                # Drain the highest-index active board that is actually
                # up — deactivating a dead board frees no capacity and
                # would strand it out of the set when its rack returns.
                for board in reversed(router.boards):
                    if board.active and board.up:
                        router.deactivate(board.name)
                        deactivated.append(board.name)
                        break
                if deactivated:
                    self.scale_downs += 1
                    self._cooldown = policy.cooldown_ticks
        else:
            self._cooldown = max(0, self._cooldown - 1)
        return activated, deactivated
