"""Fleet topology: racks of overlay boards with shared failure domains.

A fleet is a tree — racks at the top, FPGA boards inside them, one
serving replica per board.  The tree is what gives *correlated* faults
their blast radius: a rack losing power takes down every member board
at the same virtual instant, a ToR partition makes a whole rack
unreachable, a failing DRAM module sprays bit-flips across one domain.
The topology is immutable and fully ordered (rack-major board order),
so any fan-out over it is deterministic by construction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.errors import ServingError


@dataclass(frozen=True)
class Board:
    """One FPGA board: a single serving replica inside a rack."""

    name: str
    rack: str

    def __post_init__(self) -> None:
        if not self.name:
            raise ServingError("board needs a non-empty name")
        if not self.rack:
            raise ServingError(f"board {self.name!r} names no rack")


@dataclass(frozen=True)
class Rack:
    """One rack: a power + network failure domain of boards."""

    name: str
    boards: tuple[Board, ...]

    def __post_init__(self) -> None:
        if not self.name:
            raise ServingError("rack needs a non-empty name")
        if not self.boards:
            raise ServingError(f"rack {self.name!r} has no boards")
        for board in self.boards:
            if board.rack != self.name:
                raise ServingError(
                    f"board {board.name!r} claims rack {board.rack!r} "
                    f"but lives in rack {self.name!r}"
                )

    @property
    def board_names(self) -> tuple[str, ...]:
        return tuple(b.name for b in self.boards)


@dataclass(frozen=True)
class FleetTopology:
    """Racks → boards, the placement universe of the cluster router."""

    racks: tuple[Rack, ...]

    def __post_init__(self) -> None:
        if not self.racks:
            raise ServingError("fleet topology needs at least one rack")
        rack_names = [r.name for r in self.racks]
        if len(set(rack_names)) != len(rack_names):
            raise ServingError(
                f"rack names must be unique, got {rack_names}"
            )
        board_names = [b.name for r in self.racks for b in r.boards]
        if len(set(board_names)) != len(board_names):
            raise ServingError("board names must be unique fleet-wide")
        if set(rack_names) & set(board_names):
            raise ServingError("rack and board names must not collide")

    @property
    def boards(self) -> tuple[Board, ...]:
        """Every board, rack-major (deterministic fan-out order)."""
        return tuple(b for rack in self.racks for b in rack.boards)

    @property
    def board_names(self) -> tuple[str, ...]:
        return tuple(b.name for b in self.boards)

    @property
    def rack_names(self) -> tuple[str, ...]:
        return tuple(r.name for r in self.racks)

    @property
    def n_racks(self) -> int:
        return len(self.racks)

    @property
    def n_boards(self) -> int:
        return sum(len(r.boards) for r in self.racks)

    def rack_of(self, board_name: str) -> str:
        """The rack owning ``board_name``.

        Raises:
            ServingError: for an unknown board.
        """
        for rack in self.racks:
            for board in rack.boards:
                if board.name == board_name:
                    return rack.name
        raise ServingError(f"unknown board {board_name!r}")

    def members(self, rack_name: str) -> tuple[str, ...]:
        """Member board names of one rack, in fleet order.

        Raises:
            ServingError: for an unknown rack.
        """
        for rack in self.racks:
            if rack.name == rack_name:
                return rack.board_names
        raise ServingError(f"unknown rack {rack_name!r}")

    def domains(self) -> dict[str, str]:
        """Board → owning rack, the health monitor's domain mapping."""
        return {b.name: b.rack for b in self.boards}

    def describe(self) -> str:
        per_rack = ", ".join(
            f"{r.name}({len(r.boards)})" for r in self.racks
        )
        return (
            f"{self.n_boards} boards across {self.n_racks} rack(s): "
            f"{per_rack}"
        )


def build_fleet(
    n_racks: int,
    boards_per_rack: int,
    *,
    rack_prefix: str = "rack",
    board_names: Sequence[str] | None = None,
) -> FleetTopology:
    """A regular fleet of ``n_racks`` × ``boards_per_rack`` boards.

    Default board names are ``{rack}/b{i}`` (e.g. ``rack0/b3``);
    ``board_names`` overrides them with a flat rack-major list, which is
    how a fleet is given the exact replica names an existing
    :class:`~repro.faults.schedule.FaultSchedule` targets.

    Raises:
        ServingError: for non-positive dimensions or a ``board_names``
            list of the wrong length.
    """
    if n_racks < 1 or boards_per_rack < 1:
        raise ServingError(
            f"fleet needs >= 1 rack and >= 1 board per rack, got "
            f"{n_racks} x {boards_per_rack}"
        )
    if board_names is not None \
            and len(board_names) != n_racks * boards_per_rack:
        raise ServingError(
            f"board_names has {len(board_names)} entries for a "
            f"{n_racks} x {boards_per_rack} fleet"
        )
    racks = []
    for r in range(n_racks):
        rack_name = f"{rack_prefix}{r}"
        boards = tuple(
            Board(
                name=(
                    board_names[r * boards_per_rack + b]
                    if board_names is not None
                    else f"{rack_name}/b{b}"
                ),
                rack=rack_name,
            )
            for b in range(boards_per_rack)
        )
        racks.append(Rack(name=rack_name, boards=boards))
    return FleetTopology(racks=tuple(racks))
