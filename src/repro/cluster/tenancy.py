"""Multi-tenant fair-share queueing with per-tenant quotas.

The cluster router serves many tenants from one bounded queue.  Two
mechanisms keep a heavy tenant from starving light ones:

* **Quotas** cap how much of the queue one tenant may occupy (checked
  by the engine's admission path, on top of the global capacity bound).
* **Fair-share batch formation** uses stride scheduling: each tenant
  carries a *pass* value that advances by ``1 / weight`` per request
  taken, and batch slots always go to the lowest pass — so over time
  tenants receive service proportional to their weights, with ties
  broken by tenant name.  Everything is deterministic.

With a single tenant the whole structure degenerates to the plain FIFO
:class:`~repro.serving.batcher.Batcher`: identical ready/deadline
semantics, identical pop order — which is what lets a one-tenant
cluster run reproduce a plain :class:`ServingEngine` run bit-for-bit.
"""

from __future__ import annotations

import heapq
import math
from collections import deque
from dataclasses import dataclass, field
from typing import Mapping

from repro.errors import ServingError
from repro.serving.batcher import Batch, BatchPolicy
from repro.serving.request import InferenceRequest


@dataclass(frozen=True)
class TenantPolicy:
    """Fair-share weights and queue quotas per tenant.

    Attributes:
        weights: Tenant → fair-share weight; a tenant with weight 2
            receives twice the batch slots of a tenant with weight 1
            under contention.  Unlisted tenants get ``default_weight``.
        quotas: Tenant → max queued requests; arrivals beyond it are
            rejected with per-tenant accounting.  Unlisted tenants are
            bounded only by the global queue capacity.
        default_weight: Weight for tenants not named in ``weights``.
    """

    weights: Mapping[str, float] = field(default_factory=dict)
    quotas: Mapping[str, int] = field(default_factory=dict)
    default_weight: float = 1.0

    def __post_init__(self) -> None:
        for tenant, weight in self.weights.items():
            if not math.isfinite(weight) or weight <= 0:
                raise ServingError(
                    f"tenant {tenant!r} weight must be finite and > 0, "
                    f"got {weight}"
                )
        for tenant, quota in self.quotas.items():
            if quota < 1:
                raise ServingError(
                    f"tenant {tenant!r} quota must be >= 1, got {quota}"
                )
        if not math.isfinite(self.default_weight) \
                or self.default_weight <= 0:
            raise ServingError(
                f"default_weight must be finite and > 0, "
                f"got {self.default_weight}"
            )

    def weight(self, tenant: str) -> float:
        return self.weights.get(tenant, self.default_weight)

    def quota(self, tenant: str) -> int | None:
        return self.quotas.get(tenant)


class TenantQueueSet:
    """Per-tenant FIFO queues behind one stride-scheduled batch former.

    Mirrors the :class:`~repro.serving.batcher.Batcher` interface
    (``ready`` / ``next_deadline`` / ``next_expiry_s`` / ``expire`` /
    ``pop`` / ``pop_all``) so the cluster engine's event loop matches
    the single-engine loop, plus per-tenant depth accounting for quota
    admission.  Request deadlines are tracked in a lazy min-heap, so
    the per-iteration expiry probe is O(1) instead of an O(depth) scan
    — at fleet scale the queue can hold thousands of requests.
    """

    def __init__(self, batch_policy: BatchPolicy, tenants: TenantPolicy):
        self.batch_policy = batch_policy
        self.tenants = tenants
        self._queues: dict[str, deque[InferenceRequest]] = {}
        self._pass: dict[str, float] = {}
        self._vtime = 0.0
        self._depth = 0
        self._deadline_heap: list[tuple[float, int]] = []
        self._queued_ids: set[int] = set()

    def __len__(self) -> int:
        return self._depth

    @property
    def depth(self) -> int:
        return self._depth

    def tenant_depth(self, tenant: str) -> int:
        queue = self._queues.get(tenant)
        return len(queue) if queue is not None else 0

    def push(self, request: InferenceRequest) -> None:
        tenant = request.tenant
        queue = self._queues.get(tenant)
        if queue is None:
            queue = self._queues[tenant] = deque()
            self._pass[tenant] = self._vtime
        elif not queue:
            # Reactivation: a tenant that went idle must not bank its
            # stale (low) pass into a burst — catch up to virtual time.
            self._pass[tenant] = max(self._pass[tenant], self._vtime)
        queue.append(request)
        self._depth += 1
        self._queued_ids.add(request.request_id)
        if request.deadline_s is not None:
            heapq.heappush(
                self._deadline_heap,
                (request.deadline_at_s, request.request_id),
            )

    def _active(self) -> list[tuple[str, deque[InferenceRequest]]]:
        return [(t, q) for t, q in self._queues.items() if q]

    def ready(self, now_s: float, degraded: bool = False) -> bool:
        """Whether a batch should launch at ``now_s`` (Batcher semantics)."""
        if not self._depth:
            return False
        if degraded or self._depth >= self.batch_policy.max_batch:
            return True
        return now_s >= self.next_deadline()

    def next_deadline(self) -> float:
        """When the oldest queued head's max-wait expires.

        Raises:
            ServingError: if every queue is empty.
        """
        heads = self._active()
        if not heads:
            raise ServingError("tenant queues are empty")
        oldest = min(q[0].arrival_s for _, q in heads)
        return oldest + self.batch_policy.max_wait_s

    def next_expiry_s(self) -> float:
        """Earliest queued request deadline (inf when none)."""
        heap = self._deadline_heap
        while heap and heap[0][1] not in self._queued_ids:
            heapq.heappop(heap)
        return heap[0][0] if heap else math.inf

    def expire(self, now_s: float) -> list[InferenceRequest]:
        """Remove and return queued requests whose deadline passed."""
        if self.next_expiry_s() > now_s:
            return []
        expired: list[InferenceRequest] = []
        for tenant, queue in self._queues.items():
            if not queue:
                continue
            kept: deque[InferenceRequest] = deque()
            for request in queue:
                if request.expired(now_s):
                    expired.append(request)
                    self._queued_ids.discard(request.request_id)
                    self._depth -= 1
                else:
                    kept.append(request)
            self._queues[tenant] = kept
        return expired

    def pop(self, now_s: float) -> Batch:
        """Form a batch of up to ``max_batch`` stride-scheduled requests.

        Raises:
            ServingError: if every queue is empty.
        """
        if not self._depth:
            raise ServingError("tenant queues are empty")
        taken: list[InferenceRequest] = []
        while self._depth and len(taken) < self.batch_policy.max_batch:
            tenant = min(
                (t for t, q in self._queues.items() if q),
                key=lambda t: (self._pass[t], t),
            )
            request = self._queues[tenant].popleft()
            self._depth -= 1
            self._queued_ids.discard(request.request_id)
            taken.append(request)
            self._vtime = self._pass[tenant]
            self._pass[tenant] += 1.0 / self.tenants.weight(tenant)
        return Batch(requests=tuple(taken), formed_s=now_s)

    def pop_all(self) -> list[InferenceRequest]:
        """Drain everything (used to strand-drop unreachable work)."""
        drained: list[InferenceRequest] = []
        for queue in self._queues.values():
            drained.extend(queue)
            queue.clear()
        self._depth = 0
        self._queued_ids.clear()
        return drained
