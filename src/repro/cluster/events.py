"""Correlated failure-domain fault events.

The per-board taxonomy in :mod:`repro.faults.events` models independent
failures; fleets die of *correlated* ones.  These events extend the same
:class:`~repro.faults.events.FaultEvent` base — their ``replica`` field
names the failure **domain** (a rack), not a board — so they ride inside
an ordinary :class:`~repro.faults.schedule.FaultSchedule`, merge with
per-board schedules via :meth:`FaultSchedule.merge`, and keep the
``(at_s, replica, kind)`` deterministic ordering.

The cluster engine fans each domain event out to the domain's member
boards in fleet order at apply time:

* :class:`RackPowerLoss` — every member board goes down at the same
  instant; in-flight batches are lost.  :class:`RackPowerRestore`
  brings the members back, but power loss wiped board DRAM, so each
  board pays the compiled-schedule weight-reload cold start before it
  is routable again.
* :class:`NetworkPartition` — the rack's uplink drops: boards stay
  powered but unreachable, in-flight results are lost to the router.
  :class:`NetworkHeal` re-admits them immediately (DRAM survived, no
  reload).
* :class:`CorrelatedDramFault` — one failing DRAM module sprays
  ``n_flips`` upsets across the domain's boards at one instant, drawn
  from the event's own seed (deterministic, independent of any other
  RNG stream).
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Sequence

from repro.errors import FaultError
from repro.faults.events import DramBitFlip, FaultEvent
from repro.faults.schedule import FaultSchedule, _poisson_times
from repro.cluster.topology import FleetTopology

#: Kinds of the events this module defines (a cluster engine accepts
#: these on top of the per-board taxonomy).
DOMAIN_EVENT_KINDS = (
    "rack_power_loss",
    "rack_power_restore",
    "rack_partition",
    "rack_heal",
    "dram_correlated",
)


@dataclass(frozen=True)
class DomainFaultEvent(FaultEvent):
    """Base: one correlated fault striking the domain ``replica``."""

    @property
    def domain(self) -> str:
        """Alias — for domain events ``replica`` names the domain."""
        return self.replica


@dataclass(frozen=True)
class RackPowerLoss(DomainFaultEvent):
    """Every board in the rack loses power; board DRAM is wiped."""

    @property
    def kind(self) -> str:
        return "rack_power_loss"


@dataclass(frozen=True)
class RackPowerRestore(DomainFaultEvent):
    """Power returns; members reload weights (cold start) then serve."""

    @property
    def kind(self) -> str:
        return "rack_power_restore"


@dataclass(frozen=True)
class NetworkPartition(DomainFaultEvent):
    """The rack's uplink drops: members are up but unreachable."""

    @property
    def kind(self) -> str:
        return "rack_partition"


@dataclass(frozen=True)
class NetworkHeal(DomainFaultEvent):
    """The partition heals; members re-admit with no reload."""

    @property
    def kind(self) -> str:
        return "rack_heal"


@dataclass(frozen=True)
class CorrelatedDramFault(DomainFaultEvent):
    """A failing DRAM module: ``n_flips`` upsets across the domain.

    Attributes:
        n_flips: Bit-flips sprayed at this instant.
        correctable: Whether ECC absorbs them (a whole failing module
            usually overwhelms ECC — the default is uncorrectable).
        seed: Private RNG seed the fan-out draws member boards and word
            addresses from; the draw never touches any other stream.
        dram_words: Operand address space per board, in words; when set
            the expanded flips carry in-range word addresses.
    """

    n_flips: int = 4
    correctable: bool = False
    seed: int = 0
    dram_words: int | None = None

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.n_flips < 1:
            raise FaultError(
                f"n_flips must be >= 1, got {self.n_flips}",
                replica=self.replica, at_s=self.at_s,
            )
        if self.dram_words is not None and self.dram_words < 1:
            raise FaultError(
                f"dram_words must be >= 1, got {self.dram_words}",
                replica=self.replica, at_s=self.at_s,
            )

    @property
    def kind(self) -> str:
        return "dram_correlated"

    def expand(self, members: Sequence[str]) -> tuple[DramBitFlip, ...]:
        """Fan out to per-board bit-flips, deterministically.

        Boards are drawn uniformly (with replacement — one module can
        hit the same board twice) from ``members`` in the given order,
        using only this event's seed.

        Raises:
            FaultError: if ``members`` is empty.
        """
        if not members:
            raise FaultError(
                "correlated DRAM fault has no member boards",
                replica=self.replica, at_s=self.at_s,
            )
        rng = random.Random(self.seed)
        flips = []
        for _ in range(self.n_flips):
            board = members[rng.randrange(len(members))]
            flips.append(DramBitFlip(
                at_s=self.at_s,
                replica=board,
                correctable=self.correctable,
                word_addr=(
                    rng.randrange(self.dram_words)
                    if self.dram_words is not None else None
                ),
            ))
        return tuple(flips)


def generate_domain_fault_schedule(
    *,
    seed: int,
    duration_s: float,
    topology: FleetTopology,
    rack_loss_rate_hz: float = 0.0,
    mean_rack_repair_s: float = 0.1,
    partition_rate_hz: float = 0.0,
    mean_partition_s: float = 0.05,
    correlated_dram_rate_hz: float = 0.0,
    flips_per_event: int = 4,
    correctable_fraction: float = 0.0,
    dram_words: int | None = None,
) -> FaultSchedule:
    """Draw a deterministic schedule of correlated domain events.

    Rates are *per rack*; each loss/partition is paired with its
    restore/heal after an exponential repair.  The result composes with
    a per-board :func:`~repro.faults.schedule.generate_fault_schedule`
    through :meth:`FaultSchedule.merge` — the two generators use
    independent seeded streams, so merging preserves both byte-for-byte.

    Raises:
        FaultError: for invalid rates, durations, or fractions.
    """
    if not math.isfinite(duration_s) or duration_s <= 0:
        raise FaultError(
            f"duration_s must be finite and positive, got {duration_s}"
        )
    for name, value in (
        ("rack_loss_rate_hz", rack_loss_rate_hz),
        ("partition_rate_hz", partition_rate_hz),
        ("correlated_dram_rate_hz", correlated_dram_rate_hz),
        ("mean_rack_repair_s", mean_rack_repair_s),
        ("mean_partition_s", mean_partition_s),
    ):
        if not math.isfinite(value) or value < 0:
            raise FaultError(
                f"{name} must be finite and >= 0, got {value}"
            )
    if not 0.0 <= correctable_fraction <= 1.0:
        raise FaultError(
            f"correctable_fraction must be in [0, 1], "
            f"got {correctable_fraction}"
        )
    if flips_per_event < 1:
        raise FaultError(
            f"flips_per_event must be >= 1, got {flips_per_event}"
        )

    rng = random.Random(seed)
    events: list[FaultEvent] = []
    # Fixed iteration order (rack order, then fault type) keeps the
    # draw sequence deterministic, mirroring the per-board generator.
    for rack in topology.rack_names:
        for t in _poisson_times(rng, rack_loss_rate_hz, duration_s):
            events.append(RackPowerLoss(at_s=t, replica=rack))
            repair = rng.expovariate(1.0 / mean_rack_repair_s) \
                if mean_rack_repair_s > 0 else 0.0
            events.append(RackPowerRestore(at_s=t + repair, replica=rack))
        for t in _poisson_times(rng, partition_rate_hz, duration_s):
            events.append(NetworkPartition(at_s=t, replica=rack))
            heal = rng.expovariate(1.0 / mean_partition_s) \
                if mean_partition_s > 0 else 0.0
            events.append(NetworkHeal(at_s=t + heal, replica=rack))
        for t in _poisson_times(rng, correlated_dram_rate_hz, duration_s):
            events.append(CorrelatedDramFault(
                at_s=t, replica=rack,
                n_flips=flips_per_event,
                correctable=rng.random() < correctable_fraction,
                seed=rng.randrange(2 ** 31),
                dram_words=dram_words,
            ))
    return FaultSchedule.from_events(events)
