"""Fleet-level serving reports: per-tenant accounting + cluster counters.

A :class:`ClusterReport` wraps the core
:class:`~repro.serving.metrics.ServingReport` (identical semantics —
the degenerate one-tenant fixed-fleet cluster run produces a core
report bit-identical to a plain :class:`ServingEngine` run) and adds
what only exists at fleet scale: per-tenant conservation accounting,
autoscaler activity, hedged placements, drain/re-admit transitions and
per-rack utilization.

The conservation identity the chaos campaigns assert is per tenant:

    offered == completed + rejected + dropped

for every tenant, under any fault schedule — a rack dying mid-load may
move requests between the completed/dropped buckets but can never leak
one.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ServingError
from repro.serving.metrics import ServingReport, percentile


@dataclass(frozen=True)
class TenantStats:
    """Request conservation accounting for one tenant.

    Attributes:
        tenant: Tenant name.
        n_offered: Arrivals belonging to this tenant.
        n_completed: Requests served to completion.
        n_rejected: Arrivals refused by admission (global capacity or
            the tenant's own quota).
        n_quota_rejected: The subset of ``n_rejected`` refused by the
            tenant quota specifically.
        n_dropped: Requests dropped after admission (deadline, retries
            exhausted, no routable board, detected SDC).
    """

    tenant: str
    n_offered: int
    n_completed: int
    n_rejected: int
    n_dropped: int
    n_quota_rejected: int = 0

    @property
    def conserved(self) -> bool:
        """The accounting identity: no request created or leaked."""
        return self.n_offered == (
            self.n_completed + self.n_rejected + self.n_dropped
        )

    @property
    def availability(self) -> float:
        """Share of this tenant's offered requests that completed."""
        if not self.n_offered:
            return 1.0
        return self.n_completed / self.n_offered

    def describe(self) -> str:
        return (
            f"{self.tenant}: {self.n_offered} offered = "
            f"{self.n_completed} completed + {self.n_rejected} rejected + "
            f"{self.n_dropped} dropped ({self.availability:.2%} avail"
            + (f", {self.n_quota_rejected} quota-rejected"
               if self.n_quota_rejected else "")
            + ")"
        )


@dataclass(frozen=True)
class ClusterReport:
    """One fleet serving run: the core report plus cluster accounting.

    Attributes:
        core: The underlying :class:`ServingReport` (fleet-wide).
        t_start_s: Virtual-clock instant of the first arrival (anchors
            :meth:`windowed_p99`).
        n_racks: Racks in the fleet.
        n_boards: Boards in the fleet.
        per_tenant: Conservation accounting per tenant, sorted by name.
        scale_ups: Boards activated by the autoscaler.
        scale_downs: Boards drained by the autoscaler.
        autoscale_ticks: Autoscaler evaluations performed.
        hedged_dispatches: Batches steered away from a board that had
            just failed one of their requests.
        drains: Board drain transitions (crash / rack power / partition
            closing a gate).
        readmits: Board re-admission transitions (gate reopening).
        cold_starts: Weight reloads paid (power restores + autoscale
            activations).
        cold_start_s: Per-board weight-reload time the run charged.
        rack_utilization: Mean member busy fraction per rack.
    """

    core: ServingReport
    t_start_s: float
    n_racks: int
    n_boards: int
    per_tenant: dict[str, TenantStats] = field(default_factory=dict)
    scale_ups: int = 0
    scale_downs: int = 0
    autoscale_ticks: int = 0
    hedged_dispatches: int = 0
    drains: int = 0
    readmits: int = 0
    cold_starts: int = 0
    cold_start_s: float = 0.0
    rack_utilization: dict[str, float] = field(default_factory=dict)

    # ------------------------------------------------------------------ #
    @property
    def conserved(self) -> bool:
        """Whether every tenant's accounting identity holds."""
        return all(t.conserved for t in self.per_tenant.values())

    @property
    def availability(self) -> float:
        return self.core.availability

    @property
    def n_offered(self) -> int:
        return self.core.n_offered

    @property
    def n_completed(self) -> int:
        return self.core.n_completed

    @property
    def n_dropped(self) -> int:
        return self.core.n_dropped

    @property
    def n_rejected(self) -> int:
        return self.core.n_rejected

    @property
    def p99_s(self) -> float:
        return self.core.p99_s

    def windowed_p99(self, window_s: float) -> list[tuple[float, float]]:
        """p99 latency per completion window across the makespan.

        Partitions ``[t_start_s, t_start_s + makespan]`` into windows of
        ``window_s`` and computes the nearest-rank p99 of the requests
        *completed* in each; empty windows report 0.0.  This is the
        recovery curve a chaos campaign checks: the window p99 spikes
        when a rack dies and must return to the healthy baseline before
        the run ends.

        Raises:
            ServingError: for a non-positive window.
        """
        if window_s <= 0:
            raise ServingError(
                f"window_s must be positive, got {window_s}"
            )
        end_s = self.t_start_s + self.core.makespan_s
        n_windows = max(
            1, -int(-(end_s - self.t_start_s) // window_s)
        )
        buckets: list[list[float]] = [[] for _ in range(n_windows)]
        for request in self.core.completed:
            assert request.complete_s is not None
            idx = int((request.complete_s - self.t_start_s) // window_s)
            buckets[min(max(idx, 0), n_windows - 1)].append(
                request.latency_s
            )
        return [
            (
                self.t_start_s + (i + 1) * window_s,
                percentile(lat, 99) if lat else 0.0,
            )
            for i, lat in enumerate(buckets)
        ]

    # ------------------------------------------------------------------ #
    def describe(self) -> str:
        """The core report table extended with the fleet sections."""
        lines = [self.core.describe()]
        lines.append(
            f"  fleet          : {self.n_boards} boards / "
            f"{self.n_racks} racks; {self.drains} drains, "
            f"{self.readmits} re-admits, {self.cold_starts} cold starts "
            f"({self.cold_start_s * 1e3:.3f} ms each)"
        )
        if self.autoscale_ticks:
            lines.append(
                f"  autoscale      : {self.autoscale_ticks} ticks, "
                f"{self.scale_ups} up / {self.scale_downs} down"
            )
        if self.hedged_dispatches:
            lines.append(
                f"  hedging        : {self.hedged_dispatches} dispatches "
                f"steered off a failed board"
            )
        for tenant in sorted(self.per_tenant):
            stats = self.per_tenant[tenant]
            flag = "" if stats.conserved else "  [ACCOUNTING VIOLATION]"
            lines.append(f"  tenant {stats.describe()}{flag}")
        if self.rack_utilization:
            worst = min(self.rack_utilization.items(),
                        key=lambda kv: (kv[1], kv[0]))
            best = max(self.rack_utilization.items(),
                       key=lambda kv: (kv[1], kv[0]))
            lines.append(
                f"  rack util      : min {worst[0]} {worst[1]:.1%} | "
                f"max {best[0]} {best[1]:.1%}"
            )
        return "\n".join(lines)
