"""Fleet-facing service models: board-named costs + cold-start time.

A fleet serves one model from many identical boards, so the cost side
is exactly the existing service models — :class:`BatchServiceModel`
compiled once and shared, or a :func:`plan_deployment` pipeline per
board — with two cluster-specific additions:

* replica names come from the :class:`FleetTopology` (boards, not
  ``overlay{i}``), so fault schedules and health domains address real
  boards;
* a **cold-start cost**: the time to stream the compiled schedule's
  weight footprint back into board DRAM over the configured write
  bandwidth.  A board returning from rack power loss (DRAM wiped) or
  activated by the autoscaler pays it before becoming routable.
"""

from __future__ import annotations

from repro.cluster.topology import FleetTopology
from repro.errors import ServingError
from repro.overlay.config import OverlayConfig
from repro.serving.batcher import BatchServiceModel
from repro.serving.scheduler import PipelineService, ReplicaService
from repro.units import BYTES_PER_WORD
from repro.workloads.network import Network


def weight_load_s(model: BatchServiceModel) -> float:
    """Compiled-schedule weight-reload time for one board, seconds.

    The footprint is the model's accelerated-layer weights (the operand
    set resident in board DRAM); loading streams it at the overlay's
    DRAM write bandwidth.  This is the real cold-start floor: a board
    cannot serve a single request before its weights are back.
    """
    weight_bytes = sum(
        getattr(layer, "weight_words", 0)
        for layer in model.network.accelerated_layers()
    ) * BYTES_PER_WORD
    return weight_bytes / (model.config.dram_wr_gbps * 1e9)


class FleetService(ReplicaService):
    """N identical single-overlay boards named by the fleet topology."""

    def __init__(
        self,
        model: BatchServiceModel,
        topology: FleetTopology,
        cold_start_s: float | None = None,
    ):
        super().__init__(model, n_replicas=topology.n_boards)
        self.topology = topology
        self.cold_start_s = (
            cold_start_s if cold_start_s is not None
            else weight_load_s(model)
        )
        if self.cold_start_s < 0:
            raise ServingError(
                f"cold_start_s must be >= 0, got {self.cold_start_s}"
            )

    def replica_names(self) -> list[str]:
        return list(self.topology.board_names)


class FleetPipelineService(PipelineService):
    """One multi-FPGA pipeline per board, boards named by the topology.

    The :func:`~repro.analysis.partition.plan_deployment` placement and
    per-stage compilation are exactly the single-engine
    :class:`PipelineService`; only the naming and the cold-start cost
    (summed over the stages' weight footprints) are fleet-aware.
    """

    def __init__(
        self,
        network: Network,
        config: OverlayConfig,
        n_devices: int,
        topology: FleetTopology,
        objective: str = "balance",
        cold_start_s: float | None = None,
    ):
        super().__init__(
            network, config, n_devices,
            n_replicas=topology.n_boards, objective=objective,
        )
        self.topology = topology
        self.cold_start_s = (
            cold_start_s if cold_start_s is not None
            else sum(weight_load_s(stage) for stage in self._stages)
        )
        if self.cold_start_s < 0:
            raise ServingError(
                f"cold_start_s must be >= 0, got {self.cold_start_s}"
            )

    def replica_names(self) -> list[str]:
        return list(self.topology.board_names)
