"""repro.cluster — fault-tolerant fleet-scale serving.

Racks of overlay boards behind a self-healing router: correlated
failure-domain faults, hedged deadline-aware retries, metrics-driven
autoscaling with real cold-start costs, and tenant-aware fair-share
admission — all on the same deterministic virtual clock as the
single-board :class:`~repro.serving.engine.ServingEngine`, which a
degenerate cluster configuration reproduces bit for bit.
"""

from repro.cluster.autoscale import AutoscalePolicy, Autoscaler
from repro.cluster.engine import ClusterEngine
from repro.cluster.events import (
    DOMAIN_EVENT_KINDS,
    CorrelatedDramFault,
    DomainFaultEvent,
    NetworkHeal,
    NetworkPartition,
    RackPowerLoss,
    RackPowerRestore,
    generate_domain_fault_schedule,
)
from repro.cluster.report import ClusterReport, TenantStats
from repro.cluster.router import BoardState, ClusterRouter
from repro.cluster.service import (
    FleetPipelineService,
    FleetService,
    weight_load_s,
)
from repro.cluster.tenancy import TenantPolicy, TenantQueueSet
from repro.cluster.topology import (
    Board,
    FleetTopology,
    Rack,
    build_fleet,
)

__all__ = [
    "AutoscalePolicy",
    "Autoscaler",
    "Board",
    "BoardState",
    "ClusterEngine",
    "ClusterReport",
    "ClusterRouter",
    "CorrelatedDramFault",
    "DOMAIN_EVENT_KINDS",
    "DomainFaultEvent",
    "FleetPipelineService",
    "FleetService",
    "FleetTopology",
    "NetworkHeal",
    "NetworkPartition",
    "Rack",
    "RackPowerLoss",
    "RackPowerRestore",
    "TenantPolicy",
    "TenantQueueSet",
    "TenantStats",
    "build_fleet",
    "generate_domain_fault_schedule",
    "weight_load_s",
]
