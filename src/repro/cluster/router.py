"""The self-healing global router: health-gated board placement.

The router is the fleet analogue of the single-engine
:class:`~repro.serving.scheduler.DispatchScheduler`, with a richer
board state machine.  A board is **routable** — eligible for new work —
only when every gate is open:

* ``healthy``   — not crashed (board-level fault);
* ``powered``   — its rack has power;
* ``reachable`` — its rack's uplink is up (no partition);
* ``active``    — the autoscaler has it in the serving set;
* warm         — past its ``warm_at_s`` cold-start gate (weights
  loaded after power restore or autoscale activation).

Any gate closing *drains* the board (new work stops instantly; a
power/partition/crash closure also aborts in-flight batches into the
retry path); the gate re-opening re-admits it automatically.  Placement
is lowest-index-first over routable boards, with an optional ``avoid``
set for hedged retry placement — a retried request steers away from the
board that just failed it when any alternative is free.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.cluster.topology import FleetTopology
from repro.errors import FaultError, ServingError
from repro.serving.batcher import Batch
from repro.serving.scheduler import Dispatch


@dataclass
class BoardState:
    """Dispatch + gate bookkeeping for one board."""

    name: str
    rack: str
    free_at_s: float = 0.0
    busy_s: float = 0.0
    batches: int = 0
    requests: int = 0
    healthy: bool = True
    powered: bool = True
    reachable: bool = True
    active: bool = True
    warm_at_s: float = 0.0
    slow_factor: float = 1.0
    degrade_factor: float = 1.0
    crashes: int = 0
    aborted_batches: int = 0

    @property
    def routable(self) -> bool:
        """Whether the router may place new work here (gates only —
        the warm-up and busy checks are time-dependent)."""
        return (self.healthy and self.powered and self.reachable
                and self.active)

    @property
    def up(self) -> bool:
        """Whether the board can *finish* work (power + health +
        network; an inactive board still completes its last batch)."""
        return self.healthy and self.powered and self.reachable

    @property
    def service_factor(self) -> float:
        """Combined service-time inflation for new dispatches."""
        return self.slow_factor * self.degrade_factor

    def effective_free_s(self) -> float:
        """Earliest instant this board could start a new batch."""
        return max(self.free_at_s, self.warm_at_s)


class ClusterRouter:
    """Earliest-index placement of batches onto routable boards."""

    def __init__(self, topology: FleetTopology):
        self.topology = topology
        self.boards = [
            BoardState(name=board.name, rack=board.rack)
            for board in topology.boards
        ]
        self._by_name = {b.name: b for b in self.boards}
        self._by_rack: dict[str, list[BoardState]] = {}
        for board in self.boards:
            self._by_rack.setdefault(board.rack, []).append(board)

    def by_name(self, name: str) -> BoardState:
        """Look up one board's state.

        Raises:
            FaultError: for an unknown board name.
        """
        try:
            return self._by_name[name]
        except KeyError:
            raise FaultError("unknown board", replica=name) from None

    def rack_boards(self, rack: str) -> list[BoardState]:
        """Member boards of one rack, in fleet order.

        Raises:
            FaultError: for an unknown rack name.
        """
        try:
            return self._by_rack[rack]
        except KeyError:
            raise FaultError("unknown rack", replica=rack) from None

    @property
    def n_routable(self) -> int:
        return sum(1 for b in self.boards if b.routable)

    @property
    def n_active(self) -> int:
        return sum(1 for b in self.boards if b.active)

    @property
    def n_up(self) -> int:
        return sum(1 for b in self.boards if b.up)

    def free_board(
        self, now_s: float, avoid: frozenset[str] = frozenset()
    ) -> BoardState | None:
        """The lowest-index routable board free at ``now_s``.

        Boards named in ``avoid`` (hedged placement after a failure)
        are skipped when any other candidate is free, and used as a
        last resort otherwise.
        """
        fallback = None
        for board in self.boards:
            if board.routable and board.effective_free_s() <= now_s:
                if board.name not in avoid:
                    return board
                if fallback is None:
                    fallback = board
        return fallback

    def next_free_s(self) -> float:
        """Earliest instant a routable board frees (inf if none)."""
        return min(
            (b.effective_free_s() for b in self.boards if b.routable),
            default=math.inf,
        )

    def standby_boards(self) -> list[BoardState]:
        """Inactive boards the autoscaler could activate, fleet order."""
        return [b for b in self.boards if not b.active and b.up]

    # ------------------------------------------------------------- gates
    def _take_down(self, board: BoardState, now_s: float) -> None:
        """Roll back unfinished busy time when a board stops serving."""
        if board.free_at_s > now_s:
            board.busy_s -= board.free_at_s - now_s
            board.free_at_s = now_s

    def crash(self, name: str, now_s: float) -> BoardState:
        board = self.by_name(name)
        if board.healthy:
            board.healthy = False
            board.crashes += 1
            self._take_down(board, now_s)
        return board

    def recover(self, name: str, now_s: float) -> BoardState:
        board = self.by_name(name)
        if not board.healthy:
            board.healthy = True
            board.free_at_s = max(board.free_at_s, now_s)
        board.slow_factor = 1.0
        return board

    def power_down_rack(self, rack: str, now_s: float) -> list[BoardState]:
        """Close the power gate on every member (DRAM is lost)."""
        struck = []
        for board in self.rack_boards(rack):
            if board.powered:
                board.powered = False
                self._take_down(board, now_s)
                struck.append(board)
        return struck

    def power_up_rack(
        self, rack: str, now_s: float, cold_start_s: float
    ) -> list[BoardState]:
        """Reopen the power gate; members warm up for ``cold_start_s``."""
        restored = []
        for board in self.rack_boards(rack):
            if not board.powered:
                board.powered = True
                board.free_at_s = max(board.free_at_s, now_s)
                board.warm_at_s = now_s + cold_start_s
                restored.append(board)
        return restored

    def partition_rack(self, rack: str, now_s: float) -> list[BoardState]:
        """Close the network gate on every member."""
        struck = []
        for board in self.rack_boards(rack):
            if board.reachable:
                board.reachable = False
                self._take_down(board, now_s)
                struck.append(board)
        return struck

    def heal_rack(self, rack: str, now_s: float) -> list[BoardState]:
        """Reopen the network gate; DRAM survived, no warm-up."""
        healed = []
        for board in self.rack_boards(rack):
            if not board.reachable:
                board.reachable = True
                board.free_at_s = max(board.free_at_s, now_s)
                healed.append(board)
        return healed

    def activate(
        self, name: str, now_s: float, cold_start_s: float
    ) -> BoardState:
        """Autoscale a standby board in (pays the cold start)."""
        board = self.by_name(name)
        if not board.active:
            board.active = True
            board.free_at_s = max(board.free_at_s, now_s)
            board.warm_at_s = now_s + cold_start_s
        return board

    def deactivate(self, name: str) -> BoardState:
        """Autoscale a board out: no new work, in-flight completes."""
        board = self.by_name(name)
        board.active = False
        return board

    # ---------------------------------------------------------- dispatch
    def dispatch(
        self,
        board: BoardState,
        batch: Batch,
        now_s: float,
        occupancy_s: float,
        latency_s: float,
    ) -> Dispatch:
        """Place ``batch`` on ``board`` starting at ``now_s``.

        Raises:
            ServingError: if the board is not routable or still busy.
        """
        if not board.routable:
            raise ServingError(f"board {board.name} is not routable")
        if board.effective_free_s() > now_s:
            raise ServingError(
                f"board {board.name} busy or warming until "
                f"{board.effective_free_s():.6f}"
            )
        board.free_at_s = now_s + occupancy_s
        board.busy_s += occupancy_s
        board.batches += 1
        board.requests += batch.size
        return Dispatch(
            batch=batch,
            replica=board.name,
            start_s=now_s,
            complete_s=now_s + latency_s,
        )

    def utilization(self, makespan_s: float) -> dict[str, float]:
        """Busy fraction per board over the run's makespan."""
        if makespan_s <= 0:
            return {b.name: 0.0 for b in self.boards}
        return {b.name: b.busy_s / makespan_s for b in self.boards}

    def rack_utilization(self, makespan_s: float) -> dict[str, float]:
        """Mean member busy fraction per rack over the makespan."""
        util = self.utilization(makespan_s)
        return {
            rack: sum(util[b.name] for b in boards) / len(boards)
            for rack, boards in self._by_rack.items()
        }
