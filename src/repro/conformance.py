"""Full-stack workload conformance: every registered network, every layer.

One function — :func:`run_workload_conformance` — pushes a registered
workload through the whole stack and reports what held:

1. **Search**: every accelerated layer schedules on the target overlay
   (one shared :class:`~repro.compiler.cache.ScheduleCache`, beam widths
   from the budget).
2. **Simulation**: sampled layers run on the cycle simulator; the
   vectorized and reference functional engines must agree bit-for-bit
   with each other and with the functional golden kernels under wrap-48,
   useful-MACC counters must conserve, and measured cycles must agree
   with the schedule model within the established tolerance.
3. **Serving**: one batch dispatches end to end through the replica
   service model.
4. **Faults**: a TPE mask shrinks the grid and the network recompiles on
   the largest healthy sub-grid.
5. **Integrity**: ABFT checksums detect an injected weight flip and
   correct an injected partial-sum flip on a GEMM layer.
6. **Host layers**: eltwise/softmax/norm kernels re-execute
   deterministically.
7. **Precision**: workloads with a mixed-precision spec additionally
   evaluate int8/bf16 error and compression.

The harness is budgeted, not exhaustive: beams are narrowed and sim
layers sampled so the whole registry fits in a test run.  Anything
skipped is visible in the report (``simmed`` counts, caps in the
:class:`ConformanceBudget`), not silently dropped.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.compiler.cache import ScheduleCache, layer_signature
from repro.compiler.codegen import compile_schedule
from repro.errors import FTDLError
from repro.faults.mask import FaultMask, largest_healthy_subgrid
from repro.integrity.abft import abft_layer_output
from repro.overlay.config import OverlayConfig
from repro.analysis.quantization import mixed_precision_report
from repro.serving.batcher import Batch, BatchServiceModel
from repro.serving.request import InferenceRequest
from repro.serving.scheduler import DispatchScheduler, ReplicaService
from repro.sim.cycle import CycleSimulator
from repro.sim.functional import random_layer_operands
from repro.sim.host import HostCpu
from repro.sim.pipeline import NetworkSimulator
from repro.workloads.layers import ConvLayer, LayerKind, MatMulLayer
from repro.workloads.registry import WorkloadSpec

#: Default conformance overlay: small enough that the reference engine
#: and per-layer search stay affordable across the whole registry.
CONFORMANCE_CONFIG = OverlayConfig(d1=3, d2=2, d3=2)


@dataclass(frozen=True)
class ConformanceBudget:
    """Caps bounding one workload's conformance run.

    The beams trade schedule quality for compile time; the sim caps
    bound how many (and how large) layers run on each functional engine.
    """

    spatial_beam: int = 16
    temporal_beam: int = 24
    #: Max distinct-signature layers simulated on the vectorized engine.
    max_sim_layers: int = 3
    #: Largest layer (in MACCs) the vectorized engine takes on.
    max_sim_maccs: int = 4_500_000
    #: Max layers double-run on the per-MACC reference engine.
    max_reference_layers: int = 2
    #: Largest layer (in MACCs) the reference engine takes on.
    max_reference_maccs: int = 60_000
    #: Requests in the serve-one-batch stage.
    batch_size: int = 2
    #: Host layers re-executed for determinism.
    max_host_layers: int = 3


#: The default harness budget.
DEFAULT_BUDGET = ConformanceBudget()


@dataclass(frozen=True)
class LayerSimCheck:
    """One sampled layer's simulation outcome."""

    name: str
    signature: str
    maccs: int
    model_cycles: int
    measured_cycles: int
    #: Which Eqn-12 term binds in the analytical estimate.
    bottleneck: str
    #: Whether the per-MACC reference engine double-ran this layer.
    reference_checked: bool
    #: Reference output/cycles identical to the vectorized engine's.
    engines_identical: bool
    #: Simulated output equals the functional golden kernel.
    golden_match: bool
    #: useful_maccs == layer MACCs (counter conservation).
    conserved: bool

    @property
    def rel_cycle_error(self) -> float:
        if not self.model_cycles:
            return 0.0
        return abs(self.measured_cycles - self.model_cycles) / self.model_cycles

    @property
    def cycles_agree(self) -> bool:
        """Model-vs-measured tolerance, derived from the integration
        tests' band (30 % plus a ±128-cycle head/tail allowance).

        Compute-bound layers get 35 % relative on top of that band: the
        steady-state Eqn-12 model amortizes per-temporal-tile pipeline
        fill/drain, which the simulator charges in full — batch-1 skinny
        GEMMs (GoogLeNet/ResNet ``fc``) measure up to ~33 % over the
        model on small grids.  Bandwidth-bound layers get 50 % relative,
        since the model only approximates bus and DRAM contention.
        """
        if self.bottleneck != "compute":
            return self.rel_cycle_error <= 0.5
        lo = self.model_cycles * 0.7 - 128
        hi = self.model_cycles * 1.3 + 128
        return self.rel_cycle_error <= 0.35 or lo <= self.measured_cycles <= hi


@dataclass
class WorkloadReport:
    """Everything one workload's conformance run established."""

    name: str
    suite: str
    network_name: str
    n_layers: int
    n_accelerated: int
    n_host: int
    maccs: int
    distinct_signatures: int
    #: Σ scheduled cycles across accelerated layers (model, batch 1).
    model_cycles: int
    sim_checks: tuple[LayerSimCheck, ...] = ()
    serve_batch: int = 0
    serve_s: float = 0.0
    degraded_grid: tuple[int, int, int] = (0, 0, 0)
    degraded_cycles: int = 0
    abft_layer: str = ""
    abft_psum_corrected: bool = False
    abft_weight_detected: bool = False
    host_checked: int = 0
    #: Whether the whole network chained bit-true through the sequential
    #: pipeline simulator (only for ``sequential`` workloads).
    chained: bool = False
    chain_cycles: int = 0
    precision_model_bytes: int = 0
    precision_int16_bytes: int = 0
    precision_min_sqnr_db: float = float("inf")
    errors: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.errors

    @property
    def max_rel_cycle_error(self) -> float:
        return max((c.rel_cycle_error for c in self.sim_checks), default=0.0)

    @property
    def precision_compression(self) -> float:
        if not self.precision_model_bytes:
            return 0.0
        return self.precision_int16_bytes / self.precision_model_bytes


def _signature_str(layer) -> str:
    return "x".join(str(v) for v in layer_signature(layer)[1:])


def _distinct_accelerated(network) -> list:
    """One representative layer per schedule signature, smallest first."""
    by_sig: dict[tuple, object] = {}
    for layer in network.accelerated_layers():
        by_sig.setdefault(layer_signature(layer), layer)
    return sorted(by_sig.values(), key=lambda l: (l.maccs, l.name))


def _check_layer_sim(
    layer, cache: ScheduleCache, config: OverlayConfig,
    rng: np.random.Generator, run_reference: bool,
) -> LayerSimCheck:
    schedule = cache.schedule(layer)
    compiled = compile_schedule(schedule)
    weights, acts = random_layer_operands(layer, rng)
    vec = CycleSimulator(config, functional_engine="vectorized").run_layer(
        compiled, weights, acts, check_golden=True,
    )
    engines_identical = True
    if run_reference:
        ref = CycleSimulator(config, functional_engine="reference").run_layer(
            compiled, weights, acts, check_golden=True,
        )
        engines_identical = (
            bool(np.array_equal(vec.output, ref.output))
            and vec.cycles == ref.cycles
            and vec.useful_maccs == ref.useful_maccs
        )
    return LayerSimCheck(
        name=layer.name,
        signature=_signature_str(layer),
        maccs=layer.maccs,
        model_cycles=schedule.cycles,
        measured_cycles=vec.cycles,
        bottleneck=schedule.estimate.bottleneck,
        reference_checked=run_reference,
        engines_identical=engines_identical,
        golden_match=vec.golden_match,
        conserved=vec.useful_maccs == layer.maccs,
    )


def _check_host_layers(network, budget: ConformanceBudget,
                       rng: np.random.Generator) -> int:
    """Re-execute new-kind host layers twice; count the ones that are
    deterministic (identical reruns) — raises through errors otherwise."""
    checked = 0
    cpu = HostCpu()
    for layer in network.host_layers():
        if layer.kind == LayerKind.EWOP:
            continue
        if checked >= budget.max_host_layers:
            break
        shape = (layer.n_features, layer.batch)
        x = rng.integers(-32768, 32768, size=shape).astype(np.int16)
        skip = None
        if layer.kind == LayerKind.ELTWISE:
            skip = rng.integers(-32768, 32768, size=shape).astype(np.int16)
        first = cpu.execute(layer, x, skip=skip)
        again = cpu.execute(layer, x, skip=skip)
        if not np.array_equal(first, again):
            raise FTDLError(
                f"host layer {layer.name!r} is not deterministic"
            )
        if first.shape != shape:
            raise FTDLError(
                f"host layer {layer.name!r} returned shape {first.shape}, "
                f"expected {shape}"
            )
        checked += 1
    return checked


def _check_abft(network, rng: np.random.Generator) -> tuple[str, bool, bool]:
    """Inject one psum flip (expect correction) and one weight flip
    (expect detection) on the smallest suitable GEMM layer."""
    candidates = [
        layer for layer in network.accelerated_layers()
        if isinstance(layer, MatMulLayer) and layer.maccs <= 4_000_000
    ]
    if not candidates:
        candidates = [
            layer for layer in network.accelerated_layers()
            if layer.maccs <= 250_000
        ]
    if not candidates:
        return "", False, False
    layer = min(candidates, key=lambda l: (l.maccs, l.name))
    weights, acts = random_layer_operands(layer, rng)
    psum = abft_layer_output(layer, weights, acts, psum_flips=((0, 30),))
    flip_word = int(rng.integers(0, weights.size))
    weight = abft_layer_output(
        layer, weights, acts, weight_flips=((flip_word, 7),)
    )
    return (
        layer.name,
        bool(psum.detected and psum.corrected),
        bool(weight.detected),
    )


def run_workload_conformance(
    spec: WorkloadSpec,
    config: OverlayConfig = CONFORMANCE_CONFIG,
    budget: ConformanceBudget = DEFAULT_BUDGET,
    seed: int = 0,
) -> WorkloadReport:
    """Run one registered workload through the full stack."""
    network = spec.builder()
    rng = np.random.default_rng(seed)
    cache = ScheduleCache(
        config, objective="performance",
        spatial_beam=budget.spatial_beam,
        temporal_beam=budget.temporal_beam,
    )
    distinct = _distinct_accelerated(network)
    report = WorkloadReport(
        name=spec.name,
        suite=spec.suite,
        network_name=network.name,
        n_layers=len(network.layers),
        n_accelerated=len(network.accelerated_layers()),
        n_host=len(network.host_layers()),
        maccs=network.accelerated_maccs,
        distinct_signatures=len(distinct),
        model_cycles=0,
    )

    # 1. Search: every accelerated layer schedules.
    try:
        report.model_cycles = sum(
            cache.schedule(layer).cycles
            for layer in network.accelerated_layers()
        )
    except FTDLError as error:
        report.errors.append(f"search: {error}")
        return report

    # 2. Simulation on sampled distinct signatures, smallest first.
    checks = []
    reference_runs = 0
    for layer in distinct:
        if len(checks) >= budget.max_sim_layers:
            break
        if layer.maccs > budget.max_sim_maccs:
            break
        run_reference = (
            reference_runs < budget.max_reference_layers
            and layer.maccs <= budget.max_reference_maccs
        )
        try:
            check = _check_layer_sim(layer, cache, config, rng, run_reference)
        except FTDLError as error:
            report.errors.append(f"sim {layer.name!r}: {error}")
            continue
        reference_runs += int(run_reference)
        checks.append(check)
        for flag, label in (
            (check.engines_identical, "engines diverge"),
            (check.golden_match, "golden mismatch"),
            (check.conserved, "MACC counter not conserved"),
            (check.cycles_agree, "model vs measured cycles disagree"),
        ):
            if not flag:
                report.errors.append(f"sim {layer.name!r}: {label}")
    report.sim_checks = tuple(checks)

    # 2b. Sequential workloads chain end to end through the bit-true
    # pipeline simulator (golden-checked per layer, host layers and
    # weight-source matmuls included).
    if spec.sequential:
        try:
            sim = NetworkSimulator(config)
            weights = {}
            for layer in network.accelerated_layers():
                if getattr(layer, "weight_source", None) is not None:
                    continue
                w, _ = random_layer_operands(layer, rng)
                weights[layer.name] = w
            first = network.layers[0]
            if isinstance(first, ConvLayer):
                in_shape = (first.in_channels, first.in_h, first.in_w)
            elif isinstance(first, MatMulLayer):
                in_shape = (first.in_features, first.batch)
            else:
                in_shape = (first.n_features, first.batch)
            inputs = rng.integers(-127, 128, size=in_shape).astype(np.int16)
            chain = sim.run(network, inputs, weights, check_golden=True)
            report.chained = True
            report.chain_cycles = chain.pipelined_cycles
            if len(chain.stages) != len(network.layers):
                report.errors.append("chain: not every layer executed")
        except FTDLError as error:
            report.errors.append(f"chain: {error}")

    # 3. Serve one batch end to end.
    try:
        model = BatchServiceModel(network, config, cache=cache)
        service = ReplicaService(model)
        scheduler = DispatchScheduler(service)
        requests = tuple(
            InferenceRequest(request_id=i, model=spec.name, arrival_s=0.0)
            for i in range(budget.batch_size)
        )
        batch = Batch(requests=requests, formed_s=0.0)
        replica = scheduler.free_replica(0.0)
        dispatch = scheduler.dispatch(replica, batch, 0.0)
        report.serve_batch = batch.size
        report.serve_s = dispatch.complete_s
        if dispatch.complete_s <= 0.0:
            report.errors.append("serve: non-positive completion time")
    except FTDLError as error:
        report.errors.append(f"serve: {error}")

    # 4. Fault-masked recompile on the largest healthy sub-grid.
    try:
        mask = FaultMask.from_coords([(0, 0, 0)])
        degraded_config = largest_healthy_subgrid(config, mask)
        report.degraded_grid = degraded_config.grid
        degraded_cache = ScheduleCache(
            degraded_config, objective="performance",
            spatial_beam=budget.spatial_beam,
            temporal_beam=budget.temporal_beam,
        )
        probe = distinct[: max(1, budget.max_sim_layers)]
        report.degraded_cycles = sum(
            degraded_cache.schedule(layer).cycles for layer in probe
        )
        healthy = sum(cache.schedule(layer).cycles for layer in probe)
        if report.degraded_cycles < healthy:
            report.errors.append(
                "faults: degraded grid is faster than healthy grid"
            )
    except FTDLError as error:
        report.errors.append(f"faults: {error}")

    # 5. ABFT detect/correct on a GEMM layer.
    try:
        name, psum_ok, weight_ok = _check_abft(network, rng)
        report.abft_layer = name
        report.abft_psum_corrected = psum_ok
        report.abft_weight_detected = weight_ok
        if name and not (psum_ok and weight_ok):
            report.errors.append("abft: flip not detected/corrected")
    except FTDLError as error:
        report.errors.append(f"abft: {error}")

    # 6. Host-layer determinism.
    try:
        report.host_checked = _check_host_layers(network, budget, rng)
    except FTDLError as error:
        report.errors.append(f"host: {error}")

    # 7. Mixed precision, when the workload declares a spec.
    if spec.precision is not None:
        try:
            mp = mixed_precision_report(network, spec.precision(network), rng)
            report.precision_model_bytes = mp.model_bytes
            report.precision_int16_bytes = mp.int16_bytes
            report.precision_min_sqnr_db = mp.min_sqnr_db
            if mp.min_sqnr_db < 20.0:
                report.errors.append(
                    f"precision: min SQNR {mp.min_sqnr_db:.1f} dB below floor"
                )
        except FTDLError as error:
            report.errors.append(f"precision: {error}")

    return report


def conformance_summary(reports: list[WorkloadReport]) -> str:
    """Deterministic fixed-width table over a set of reports.

    Every quantity is either an integer or derived from integers, so the
    rendered text is byte-stable across platforms — CI diffs it against
    a golden file.
    """
    lines = [
        f"{'workload':22s} {'suite':12s} {'lyr':>4s} {'acc':>4s} "
        f"{'host':>4s} {'sig':>4s} {'Mmacc':>7s} {'cycles':>10s} "
        f"{'sim':>4s} {'err%':>6s} {'grid':>6s} {'abft':>5s} {'chn':>4s} "
        f"{'mp':>5s} {'ok':>3s}"
    ]
    for r in reports:
        abft = (
            ("C" if r.abft_psum_corrected else "-")
            + ("D" if r.abft_weight_detected else "-")
        ) if r.abft_layer else "--"
        mp = f"{r.precision_compression:.1f}x" if r.precision_model_bytes else "-"
        grid = "x".join(str(v) for v in r.degraded_grid)
        lines.append(
            f"{r.name:22s} {r.suite:12s} {r.n_layers:4d} "
            f"{r.n_accelerated:4d} {r.n_host:4d} {r.distinct_signatures:4d} "
            f"{r.maccs / 1e6:7.2f} {r.model_cycles:10d} "
            f"{len(r.sim_checks):4d} {100 * r.max_rel_cycle_error:6.1f} "
            f"{grid:>6s} {abft:>5s} {'yes' if r.chained else '-':>4s} "
            f"{mp:>5s} {'yes' if r.ok else 'NO':>3s}"
        )
        for error in r.errors:
            lines.append(f"  ! {error}")
    return "\n".join(lines)
