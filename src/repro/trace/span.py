"""Span-based tracing on explicit virtual timestamps.

A :class:`Tracer` records *spans* (named intervals with arbitrary
key/value args), *span events* (points inside the currently open span),
and *instants* (free-standing points).  Every timestamp is supplied
explicitly by the caller — the serving engine passes its virtual-clock
instants, the compiler passes a monotonic step counter — so a trace is a
pure function of the run's inputs and **never** reads the wall clock
(``tests/test_no_wall_clock.py`` enforces this repo-wide).

Two recording styles coexist:

* **Stack-based** (:meth:`Tracer.begin` / :meth:`Tracer.end`) for code
  that traces as it executes — spans nest through an explicit stack and
  must close in LIFO order, which guarantees proper nesting by
  construction.  Used by the compiler search.
* **Retrospective** (:meth:`Tracer.add_span`) for discrete-event code
  that only learns an interval when it retires — the serving engine
  emits a request's whole span tree at completion time with explicit
  parent handles.  Containment inside the parent is checked on entry.

The default everywhere is :data:`NULL_TRACER`, a :class:`NullTracer`
whose methods are no-ops: instrumented code pays one dynamic dispatch
per call site when tracing is off, and — critically — tracing on or off
never changes any schedule, latency, or metric, because the tracer only
*observes* timestamps the caller already computed.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Iterator, Mapping

from repro.errors import TraceError

#: Timestamp units a tracer may declare.
UNITS = ("s", "step")


def _check_at(name: str, at: float) -> float:
    if not math.isfinite(at):
        raise TraceError(f"{name} timestamp must be finite, got {at}")
    return at


@dataclass(frozen=True)
class SpanEvent:
    """A named point inside one span's interval."""

    name: str
    at: float
    args: Mapping[str, Any] = field(default_factory=dict)


@dataclass(frozen=True)
class Instant:
    """A free-standing named point on one track."""

    name: str
    at: float
    track: str = "main"
    args: Mapping[str, Any] = field(default_factory=dict)


@dataclass
class Span:
    """One named interval.  ``end is None`` while the span is open."""

    span_id: int
    name: str
    track: str
    start: float
    end: float | None = None
    parent_id: int | None = None
    args: dict[str, Any] = field(default_factory=dict)
    events: list[SpanEvent] = field(default_factory=list)

    @property
    def closed(self) -> bool:
        return self.end is not None

    @property
    def duration(self) -> float:
        """Span length in the tracer's unit.

        Raises:
            TraceError: if the span is still open.
        """
        if self.end is None:
            raise TraceError(f"span {self.name!r} (#{self.span_id}) is open")
        return self.end - self.start


class Tracer:
    """Collect spans and instants with caller-supplied timestamps.

    Args:
        unit: What the timestamps mean — ``"s"`` (virtual seconds, the
            serving engine) or ``"step"`` (a monotonic work counter, the
            compiler).  Exporters use this to scale the timeline.
    """

    enabled = True

    def __init__(self, unit: str = "s"):
        if unit not in UNITS:
            raise TraceError(f"unit must be one of {UNITS}, got {unit!r}")
        self.unit = unit
        self.spans: list[Span] = []
        self.instants: list[Instant] = []
        self._stack: list[Span] = []
        self._next_id = 0

    # ------------------------------------------------------------------ #
    # stack-based recording (traces as the code runs)
    # ------------------------------------------------------------------ #
    def begin(self, name: str, at: float, *, track: str = "main",
              **args: Any) -> Span:
        """Open a span at ``at``, nested under the current open span.

        Raises:
            TraceError: for a non-finite timestamp, or one before the
                enclosing span's start.
        """
        _check_at(name, at)
        parent = self._stack[-1] if self._stack else None
        if parent is not None and at < parent.start:
            raise TraceError(
                f"span {name!r} starts at {at} before its parent "
                f"{parent.name!r} at {parent.start}"
            )
        span = Span(
            span_id=self._next_id, name=name, track=track, start=at,
            parent_id=parent.span_id if parent else None, args=dict(args),
        )
        self._next_id += 1
        self.spans.append(span)
        self._stack.append(span)
        return span

    def end(self, at: float, span: Span | None = None) -> Span:
        """Close the innermost open span at ``at``.

        ``span``, when given, asserts which span the caller believes it
        is closing — a mismatch means unbalanced begin/end pairs.

        Raises:
            TraceError: if no span is open, ``span`` is not the
                innermost one, or ``at`` precedes the span's start.
        """
        if not self._stack:
            raise TraceError("end() with no open span")
        top = self._stack[-1]
        if span is not None and span is not top:
            raise TraceError(
                f"end() for span {span.name!r} but {top.name!r} is "
                f"innermost — begin/end pairs are unbalanced"
            )
        _check_at(top.name, at)
        if at < top.start:
            raise TraceError(
                f"span {top.name!r} ends at {at} before its start "
                f"{top.start}"
            )
        self._stack.pop()
        top.end = at
        return top

    def event(self, name: str, at: float, **args: Any) -> SpanEvent:
        """Attach a named point to the innermost open span.

        Raises:
            TraceError: if no span is open or ``at`` is non-finite.
        """
        if not self._stack:
            raise TraceError(f"event {name!r} with no open span")
        _check_at(name, at)
        event = SpanEvent(name=name, at=at, args=dict(args))
        self._stack[-1].events.append(event)
        return event

    # ------------------------------------------------------------------ #
    # retrospective recording (discrete-event code, emits at retirement)
    # ------------------------------------------------------------------ #
    def add_span(self, name: str, start: float, end: float, *,
                 parent: Span | None = None, track: str = "main",
                 **args: Any) -> Span:
        """Record an already-finished span ``[start, end]``.

        ``parent`` attaches the span under another (itself usually
        retrospective); the child interval must sit inside the parent's.

        Raises:
            TraceError: for non-finite timestamps, ``end < start``, or a
                child interval escaping its parent.
        """
        _check_at(name, start)
        _check_at(name, end)
        if end < start:
            raise TraceError(
                f"span {name!r} ends at {end} before its start {start}"
            )
        parent_id = None
        if parent is not None and parent.span_id >= 0:
            if start < parent.start or (
                parent.end is not None and end > parent.end
            ):
                raise TraceError(
                    f"span {name!r} [{start}, {end}] escapes parent "
                    f"{parent.name!r} [{parent.start}, {parent.end}]"
                )
            parent_id = parent.span_id
        span = Span(
            span_id=self._next_id, name=name, track=track, start=start,
            end=end, parent_id=parent_id, args=dict(args),
        )
        self._next_id += 1
        self.spans.append(span)
        return span

    def instant(self, name: str, at: float, *, track: str = "main",
                **args: Any) -> Instant:
        """Record a free-standing point (fault injection, failover, ...)."""
        _check_at(name, at)
        instant = Instant(name=name, at=at, track=track, args=dict(args))
        self.instants.append(instant)
        return instant

    # ------------------------------------------------------------------ #
    # inspection
    # ------------------------------------------------------------------ #
    @property
    def open_depth(self) -> int:
        """Number of spans begun but not yet ended."""
        return len(self._stack)

    def by_id(self, span_id: int) -> Span:
        """Look up one span.

        Raises:
            TraceError: for an unknown id.
        """
        for span in self.spans:
            if span.span_id == span_id:
                return span
        raise TraceError(f"unknown span id {span_id}")

    def roots(self) -> list[Span]:
        """Top-level spans (no parent), in recording order."""
        return [s for s in self.spans if s.parent_id is None]

    def children_of(self, span: Span) -> list[Span]:
        """Direct children of ``span``, in recording order."""
        return [s for s in self.spans if s.parent_id == span.span_id]

    def find(self, name: str) -> Iterator[Span]:
        """Spans named ``name``, in recording order."""
        return (s for s in self.spans if s.name == name)

    def validate(self) -> list[str]:
        """Well-formedness problems, empty when the trace is clean.

        Checks: every span closed, ``end >= start``, children inside
        their parent's interval, span events inside their span, parent
        ids resolving.  (Siblings may overlap — the serving engine's
        retrospective request spans legitimately do.)
        """
        problems = []
        by_id = {s.span_id: s for s in self.spans}
        for span in self.spans:
            tag = f"span {span.name!r} (#{span.span_id})"
            if span.end is None:
                problems.append(f"{tag} was never closed")
                continue
            if span.end < span.start:
                problems.append(
                    f"{tag} ends at {span.end} before start {span.start}"
                )
            parent = None
            if span.parent_id is not None:
                parent = by_id.get(span.parent_id)
                if parent is None:
                    problems.append(
                        f"{tag} references unknown parent "
                        f"#{span.parent_id}"
                    )
            if parent is not None and parent.end is not None:
                if span.start < parent.start or span.end > parent.end:
                    problems.append(
                        f"{tag} [{span.start}, {span.end}] escapes parent "
                        f"{parent.name!r} [{parent.start}, {parent.end}]"
                    )
            for event in span.events:
                if not span.start <= event.at <= span.end:
                    problems.append(
                        f"{tag} event {event.name!r} at {event.at} is "
                        f"outside [{span.start}, {span.end}]"
                    )
        return problems


#: Shared placeholder returned by :class:`NullTracer` methods so call
#: sites can thread a "parent" through without branching.
_NULL_SPAN = Span(span_id=-1, name="null", track="main", start=0.0, end=0.0)


class NullTracer(Tracer):
    """A tracer that records nothing — the zero-cost disabled default."""

    enabled = False

    def begin(self, name: str, at: float, *, track: str = "main",
              **args: Any) -> Span:
        return _NULL_SPAN

    def end(self, at: float, span: Span | None = None) -> Span:
        return _NULL_SPAN

    def event(self, name: str, at: float, **args: Any) -> SpanEvent:
        return SpanEvent(name="null", at=0.0)

    def add_span(self, name: str, start: float, end: float, *,
                 parent: Span | None = None, track: str = "main",
                 **args: Any) -> Span:
        return _NULL_SPAN

    def instant(self, name: str, at: float, *, track: str = "main",
                **args: Any) -> Instant:
        return Instant(name="null", at=0.0)


#: Module-wide disabled tracer; instrumented code defaults to it.
NULL_TRACER = NullTracer()


def as_tracer(tracer: Tracer | None) -> Tracer:
    """Normalize an optional tracer argument to a usable instance."""
    return tracer if tracer is not None else NULL_TRACER
