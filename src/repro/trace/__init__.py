"""End-to-end observability: structured tracing, counters, exporters.

The paper's claims are quantitative — which bound each schedule hits,
where serving latency goes, how faults degrade efficiency — and this
package makes those numbers visible *during* a run instead of only as
final aggregates:

* :mod:`repro.trace.span` — span-based tracing on explicit virtual
  timestamps (:class:`Tracer`), with a zero-cost :class:`NullTracer`
  default.  The serving engine stamps spans from its virtual clock; the
  compiler stamps them from a monotonic step counter.  Wall clock is
  never read (``tests/test_no_wall_clock.py`` enforces it).
* :mod:`repro.trace.metrics` — labeled counters, gauges, and fixed-
  bucket histograms in a :class:`MetricsRegistry`.
* :mod:`repro.trace.export` — a ``chrome://tracing`` JSON exporter and
  a Prometheus text exporter, both byte-deterministic for golden
  diffing.

Instrumented layers: the compiler search (:mod:`repro.compiler.search`,
:mod:`repro.compiler.cache`, :mod:`repro.compiler.hwsearch`), the
serving engine (:mod:`repro.serving.engine`), and the fault machinery
(:mod:`repro.faults.monitor`, :mod:`repro.faults.schedule`).  All of it
is observation-only: running with tracing on reproduces the exact
schedules, latencies, and metrics of a run with tracing off.
"""

from repro.trace.export import chrome_trace, chrome_trace_json, prometheus_text
from repro.trace.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NULL_METRICS,
    NullMetricsRegistry,
    as_metrics,
)
from repro.trace.span import (
    Instant,
    NULL_TRACER,
    NullTracer,
    Span,
    SpanEvent,
    Tracer,
    as_tracer,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "Instant",
    "MetricsRegistry",
    "NULL_METRICS",
    "NULL_TRACER",
    "NullMetricsRegistry",
    "NullTracer",
    "Span",
    "SpanEvent",
    "Tracer",
    "as_metrics",
    "as_tracer",
    "chrome_trace",
    "chrome_trace_json",
    "prometheus_text",
]
