"""Exporters: Chrome trace JSON and Prometheus text exposition.

Both outputs are deterministic functions of their inputs — series are
emitted in sorted order and floats are formatted with ``repr`` — so a
seeded run's exports diff cleanly against golden files.

Chrome traces open in ``chrome://tracing`` (or https://ui.perfetto.dev):
each tracer becomes one *process* row, each track one *thread* row.
Tracers with ``unit="s"`` scale virtual seconds to the microseconds the
format expects; ``unit="step"`` tracers map one step to one microsecond,
so compiler step counts read directly off the timeline.
"""

from __future__ import annotations

import json
from typing import Mapping

from repro.errors import TraceError
from repro.trace.metrics import (
    Counter,
    Gauge,
    Histogram,
    LabelKey,
    MetricsRegistry,
)
from repro.trace.span import Tracer


def _scale(tracer: Tracer) -> float:
    """Timestamp → microsecond factor for one tracer."""
    return 1e6 if tracer.unit == "s" else 1.0


def chrome_trace(
    tracers: Mapping[str, Tracer] | Tracer,
) -> dict:
    """Build a ``chrome://tracing`` JSON object from one or more tracers.

    Args:
        tracers: One tracer, or ``{process_name: tracer}`` — each named
            tracer becomes its own process row so mixed-unit timelines
            (compiler steps vs serving seconds) stay visually separate.

    Raises:
        TraceError: if any span is still open (an unbalanced trace
            cannot be rendered honestly).
    """
    if isinstance(tracers, Tracer):
        tracers = {"trace": tracers}
    events: list[dict] = []
    for pid, (process, tracer) in enumerate(tracers.items(), start=1):
        open_spans = [s.name for s in tracer.spans if not s.closed]
        if open_spans:
            raise TraceError(
                f"tracer {process!r} has open spans: {open_spans}"
            )
        scale = _scale(tracer)
        events.append({
            "ph": "M", "name": "process_name", "pid": pid, "tid": 0,
            "args": {"name": f"{process} [{tracer.unit}]"},
        })
        tids: dict[str, int] = {}

        def tid_of(track: str, pid: int = pid, tids: dict = tids) -> int:
            if track not in tids:
                tids[track] = len(tids) + 1
                events.append({
                    "ph": "M", "name": "thread_name", "pid": pid,
                    "tid": tids[track], "args": {"name": track},
                })
            return tids[track]

        for span in tracer.spans:
            assert span.end is not None
            tid = tid_of(span.track)
            events.append({
                "ph": "X", "name": span.name, "cat": "span",
                "pid": pid, "tid": tid,
                "ts": span.start * scale,
                "dur": (span.end - span.start) * scale,
                "args": dict(span.args),
            })
            for event in span.events:
                events.append({
                    "ph": "i", "name": event.name, "cat": "event",
                    "pid": pid, "tid": tid, "s": "t",
                    "ts": event.at * scale,
                    "args": dict(event.args),
                })
        for instant in tracer.instants:
            events.append({
                "ph": "i", "name": instant.name, "cat": "instant",
                "pid": pid, "tid": tid_of(instant.track), "s": "t",
                "ts": instant.at * scale,
                "args": dict(instant.args),
            })
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def chrome_trace_json(tracers: Mapping[str, Tracer] | Tracer) -> str:
    """:func:`chrome_trace` serialized deterministically."""
    return json.dumps(chrome_trace(tracers), sort_keys=True)


# ---------------------------------------------------------------------- #
# Prometheus text exposition
# ---------------------------------------------------------------------- #
def _fmt_value(value: float) -> str:
    """Deterministic number formatting: integral values lose the dot."""
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


def _fmt_labels(key: LabelKey, extra: tuple[tuple[str, str], ...] = ()) -> str:
    pairs = tuple(key) + extra
    if not pairs:
        return ""
    body = ",".join(f'{name}="{value}"' for name, value in pairs)
    return "{" + body + "}"


def prometheus_text(registry: MetricsRegistry) -> str:
    """Render every metric in Prometheus' text exposition format.

    Output is sorted by metric name, then label set, so two identical
    runs produce byte-identical text.
    """
    lines: list[str] = []
    for metric in registry.metrics():
        lines.append(f"# HELP {metric.name} {metric.help}".rstrip())
        lines.append(f"# TYPE {metric.name} {metric.kind}")
        if isinstance(metric, (Counter, Gauge)):
            series = metric.series()
            if not series:
                lines.append(f"{metric.name} 0")
            for key, value in series.items():
                lines.append(
                    f"{metric.name}{_fmt_labels(key)} {_fmt_value(value)}"
                )
        elif isinstance(metric, Histogram):
            for key in metric.series():
                labels = dict(key)
                cumulative = metric.cumulative_buckets(**labels)
                bounds = [repr(b) for b in metric.buckets] + ["+Inf"]
                for bound, count in zip(bounds, cumulative):
                    lines.append(
                        f"{metric.name}_bucket"
                        f"{_fmt_labels(key, (('le', bound),))} {count}"
                    )
                lines.append(
                    f"{metric.name}_sum{_fmt_labels(key)} "
                    f"{_fmt_value(metric.sum(**labels))}"
                )
                lines.append(
                    f"{metric.name}_count{_fmt_labels(key)} "
                    f"{metric.count(**labels)}"
                )
        else:  # pragma: no cover - registry only holds the three kinds
            raise TraceError(f"unknown metric kind {metric!r}")
    return "\n".join(lines) + ("\n" if lines else "")
