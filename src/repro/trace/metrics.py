"""Lightweight counters, gauges, and histograms with labels.

A :class:`MetricsRegistry` is the numeric half of the observability
layer: monotone :class:`Counter` series (candidates enumerated, cache
hits, drops by reason), :class:`Gauge` last-value series (per-replica
utilization), and fixed-bucket :class:`Histogram` series (request
latency).  Every series is keyed by a sorted label tuple, so iteration
— and therefore the Prometheus text exposition in
:mod:`repro.trace.export` — is deterministic.

Like the tracer, the registry never reads a clock: values are whatever
the instrumented code hands in, on the run's virtual time base.  The
disabled default is :data:`NULL_METRICS`, whose instruments drop every
update.
"""

from __future__ import annotations

import math
import re
from typing import Mapping

from repro.errors import TraceError

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")

#: Label-set key: labels sorted by name, as a hashable tuple.
LabelKey = tuple[tuple[str, str], ...]


def _check_name(name: str) -> str:
    if not _NAME_RE.match(name):
        raise TraceError(f"invalid metric name {name!r}")
    return name


def _label_key(labels: Mapping[str, object]) -> LabelKey:
    for label in labels:
        if not _NAME_RE.match(label) or label.startswith("__"):
            raise TraceError(f"invalid label name {label!r}")
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


class Counter:
    """A monotonically increasing set of labeled series."""

    kind = "counter"

    def __init__(self, name: str, help: str = ""):
        self.name = _check_name(name)
        self.help = help
        self._values: dict[LabelKey, float] = {}

    def inc(self, amount: float = 1.0, **labels: object) -> None:
        """Add ``amount`` (>= 0) to the labeled series.

        Raises:
            TraceError: for a negative or non-finite amount.
        """
        if not math.isfinite(amount) or amount < 0:
            raise TraceError(
                f"counter {self.name} increment must be finite and >= 0, "
                f"got {amount}"
            )
        key = _label_key(labels)
        self._values[key] = self._values.get(key, 0.0) + amount

    def value(self, **labels: object) -> float:
        """Current value of the labeled series (0 if never incremented)."""
        return self._values.get(_label_key(labels), 0.0)

    def series(self) -> dict[LabelKey, float]:
        """All series, sorted by label key."""
        return dict(sorted(self._values.items()))


class Gauge:
    """A last-value-wins set of labeled series."""

    kind = "gauge"

    def __init__(self, name: str, help: str = ""):
        self.name = _check_name(name)
        self.help = help
        self._values: dict[LabelKey, float] = {}

    def set(self, value: float, **labels: object) -> None:
        """Overwrite the labeled series with ``value``.

        Raises:
            TraceError: for a non-finite value.
        """
        if not math.isfinite(value):
            raise TraceError(
                f"gauge {self.name} value must be finite, got {value}"
            )
        self._values[_label_key(labels)] = float(value)

    def value(self, **labels: object) -> float:
        """Current value of the labeled series.

        Raises:
            TraceError: if the series was never set.
        """
        key = _label_key(labels)
        if key not in self._values:
            raise TraceError(f"gauge {self.name}{dict(key)} was never set")
        return self._values[key]

    def series(self) -> dict[LabelKey, float]:
        return dict(sorted(self._values.items()))


class Histogram:
    """Fixed-bucket distribution of labeled observations.

    Buckets are upper bounds (a ``+Inf`` bucket is implicit), matching
    Prometheus' cumulative-bucket exposition.
    """

    kind = "histogram"

    #: Latency-flavoured default bounds, seconds.
    DEFAULT_BUCKETS = (
        0.0005, 0.001, 0.002, 0.005, 0.01, 0.02, 0.05, 0.1,
    )

    def __init__(self, name: str, help: str = "",
                 buckets: tuple[float, ...] | None = None):
        self.name = _check_name(name)
        self.help = help
        bounds = tuple(buckets) if buckets is not None else self.DEFAULT_BUCKETS
        if not bounds:
            raise TraceError(f"histogram {name} needs at least one bucket")
        if any(not math.isfinite(b) for b in bounds):
            raise TraceError(f"histogram {name} buckets must be finite")
        if any(b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])):
            raise TraceError(
                f"histogram {name} buckets must be strictly increasing, "
                f"got {bounds}"
            )
        self.buckets = bounds
        self._counts: dict[LabelKey, list[int]] = {}
        self._sums: dict[LabelKey, float] = {}
        self._totals: dict[LabelKey, int] = {}

    def observe(self, value: float, **labels: object) -> None:
        """Record one observation into the labeled series.

        Raises:
            TraceError: for a non-finite value.
        """
        if not math.isfinite(value):
            raise TraceError(
                f"histogram {self.name} observation must be finite, "
                f"got {value}"
            )
        key = _label_key(labels)
        if key not in self._counts:
            self._counts[key] = [0] * (len(self.buckets) + 1)
        for i, bound in enumerate(self.buckets):
            if value <= bound:
                self._counts[key][i] += 1
                break
        else:
            self._counts[key][-1] += 1
        self._sums[key] = self._sums.get(key, 0.0) + value
        self._totals[key] = self._totals.get(key, 0) + 1

    def count(self, **labels: object) -> int:
        """Observations recorded into the labeled series."""
        return self._totals.get(_label_key(labels), 0)

    def sum(self, **labels: object) -> float:
        """Sum of observations in the labeled series."""
        return self._sums.get(_label_key(labels), 0.0)

    def cumulative_buckets(self, **labels: object) -> list[int]:
        """Cumulative counts per bucket bound (``+Inf`` last)."""
        raw = self._counts.get(
            _label_key(labels), [0] * (len(self.buckets) + 1)
        )
        out, running = [], 0
        for count in raw:
            running += count
            out.append(running)
        return out

    def series(self) -> dict[LabelKey, list[int]]:
        return {key: list(counts)
                for key, counts in sorted(self._counts.items())}


Metric = Counter | Gauge | Histogram


class MetricsRegistry:
    """Get-or-create home for every metric of one run."""

    enabled = True

    def __init__(self) -> None:
        self._metrics: dict[str, Metric] = {}

    def __len__(self) -> int:
        return len(self._metrics)

    def _get(self, name: str, kind: type, factory) -> Metric:
        existing = self._metrics.get(name)
        if existing is not None:
            if not isinstance(existing, kind):
                raise TraceError(
                    f"metric {name!r} already registered as "
                    f"{existing.kind}, not {kind.kind}"
                )
            return existing
        metric = factory()
        self._metrics[name] = metric
        return metric

    def counter(self, name: str, help: str = "") -> Counter:
        """The counter called ``name``, created on first use."""
        return self._get(name, Counter, lambda: Counter(name, help))

    def gauge(self, name: str, help: str = "") -> Gauge:
        """The gauge called ``name``, created on first use."""
        return self._get(name, Gauge, lambda: Gauge(name, help))

    def histogram(self, name: str, help: str = "",
                  buckets: tuple[float, ...] | None = None) -> Histogram:
        """The histogram called ``name``, created on first use."""
        return self._get(
            name, Histogram, lambda: Histogram(name, help, buckets)
        )

    def metrics(self) -> list[Metric]:
        """Every registered metric, sorted by name."""
        return [self._metrics[name] for name in sorted(self._metrics)]


class _NullCounter(Counter):
    def inc(self, amount: float = 1.0, **labels: object) -> None:
        pass


class _NullGauge(Gauge):
    def set(self, value: float, **labels: object) -> None:
        pass


class _NullHistogram(Histogram):
    def observe(self, value: float, **labels: object) -> None:
        pass


class NullMetricsRegistry(MetricsRegistry):
    """A registry whose instruments drop every update — the disabled
    default for instrumented code."""

    enabled = False

    def __init__(self) -> None:
        super().__init__()
        self._counter = _NullCounter("null")
        self._gauge = _NullGauge("null")
        self._histogram = _NullHistogram("null")

    def counter(self, name: str, help: str = "") -> Counter:
        return self._counter

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self._gauge

    def histogram(self, name: str, help: str = "",
                  buckets: tuple[float, ...] | None = None) -> Histogram:
        return self._histogram


#: Module-wide disabled registry; instrumented code defaults to it.
NULL_METRICS = NullMetricsRegistry()


def as_metrics(metrics: MetricsRegistry | None) -> MetricsRegistry:
    """Normalize an optional registry argument to a usable instance."""
    return metrics if metrics is not None else NULL_METRICS
