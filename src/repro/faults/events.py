"""Fault event taxonomy over the virtual clock.

Every event is a frozen dataclass with a virtual timestamp ``at_s`` and
the replica it strikes; a :class:`~repro.faults.schedule.FaultSchedule`
is just a sorted tuple of them.  The taxonomy mirrors what actually goes
wrong in an FPGA fleet:

* :class:`TPEFault` — a DSP/BRAM tile failure inside the ``D1×D2×D3``
  grid.  ``stuck=True`` models a hard (stuck-at) fault: the tile is
  masked for the rest of the run and the replica recompiles onto its
  largest healthy sub-grid.  ``stuck=False`` models a transient upset
  (SEU): the batch in flight is corrupted and must be retried, but the
  tile stays usable.
* :class:`DramBitFlip` — an off-chip memory upset.  ECC-correctable
  flips are counted and absorbed; uncorrectable flips poison the batch
  in flight.
* :class:`LinkFault` — a transient bus/link glitch (ActBUS/PSumBUS or
  host link); the batch in flight is retried.
* :class:`ReplicaCrash` / :class:`ReplicaRecovery` — the whole replica
  (board, shell, or host process) goes away and later returns.
* :class:`ReplicaSlowdown` — the replica keeps serving but slower (e.g.
  thermal throttling or a congested host); cleared by the next
  :class:`ReplicaRecovery`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import FaultError

#: (sb_row, sb_col, chain_pos): SuperBlock row in [0, D3), column in
#: [0, D2), TPE position along the cascade chain in [0, D1).
TpeCoord = tuple[int, int, int]


@dataclass(frozen=True)
class FaultEvent:
    """Base class: one fault striking ``replica`` at virtual ``at_s``."""

    at_s: float
    replica: str

    def __post_init__(self) -> None:
        if not math.isfinite(self.at_s) or self.at_s < 0:
            raise FaultError(
                f"fault timestamp must be finite and >= 0, got {self.at_s}",
                replica=self.replica,
            )
        if not self.replica:
            raise FaultError(f"fault event at {self.at_s} names no replica")

    @property
    def kind(self) -> str:
        """Short counter key, e.g. ``"crash"`` or ``"tpe_stuck"``."""
        raise NotImplementedError


@dataclass(frozen=True)
class TPEFault(FaultEvent):
    """A DSP/BRAM tile fault at one TPE coordinate of the grid."""

    sb_row: int
    sb_col: int
    chain_pos: int
    stuck: bool = True

    def __post_init__(self) -> None:
        super().__post_init__()
        if min(self.sb_row, self.sb_col, self.chain_pos) < 0:
            raise FaultError(
                f"TPE coordinate must be non-negative, got "
                f"({self.sb_row}, {self.sb_col}, {self.chain_pos})",
                replica=self.replica, at_s=self.at_s,
            )

    @property
    def coord(self) -> TpeCoord:
        return (self.sb_row, self.sb_col, self.chain_pos)

    @property
    def kind(self) -> str:
        return "tpe_stuck" if self.stuck else "tpe_transient"


@dataclass(frozen=True)
class DramBitFlip(FaultEvent):
    """An off-chip DRAM upset; ``correctable`` means ECC absorbs it.

    ``word_addr`` optionally pins the upset to one 16-bit word of the
    replica's operand address space (weights followed by activations);
    the SDC injection path (:mod:`repro.integrity.inject`) uses it to
    decide which stored operand word the flip lands in.  ``None`` leaves
    the site to the injector's seeded draw.
    """

    correctable: bool = True
    word_addr: int | None = None

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.word_addr is not None and self.word_addr < 0:
            raise FaultError(
                f"DRAM word address must be non-negative, got {self.word_addr}",
                replica=self.replica, at_s=self.at_s,
            )

    @property
    def kind(self) -> str:
        return "dram_ecc" if self.correctable else "dram_uncorrectable"


@dataclass(frozen=True)
class LinkFault(FaultEvent):
    """A transient bus/link glitch poisoning the batch in flight."""

    @property
    def kind(self) -> str:
        return "link"


@dataclass(frozen=True)
class ReplicaCrash(FaultEvent):
    """The replica stops serving; its in-flight batch is lost."""

    @property
    def kind(self) -> str:
        return "crash"


@dataclass(frozen=True)
class ReplicaSlowdown(FaultEvent):
    """The replica serves ``factor``× slower until the next recovery."""

    factor: float = 2.0

    def __post_init__(self) -> None:
        super().__post_init__()
        if not math.isfinite(self.factor) or self.factor < 1.0:
            raise FaultError(
                f"slowdown factor must be finite and >= 1, got {self.factor}",
                replica=self.replica, at_s=self.at_s,
            )

    @property
    def kind(self) -> str:
        return "slowdown"


@dataclass(frozen=True)
class ReplicaRecovery(FaultEvent):
    """The replica returns to healthy full-speed service."""

    @property
    def kind(self) -> str:
        return "recovery"
