"""Fault masks and the largest-healthy-sub-grid derivation.

FTDL's overlay is a uniform ``D1×D2×D3`` grid: D1 TPEs cascade into a
SuperBlock chain, D2 SuperBlocks form a SIMD row, D3 rows run under
independent controllers.  The compiler's mapping space assumes the grid
is *rectangular and uniform*, so the degraded-mode strategy is not to
schedule around individual dead tiles but to carve out the largest
healthy sub-grid ``(d1', d2', d3')`` and recompile for it:

* ``d1'`` — every SuperBlock in use must offer at least ``d1'`` healthy
  chain positions (faulty TPEs at the chain tail are bypassed; the
  usable chain is the count of healthy positions).
* ``d2'`` / ``d3'`` — a row contributes only if at least ``d2'`` of its
  SuperBlocks meet the ``d1'`` bar; ``d3'`` is the number of such rows.

:func:`largest_healthy_subgrid` maximizes ``d1' * d2' * d3'`` jointly —
clustered faults (a bad DSP column, a dead row) cost exactly their
region, and scattered faults degrade by shortening the uniform chain
rather than cliffing the whole grid.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Collection, Iterable

from repro.errors import FaultError
from repro.faults.events import TPEFault, TpeCoord
from repro.overlay.config import OverlayConfig


@dataclass(frozen=True)
class FaultMask:
    """An immutable set of masked (faulty) TPE coordinates."""

    masked: frozenset[TpeCoord] = frozenset()

    @classmethod
    def from_coords(cls, coords: Iterable[TpeCoord]) -> "FaultMask":
        return cls(masked=frozenset(tuple(c) for c in coords))

    @classmethod
    def from_faults(cls, faults: Iterable[TPEFault]) -> "FaultMask":
        """Mask from the *stuck-at* faults of an event stream."""
        return cls(masked=frozenset(f.coord for f in faults if f.stuck))

    def add(self, coord: TpeCoord) -> "FaultMask":
        return FaultMask(masked=self.masked | {tuple(coord)})

    def __len__(self) -> int:
        return len(self.masked)

    def __bool__(self) -> bool:
        return bool(self.masked)

    def fraction(self, config: OverlayConfig) -> float:
        """Masked share of the grid's TPEs."""
        return len(self.masked) / config.n_tpe

    def validate(self, config: OverlayConfig) -> None:
        """Check every coordinate lies inside ``config``'s grid.

        Raises:
            FaultError: for an out-of-range coordinate.
        """
        for sb_row, sb_col, chain_pos in self.masked:
            if not (0 <= sb_row < config.d3 and 0 <= sb_col < config.d2
                    and 0 <= chain_pos < config.d1):
                raise FaultError(
                    f"TPE coordinate ({sb_row}, {sb_col}, {chain_pos}) "
                    f"outside grid {config.d1}x{config.d2}x{config.d3}"
                )


def largest_healthy_subgrid(
    config: OverlayConfig,
    mask: FaultMask | Collection[TpeCoord],
) -> OverlayConfig:
    """The best uniform sub-grid of ``config`` avoiding masked TPEs.

    Maximizes retained TPEs ``d1' * d2' * d3'``; ties prefer a longer
    chain (``d1'``), then more rows (``d3'``) — longer chains amortize
    the SuperBlock fill latency, and rows are independent controllers.

    Raises:
        FaultError: if a coordinate is out of range or no healthy
            sub-grid remains.
    """
    if not isinstance(mask, FaultMask):
        mask = FaultMask.from_coords(mask)
    mask.validate(config)
    if not mask:
        return config

    # Healthy chain positions per SuperBlock.
    faults_per_sb: dict[tuple[int, int], set[int]] = {}
    for sb_row, sb_col, chain_pos in mask.masked:
        faults_per_sb.setdefault((sb_row, sb_col), set()).add(chain_pos)
    healthy = [
        [
            config.d1 - len(faults_per_sb.get((row, col), ()))
            for col in range(config.d2)
        ]
        for row in range(config.d3)
    ]

    # Candidate chain lengths: every distinct healthy count (plus d1).
    candidates = sorted(
        {config.d1} | {h for row in healthy for h in row if h > 0},
        reverse=True,
    )
    best: tuple[int, int, int, int] | None = None  # (n_tpe, d1', d3', d2')
    for d1p in candidates:
        # Per row: SuperBlocks offering at least d1' healthy positions.
        good = sorted(
            (sum(1 for h in row if h >= d1p) for row in healthy),
            reverse=True,
        )
        for d3p, d2p in enumerate(good, start=1):
            if d2p == 0:
                break
            key = (d1p * d2p * d3p, d1p, d3p, d2p)
            if best is None or key > best:
                best = key
    if best is None:
        raise FaultError(
            f"no healthy sub-grid remains of "
            f"{config.d1}x{config.d2}x{config.d3} "
            f"({len(mask)} TPEs masked)"
        )
    _, d1p, d3p, d2p = best
    return config.with_grid(d1p, d2p, d3p)
