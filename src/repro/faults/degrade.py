"""Fault-aware compilation: recompile a workload for a degraded grid.

Given a fault mask, :func:`degraded_compile` derives the largest healthy
sub-grid (:func:`~repro.faults.mask.largest_healthy_subgrid`), re-runs
the analytical schedule search for every accelerated layer on it, and
reports the cost of running degraded: cycle inflation, modeled
throughput retention, and the hardware-efficiency delta against the
healthy overlay.  This is the quantitative answer to "how gracefully
does the deployment degrade": masking a slice of the grid should cost
about that slice of throughput, not a cliff.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Collection

from repro.compiler.search import schedule_network
from repro.faults.events import TpeCoord
from repro.faults.mask import FaultMask, largest_healthy_subgrid
from repro.overlay.config import OverlayConfig


@dataclass(frozen=True)
class DegradationReport:
    """Healthy-vs-degraded compilation outcome for one network.

    Attributes:
        network: Workload name.
        healthy: The intact overlay configuration.
        degraded: The largest healthy sub-grid the mask allows.
        n_masked: Masked TPE count.
        healthy_cycles: Batch-1 execution cycles on the intact grid.
        degraded_cycles: Batch-1 execution cycles on the sub-grid.
        total_maccs: MACC work of the network's accelerated layers.
    """

    network: str
    healthy: OverlayConfig
    degraded: OverlayConfig
    n_masked: int
    healthy_cycles: int
    degraded_cycles: int
    total_maccs: int

    @property
    def masked_fraction(self) -> float:
        return self.n_masked / self.healthy.n_tpe

    @property
    def tpe_fraction_kept(self) -> float:
        return self.degraded.n_tpe / self.healthy.n_tpe

    @property
    def slowdown(self) -> float:
        """Service-time inflation factor (>= 1 in practice)."""
        return self.degraded_cycles / self.healthy_cycles

    @property
    def throughput_factor(self) -> float:
        """Modeled throughput retained (1.0 = no degradation)."""
        return self.healthy_cycles / self.degraded_cycles

    @property
    def healthy_efficiency(self) -> float:
        """Aggregate hardware efficiency on the intact grid."""
        return self.total_maccs / (self.healthy_cycles * self.healthy.n_tpe)

    @property
    def degraded_efficiency(self) -> float:
        """Aggregate hardware efficiency on the degraded sub-grid."""
        return self.total_maccs / (self.degraded_cycles * self.degraded.n_tpe)

    @property
    def efficiency_delta(self) -> float:
        """Degraded minus healthy efficiency (positive = sub-grid is
        *better* utilized, the usual case when layers tile a smaller
        grid with less padding)."""
        return self.degraded_efficiency - self.healthy_efficiency

    def describe(self) -> str:
        h, d = self.healthy, self.degraded
        return (
            f"{self.network}: mask {self.n_masked} TPEs "
            f"({self.masked_fraction:.1%}) -> grid "
            f"{h.d1}x{h.d2}x{h.d3} => {d.d1}x{d.d2}x{d.d3} "
            f"({self.tpe_fraction_kept:.1%} TPEs kept); throughput "
            f"{self.throughput_factor:.1%} of healthy, efficiency "
            f"{self.healthy_efficiency:.1%} => {self.degraded_efficiency:.1%}"
        )


def degraded_compile(
    network,
    config: OverlayConfig,
    mask: FaultMask | Collection[TpeCoord],
    objective: str = "performance",
    *,
    healthy_cycles: int | None = None,
) -> DegradationReport:
    """Compile ``network`` healthy and degraded; report the delta.

    ``healthy_cycles`` lets a caller sweeping many masks over one
    network/config pair (e.g. the chaos degradation curve) pay for the
    healthy-grid compilation once and reuse the total.

    Raises:
        FaultError: if the mask leaves no healthy sub-grid.
        ScheduleError: if a layer cannot be scheduled on either grid.
    """
    if not isinstance(mask, FaultMask):
        mask = FaultMask.from_coords(mask)
    degraded_config = largest_healthy_subgrid(config, mask)
    if healthy_cycles is None:
        healthy_cycles = sum(
            s.cycles for s in schedule_network(network, config, objective)
        )
    if degraded_config == config:
        degraded_cycles = healthy_cycles
    else:
        degraded_cycles = sum(
            s.cycles
            for s in schedule_network(network, degraded_config, objective)
        )
    return DegradationReport(
        network=network.name,
        healthy=config,
        degraded=degraded_config,
        n_masked=len(mask),
        healthy_cycles=healthy_cycles,
        degraded_cycles=degraded_cycles,
        total_maccs=sum(
            layer.maccs for layer in network.accelerated_layers()
        ),
    )
