"""Deterministic, seeded fault schedules.

A :class:`FaultSchedule` is the chaos-engineering analogue of an arrival
trace: a time-sorted tuple of fault events that the serving engine
replays against the virtual clock.  :func:`generate_fault_schedule`
draws one from independent per-replica Poisson processes (one per fault
type) using a single explicit seed, so an identical seed always yields a
bit-identical schedule — which is what makes chaos runs diffable against
golden reports.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.errors import FaultError
from repro.faults.events import (
    DramBitFlip,
    FaultEvent,
    LinkFault,
    ReplicaCrash,
    ReplicaRecovery,
    ReplicaSlowdown,
    TPEFault,
    TpeCoord,
)
from repro.overlay.config import OverlayConfig
from repro.trace.metrics import MetricsRegistry, as_metrics


@dataclass(frozen=True)
class FaultSchedule:
    """A time-sorted, immutable sequence of fault events."""

    events: tuple[FaultEvent, ...]

    def __post_init__(self) -> None:
        if any(b.at_s < a.at_s
               for a, b in zip(self.events, self.events[1:])):
            raise FaultError("fault schedule is not sorted by timestamp")

    def __len__(self) -> int:
        return len(self.events)

    @classmethod
    def from_events(
        cls,
        events: Iterable[FaultEvent],
        *,
        grid: "OverlayConfig | tuple[int, int, int] | None" = None,
        dram_words: int | None = None,
    ) -> "FaultSchedule":
        """Build a schedule, sorting events by (time, replica, kind).

        ``grid`` (an :class:`OverlayConfig` or ``(d1, d2, d3)`` tuple)
        and ``dram_words`` optionally pin the overlay the schedule will
        strike: TPE fault coordinates outside the active grid and DRAM
        word addresses past the operand address space are rejected at
        construction instead of silently targeting hardware that does
        not exist.

        Raises:
            FaultError: for an out-of-grid TPE coordinate or an
                out-of-range DRAM word address.
        """
        ordered = sorted(events, key=lambda e: (e.at_s, e.replica, e.kind))
        schedule = cls(events=tuple(ordered))
        if grid is not None or dram_words is not None:
            schedule.validate_against(grid=grid, dram_words=dram_words)
        return schedule

    def validate_against(
        self,
        *,
        grid: "OverlayConfig | tuple[int, int, int] | None" = None,
        dram_words: int | None = None,
    ) -> "FaultSchedule":
        """Check every event's target exists on the given overlay.

        Returns self so the call chains; raises :class:`FaultError` with
        the offending event's replica/timestamp context otherwise.
        """
        dims: tuple[int, int, int] | None = None
        if isinstance(grid, OverlayConfig):
            dims = grid.grid
        elif grid is not None:
            dims = (int(grid[0]), int(grid[1]), int(grid[2]))
        if dram_words is not None and dram_words < 1:
            raise FaultError(
                f"dram_words must be >= 1, got {dram_words}"
            )
        for event in self.events:
            if isinstance(event, TPEFault) and dims is not None:
                d1, d2, d3 = dims
                if (event.sb_row >= d3 or event.sb_col >= d2
                        or event.chain_pos >= d1):
                    raise FaultError(
                        f"TPE fault coordinate {event.coord} outside the "
                        f"active {d1}x{d2}x{d3} grid (sb_row < {d3}, "
                        f"sb_col < {d2}, chain_pos < {d1})",
                        replica=event.replica, at_s=event.at_s,
                    )
            elif (isinstance(event, DramBitFlip)
                    and dram_words is not None
                    and event.word_addr is not None
                    and event.word_addr >= dram_words):
                raise FaultError(
                    f"DRAM word address {event.word_addr} outside the "
                    f"{dram_words}-word operand space",
                    replica=event.replica, at_s=event.at_s,
                )
        return self

    def for_replica(self, replica: str) -> "FaultSchedule":
        """The sub-schedule striking one replica."""
        return FaultSchedule(
            events=tuple(e for e in self.events if e.replica == replica)
        )

    @classmethod
    def merge(cls, *schedules: "FaultSchedule") -> "FaultSchedule":
        """Compose schedules into one, with deterministic event order.

        Events are ordered by ``(at_s, replica, kind)`` — the same key
        :meth:`from_events` sorts by — with ties broken *stably* by the
        position of the source schedule in the argument list and the
        event's position within it.  Merging is therefore associative
        for distinct keys and reproducible for identical ones, so
        per-rack and per-board schedules compose into one fleet
        schedule without perturbing either input's internal order.

        Merging never draws from an RNG: the inputs' seeded streams
        (e.g. :func:`generate_fault_schedule` output) pass through
        byte-for-byte.
        """
        if not schedules:
            return cls(events=())
        combined = [
            event for schedule in schedules for event in schedule.events
        ]
        combined.sort(key=lambda e: (e.at_s, e.replica, e.kind))
        return cls(events=tuple(combined))

    def counts(self) -> dict[str, int]:
        """Event count per fault kind, sorted by kind."""
        out: dict[str, int] = {}
        for event in self.events:
            out[event.kind] = out.get(event.kind, 0) + 1
        return dict(sorted(out.items()))

    def describe(self) -> str:
        counts = ", ".join(f"{k}={v}" for k, v in self.counts().items())
        return f"{len(self.events)} fault events ({counts or 'none'})"


def _poisson_times(rng: random.Random, rate_hz: float,
                   duration_s: float) -> list[float]:
    """Event instants of one Poisson process over [0, duration)."""
    times = []
    t = rng.expovariate(rate_hz) if rate_hz > 0 else math.inf
    while t < duration_s:
        times.append(t)
        t += rng.expovariate(rate_hz)
    return times


def _check_rate(name: str, value: float) -> None:
    if not math.isfinite(value) or value < 0:
        raise FaultError(f"{name} must be finite and >= 0, got {value}")


def generate_fault_schedule(
    *,
    seed: int,
    duration_s: float,
    replicas: Sequence[str],
    grid: OverlayConfig | tuple[int, int, int] | None = None,
    crash_rate_hz: float = 0.0,
    mean_repair_s: float = 0.05,
    slowdown_rate_hz: float = 0.0,
    slowdown_factor: float = 2.0,
    mean_slowdown_s: float = 0.02,
    tpe_fault_rate_hz: float = 0.0,
    stuck_fraction: float = 0.5,
    bitflip_rate_hz: float = 0.0,
    correctable_fraction: float = 0.9,
    dram_words: int | None = None,
    link_fault_rate_hz: float = 0.0,
    metrics: MetricsRegistry | None = None,
) -> FaultSchedule:
    """Draw a deterministic fault schedule from seeded Poisson processes.

    Args:
        seed: RNG seed; identical inputs reproduce the schedule exactly.
        duration_s: Horizon over which primary faults are drawn (paired
            recovery events may land past it).
        replicas: Replica names the faults are distributed over.
        grid: Overlay shape for TPE faults — an :class:`OverlayConfig`
            or a ``(d1, d2, d3)`` tuple.  Required when
            ``tpe_fault_rate_hz > 0``.
        crash_rate_hz: Per-replica crash rate; each crash is paired with
            a recovery after an Exp(``mean_repair_s``) repair.
        slowdown_rate_hz: Per-replica throttling rate; each slowdown of
            ``slowdown_factor`` is cleared by a recovery after an
            Exp(``mean_slowdown_s``) interval.
        tpe_fault_rate_hz: Per-replica DSP/BRAM tile fault rate;
            ``stuck_fraction`` of them are permanent stuck-at faults,
            the rest transient upsets.
        bitflip_rate_hz: Per-replica DRAM upset rate;
            ``correctable_fraction`` are absorbed by ECC.
        dram_words: Size of the per-replica operand address space, in
            16-bit words.  When given, each bit-flip draws a word
            address uniformly over it (and the schedule is validated
            against the range); when ``None`` (default) addresses stay
            unset and the draw sequence is identical to earlier
            releases, so existing seeded schedules reproduce exactly.
        link_fault_rate_hz: Per-replica transient bus/link glitch rate.
        metrics: Optional registry; receives per-kind
            ``faults_generated`` counters for the drawn schedule.

    Raises:
        FaultError: for invalid rates/fractions, an empty replica list,
            a non-positive duration, or a missing grid.
    """
    if not replicas:
        raise FaultError("fault schedule needs at least one replica")
    if len(set(replicas)) != len(replicas):
        raise FaultError(f"replica names must be unique, got {replicas}")
    if not math.isfinite(duration_s) or duration_s <= 0:
        raise FaultError(
            f"duration_s must be finite and positive, got {duration_s}"
        )
    for name, value in (
        ("crash_rate_hz", crash_rate_hz),
        ("slowdown_rate_hz", slowdown_rate_hz),
        ("tpe_fault_rate_hz", tpe_fault_rate_hz),
        ("bitflip_rate_hz", bitflip_rate_hz),
        ("link_fault_rate_hz", link_fault_rate_hz),
        ("mean_repair_s", mean_repair_s),
        ("mean_slowdown_s", mean_slowdown_s),
    ):
        _check_rate(name, value)
    for name, value in (
        ("stuck_fraction", stuck_fraction),
        ("correctable_fraction", correctable_fraction),
    ):
        if not 0.0 <= value <= 1.0:
            raise FaultError(f"{name} must be in [0, 1], got {value}")
    dims: tuple[int, int, int] | None = None
    if isinstance(grid, OverlayConfig):
        dims = (grid.d1, grid.d2, grid.d3)
    elif grid is not None:
        dims = tuple(grid)  # type: ignore[assignment]
    if tpe_fault_rate_hz > 0 and dims is None:
        raise FaultError("tpe_fault_rate_hz > 0 requires a grid")
    if dram_words is not None and dram_words < 1:
        raise FaultError(f"dram_words must be >= 1, got {dram_words}")

    rng = random.Random(seed)
    events: list[FaultEvent] = []
    # Fixed iteration order (replica list order, then fault type) keeps
    # the draw sequence — and therefore the schedule — deterministic.
    for replica in replicas:
        for t in _poisson_times(rng, crash_rate_hz, duration_s):
            events.append(ReplicaCrash(at_s=t, replica=replica))
            repair = rng.expovariate(1.0 / mean_repair_s) \
                if mean_repair_s > 0 else 0.0
            events.append(ReplicaRecovery(at_s=t + repair, replica=replica))
        for t in _poisson_times(rng, slowdown_rate_hz, duration_s):
            events.append(ReplicaSlowdown(
                at_s=t, replica=replica, factor=slowdown_factor))
            length = rng.expovariate(1.0 / mean_slowdown_s) \
                if mean_slowdown_s > 0 else 0.0
            events.append(ReplicaRecovery(at_s=t + length, replica=replica))
        for t in _poisson_times(rng, tpe_fault_rate_hz, duration_s):
            assert dims is not None
            d1, d2, d3 = dims
            events.append(TPEFault(
                at_s=t, replica=replica,
                sb_row=rng.randrange(d3),
                sb_col=rng.randrange(d2),
                chain_pos=rng.randrange(d1),
                stuck=rng.random() < stuck_fraction,
            ))
        for t in _poisson_times(rng, bitflip_rate_hz, duration_s):
            events.append(DramBitFlip(
                at_s=t, replica=replica,
                correctable=rng.random() < correctable_fraction,
                word_addr=(
                    rng.randrange(dram_words)
                    if dram_words is not None else None
                ),
            ))
        for t in _poisson_times(rng, link_fault_rate_hz, duration_s):
            events.append(LinkFault(at_s=t, replica=replica))
    schedule = FaultSchedule.from_events(
        events, grid=dims, dram_words=dram_words
    )
    registry = as_metrics(metrics)
    if registry.enabled:
        counter = registry.counter(
            "faults_generated", "fault events drawn into the schedule"
        )
        for kind, count in schedule.counts().items():
            counter.inc(count, kind=kind)
    return schedule


def random_tpe_mask(
    config: OverlayConfig, fraction: float, *, seed: int
) -> frozenset[TpeCoord]:
    """A seeded random mask covering ``fraction`` of the grid's TPEs.

    Used by the chaos degradation curve: scatter ``fraction * n_tpe``
    distinct stuck-at tile faults uniformly over the ``D1×D2×D3`` grid.

    Raises:
        FaultError: if ``fraction`` is outside [0, 1).
    """
    if not 0.0 <= fraction < 1.0:
        raise FaultError(f"mask fraction must be in [0, 1), got {fraction}")
    n_masked = round(fraction * config.n_tpe)
    rng = random.Random(seed)
    flat = rng.sample(range(config.n_tpe), n_masked)
    coords = []
    for index in flat:
        sb_row, rest = divmod(index, config.d2 * config.d1)
        sb_col, chain_pos = divmod(rest, config.d1)
        coords.append((sb_row, sb_col, chain_pos))
    return frozenset(coords)
