"""Replica health monitoring: downtime accounting, MTTR, availability.

The serving engine feeds crash / slowdown / recovery transitions into a
:class:`HealthMonitor` as they happen on the virtual clock; at the end
of a run the monitor is finalized against the makespan and snapshotted
into an immutable :class:`HealthReport` that rides inside the serving
metrics.  MTTR is the mean of *completed* crash→recovery intervals;
replica-level availability is uptime over replica-seconds.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Sequence

from repro.errors import FaultError
from repro.trace.span import Tracer, as_tracer


@dataclass(frozen=True)
class DomainHealth:
    """Health roll-up for one failure domain (a rack or a board group).

    A domain's downtime is the sum of its members' crashed
    replica-seconds, its MTTR the mean over its members' *completed*
    repair intervals, and its availability the healthy share of its
    member-seconds — so a rack that lost power shows up as one domain
    with every member's outage attributed to it, while the fleet-wide
    numbers stay exactly what the per-replica accounting says.
    Uncorrectable-DRAM exposure likewise rolls up to the owning domain.
    """

    domain: str
    n_members: int
    crashes: int
    recoveries: int
    mttr_s: float
    downtime_s: float
    span_s: float
    dram_uncorrectable: int = 0

    @property
    def availability(self) -> float:
        """Healthy share of the domain's member-seconds."""
        total = self.n_members * self.span_s
        if total <= 0:
            return 1.0
        return 1.0 - min(1.0, self.downtime_s / total)

    def describe(self) -> str:
        text = (
            f"{self.domain}: {self.availability:.2%} avail over "
            f"{self.n_members} member(s), {self.crashes} crashes, "
            f"MTTR {self.mttr_s * 1e3:.2f} ms"
        )
        if self.dram_uncorrectable:
            text += f", {self.dram_uncorrectable} SDC exposures"
        return text


@dataclass(frozen=True)
class HealthReport:
    """Immutable end-of-run health summary.

    Attributes:
        n_replicas: Replicas monitored.
        crashes: Crash transitions observed.
        slowdowns: Slowdown transitions observed.
        recoveries: Recovery transitions observed.
        mttr_s: Mean time to recovery over completed crash→recovery
            intervals (0 when no crash recovered).
        downtime_s: Total crashed replica-seconds (unrecovered crashes
            count up to the end of the run).
        span_s: Monitored horizon, seconds.
        per_replica_downtime_s: Crashed seconds per replica.
        dram_uncorrectable: DRAM upsets that escaped ECC — the silent-
            data-corruption exposure, surfaced separately from the
            crash/slowdown counts because the replica *stays up* through
            one; only an integrity policy (ABFT checksums) catches the
            corrupted results.  Reconciles with the engine's
            ``integrity.sdc_detected`` instants: every detected-SDC
            instant with a DRAM cause traces back to one of these.
    """

    n_replicas: int
    crashes: int
    slowdowns: int
    recoveries: int
    mttr_s: float
    downtime_s: float
    span_s: float
    per_replica_downtime_s: dict[str, float] = field(default_factory=dict)
    dram_uncorrectable: int = 0
    per_domain: dict[str, DomainHealth] = field(default_factory=dict)

    @property
    def uptime_fraction(self) -> float:
        """Healthy share of replica-seconds over the monitored span."""
        total = self.n_replicas * self.span_s
        if total <= 0:
            return 1.0
        return 1.0 - min(1.0, self.downtime_s / total)

    def describe(self) -> str:
        text = (
            f"{self.crashes} crashes / {self.slowdowns} slowdowns / "
            f"{self.recoveries} recoveries; MTTR {self.mttr_s * 1e3:.2f} ms; "
            f"uptime {self.uptime_fraction:.2%} over "
            f"{self.n_replicas} replica(s)"
        )
        if self.dram_uncorrectable:
            text += (
                f"; {self.dram_uncorrectable} uncorrectable DRAM upsets "
                f"(SDC exposure)"
            )
        if self.per_domain:
            worst = min(
                self.per_domain.values(),
                key=lambda d: (d.availability, d.domain),
            )
            text += (
                f"; {len(self.per_domain)} domains, worst "
                f"{worst.describe()}"
            )
        return text


class HealthMonitor:
    """Track per-replica up/down transitions on the virtual clock.

    With a ``tracer``, every *state-changing* transition also lands as a
    ``health.down`` / ``health.up`` / ``health.slowdown`` instant on the
    replica's track — the same guarded transitions MTTR is computed
    from, so trace-derived MTTR reconciles with :class:`HealthReport`
    exactly.
    """

    def __init__(self, replicas: Sequence[str],
                 tracer: Tracer | None = None,
                 domains: Mapping[str, str] | None = None):
        if not replicas:
            raise FaultError("health monitor needs at least one replica")
        self.tracer = as_tracer(tracer)
        self._down_since: dict[str, float | None] = {
            name: None for name in replicas
        }
        self._downtime: dict[str, float] = {name: 0.0 for name in replicas}
        self._repairs: list[float] = []
        self._repairs_by: dict[str, list[float]] = {
            name: [] for name in replicas
        }
        self._crashes_by: dict[str, int] = {name: 0 for name in replicas}
        self._recoveries_by: dict[str, int] = {name: 0 for name in replicas}
        self._dram_by: dict[str, int] = {name: 0 for name in replicas}
        self._domains = dict(domains) if domains else {}
        for name in self._domains:
            if name not in self._down_since:
                raise FaultError(
                    "domain mapping names unmonitored replica", replica=name
                )
        self.crashes = 0
        self.slowdowns = 0
        self.recoveries = 0
        self.dram_uncorrectable = 0

    def _check(self, replica: str, at_s: float) -> None:
        if replica not in self._down_since:
            raise FaultError("unknown replica", replica=replica, at_s=at_s)

    def is_down(self, replica: str) -> bool:
        return self._down_since.get(replica) is not None

    def record_crash(self, replica: str, at_s: float) -> None:
        self._check(replica, at_s)
        if self._down_since[replica] is None:
            self._down_since[replica] = at_s
            self.crashes += 1
            self._crashes_by[replica] += 1
            self.tracer.instant("health.down", at=at_s, track=replica)

    def record_slowdown(self, replica: str, at_s: float) -> None:
        self._check(replica, at_s)
        self.slowdowns += 1
        self.tracer.instant("health.slowdown", at=at_s, track=replica)

    def record_dram_uncorrectable(self, replica: str, at_s: float) -> None:
        """Count an ECC-escaping DRAM upset on ``replica``.

        These never take the replica down — they corrupt results — so
        they are tracked apart from the crash/slowdown transitions and
        land as ``health.sdc_exposure`` instants.
        """
        self._check(replica, at_s)
        self.dram_uncorrectable += 1
        self._dram_by[replica] += 1
        self.tracer.instant("health.sdc_exposure", at=at_s, track=replica)

    def record_recovery(self, replica: str, at_s: float) -> None:
        self._check(replica, at_s)
        down_since = self._down_since[replica]
        if down_since is not None:
            self._repairs.append(at_s - down_since)
            self._repairs_by[replica].append(at_s - down_since)
            self._downtime[replica] += at_s - down_since
            self._down_since[replica] = None
            self.tracer.instant(
                "health.up", at=at_s, track=replica,
                repair_s=at_s - down_since,
            )
        self.recoveries += 1
        self._recoveries_by[replica] += 1

    def finalize(self, end_s: float, start_s: float = 0.0) -> HealthReport:
        """Close open downtime intervals at ``end_s`` and snapshot.

        ``start_s`` anchors the monitored span (e.g. a serving run's
        first arrival) without shifting the recorded transitions.
        """
        downtime = dict(self._downtime)
        for replica, down_since in self._down_since.items():
            if down_since is not None and end_s > down_since:
                downtime[replica] += end_s - down_since
        mttr = sum(self._repairs) / len(self._repairs) \
            if self._repairs else 0.0
        span = max(end_s - start_s, 0.0)
        return HealthReport(
            n_replicas=len(downtime),
            crashes=self.crashes,
            slowdowns=self.slowdowns,
            recoveries=self.recoveries,
            mttr_s=mttr,
            downtime_s=sum(downtime.values()),
            span_s=span,
            per_replica_downtime_s=downtime,
            dram_uncorrectable=self.dram_uncorrectable,
            per_domain=self._finalize_domains(downtime, span),
        )

    def _finalize_domains(
        self, downtime: Mapping[str, float], span_s: float
    ) -> dict[str, DomainHealth]:
        """Roll per-replica accounting up to the configured domains."""
        if not self._domains:
            return {}
        members: dict[str, list[str]] = {}
        for replica, domain in self._domains.items():
            members.setdefault(domain, []).append(replica)
        out: dict[str, DomainHealth] = {}
        for domain in sorted(members):
            names = members[domain]
            repairs = [
                r for name in names for r in self._repairs_by[name]
            ]
            out[domain] = DomainHealth(
                domain=domain,
                n_members=len(names),
                crashes=sum(self._crashes_by[n] for n in names),
                recoveries=sum(self._recoveries_by[n] for n in names),
                mttr_s=sum(repairs) / len(repairs) if repairs else 0.0,
                downtime_s=sum(downtime[n] for n in names),
                span_s=span_s,
                dram_uncorrectable=sum(self._dram_by[n] for n in names),
            )
        return out
