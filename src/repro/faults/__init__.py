"""Deterministic fault injection and degraded-mode execution.

The paper evaluates a fully healthy ``D1×D2×D3`` grid; a production
deployment cannot assume one.  This package supplies the robustness
machinery the serving and compiler layers build on:

* :mod:`repro.faults.events` — the fault taxonomy (TPE stuck-at /
  transient tile faults, DRAM bit-flips, bus/link glitches, replica
  crash / slowdown / recovery), all on the virtual clock.
* :mod:`repro.faults.schedule` — seeded, deterministic
  :class:`FaultSchedule` generation (per-replica Poisson processes).
* :mod:`repro.faults.mask` — fault masks and the largest-healthy-
  sub-grid derivation.
* :mod:`repro.faults.degrade` — fault-aware compilation: re-run the
  schedule search on the sub-grid and report the efficiency delta.
* :mod:`repro.faults.monitor` — replica health tracking, MTTR, and
  uptime accounting for the serving engine.

Everything is seeded and virtual-clock driven: an identical seed and
fault schedule reproduce a chaos run bit-for-bit.
"""

from repro.faults.events import (
    DramBitFlip,
    FaultEvent,
    LinkFault,
    ReplicaCrash,
    ReplicaRecovery,
    ReplicaSlowdown,
    TPEFault,
    TpeCoord,
)
from repro.faults.schedule import (
    FaultSchedule,
    generate_fault_schedule,
    random_tpe_mask,
)
from repro.faults.mask import FaultMask, largest_healthy_subgrid
from repro.faults.degrade import DegradationReport, degraded_compile
from repro.faults.monitor import DomainHealth, HealthMonitor, HealthReport

__all__ = [
    "DegradationReport",
    "DomainHealth",
    "DramBitFlip",
    "FaultEvent",
    "FaultMask",
    "FaultSchedule",
    "HealthMonitor",
    "HealthReport",
    "LinkFault",
    "ReplicaCrash",
    "ReplicaRecovery",
    "ReplicaSlowdown",
    "TPEFault",
    "TpeCoord",
    "degraded_compile",
    "generate_fault_schedule",
    "largest_healthy_subgrid",
    "random_tpe_mask",
]
