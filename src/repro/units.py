"""Unit conventions and conversion helpers.

The library uses a small, fixed set of unit conventions; every quantity that
crosses a module boundary follows them:

* frequency    -- MHz (float)
* time         -- nanoseconds (float) for physical delays,
                  clock cycles (int) for schedule/simulation time
* data sizes   -- 16-bit *words* unless a name says ``_bytes``
* bandwidth    -- GB/s at module boundaries, words/cycle internally
* energy       -- nanojoules, power in watts
"""

from __future__ import annotations

#: Bytes per data word everywhere in the overlay (16-bit fixed point).
BYTES_PER_WORD = 2

#: Number of arithmetic operations counted per MACC (multiply + add).
OPS_PER_MACC = 2


def mhz_to_period_ns(freq_mhz: float) -> float:
    """Return the clock period in nanoseconds for a frequency in MHz."""
    if freq_mhz <= 0:
        raise ValueError(f"frequency must be positive, got {freq_mhz}")
    return 1e3 / freq_mhz


def period_ns_to_mhz(period_ns: float) -> float:
    """Return the frequency in MHz for a clock period in nanoseconds."""
    if period_ns <= 0:
        raise ValueError(f"period must be positive, got {period_ns}")
    return 1e3 / period_ns


def gbps_to_words_per_cycle(bandwidth_gbps: float, freq_mhz: float) -> float:
    """Convert an off-chip bandwidth in GB/s to 16-bit words per clock cycle.

    ``bandwidth_gbps`` is decimal GB/s (1e9 bytes per second), matching how
    DRAM vendors and the paper quote bandwidth (26 GB/s).
    """
    bytes_per_cycle = bandwidth_gbps * 1e9 / (freq_mhz * 1e6)
    return bytes_per_cycle / BYTES_PER_WORD


def words_to_bytes(words: int) -> int:
    """Return the byte size of ``words`` 16-bit words."""
    return words * BYTES_PER_WORD


def ceil_div(a: int, b: int) -> int:
    """Integer ceiling division; ``b`` must be positive."""
    if b <= 0:
        raise ValueError(f"divisor must be positive, got {b}")
    return -(-a // b)
