"""Fixed-point helpers matching the overlay datapath.

The overlay computes on 16-bit two's-complement weights and activations
(the quantization scheme of Table I) with 48-bit wrapping accumulation —
the native behaviour of a DSP48 cascade.
"""

from __future__ import annotations

import numpy as np

INT16_MIN = -(1 << 15)
INT16_MAX = (1 << 15) - 1

_ACC_BITS = 48
_ACC_MOD = 1 << _ACC_BITS
_ACC_HALF = 1 << (_ACC_BITS - 1)


def to_int16(values: np.ndarray | int | float) -> np.ndarray:
    """Saturate ``values`` into int16, matching the quantizer's clamp."""
    return np.clip(np.asarray(values), INT16_MIN, INT16_MAX).astype(np.int16)


def wrap48(value: int | np.ndarray) -> int | np.ndarray:
    """Wrap an accumulator value into the signed 48-bit range.

    This is the overflow behaviour of the DSP48 accumulation cascade; the
    compiler's tile sizes keep real workloads well inside the range, and
    the simulator asserts that property at run time.
    """
    if isinstance(value, np.ndarray):
        if value.dtype.kind in "iu":
            # Pure int64 path: x & (2^48 - 1) == x mod 2^48 holds for
            # two's-complement int64, and the masked value + _ACC_HALF
            # stays far below 2^63, so no step can overflow.
            masked = (value.astype(np.int64) & (_ACC_MOD - 1)) + _ACC_HALF
            return ((masked & (_ACC_MOD - 1)) - _ACC_HALF).astype(np.int64)
        wrapped = np.mod(value.astype(object) + _ACC_HALF, _ACC_MOD) - _ACC_HALF
        return wrapped.astype(np.int64)
    return int((int(value) + _ACC_HALF) % _ACC_MOD - _ACC_HALF)


def flip_int16_bit(values: np.ndarray, flat_index: int, bit: int) -> np.ndarray:
    """Return a copy of int16 ``values`` with one stored bit flipped.

    Models a DRAM/SRAM upset on a 16-bit operand word: the flip acts on
    the two's-complement representation, so flipping bit 15 toggles the
    sign.

    Raises:
        ValueError: for an out-of-range index or bit position.
    """
    values = np.asarray(values)
    if values.dtype != np.int16:
        raise ValueError(f"operand flip needs int16 storage, got {values.dtype}")
    if not 0 <= flat_index < values.size:
        raise ValueError(
            f"flat index {flat_index} out of range for {values.size} words"
        )
    if not 0 <= bit < 16:
        raise ValueError(f"int16 bit must be in [0, 16), got {bit}")
    out = values.copy()
    flat = out.reshape(-1).view(np.uint16)
    flat[flat_index] ^= np.uint16(1 << bit)
    return out


def flip_wrap48_bit(values: np.ndarray, flat_index: int, bit: int) -> np.ndarray:
    """Return a copy of wrapped-48-bit ``values`` with one bit flipped.

    Models an SEU in a DSP48 accumulator / PSumBUF word: the flip acts on
    the 48-bit two's-complement representation and the result is wrapped
    back into the signed 48-bit range.

    Raises:
        ValueError: for an out-of-range index or bit position.
    """
    values = np.asarray(values)
    if not 0 <= flat_index < values.size:
        raise ValueError(
            f"flat index {flat_index} out of range for {values.size} words"
        )
    if not 0 <= bit < _ACC_BITS:
        raise ValueError(f"accumulator bit must be in [0, 48), got {bit}")
    out = values.astype(np.int64).copy()
    flat = out.reshape(-1)
    stored = int(flat[flat_index]) % _ACC_MOD  # unsigned 48-bit pattern
    flat[flat_index] = wrap48(stored ^ (1 << bit))
    return out


def quantize_symmetric(real: np.ndarray, n_bits: int = 16) -> tuple[np.ndarray, float]:
    """Symmetric linear quantization of a float tensor.

    Returns the integer tensor (int16) and the scale such that
    ``real ~= integer * scale``.  Used to build bit-true test inputs from
    float reference data.
    """
    if n_bits < 2 or n_bits > 16:
        raise ValueError(f"n_bits must be in [2, 16], got {n_bits}")
    real = np.asarray(real, dtype=np.float64)
    peak = float(np.max(np.abs(real))) if real.size else 0.0
    if peak == 0.0:
        return np.zeros(real.shape, dtype=np.int16), 1.0
    qmax = (1 << (n_bits - 1)) - 1
    scale = peak / qmax
    return to_int16(np.round(real / scale)), scale
