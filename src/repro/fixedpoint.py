"""Fixed-point helpers matching the overlay datapath.

The overlay computes on 16-bit two's-complement weights and activations
(the quantization scheme of Table I) with 48-bit wrapping accumulation —
the native behaviour of a DSP48 cascade.
"""

from __future__ import annotations

import numpy as np

INT16_MIN = -(1 << 15)
INT16_MAX = (1 << 15) - 1

_ACC_BITS = 48
_ACC_MOD = 1 << _ACC_BITS
_ACC_HALF = 1 << (_ACC_BITS - 1)


def to_int16(values: np.ndarray | int | float) -> np.ndarray:
    """Saturate ``values`` into int16, matching the quantizer's clamp."""
    return np.clip(np.asarray(values), INT16_MIN, INT16_MAX).astype(np.int16)


def wrap48(value: int | np.ndarray) -> int | np.ndarray:
    """Wrap an accumulator value into the signed 48-bit range.

    This is the overflow behaviour of the DSP48 accumulation cascade; the
    compiler's tile sizes keep real workloads well inside the range, and
    the simulator asserts that property at run time.
    """
    if isinstance(value, np.ndarray):
        wrapped = np.mod(value.astype(object) + _ACC_HALF, _ACC_MOD) - _ACC_HALF
        return wrapped.astype(np.int64)
    return int((int(value) + _ACC_HALF) % _ACC_MOD - _ACC_HALF)


def quantize_symmetric(real: np.ndarray, n_bits: int = 16) -> tuple[np.ndarray, float]:
    """Symmetric linear quantization of a float tensor.

    Returns the integer tensor (int16) and the scale such that
    ``real ~= integer * scale``.  Used to build bit-true test inputs from
    float reference data.
    """
    if n_bits < 2 or n_bits > 16:
        raise ValueError(f"n_bits must be in [2, 16], got {n_bits}")
    real = np.asarray(real, dtype=np.float64)
    peak = float(np.max(np.abs(real))) if real.size else 0.0
    if peak == 0.0:
        return np.zeros(real.shape, dtype=np.int16), 1.0
    qmax = (1 << (n_bits - 1)) - 1
    scale = peak / qmax
    return to_int16(np.round(real / scale)), scale
