"""FTDL reproduction: a tailored FPGA overlay for deep learning.

A complete Python reproduction of *FTDL: A Tailored FPGA-Overlay for Deep
Learning with High Scalability* (DAC 2020): the layout-aware overlay
architecture (TPE / SuperBlock / grid), the scheduling compiler with its
analytical model and three objectives, a cycle-level simulator checked
against bit-true golden models, FPGA floorplan/timing and DRAM substrates,
and the full benchmark harness for the paper's tables and figures.

Quickstart::

    from repro import (
        build_model, PAPER_EXAMPLE_CONFIG, evaluate_network,
    )
    result = evaluate_network(build_model("GoogLeNet"), PAPER_EXAMPLE_CONFIG)
    print(result.describe())
"""

from repro.errors import (
    FTDLError,
    DeviceError,
    ResourceError,
    ClockingError,
    MappingError,
    ScheduleError,
    WorkloadError,
    SimulationError,
    IsaError,
    PartitionError,
    ServingError,
    TraceError,
)
from repro.fpga import (
    Device,
    get_device,
    list_devices,
    place_overlay,
    place_systolic,
    plan_double_pump,
    TimingModel,
    TimingReport,
)
from repro.overlay import (
    OverlayConfig,
    PAPER_EXAMPLE_CONFIG,
    Instruction,
    OpKind,
    resource_report,
)
from repro.workloads import (
    ConvLayer,
    MatMulLayer,
    EwopLayer,
    PoolLayer,
    Network,
    MLPERF_MODELS,
    build_model,
    table1_rows,
)
from repro.compiler import (
    MappingVectors,
    ScheduleSearch,
    Schedule,
    ScheduleCache,
    schedule_layer,
    search_hardware_config,
    compile_schedule,
    evaluate_mapping,
    check_constraints,
    adjacency_matrix,
)
from repro.sim import CycleSimulator, LayerRun, DramTrace
from repro.analysis import (
    evaluate_network,
    NetworkResult,
    roofline_points,
    roof_curve,
    build_table2,
)
from repro.baselines import SystolicArray, PRIOR_WORKS
from repro.power import estimate_overlay_power, PowerReport
from repro.serving import (
    AdmissionPolicy,
    BatchPolicy,
    BatchServiceModel,
    PipelineService,
    ReplicaService,
    ServingEngine,
    ServingReport,
    make_requests,
    poisson_arrivals,
    uniform_arrivals,
)
from repro.trace import (
    MetricsRegistry,
    Tracer,
    chrome_trace_json,
    prometheus_text,
)

__version__ = "1.0.0"

__all__ = [
    "FTDLError",
    "DeviceError",
    "ResourceError",
    "ClockingError",
    "MappingError",
    "ScheduleError",
    "WorkloadError",
    "SimulationError",
    "IsaError",
    "PartitionError",
    "ServingError",
    "TraceError",
    "Device",
    "get_device",
    "list_devices",
    "place_overlay",
    "place_systolic",
    "plan_double_pump",
    "TimingModel",
    "TimingReport",
    "OverlayConfig",
    "PAPER_EXAMPLE_CONFIG",
    "Instruction",
    "OpKind",
    "resource_report",
    "ConvLayer",
    "MatMulLayer",
    "EwopLayer",
    "PoolLayer",
    "Network",
    "MLPERF_MODELS",
    "build_model",
    "table1_rows",
    "MappingVectors",
    "ScheduleSearch",
    "Schedule",
    "ScheduleCache",
    "schedule_layer",
    "search_hardware_config",
    "compile_schedule",
    "evaluate_mapping",
    "check_constraints",
    "adjacency_matrix",
    "CycleSimulator",
    "LayerRun",
    "DramTrace",
    "evaluate_network",
    "NetworkResult",
    "roofline_points",
    "roof_curve",
    "build_table2",
    "SystolicArray",
    "PRIOR_WORKS",
    "estimate_overlay_power",
    "PowerReport",
    "AdmissionPolicy",
    "BatchPolicy",
    "BatchServiceModel",
    "PipelineService",
    "ReplicaService",
    "ServingEngine",
    "ServingReport",
    "make_requests",
    "poisson_arrivals",
    "uniform_arrivals",
    "Tracer",
    "MetricsRegistry",
    "chrome_trace_json",
    "prometheus_text",
    "__version__",
]
