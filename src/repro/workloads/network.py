"""Whole-network container and operation accounting (Table I)."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import WorkloadError
from repro.units import BYTES_PER_WORD
from repro.workloads.layers import ConvLayer, EwopLayer, LayerKind, MatMulLayer

AcceleratedLayer = ConvLayer | MatMulLayer
AnyLayer = ConvLayer | MatMulLayer | EwopLayer


@dataclass(frozen=True)
class OpBreakdown:
    """Operation counts by category for one network (one inference pass)."""

    conv_ops: int
    mm_ops: int
    ewop_ops: int

    @property
    def total_ops(self) -> int:
        return self.conv_ops + self.mm_ops + self.ewop_ops

    @property
    def conv_fraction(self) -> float:
        return self.conv_ops / self.total_ops if self.total_ops else 0.0

    @property
    def mm_fraction(self) -> float:
        return self.mm_ops / self.total_ops if self.total_ops else 0.0

    @property
    def ewop_fraction(self) -> float:
        return self.ewop_ops / self.total_ops if self.total_ops else 0.0


@dataclass(frozen=True)
class Network:
    """An ordered list of layers forming one inference workload.

    Attributes:
        name: Model name (e.g. ``"GoogLeNet"``).
        application: Table I application label.
        layers: All layers in execution order, including EWOP entries.
    """

    name: str
    application: str
    layers: tuple[AnyLayer, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        if not self.layers:
            raise WorkloadError(f"network {self.name!r} has no layers")
        names = [layer.name for layer in self.layers]
        if len(set(names)) != len(names):
            duplicates = sorted({n for n in names if names.count(n) > 1})
            raise WorkloadError(
                f"network {self.name!r} has duplicate layer names: {duplicates}"
            )

    # ------------------------------------------------------------------ #
    def accelerated_layers(self) -> list[AcceleratedLayer]:
        """CONV and MM layers, the ones FTDL schedules (in order)."""
        return [
            layer for layer in self.layers
            if layer.kind in (LayerKind.CONV, LayerKind.MM)
        ]

    def ewop_layers(self) -> list[EwopLayer]:
        return [layer for layer in self.layers if layer.kind == LayerKind.EWOP]

    def op_breakdown(self) -> OpBreakdown:
        """Per-category operation counts (the Table I percentages)."""
        conv = sum(l.ops for l in self.layers if l.kind == LayerKind.CONV)
        mm = sum(l.ops for l in self.layers if l.kind == LayerKind.MM)
        ewop = sum(l.ops for l in self.layers if l.kind == LayerKind.EWOP)
        return OpBreakdown(conv_ops=conv, mm_ops=mm, ewop_ops=ewop)

    @property
    def weight_words(self) -> int:
        """Unique 16-bit weight words across the whole model.

        Layers sharing a ``weight_group`` (e.g. the per-timestep MM layers
        of an unrolled LSTM) are counted once; the group members must agree
        on their weight size.
        """
        seen: dict[str, int] = {}
        for layer in self.layers:
            if layer.kind == LayerKind.EWOP:
                continue
            key = getattr(layer, "weight_group", None) or layer.name
            words = layer.weight_words
            if key in seen and seen[key] != words:
                raise WorkloadError(
                    f"weight group {key!r} has inconsistent sizes "
                    f"({seen[key]} vs {words} words)"
                )
            seen[key] = words
        return sum(seen.values())

    @property
    def weight_bytes(self) -> int:
        """Model size in bytes at 16-bit quantization (Table I column)."""
        return self.weight_words * BYTES_PER_WORD

    @property
    def accelerated_ops(self) -> int:
        """Operations FTDL executes (CONV + MM), per inference."""
        breakdown = self.op_breakdown()
        return breakdown.conv_ops + breakdown.mm_ops

    @property
    def accelerated_maccs(self) -> int:
        return self.accelerated_ops // 2
