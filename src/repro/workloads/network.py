"""Whole-network container and operation accounting (Table I)."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import WorkloadError
from repro.units import BYTES_PER_WORD
from repro.workloads.layers import (
    ACCELERATED_KINDS,
    HOST_KINDS,
    ConvLayer,
    EltwiseLayer,
    EwopLayer,
    LayerKind,
    LayerNormLayer,
    MatMulLayer,
    SoftmaxLayer,
)

AcceleratedLayer = ConvLayer | MatMulLayer
HostLayer = EwopLayer | EltwiseLayer | SoftmaxLayer | LayerNormLayer
AnyLayer = AcceleratedLayer | HostLayer


@dataclass(frozen=True)
class OpBreakdown:
    """Operation counts by category for one network (one inference pass).

    ``conv_ops`` and ``mm_ops`` are MACC-bearing (2 ops per MACC); the
    host categories (``ewop_ops``/``eltwise_ops``/``softmax_ops``/
    ``norm_ops``) carry zero MACCs — they count scalar host operations
    and must never feed a per-MACC divisor.
    """

    conv_ops: int
    mm_ops: int
    ewop_ops: int
    eltwise_ops: int = 0
    softmax_ops: int = 0
    norm_ops: int = 0

    @property
    def host_ops(self) -> int:
        """All host-executed (0-MACC) operations."""
        return (self.ewop_ops + self.eltwise_ops + self.softmax_ops
                + self.norm_ops)

    @property
    def accelerated_ops(self) -> int:
        """MACC-bearing operations FTDL schedules (CONV + MM)."""
        return self.conv_ops + self.mm_ops

    @property
    def total_ops(self) -> int:
        return self.accelerated_ops + self.host_ops

    @property
    def maccs(self) -> int:
        """Total MACCs — host categories contribute exactly zero."""
        return self.accelerated_ops // 2

    @property
    def conv_fraction(self) -> float:
        return self.conv_ops / self.total_ops if self.total_ops else 0.0

    @property
    def mm_fraction(self) -> float:
        return self.mm_ops / self.total_ops if self.total_ops else 0.0

    @property
    def ewop_fraction(self) -> float:
        return self.ewop_ops / self.total_ops if self.total_ops else 0.0

    @property
    def host_fraction(self) -> float:
        return self.host_ops / self.total_ops if self.total_ops else 0.0


@dataclass(frozen=True)
class Network:
    """An ordered list of layers forming one inference workload.

    Attributes:
        name: Model name (e.g. ``"GoogLeNet"``).
        application: Table I application label.
        layers: All layers in execution order, including host-side
            (EWOP/eltwise/softmax/norm) entries.
    """

    name: str
    application: str
    layers: tuple[AnyLayer, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        if not self.layers:
            raise WorkloadError(f"network {self.name!r} has no layers")
        names = [layer.name for layer in self.layers]
        if len(set(names)) != len(names):
            duplicates = sorted({n for n in names if names.count(n) > 1})
            raise WorkloadError(
                f"network {self.name!r} has duplicate layer names: {duplicates}"
            )

    # ------------------------------------------------------------------ #
    def accelerated_layers(self) -> list[AcceleratedLayer]:
        """CONV and MM layers, the ones FTDL schedules (in order)."""
        return [
            layer for layer in self.layers
            if layer.kind in ACCELERATED_KINDS
        ]

    def host_layers(self) -> list[HostLayer]:
        """Host-CPU layers (EWOP/eltwise/softmax/norm), in order."""
        return [layer for layer in self.layers if layer.kind in HOST_KINDS]

    def ewop_layers(self) -> list[EwopLayer]:
        return [layer for layer in self.layers if layer.kind == LayerKind.EWOP]

    def op_breakdown(self) -> OpBreakdown:
        """Per-category operation counts (the Table I percentages)."""
        by_kind: dict[LayerKind, int] = {kind: 0 for kind in LayerKind}
        for layer in self.layers:
            by_kind[layer.kind] += layer.ops
        return OpBreakdown(
            conv_ops=by_kind[LayerKind.CONV],
            mm_ops=by_kind[LayerKind.MM],
            ewop_ops=by_kind[LayerKind.EWOP],
            eltwise_ops=by_kind[LayerKind.ELTWISE],
            softmax_ops=by_kind[LayerKind.SOFTMAX],
            norm_ops=by_kind[LayerKind.NORM],
        )

    @property
    def weight_words(self) -> int:
        """Unique 16-bit weight words across the whole model.

        Layers sharing a ``weight_group`` (e.g. the per-timestep MM layers
        of an unrolled LSTM) are counted once; the group members must agree
        on their weight size.  Host layers hold no weights, and layers
        whose weight port streams run-time activations (``weight_source``)
        contribute no stored parameters.
        """
        seen: dict[str, int] = {}
        for layer in self.layers:
            if layer.kind in HOST_KINDS:
                continue
            if getattr(layer, "weight_source", None) is not None:
                continue
            key = getattr(layer, "weight_group", None) or layer.name
            words = layer.weight_words
            if key in seen and seen[key] != words:
                raise WorkloadError(
                    f"weight group {key!r} has inconsistent sizes "
                    f"({seen[key]} vs {words} words)"
                )
            seen[key] = words
        return sum(seen.values())

    @property
    def weight_bytes(self) -> int:
        """Model size in bytes at 16-bit quantization (Table I column)."""
        return self.weight_words * BYTES_PER_WORD

    @property
    def accelerated_ops(self) -> int:
        """Operations FTDL executes (CONV + MM), per inference."""
        return self.op_breakdown().accelerated_ops

    @property
    def accelerated_maccs(self) -> int:
        return self.accelerated_ops // 2
