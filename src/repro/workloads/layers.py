"""Layer definitions and their loop-nest views.

Every accelerated layer exposes its computation as a K-level perfect loop
nest (paper Fig. 4): CONV as six loops, MM as three.  Each loop dimension is
tagged with whether it indexes the weights, the activations, or is a
reduction — those tags drive the adjacency matrix (Fig. 5), the WBUF
efficiency model, and the buffer-footprint functions.

Loop naming follows the paper:

* CONV: ``M`` output channels, ``N`` input channels, ``H``/``W`` output
  rows/columns, ``R``/``S`` kernel rows/columns.
* MM (paper Fig. 5 notation): ``M`` input features (the reduction), ``N``
  output features, ``P`` batch columns.

Host layers (EWOP activations/pooling plus the first-class ELTWISE /
SOFTMAX / NORM kinds added for transformer workloads) run on the host CPU
in the paper's system: they are *accounted* and functionally executed by
:mod:`repro.sim.host`, never scheduled onto the TPE grid, and they
perform **zero MACCs** — the honesty the efficiency analysis depends on.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from math import prod

from repro.errors import WorkloadError
from repro.units import OPS_PER_MACC


class LayerKind(enum.Enum):
    CONV = "conv"
    MM = "mm"
    EWOP = "ewop"
    ELTWISE = "eltwise"
    SOFTMAX = "softmax"
    NORM = "norm"


#: Kinds the overlay schedules (MACC loop nests on the TPE grid).
ACCELERATED_KINDS = frozenset({LayerKind.CONV, LayerKind.MM})

#: Kinds the host CPU executes (0 MACCs; accounted, never scheduled).
HOST_KINDS = frozenset({
    LayerKind.EWOP, LayerKind.ELTWISE, LayerKind.SOFTMAX, LayerKind.NORM,
})


@dataclass(frozen=True)
class LoopDim:
    """One dimension of a layer's loop nest.

    Attributes:
        name: Paper loop name (``"M"``, ``"N"``, …).
        size: Trip count (the paper's ``W_k``).
        reduction: True if iterations accumulate into the same output.
        in_weights: True if the dimension indexes the weight tensor.
        in_acts: True if the dimension indexes the input activations.
    """

    name: str
    size: int
    reduction: bool
    in_weights: bool
    in_acts: bool

    @property
    def in_output(self) -> bool:
        """A non-reduction dimension indexes the output tensor."""
        return not self.reduction


class _AcceleratedLayer:
    """Shared accounting interface of CONV and MM layers."""

    name: str
    kind: LayerKind

    def loop_dims(self) -> tuple[LoopDim, ...]:
        raise NotImplementedError

    # ------------------------------------------------------------------ #
    @property
    def loop_sizes(self) -> dict[str, int]:
        """Trip count per loop name (the workload's ``W_k`` vector)."""
        return {d.name: d.size for d in self.loop_dims()}

    @property
    def maccs(self) -> int:
        """Total multiply-accumulates (product of all trip counts)."""
        return prod(d.size for d in self.loop_dims())

    @property
    def ops(self) -> int:
        """Arithmetic operations (2 per MACC)."""
        return OPS_PER_MACC * self.maccs

    @property
    def weight_words(self) -> int:
        """Unique weight words (product of weight-indexing trip counts)."""
        return prod(d.size for d in self.loop_dims() if d.in_weights)

    @property
    def parameter_words(self) -> int:
        """Weight words that are *model parameters* (stored in the model).

        Layers whose "weight" operand is produced at run time by another
        layer (attention score / mixing matmuls, see
        :attr:`MatMulLayer.weight_source`) still stream ``weight_words``
        through WBUF but contribute nothing to the model's size.
        """
        if getattr(self, "weight_source", None) is not None:
            return 0
        return self.weight_words

    @property
    def output_words(self) -> int:
        """Output tensor size (product of non-reduction trip counts)."""
        return prod(d.size for d in self.loop_dims() if d.in_output)

    @property
    def input_words(self) -> int:
        """Input activation tensor size."""
        raise NotImplementedError

    def act_footprint(self, tile: dict[str, int]) -> int:
        """Input-activation words touched by one tile (``f_act`` of Eqn 8).

        ``tile`` maps loop names to tile sizes; missing names default to 1.
        """
        raise NotImplementedError

    def out_footprint(self, tile: dict[str, int]) -> int:
        """Output/partial-sum words produced by one tile (``f_psum``)."""
        return prod(
            tile.get(d.name, 1) for d in self.loop_dims() if d.in_output
        )

    def weight_footprint(self, tile: dict[str, int]) -> int:
        """Weight words required by one tile."""
        return prod(
            tile.get(d.name, 1) for d in self.loop_dims() if d.in_weights
        )

    # ------------------------------------------------------------------ #
    # coordinate maps (used by the cycle simulator and golden checks)
    # ------------------------------------------------------------------ #
    def weight_coord(self, idx: dict[str, int]) -> tuple[int, ...]:
        """Weight-tensor coordinates for one workload index tuple."""
        raise NotImplementedError

    def act_coord(self, idx: dict[str, int]) -> tuple[int, ...]:
        """Input-tensor coordinates; may be out of range (zero padding)."""
        raise NotImplementedError

    def out_coord(self, idx: dict[str, int]) -> tuple[int, ...]:
        """Output-tensor coordinates for one workload index tuple."""
        raise NotImplementedError

    def out_shape(self) -> tuple[int, ...]:
        """Logical output tensor shape."""
        raise NotImplementedError


@dataclass(frozen=True)
class ConvLayer(_AcceleratedLayer):
    """A 2-D convolution layer (K = 6 loop nest), optionally grouped.

    Attributes:
        name: Layer identifier within its network.
        in_channels: Input channels (``N`` spans ``in_channels / groups``).
        out_channels: Output channels (filters) ``M``.
        in_h / in_w: Input spatial size (pre-padding).
        kernel_h / kernel_w: Kernel spatial size ``R`` x ``S``.
        stride: Spatial stride (same in both axes).
        padding: Zero padding on each side.
        groups: Channel groups; ``groups == in_channels == out_channels``
            is a depthwise convolution.  With groups the ``M`` loop also
            selects the input-channel group, so ``M`` stops being
            ActBUS-shareable (see :mod:`repro.compiler.adjacency`).
        weight_group: Weight-tying key; layers sharing a group store one
            copy of their weights (``None`` means the layer's own name).
    """

    name: str
    in_channels: int
    out_channels: int
    in_h: int
    in_w: int
    kernel_h: int
    kernel_w: int
    stride: int = 1
    padding: int = 0
    groups: int = 1
    weight_group: str | None = None
    kind: LayerKind = LayerKind.CONV

    def __post_init__(self) -> None:
        positive = (
            self.in_channels, self.out_channels, self.in_h, self.in_w,
            self.kernel_h, self.kernel_w, self.stride, self.groups,
        )
        if min(positive) < 1 or self.padding < 0:
            raise WorkloadError(f"conv layer {self.name!r} has invalid shape")
        if self.in_channels % self.groups or self.out_channels % self.groups:
            raise WorkloadError(
                f"conv layer {self.name!r}: groups={self.groups} must divide "
                f"both in_channels={self.in_channels} and "
                f"out_channels={self.out_channels}"
            )
        if self.out_h < 1 or self.out_w < 1:
            raise WorkloadError(
                f"conv layer {self.name!r} produces empty output "
                f"({self.out_h}x{self.out_w})"
            )

    @property
    def out_h(self) -> int:
        return (self.in_h + 2 * self.padding - self.kernel_h) // self.stride + 1

    @property
    def out_w(self) -> int:
        return (self.in_w + 2 * self.padding - self.kernel_w) // self.stride + 1

    @property
    def group_in_channels(self) -> int:
        """Input channels seen by one filter (the ``N`` loop's span)."""
        return self.in_channels // self.groups

    @property
    def group_out_channels(self) -> int:
        """Output channels per group."""
        return self.out_channels // self.groups

    def loop_dims(self) -> tuple[LoopDim, ...]:
        return (
            LoopDim("M", self.out_channels, reduction=False, in_weights=True,
                    in_acts=(self.groups > 1)),
            LoopDim("N", self.group_in_channels, reduction=True,
                    in_weights=True, in_acts=True),
            LoopDim("H", self.out_h, reduction=False, in_weights=False, in_acts=True),
            LoopDim("W", self.out_w, reduction=False, in_weights=False, in_acts=True),
            LoopDim("R", self.kernel_h, reduction=True, in_weights=True, in_acts=True),
            LoopDim("S", self.kernel_w, reduction=True, in_weights=True, in_acts=True),
        )

    @property
    def input_words(self) -> int:
        return self.in_channels * self.in_h * self.in_w

    def act_footprint(self, tile: dict[str, int]) -> int:
        """Input window for a tile: overlapping rows/columns counted once.

        With groups, an ``M`` tile spans input-channel groups; the
        footprint multiplies by the groups touched (contiguous tile
        assumption — exact for group-aligned tiles, tight otherwise).
        """
        n_t = tile.get("N", 1)
        h_t = tile.get("H", 1)
        w_t = tile.get("W", 1)
        r_t = tile.get("R", 1)
        s_t = tile.get("S", 1)
        rows = (h_t - 1) * self.stride + r_t
        cols = (w_t - 1) * self.stride + s_t
        groups_touched = 1
        if self.groups > 1:
            m_t = tile.get("M", 1)
            groups_touched = min(
                self.groups, -(-m_t // self.group_out_channels)
            )
        return groups_touched * n_t * rows * cols

    def weight_coord(self, idx: dict[str, int]) -> tuple[int, ...]:
        return (idx["M"], idx["N"], idx["R"], idx["S"])

    def act_coord(self, idx: dict[str, int]) -> tuple[int, ...]:
        group = idx["M"] // self.group_out_channels if self.groups > 1 else 0
        return (
            group * self.group_in_channels + idx["N"],
            idx["H"] * self.stride + idx["R"] - self.padding,
            idx["W"] * self.stride + idx["S"] - self.padding,
        )

    def out_coord(self, idx: dict[str, int]) -> tuple[int, ...]:
        return (idx["M"], idx["H"], idx["W"])

    def out_shape(self) -> tuple[int, ...]:
        return (self.out_channels, self.out_h, self.out_w)

    def act_in_range(self, coord: tuple[int, ...]) -> bool:
        """Whether an activation coordinate lies inside the (unpadded)
        input tensor; out-of-range reads return zero (padding)."""
        n, ih, iw = coord
        return (
            0 <= n < self.in_channels
            and 0 <= ih < self.in_h
            and 0 <= iw < self.in_w
        )


@dataclass(frozen=True)
class MatMulLayer(_AcceleratedLayer):
    """A matrix-multiply layer (K = 3): ``out[N, P] = W[N, M] @ act[M, P]``.

    Fully connected layers have ``batch = 1``; LSTM gate computations fold
    their four gates into ``out_features``.  Attention workloads set
    ``weight_source``: the "weight" matrix is then another layer's run-time
    output (K for the score matmul, the softmaxed scores for the mixing
    matmul).  Such layers schedule and stream exactly like weighted MMs —
    the overlay stages the operand into WBUF either way — but they hold no
    stored parameters (``parameter_words == 0``).
    """

    name: str
    in_features: int
    out_features: int
    batch: int = 1
    weight_group: str | None = None
    weight_source: str | None = None
    kind: LayerKind = LayerKind.MM

    def __post_init__(self) -> None:
        if min(self.in_features, self.out_features, self.batch) < 1:
            raise WorkloadError(f"mm layer {self.name!r} has invalid shape")
        if self.weight_source is not None and self.weight_group is not None:
            raise WorkloadError(
                f"mm layer {self.name!r}: a run-time weight_source cannot "
                f"join a stored weight_group"
            )

    def loop_dims(self) -> tuple[LoopDim, ...]:
        return (
            LoopDim("M", self.in_features, reduction=True, in_weights=True, in_acts=True),
            LoopDim("N", self.out_features, reduction=False, in_weights=True, in_acts=False),
            LoopDim("P", self.batch, reduction=False, in_weights=False, in_acts=True),
        )

    @property
    def input_words(self) -> int:
        return self.in_features * self.batch

    def act_footprint(self, tile: dict[str, int]) -> int:
        return tile.get("M", 1) * tile.get("P", 1)

    def weight_coord(self, idx: dict[str, int]) -> tuple[int, ...]:
        return (idx["N"], idx["M"])

    def act_coord(self, idx: dict[str, int]) -> tuple[int, ...]:
        return (idx["M"], idx["P"])

    def out_coord(self, idx: dict[str, int]) -> tuple[int, ...]:
        return (idx["N"], idx["P"])

    def out_shape(self) -> tuple[int, ...]:
        return (self.out_features, self.batch)

    def act_in_range(self, coord: tuple[int, ...]) -> bool:
        m, p = coord
        return 0 <= m < self.in_features and 0 <= p < self.batch


@dataclass(frozen=True)
class EwopLayer:
    """An element-wise host-CPU layer (activation, residual add, …).

    Attributes:
        name: Layer identifier.
        op: Operation mnemonic (``"relu"``, ``"add"``, ``"sigmoid"``, …).
        n_elements: Elements processed.
        ops_per_element: Arithmetic operations charged per element.
        params: Optional execution parameters as (name, value) pairs —
            e.g. a pooling layer's ``kernel``/``stride``/``padding`` — used
            by the host-CPU executor; accounting ignores them.
    """

    name: str
    op: str
    n_elements: int
    ops_per_element: int = 1
    params: tuple[tuple[str, int], ...] = ()
    kind: LayerKind = LayerKind.EWOP

    def param(self, name: str, default: int | None = None) -> int:
        """Look up one execution parameter.

        Raises:
            WorkloadError: if absent and no default is given.
        """
        for key, value in self.params:
            if key == name:
                return value
        if default is None:
            raise WorkloadError(
                f"ewop layer {self.name!r} has no parameter {name!r}"
            )
        return default

    def __post_init__(self) -> None:
        if self.n_elements < 0 or self.ops_per_element < 1:
            raise WorkloadError(f"ewop layer {self.name!r} has invalid size")

    @property
    def ops(self) -> int:
        return self.n_elements * self.ops_per_element

    @property
    def maccs(self) -> int:
        """EWOPs run on the host: zero overlay MACCs, honestly."""
        return 0

    @property
    def weight_words(self) -> int:
        return 0

    @property
    def parameter_words(self) -> int:
        return 0


def PoolLayer(
    name: str,
    channels: int,
    in_h: int,
    in_w: int,
    kernel: int,
    stride: int,
    padding: int = 0,
    op: str = "pool_max",
) -> EwopLayer:
    """Build the EWOP accounting entry for a pooling layer.

    Pooling runs on the host CPU (Table I counts it under EWOP); each output
    element costs ``kernel**2`` compare/add operations.
    """
    out_h = (in_h + 2 * padding - kernel) // stride + 1
    out_w = (in_w + 2 * padding - kernel) // stride + 1
    if out_h < 1 or out_w < 1:
        raise WorkloadError(f"pool layer {name!r} produces empty output")
    return EwopLayer(
        name=name,
        op=op,
        n_elements=channels * out_h * out_w,
        ops_per_element=kernel * kernel,
        params=(("kernel", kernel), ("stride", stride), ("padding", padding)),
    )


# --------------------------------------------------------------------- #
# first-class host layers (transformer suite)
# --------------------------------------------------------------------- #

#: Reserved :attr:`EltwiseLayer.source` naming the network's own input.
NETWORK_INPUT = "@input"

#: Operations charged per element of a fixed-point softmax (max-subtract,
#: shift decompose, pow2 interpolation, normalize divide, clamp).
SOFTMAX_OPS_PER_ELEMENT = 5

#: Operations charged per element of an integer layernorm (mean subtract,
#: square, two reductions amortized, isqrt share, scale divide, clamp).
NORM_OPS_PER_ELEMENT = 6


class _HostLayerBase:
    """Shared interface of the first-class host layer kinds.

    These layers operate on ``(n_features, batch)`` int16 activation
    tensors — the same layout an MM layer's output ``(N, P)`` carries —
    and run on the host CPU (:mod:`repro.sim.host`).  They expose the
    same introspection surface as accelerated layers (``loop_dims`` /
    coordinate maps / ``out_shape``) so tests can check the vectorized
    host kernels against naive per-element enumerators, but they perform
    **zero MACCs**: the overlay never schedules them and the efficiency
    analysis must not credit them with TPE work.
    """

    name: str
    kind: LayerKind
    n_features: int
    batch: int

    @property
    def n_elements(self) -> int:
        return self.n_features * self.batch

    #: Operations charged per output element; subclasses override.
    ops_per_element: int = 1

    @property
    def ops(self) -> int:
        return self.n_elements * self.ops_per_element

    @property
    def maccs(self) -> int:
        """Host layers perform no overlay MACCs."""
        return 0

    @property
    def weight_words(self) -> int:
        return 0

    @property
    def parameter_words(self) -> int:
        return 0

    def loop_dims(self) -> tuple[LoopDim, ...]:
        """The element lattice: ``F`` features x ``B`` batch columns.

        Neither dimension is a *MACC* reduction (there is no weight
        operand); SOFTMAX/NORM additionally reduce along ``F`` inside
        each batch column to form their normalizers.
        """
        return (
            LoopDim("F", self.n_features, reduction=False,
                    in_weights=False, in_acts=True),
            LoopDim("B", self.batch, reduction=False,
                    in_weights=False, in_acts=True),
        )

    @property
    def loop_sizes(self) -> dict[str, int]:
        return {d.name: d.size for d in self.loop_dims()}

    def act_coord(self, idx: dict[str, int]) -> tuple[int, int]:
        """Input-tensor coordinates for one element index."""
        return (idx["F"], idx["B"])

    def out_coord(self, idx: dict[str, int]) -> tuple[int, int]:
        """Output-tensor coordinates (host layers are shape-preserving)."""
        return (idx["F"], idx["B"])

    def out_shape(self) -> tuple[int, int]:
        return (self.n_features, self.batch)

    def _validate_shape(self) -> None:
        if min(self.n_features, self.batch) < 1:
            raise WorkloadError(
                f"{self.kind.value} layer {self.name!r} has invalid shape"
            )


@dataclass(frozen=True)
class EltwiseLayer(_HostLayerBase):
    """An element-wise binary layer (residual add, gating multiply).

    Attributes:
        name: Layer identifier.
        op: ``"add"`` (saturating int16 sum) or ``"mul"`` (int16 product
            arithmetically right-shifted by ``shift``, then saturated).
        n_features / batch: Tensor shape ``(n_features, batch)``.
        source: Name of the earlier layer whose *output* supplies the
            second operand, or :data:`NETWORK_INPUT` for the network's
            input tensor (the transformer residual path).  ``None``
            means the caller passes the operand explicitly.
        shift: Right shift applied to ``mul`` products (fixed-point
            rescale); ignored for ``add``.
    """

    name: str
    op: str
    n_features: int
    batch: int = 1
    source: str | None = None
    shift: int = 0
    kind: LayerKind = LayerKind.ELTWISE

    #: Both eltwise ops are one arithmetic operation per element.
    ops_per_element = 1

    def __post_init__(self) -> None:
        self._validate_shape()
        if self.op not in ("add", "mul"):
            raise WorkloadError(
                f"eltwise layer {self.name!r}: unknown op {self.op!r}"
            )
        if self.shift < 0:
            raise WorkloadError(
                f"eltwise layer {self.name!r}: shift must be >= 0"
            )

    def src_coord(self, idx: dict[str, int]) -> tuple[int, int]:
        """Second-operand coordinates (element-aligned with the input)."""
        return (idx["F"], idx["B"])


@dataclass(frozen=True)
class SoftmaxLayer(_HostLayerBase):
    """A fixed-point softmax along the feature axis of each batch column.

    The kernel is a base-2 softmax computed entirely in integer
    arithmetic (max-subtract, power-of-two decomposition with linear
    interpolation of the fractional part, integer normalization), so it
    is bit-reproducible across platforms — see
    :func:`repro.sim.host.softmax_q15`.  Outputs are Q15 probabilities.

    Attributes:
        name: Layer identifier.
        n_features: Softmax width (attention keys, or classes).
        batch: Independent columns (attention queries, or batch).
        frac_bits: Fractional bits of the logit scale — logits are read
            as Q\\ ``frac_bits`` fixed point, i.e. the temperature is
            ``2**frac_bits``.
    """

    name: str
    n_features: int
    batch: int = 1
    frac_bits: int = 5
    kind: LayerKind = LayerKind.SOFTMAX

    ops_per_element = SOFTMAX_OPS_PER_ELEMENT

    def __post_init__(self) -> None:
        self._validate_shape()
        if not 0 <= self.frac_bits <= 14:
            raise WorkloadError(
                f"softmax layer {self.name!r}: frac_bits out of range"
            )


@dataclass(frozen=True)
class LayerNormLayer(_HostLayerBase):
    """An integer layernorm along the feature axis of each batch column.

    Mean and variance use exact floor division, the standard deviation is
    an exact integer square root, and the normalized output is scaled to
    Q\\ ``out_frac_bits`` — all integer, all bit-reproducible (see
    :func:`repro.sim.host.layernorm_int16`).  The affine gamma/beta pair
    is folded into the adjacent projection weights, as inference
    deployments do with batch norm.

    Attributes:
        name: Layer identifier.
        n_features: Normalization width (``d_model``).
        batch: Independent columns (sequence positions x batch).
        out_frac_bits: Fractional bits of the normalized output scale.
    """

    name: str
    n_features: int
    batch: int = 1
    out_frac_bits: int = 7
    kind: LayerKind = LayerKind.NORM

    ops_per_element = NORM_OPS_PER_ELEMENT

    def __post_init__(self) -> None:
        self._validate_shape()
        if not 0 <= self.out_frac_bits <= 14:
            raise WorkloadError(
                f"norm layer {self.name!r}: out_frac_bits out of range"
            )
