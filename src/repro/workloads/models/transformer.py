"""Transformer-block workloads: attention, MLP, and mixed precision.

The FTDL paper validates on five CNN/LSTM networks; this family stresses
the matmul-heavy side of the design space the way the Koios benchmark
suite does for FPGA CAD — attention blocks, a plain MLP, and a
mixed-precision variant.

Mapping onto the overlay follows the paper's split: every projection and
attention matmul is a :class:`MatMulLayer` (scheduled on the D1/D2/D3
grid, K = 3 nest), while residual adds, softmax, and layernorm are
host-side layers (§II-A: "processed by host CPU in a pipeline fashion").

Attention's score (``Q·Kᵀ``) and mix (``A·V``) matmuls have no stored
parameters — their "weight" operand is a run-time activation.  They are
modelled as :class:`MatMulLayer` with ``weight_source`` naming the
producing layer: scheduling, cycle simulation, and bandwidth accounting
treat them as weight-streaming MMs (which is exactly how the overlay
executes them), while model-size accounting (``parameter_words``) counts
zero stored words.  The streamed operand fills the (out, in) weight
matrix in row-major order of the producer's output words.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.quantization import PrecisionSpec
from repro.errors import WorkloadError
from repro.workloads.layers import (
    NETWORK_INPUT,
    EltwiseLayer,
    EwopLayer,
    LayerNormLayer,
    MatMulLayer,
    SoftmaxLayer,
)
from repro.workloads.network import AnyLayer, Network


@dataclass(frozen=True)
class TransformerConfig:
    """Shape of one encoder stack.

    Attributes:
        d_model: Embedding width (must divide evenly into heads).
        n_heads: Attention heads per block.
        seq_len: Tokens per sequence — the MM batch dimension.
        d_ff: Feed-forward hidden width.
        n_blocks: Encoder blocks stacked.
        n_classes: Classification head width.
    """

    d_model: int = 128
    n_heads: int = 4
    seq_len: int = 32
    d_ff: int = 256
    n_blocks: int = 2
    n_classes: int = 16

    def __post_init__(self) -> None:
        for name in ("d_model", "n_heads", "seq_len", "d_ff", "n_blocks",
                     "n_classes"):
            if getattr(self, name) < 1:
                raise WorkloadError(f"{name} must be >= 1")
        if self.d_model % self.n_heads:
            raise WorkloadError(
                f"d_model ({self.d_model}) must be divisible by "
                f"n_heads ({self.n_heads})"
            )

    @property
    def d_head(self) -> int:
        return self.d_model // self.n_heads


def _attention_block(cfg: TransformerConfig, b: int,
                     block_input: str) -> list[AnyLayer]:
    """One pre-norm encoder block; ``block_input`` names the residual tap."""
    d, s = cfg.d_model, cfg.seq_len
    layers: list[AnyLayer] = [
        LayerNormLayer(name=f"b{b}.ln1", n_features=d, batch=s),
    ]
    for proj in ("q", "k", "v"):
        layers.append(MatMulLayer(
            name=f"b{b}.{proj}", in_features=d, out_features=d, batch=s,
        ))
    for h in range(cfg.n_heads):
        # score = Q_h · K_hᵀ: the K projection streams through the weight
        # port; the softmaxed scores then stream as the mix weights.
        layers.append(MatMulLayer(
            name=f"b{b}.h{h}.score", in_features=cfg.d_head,
            out_features=s, batch=s, weight_source=f"b{b}.k",
        ))
        layers.append(SoftmaxLayer(
            name=f"b{b}.h{h}.softmax", n_features=s, batch=s,
        ))
        layers.append(MatMulLayer(
            name=f"b{b}.h{h}.mix", in_features=s,
            out_features=cfg.d_head, batch=s, weight_source=f"b{b}.v",
        ))
    layers.append(MatMulLayer(
        name=f"b{b}.out", in_features=d, out_features=d, batch=s,
    ))
    layers.append(EltwiseLayer(
        name=f"b{b}.res1", op="add", n_features=d, batch=s,
        source=block_input,
    ))
    layers.append(LayerNormLayer(name=f"b{b}.ln2", n_features=d, batch=s))
    layers.append(MatMulLayer(
        name=f"b{b}.ffn1", in_features=d, out_features=cfg.d_ff, batch=s,
    ))
    layers.append(EwopLayer(
        name=f"b{b}.gelu", op="relu", n_elements=cfg.d_ff * s,
    ))
    layers.append(MatMulLayer(
        name=f"b{b}.ffn2", in_features=cfg.d_ff, out_features=d, batch=s,
    ))
    layers.append(EltwiseLayer(
        name=f"b{b}.res2", op="add", n_features=d, batch=s,
        source=f"b{b}.res1",
    ))
    return layers


def build_transformer(cfg: TransformerConfig | None = None) -> Network:
    """Build an encoder-stack inference workload (one sequence)."""
    cfg = cfg or TransformerConfig()
    layers: list[AnyLayer] = []
    block_input = NETWORK_INPUT
    for b in range(cfg.n_blocks):
        layers.extend(_attention_block(cfg, b, block_input))
        block_input = f"b{b}.res2"
    layers.append(LayerNormLayer(
        name="final.ln", n_features=cfg.d_model, batch=cfg.seq_len,
    ))
    layers.append(MatMulLayer(
        name="final.head", in_features=cfg.d_model,
        out_features=cfg.n_classes, batch=cfg.seq_len,
    ))
    layers.append(SoftmaxLayer(
        name="final.softmax", n_features=cfg.n_classes, batch=cfg.seq_len,
    ))
    return Network(
        name=f"Transformer-{cfg.d_model}x{cfg.n_heads}h{cfg.seq_len}",
        application="Attention",
        layers=tuple(layers),
    )


#: Hidden widths of the default MLP benchmark (Koios-style dense stack).
MLP_WIDTHS = (256, 256, 128)


def build_transformer_mlp(
    in_features: int = 128,
    widths: tuple[int, ...] = MLP_WIDTHS,
    n_classes: int = 16,
    batch: int = 8,
) -> Network:
    """A plain MLP: MM → relu stacks with a layernorm and softmax head.

    Fully sequential (each layer consumes its predecessor), so the
    bit-true :class:`~repro.sim.pipeline.NetworkSimulator` can chain it
    end to end.
    """
    if not widths:
        raise WorkloadError("MLP needs at least one hidden width")
    layers: list[AnyLayer] = []
    previous = in_features
    for i, width in enumerate(widths):
        layers.append(MatMulLayer(
            name=f"fc{i}", in_features=previous, out_features=width,
            batch=batch,
        ))
        layers.append(EwopLayer(
            name=f"relu{i}", op="relu", n_elements=width * batch,
        ))
        previous = width
    layers.append(LayerNormLayer(
        name="norm", n_features=previous, batch=batch,
    ))
    layers.append(MatMulLayer(
        name="head", in_features=previous, out_features=n_classes,
        batch=batch,
    ))
    layers.append(SoftmaxLayer(
        name="softmax", n_features=n_classes, batch=batch,
    ))
    return Network(
        name="Transformer-MLP",
        application="Attention",
        layers=tuple(layers),
    )


def build_tiny_attention(d_model: int = 32, seq_len: int = 12,
                         n_classes: int = 10) -> Network:
    """A single-path attention chain the sequential simulator can run.

    Every layer consumes its predecessor's output; the score matmul taps
    the layernorm output through ``weight_source`` and the residual add
    taps the network input, so the whole chain runs bit-true through
    :class:`~repro.sim.pipeline.NetworkSimulator` — attention dataflow
    without a graph IR.
    """
    d, s = d_model, seq_len
    layers: tuple[AnyLayer, ...] = (
        LayerNormLayer(name="ln0", n_features=d, batch=s),
        MatMulLayer(name="kproj", in_features=d, out_features=d, batch=s),
        MatMulLayer(name="score", in_features=d, out_features=s, batch=s,
                    weight_source="ln0"),
        SoftmaxLayer(name="attn", n_features=s, batch=s),
        MatMulLayer(name="mix", in_features=s, out_features=d, batch=s),
        EltwiseLayer(name="res", op="add", n_features=d, batch=s,
                     source=NETWORK_INPUT),
        LayerNormLayer(name="ln1", n_features=d, batch=s),
        MatMulLayer(name="head", in_features=d, out_features=n_classes,
                    batch=s),
    )
    return Network(
        name="TinyAttention",
        application="Attention",
        layers=layers,
    )


def transformer_precision_spec(network: Network) -> PrecisionSpec:
    """The int8/bf16 mixed-precision deployment of a transformer net.

    Stored projection/FFN weights drop to int8 (they dominate model
    size and tolerate it); the parameter-free attention matmuls and the
    classification head stay bf16 to protect the softmax input range.
    """
    overrides: dict[str, str] = {}
    for layer in network.accelerated_layers():
        if getattr(layer, "weight_source", None) is not None:
            overrides[layer.name] = "bf16"
        elif layer.name.endswith(".head") or layer.name == "head" \
                or layer.name == "final.head":
            overrides[layer.name] = "bf16"
    return PrecisionSpec(default="int8", overrides=overrides)
