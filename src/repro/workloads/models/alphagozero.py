"""AlphaGoZero-style value/policy network on a 19 x 19 board.

The Table I entry is a compact deployment-scale variant (2.08 MB of 16-bit
weights, CONV-dominated with tiny MM heads).  We use the canonical AGZ
block structure — convolutional stem, residual tower, policy and value
heads — sized at 64 filters and 9 residual blocks, which lands the weight
budget and the 99.9 %-CONV op mix of the paper's row.
"""

from __future__ import annotations

from repro.workloads.layers import ConvLayer, EwopLayer, MatMulLayer
from repro.workloads.network import AnyLayer, Network

#: Board side and input feature planes (8 move pairs + colour plane).
BOARD = 19
IN_PLANES = 17
FILTERS = 64
N_BLOCKS = 9


def _conv_block(
    layers: list[AnyLayer],
    name: str,
    in_ch: int,
    out_ch: int,
    kernel: int,
) -> None:
    padding = kernel // 2
    layers.append(
        ConvLayer(
            name=name,
            in_channels=in_ch,
            out_channels=out_ch,
            in_h=BOARD,
            in_w=BOARD,
            kernel_h=kernel,
            kernel_w=kernel,
            stride=1,
            padding=padding,
        )
    )
    # Batch-norm (folded scale/shift at inference) + ReLU.
    layers.append(
        EwopLayer(
            name=f"{name}.bn_relu",
            op="bn_relu",
            n_elements=out_ch * BOARD * BOARD,
            ops_per_element=3,
        )
    )


def build_alphagozero() -> Network:
    """Build the AlphaGoZero inference workload (one board position)."""
    layers: list[AnyLayer] = []

    _conv_block(layers, "stem", IN_PLANES, FILTERS, kernel=3)

    for i in range(N_BLOCKS):
        _conv_block(layers, f"res{i}.conv1", FILTERS, FILTERS, kernel=3)
        _conv_block(layers, f"res{i}.conv2", FILTERS, FILTERS, kernel=3)
        layers.append(
            EwopLayer(
                name=f"res{i}.add",
                op="add",
                n_elements=FILTERS * BOARD * BOARD,
            )
        )

    # Policy head: 1x1 conv to 2 planes, FC to 362 move logits.
    _conv_block(layers, "policy.conv", FILTERS, 2, kernel=1)
    layers.append(
        MatMulLayer(
            name="policy.fc",
            in_features=2 * BOARD * BOARD,
            out_features=BOARD * BOARD + 1,
        )
    )
    layers.append(
        EwopLayer(name="policy.softmax", op="softmax",
                  n_elements=BOARD * BOARD + 1, ops_per_element=3)
    )

    # Value head: 1x1 conv to 1 plane, FC 361 -> 256 -> 1, tanh.
    _conv_block(layers, "value.conv", FILTERS, 1, kernel=1)
    layers.append(
        MatMulLayer(name="value.fc1", in_features=BOARD * BOARD, out_features=256)
    )
    layers.append(
        EwopLayer(name="value.relu", op="relu", n_elements=256)
    )
    layers.append(MatMulLayer(name="value.fc2", in_features=256, out_features=1))
    layers.append(EwopLayer(name="value.tanh", op="tanh", n_elements=1, ops_per_element=4))

    return Network(
        name="AlphaGoZero", application="Operation Decision", layers=tuple(layers)
    )
