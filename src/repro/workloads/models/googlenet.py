"""GoogLeNet (Inception v1) for 224 x 224 ImageNet inference.

Layer shapes follow Szegedy et al., CVPR 2015 (auxiliary classifiers
omitted, as in inference deployments): roughly 6.9 M weights / 13.8 MB at
16 bit and ~1.58 G MACCs per frame, matching the paper's Table I row and
the 402.6-FPS arithmetic of Table II.
"""

from __future__ import annotations

from repro.workloads.layers import ConvLayer, EwopLayer, MatMulLayer, PoolLayer
from repro.workloads.network import AnyLayer, Network


def _conv_relu(
    layers: list[AnyLayer],
    name: str,
    in_ch: int,
    out_ch: int,
    size: int,
    kernel: int,
    stride: int = 1,
    padding: int = 0,
) -> int:
    """Append a conv + ReLU pair; return the output spatial size."""
    conv = ConvLayer(
        name=name,
        in_channels=in_ch,
        out_channels=out_ch,
        in_h=size,
        in_w=size,
        kernel_h=kernel,
        kernel_w=kernel,
        stride=stride,
        padding=padding,
    )
    layers.append(conv)
    layers.append(
        EwopLayer(
            name=f"{name}.relu",
            op="relu",
            n_elements=out_ch * conv.out_h * conv.out_w,
        )
    )
    return conv.out_h


def _inception(
    layers: list[AnyLayer],
    name: str,
    in_ch: int,
    size: int,
    c1: int,
    c3r: int,
    c3: int,
    c5r: int,
    c5: int,
    cp: int,
) -> int:
    """Append one inception module; return its output channel count.

    Branches: 1x1 (``c1``), 1x1->3x3 (``c3r``->``c3``), 1x1->5x5
    (``c5r``->``c5``), and 3x3 maxpool -> 1x1 (``cp``).
    """
    _conv_relu(layers, f"{name}.b1.1x1", in_ch, c1, size, kernel=1)
    _conv_relu(layers, f"{name}.b2.reduce", in_ch, c3r, size, kernel=1)
    _conv_relu(layers, f"{name}.b2.3x3", c3r, c3, size, kernel=3, padding=1)
    _conv_relu(layers, f"{name}.b3.reduce", in_ch, c5r, size, kernel=1)
    _conv_relu(layers, f"{name}.b3.5x5", c5r, c5, size, kernel=5, padding=2)
    layers.append(
        PoolLayer(f"{name}.b4.pool", in_ch, size, size, kernel=3, stride=1, padding=1)
    )
    _conv_relu(layers, f"{name}.b4.proj", in_ch, cp, size, kernel=1)
    return c1 + c3 + c5 + cp


#: (c1, c3r, c3, c5r, c5, pool-proj) per module, from the GoogLeNet paper.
_INCEPTION_TABLE = {
    "3a": (64, 96, 128, 16, 32, 32),
    "3b": (128, 128, 192, 32, 96, 64),
    "4a": (192, 96, 208, 16, 48, 64),
    "4b": (160, 112, 224, 24, 64, 64),
    "4c": (128, 128, 256, 24, 64, 64),
    "4d": (112, 144, 288, 32, 64, 64),
    "4e": (256, 160, 320, 32, 128, 128),
    "5a": (256, 160, 320, 32, 128, 128),
    "5b": (384, 192, 384, 48, 128, 128),
}


def build_googlenet() -> Network:
    """Build the full GoogLeNet inference workload (one 224 x 224 frame)."""
    layers: list[AnyLayer] = []

    _conv_relu(layers, "conv1", 3, 64, 224, kernel=7, stride=2, padding=3)
    layers.append(PoolLayer("pool1", 64, 112, 112, kernel=3, stride=2, padding=1))
    _conv_relu(layers, "conv2.reduce", 64, 64, 56, kernel=1)
    _conv_relu(layers, "conv2.3x3", 64, 192, 56, kernel=3, padding=1)
    layers.append(PoolLayer("pool2", 192, 56, 56, kernel=3, stride=2, padding=1))

    channels, size = 192, 28
    for module in ("3a", "3b"):
        channels = _inception(layers, module, channels, size, *_INCEPTION_TABLE[module])
    layers.append(PoolLayer("pool3", channels, size, size, kernel=3, stride=2, padding=1))

    size = 14
    for module in ("4a", "4b", "4c", "4d", "4e"):
        channels = _inception(layers, module, channels, size, *_INCEPTION_TABLE[module])
    layers.append(PoolLayer("pool4", channels, size, size, kernel=3, stride=2, padding=1))

    size = 7
    for module in ("5a", "5b"):
        channels = _inception(layers, module, channels, size, *_INCEPTION_TABLE[module])

    layers.append(
        PoolLayer("avgpool", channels, size, size, kernel=7, stride=1, op="pool_avg")
    )
    layers.append(MatMulLayer(name="fc", in_features=channels, out_features=1000))
    layers.append(EwopLayer(name="softmax", op="softmax", n_elements=1000, ops_per_element=3))

    return Network(name="GoogLeNet", application="Image Processing", layers=tuple(layers))
