"""A small sequential CNN for end-to-end pipeline simulation.

LeNet-scale and strictly sequential (no branches), so the
:class:`repro.sim.pipeline.NetworkSimulator` can push real activations
through every stage — overlay CONV/MM, host EWOP — bit-true in seconds.
Not part of the Table I benchmark set.
"""

from __future__ import annotations

from repro.workloads.layers import ConvLayer, EwopLayer, MatMulLayer, PoolLayer
from repro.workloads.network import AnyLayer, Network


def build_smallcnn(in_size: int = 32, in_channels: int = 3) -> Network:
    """Build the demo CNN: two conv/pool stages and a classifier head."""
    layers: list[AnyLayer] = []

    conv1 = ConvLayer(
        name="conv1", in_channels=in_channels, out_channels=8,
        in_h=in_size, in_w=in_size, kernel_h=5, kernel_w=5, padding=2,
    )
    layers.append(conv1)
    layers.append(EwopLayer("relu1", op="relu",
                            n_elements=8 * conv1.out_h * conv1.out_w))
    layers.append(PoolLayer("pool1", 8, conv1.out_h, conv1.out_w,
                            kernel=2, stride=2))
    size = conv1.out_h // 2

    conv2 = ConvLayer(
        name="conv2", in_channels=8, out_channels=16,
        in_h=size, in_w=size, kernel_h=5, kernel_w=5, padding=2,
    )
    layers.append(conv2)
    layers.append(EwopLayer("relu2", op="relu",
                            n_elements=16 * conv2.out_h * conv2.out_w))
    layers.append(PoolLayer("pool2", 16, conv2.out_h, conv2.out_w,
                            kernel=2, stride=2))
    size = conv2.out_h // 2

    layers.append(MatMulLayer("fc", in_features=16 * size * size,
                              out_features=10))
    layers.append(EwopLayer("softmax", op="softmax", n_elements=10,
                            ops_per_element=3))
    return Network(name="SmallCNN", application="demo", layers=tuple(layers))
