"""ResNet50 for 224 x 224 ImageNet inference.

Bottleneck residual architecture of He et al., CVPR 2016: stages of
[3, 4, 6, 3] blocks, ~25.5 M weights / 51 MB at 16 bit, ~3.9 G MACCs per
frame — the Table I ResNet50 row.
"""

from __future__ import annotations

from repro.workloads.layers import ConvLayer, EwopLayer, MatMulLayer, PoolLayer
from repro.workloads.network import AnyLayer, Network


def _conv(
    layers: list[AnyLayer],
    name: str,
    in_ch: int,
    out_ch: int,
    size: int,
    kernel: int,
    stride: int = 1,
    padding: int = 0,
    relu: bool = True,
) -> int:
    conv = ConvLayer(
        name=name,
        in_channels=in_ch,
        out_channels=out_ch,
        in_h=size,
        in_w=size,
        kernel_h=kernel,
        kernel_w=kernel,
        stride=stride,
        padding=padding,
    )
    layers.append(conv)
    if relu:
        layers.append(
            EwopLayer(
                name=f"{name}.relu",
                op="relu",
                n_elements=out_ch * conv.out_h * conv.out_w,
            )
        )
    return conv.out_h


def _bottleneck(
    layers: list[AnyLayer],
    name: str,
    in_ch: int,
    mid_ch: int,
    out_ch: int,
    size: int,
    stride: int,
    downsample: bool,
) -> int:
    """Append one bottleneck block (1x1 -> 3x3 -> 1x1 + identity).

    Returns the output spatial size.  The stride sits on the 3x3 conv
    (the torchvision/v1.5 convention, which is also what inference
    deployments ship).
    """
    _conv(layers, f"{name}.conv1", in_ch, mid_ch, size, kernel=1)
    out_size = _conv(
        layers, f"{name}.conv2", mid_ch, mid_ch, size, kernel=3,
        stride=stride, padding=1,
    )
    _conv(layers, f"{name}.conv3", mid_ch, out_ch, out_size, kernel=1, relu=False)
    if downsample:
        _conv(
            layers, f"{name}.downsample", in_ch, out_ch, size, kernel=1,
            stride=stride, relu=False,
        )
    layers.append(
        EwopLayer(
            name=f"{name}.add_relu",
            op="add_relu",
            n_elements=out_ch * out_size * out_size,
            ops_per_element=2,
        )
    )
    return out_size


#: (blocks, mid channels, out channels) per stage.
_STAGES = (
    ("layer1", 3, 64, 256),
    ("layer2", 4, 128, 512),
    ("layer3", 6, 256, 1024),
    ("layer4", 3, 512, 2048),
)


def build_resnet50() -> Network:
    """Build the full ResNet50 inference workload (one 224 x 224 frame)."""
    layers: list[AnyLayer] = []

    size = _conv(layers, "conv1", 3, 64, 224, kernel=7, stride=2, padding=3)
    layers.append(PoolLayer("maxpool", 64, size, size, kernel=3, stride=2, padding=1))
    size, channels = 56, 64

    for stage_name, n_blocks, mid_ch, out_ch in _STAGES:
        for block in range(n_blocks):
            stride = 2 if (block == 0 and stage_name != "layer1") else 1
            size = _bottleneck(
                layers,
                f"{stage_name}.{block}",
                in_ch=channels,
                mid_ch=mid_ch,
                out_ch=out_ch,
                size=size,
                stride=stride,
                downsample=(block == 0),
            )
            channels = out_ch

    layers.append(
        PoolLayer("avgpool", channels, size, size, kernel=size, stride=1, op="pool_avg")
    )
    layers.append(MatMulLayer(name="fc", in_features=channels, out_features=1000))
    layers.append(EwopLayer(name="softmax", op="softmax", n_elements=1000, ops_per_element=3))

    return Network(name="ResNet50", application="Image Processing", layers=tuple(layers))
