"""MobileNetV1 for 224 x 224 inference (extension model).

Howard et al., 2017: a 3x3 stem plus 13 depthwise-separable blocks.
Not part of the paper's Table I set — it is the stress test for the
grouped-convolution extension: depthwise layers carry almost no weight
reuse, so they probe exactly the assumption (activation broadcast across
SIMD columns) that FTDL's ``D2`` dimension monetizes.

~4.2 M weights / 8.5 MB at 16 bit, ~568 M MACCs per frame.
"""

from __future__ import annotations

from repro.workloads.layers import ConvLayer, EwopLayer, MatMulLayer, PoolLayer
from repro.workloads.network import AnyLayer, Network

#: (stride of the depthwise conv, output channels of the pointwise conv).
_BLOCKS = (
    (1, 64), (2, 128), (1, 128), (2, 256), (1, 256), (2, 512),
    (1, 512), (1, 512), (1, 512), (1, 512), (1, 512),
    (2, 1024), (1, 1024),
)


def _relu(layers: list[AnyLayer], name: str, elements: int) -> None:
    layers.append(EwopLayer(f"{name}.relu", op="relu", n_elements=elements))


def build_mobilenet_v1() -> Network:
    """Build the MobileNetV1 inference workload (one 224 x 224 frame)."""
    layers: list[AnyLayer] = []

    stem = ConvLayer(
        name="conv1", in_channels=3, out_channels=32,
        in_h=224, in_w=224, kernel_h=3, kernel_w=3, stride=2, padding=1,
    )
    layers.append(stem)
    _relu(layers, "conv1", 32 * stem.out_h * stem.out_w)
    size, channels = stem.out_h, 32

    for index, (stride, out_channels) in enumerate(_BLOCKS):
        dw = ConvLayer(
            name=f"block{index}.dw",
            in_channels=channels, out_channels=channels,
            in_h=size, in_w=size, kernel_h=3, kernel_w=3,
            stride=stride, padding=1, groups=channels,
        )
        layers.append(dw)
        _relu(layers, dw.name, channels * dw.out_h * dw.out_w)
        pw = ConvLayer(
            name=f"block{index}.pw",
            in_channels=channels, out_channels=out_channels,
            in_h=dw.out_h, in_w=dw.out_w, kernel_h=1, kernel_w=1,
        )
        layers.append(pw)
        _relu(layers, pw.name, out_channels * pw.out_h * pw.out_w)
        size, channels = pw.out_h, out_channels

    layers.append(
        PoolLayer("avgpool", channels, size, size, kernel=size, stride=1,
                  op="pool_avg")
    )
    layers.append(MatMulLayer("fc", in_features=channels, out_features=1000))
    layers.append(
        EwopLayer("softmax", op="softmax", n_elements=1000, ops_per_element=3)
    )
    return Network(
        name="MobileNetV1", application="Image Processing",
        layers=tuple(layers),
    )
