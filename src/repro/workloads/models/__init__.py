"""Layer-exact definitions of the Table I benchmark networks."""

from repro.workloads.models.googlenet import build_googlenet
from repro.workloads.models.resnet import build_resnet50
from repro.workloads.models.alphagozero import build_alphagozero
from repro.workloads.models.sentiment import build_seqcnn, build_seqlstm
from repro.workloads.models.smallcnn import build_smallcnn
from repro.workloads.models.mobilenet import build_mobilenet_v1
from repro.workloads.models.transformer import (
    TransformerConfig,
    build_tiny_attention,
    build_transformer,
    build_transformer_mlp,
    transformer_precision_spec,
)

__all__ = [
    "build_googlenet",
    "build_resnet50",
    "build_alphagozero",
    "build_seqcnn",
    "build_seqlstm",
    "build_smallcnn",
    "build_mobilenet_v1",
    "TransformerConfig",
    "build_transformer",
    "build_transformer_mlp",
    "build_tiny_attention",
    "transformer_precision_spec",
]
