"""Sentiment-analysis sequence models: seqCNN and seqLSTM (Table I).

The paper characterizes two proprietary sequence-analysis models only by
their op mix and weight budget; we reconstruct architectures that land the
same budgets:

* **seqCNN** — a character-level document CNN: four gated conv blocks with
  /4 max-pooling between them, a wide region-classification head conv, and
  a tiny FC.  Weights ~344 KB at 16-bit; ops dominated by CONV with a
  ~5-10 % EWOP share from the gating/normalization/pooling stack.
* **seqLSTM** — a two-layer LSTM (hidden = input = 1117) unrolled over 25
  timesteps, each step a single fused-gate MM (the four gates stacked into
  one ``2234 -> 4468`` matrix), weights tied across steps.  19.96 M weights
  = 39.9 MB, ops > 99.8 % MM — the Table I row exactly.
"""

from __future__ import annotations

from repro.workloads.layers import ConvLayer, EwopLayer, MatMulLayer
from repro.workloads.network import AnyLayer, Network

# --------------------------------------------------------------------- #
# seqCNN
# --------------------------------------------------------------------- #

#: Document length in tokens and embedding width.
SEQCNN_LENGTH = 4096
SEQCNN_CHANNELS = 16
#: Channels of the wide region-classification head conv.
SEQCNN_HEAD_CHANNELS = 2560
#: EWOP cost per conv-block output element: folded batch-norm (3), GLU
#: gate (3), squeeze-excite scale (4), residual add (1), /4 max pool (4),
#: dropout mask (1).
SEQCNN_BLOCK_EWOPS = 16


def build_seqcnn() -> Network:
    """Build the sentiment seqCNN inference workload (one document)."""
    layers: list[AnyLayer] = []
    length = SEQCNN_LENGTH
    channels = SEQCNN_CHANNELS

    for i in range(4):
        # 1-D "same" conv: the W axis carries the sequence; padding is
        # modelled by widening the input by kernel - 1.
        conv = ConvLayer(
            name=f"block{i}.conv",
            in_channels=channels,
            out_channels=channels,
            in_h=1,
            in_w=length + 2,
            kernel_h=1,
            kernel_w=3,
        )
        layers.append(conv)
        layers.append(
            EwopLayer(
                name=f"block{i}.gates",
                op="bn_glu_se_pool",
                n_elements=channels * length,
                ops_per_element=SEQCNN_BLOCK_EWOPS,
            )
        )
        length //= 4  # /4 max pooling (counted in the gate EWOP above)

    # Wide region head over the 16 pooled positions (kernel 4).
    head = ConvLayer(
        name="head.conv",
        in_channels=channels,
        out_channels=SEQCNN_HEAD_CHANNELS,
        in_h=1,
        in_w=length,
        kernel_h=1,
        kernel_w=4,
    )
    layers.append(head)
    layers.append(
        EwopLayer(
            name="head.maxpool",
            op="pool_max",
            n_elements=SEQCNN_HEAD_CHANNELS,
            ops_per_element=head.out_w,
        )
    )
    layers.append(
        MatMulLayer(name="classifier", in_features=SEQCNN_HEAD_CHANNELS, out_features=2)
    )
    layers.append(
        EwopLayer(name="softmax", op="softmax", n_elements=2, ops_per_element=3)
    )
    return Network(
        name="Sentimental-seqCNN",
        application="Sequence Analysis",
        layers=tuple(layers),
    )


# --------------------------------------------------------------------- #
# seqLSTM
# --------------------------------------------------------------------- #

#: Hidden size == input embedding size; chosen so the two layers' fused
#: gate matrices total 19.96 M words = 39.9 MB at 16 bit.
SEQLSTM_HIDDEN = 1117
SEQLSTM_LAYERS = 2
SEQLSTM_STEPS = 25
#: EWOP cost per hidden unit per step: 3 sigmoids (2), 2 tanh (2),
#: 3 multiplies + 2 adds of the cell update.
SEQLSTM_GATE_EWOPS = 15


def build_seqlstm() -> Network:
    """Build the sentiment seqLSTM inference workload (one sequence).

    Each timestep of each layer is one fused MM over the concatenated
    ``[x_t, h_{t-1}]`` vector producing all four gate pre-activations;
    weights are tied across timesteps via ``weight_group``.
    """
    hidden = SEQLSTM_HIDDEN
    layers: list[AnyLayer] = []
    for step in range(SEQLSTM_STEPS):
        for lstm_layer in range(SEQLSTM_LAYERS):
            layers.append(
                MatMulLayer(
                    name=f"t{step}.l{lstm_layer}.gates",
                    in_features=2 * hidden,
                    out_features=4 * hidden,
                    weight_group=f"lstm.l{lstm_layer}",
                )
            )
            layers.append(
                EwopLayer(
                    name=f"t{step}.l{lstm_layer}.cell",
                    op="lstm_cell",
                    n_elements=hidden,
                    ops_per_element=SEQLSTM_GATE_EWOPS,
                )
            )
    layers.append(MatMulLayer(name="classifier", in_features=hidden, out_features=2))
    layers.append(
        EwopLayer(name="softmax", op="softmax", n_elements=2, ops_per_element=3)
    )
    return Network(
        name="Sentimental-seqLSTM",
        application="Sequence Analysis",
        layers=tuple(layers),
    )
