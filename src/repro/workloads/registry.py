"""One registry of every benchmark workload the stack must support.

The conformance harness (``repro.conformance``) parameterizes over this
table: registering a workload here is all it takes for the network to be
pushed through schedule search, bit-true simulation, serving, fault
masking, and integrity checking.  Two suites today:

* ``"paper"`` — the five Table I networks the FTDL paper validates on.
* ``"transformer"`` — the attention/MLP family plus a mixed-precision
  variant, stressing the matmul/host-layer side of the design space.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.analysis.quantization import PrecisionSpec
from repro.errors import WorkloadError
from repro.workloads.mlperf import MLPERF_MODELS
from repro.workloads.models.transformer import (
    TransformerConfig,
    build_tiny_attention,
    build_transformer,
    build_transformer_mlp,
    transformer_precision_spec,
)
from repro.workloads.network import Network


@dataclass(frozen=True)
class WorkloadSpec:
    """One conformance-tracked workload.

    Attributes:
        name: Registry key (the built network may carry a more specific
            ``Network.name``, e.g. its exact shape).
        builder: Zero-argument network factory.
        suite: Benchmark suite tag (``"paper"`` / ``"transformer"``).
        sequential: True when every layer consumes its predecessor's
            output, so the bit-true :class:`~repro.sim.pipeline.
            NetworkSimulator` can chain the whole network.
        precision: Optional mixed-precision deployment of the network,
            evaluated through :func:`repro.analysis.quantization.
            mixed_precision_report`.
    """

    name: str
    builder: Callable[[], Network]
    suite: str
    sequential: bool = False
    precision: Callable[[Network], PrecisionSpec] | None = None


WORKLOADS: dict[str, WorkloadSpec] = {}
_BUILT: dict[str, Network] = {}


def register_workload(spec: WorkloadSpec) -> WorkloadSpec:
    """Add one workload to the registry.

    Raises:
        WorkloadError: on duplicate names.
    """
    if spec.name in WORKLOADS:
        raise WorkloadError(f"workload {spec.name!r} already registered")
    WORKLOADS[spec.name] = spec
    return spec


def registered_workloads(suite: str | None = None) -> list[WorkloadSpec]:
    """Every registered workload, optionally filtered to one suite."""
    return [
        spec for spec in WORKLOADS.values()
        if suite is None or spec.suite == suite
    ]


def build_workload(name: str) -> Network:
    """Build (and memoize) one registered workload's network.

    Raises:
        WorkloadError: for unknown names.
    """
    if name not in WORKLOADS:
        known = ", ".join(WORKLOADS)
        raise WorkloadError(f"unknown workload {name!r}; known: {known}")
    if name not in _BUILT:
        _BUILT[name] = WORKLOADS[name].builder()
    return _BUILT[name]


# --------------------------------------------------------------------- #
# The paper's five Table I networks.
# --------------------------------------------------------------------- #
for _name, _builder in MLPERF_MODELS.items():
    register_workload(WorkloadSpec(
        name=_name, builder=_builder, suite="paper",
    ))

# --------------------------------------------------------------------- #
# The transformer/Koios-style suite.
# --------------------------------------------------------------------- #
register_workload(WorkloadSpec(
    name="Transformer-base",
    builder=lambda: build_transformer(TransformerConfig()),
    suite="transformer",
))
register_workload(WorkloadSpec(
    name="Transformer-MLP",
    builder=build_transformer_mlp,
    suite="transformer",
    sequential=True,
))
register_workload(WorkloadSpec(
    name="TinyAttention",
    builder=build_tiny_attention,
    suite="transformer",
    sequential=True,
))
register_workload(WorkloadSpec(
    name="Transformer-mixed",
    builder=lambda: build_transformer(TransformerConfig(
        d_model=64, n_heads=2, seq_len=16, d_ff=128, n_blocks=1,
    )),
    suite="transformer",
    precision=transformer_precision_spec,
))
