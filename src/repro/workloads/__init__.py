"""DL workload definitions: layers, loop nests, and the MLPerf model set.

Layers carry everything the rest of the stack consumes: the K-level loop
nest the compiler tiles (K = 6 for CONV, K = 3 for MM), operation and
weight accounting for Table I, and tile-footprint functions used by the
analytical model's ``f_act`` / ``f_psum`` terms.
"""

from repro.workloads.layers import (
    LayerKind,
    LoopDim,
    ConvLayer,
    MatMulLayer,
    EwopLayer,
    PoolLayer,
)
from repro.workloads.network import Network, OpBreakdown
from repro.workloads.mlperf import MLPERF_MODELS, build_model, table1_rows

__all__ = [
    "LayerKind",
    "LoopDim",
    "ConvLayer",
    "MatMulLayer",
    "EwopLayer",
    "PoolLayer",
    "Network",
    "OpBreakdown",
    "MLPERF_MODELS",
    "build_model",
    "table1_rows",
]
