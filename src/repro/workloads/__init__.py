"""DL workload definitions: layers, loop nests, and the MLPerf model set.

Layers carry everything the rest of the stack consumes: the K-level loop
nest the compiler tiles (K = 6 for CONV, K = 3 for MM), operation and
weight accounting for Table I, and tile-footprint functions used by the
analytical model's ``f_act`` / ``f_psum`` terms.
"""

from repro.workloads.layers import (
    ACCELERATED_KINDS,
    HOST_KINDS,
    NETWORK_INPUT,
    LayerKind,
    LoopDim,
    ConvLayer,
    MatMulLayer,
    EwopLayer,
    EltwiseLayer,
    SoftmaxLayer,
    LayerNormLayer,
    PoolLayer,
)
from repro.workloads.network import Network, OpBreakdown
from repro.workloads.mlperf import MLPERF_MODELS, build_model, table1_rows
from repro.workloads.registry import (
    WORKLOADS,
    WorkloadSpec,
    build_workload,
    register_workload,
    registered_workloads,
)

__all__ = [
    "ACCELERATED_KINDS",
    "HOST_KINDS",
    "NETWORK_INPUT",
    "LayerKind",
    "LoopDim",
    "ConvLayer",
    "MatMulLayer",
    "EwopLayer",
    "EltwiseLayer",
    "SoftmaxLayer",
    "LayerNormLayer",
    "PoolLayer",
    "Network",
    "OpBreakdown",
    "MLPERF_MODELS",
    "build_model",
    "table1_rows",
    "WORKLOADS",
    "WorkloadSpec",
    "build_workload",
    "register_workload",
    "registered_workloads",
]
