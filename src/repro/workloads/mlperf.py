"""The Table I benchmark set and its characterization rows.

``table1_rows`` regenerates the paper's Table I: per-model operation
breakdown across CONV / MM / EWOP and the 16-bit weight budget.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.errors import WorkloadError
from repro.workloads.models import (
    build_alphagozero,
    build_googlenet,
    build_resnet50,
    build_seqcnn,
    build_seqlstm,
)
from repro.workloads.network import Network

#: Model name -> builder, in Table I order.
MLPERF_MODELS: dict[str, Callable[[], Network]] = {
    "GoogLeNet": build_googlenet,
    "ResNet50": build_resnet50,
    "AlphaGoZero": build_alphagozero,
    "Sentimental-seqCNN": build_seqcnn,
    "Sentimental-seqLSTM": build_seqlstm,
}

_CACHE: dict[str, Network] = {}


def build_model(name: str) -> Network:
    """Build (and memoize) one Table I model by name.

    Raises:
        WorkloadError: for unknown model names.
    """
    if name not in MLPERF_MODELS:
        known = ", ".join(MLPERF_MODELS)
        raise WorkloadError(f"unknown model {name!r}; known models: {known}")
    if name not in _CACHE:
        _CACHE[name] = MLPERF_MODELS[name]()
    return _CACHE[name]


@dataclass(frozen=True)
class Table1Row:
    """One row of Table I."""

    model: str
    application: str
    conv_pct: float
    mm_pct: float
    ewop_pct: float
    weight_bytes: int

    def format_weights(self) -> str:
        """Human form of the weight budget, matching the paper's units."""
        if self.weight_bytes >= 1e6:
            return f"{self.weight_bytes / 1e6:.2f}M"
        return f"{self.weight_bytes / 1e3:.2f}K"


def table1_rows() -> list[Table1Row]:
    """Regenerate Table I for every benchmark model."""
    rows = []
    for name in MLPERF_MODELS:
        net = build_model(name)
        breakdown = net.op_breakdown()
        rows.append(
            Table1Row(
                model=net.name,
                application=net.application,
                conv_pct=100.0 * breakdown.conv_fraction,
                mm_pct=100.0 * breakdown.mm_fraction,
                ewop_pct=100.0 * breakdown.ewop_fraction,
                weight_bytes=net.weight_bytes,
            )
        )
    return rows
