"""Terminal plotting for figures (no plotting libraries offline).

Renders scatter and line charts as fixed-size character grids; the
benchmark harness prints these next to the raw series so figures remain
inspectable in CI logs.
"""

from __future__ import annotations

import math

from repro.errors import FTDLError


def _scale(values: list[float], cells: int, log: bool) -> list[int]:
    if log:
        if min(values) <= 0:
            raise FTDLError("log scale requires positive values")
        values = [math.log10(v) for v in values]
    lo, hi = min(values), max(values)
    span = hi - lo or 1.0
    return [int((v - lo) / span * (cells - 1)) for v in values]


def scatter_plot(
    xs: list[float],
    ys: list[float],
    width: int = 64,
    height: int = 18,
    marker: str = "o",
    markers: list[str] | None = None,
    title: str = "",
    log_x: bool = False,
) -> str:
    """Render an (x, y) scatter as text.

    Args:
        xs / ys: Point coordinates (equal length, non-empty).
        markers: Optional per-point marker characters (e.g. binned colour).
        log_x: Log-scale the x axis (roofline convention).
    """
    if not xs or len(xs) != len(ys):
        raise FTDLError("scatter needs equal-length, non-empty series")
    cols = _scale(list(xs), width, log_x)
    rows = _scale(list(ys), height, False)
    grid = [[" "] * width for _ in range(height)]
    for i, (c, r) in enumerate(zip(cols, rows)):
        grid[height - 1 - r][c] = markers[i] if markers else marker
    lines = [title] if title else []
    lines += ["|" + "".join(row) for row in grid]
    lines.append("+" + "-" * width)
    lines.append(
        f" x: [{min(xs):.3g}, {max(xs):.3g}]"
        f"{' (log)' if log_x else ''}   y: [{min(ys):.3g}, {max(ys):.3g}]"
    )
    return "\n".join(lines)


def line_plot(
    xs: list[float],
    series: dict[str, list[float]],
    width: int = 64,
    height: int = 16,
    title: str = "",
) -> str:
    """Render one or more named y-series over shared x values."""
    if not xs or not series:
        raise FTDLError("line plot needs x values and at least one series")
    for name, ys in series.items():
        if len(ys) != len(xs):
            raise FTDLError(f"series {name!r} length != x length")
    all_y = [y for ys in series.values() for y in ys]
    cols = _scale(list(xs), width, False)
    lo, hi = min(all_y), max(all_y)
    span = hi - lo or 1.0
    grid = [[" "] * width for _ in range(height)]
    marks = "ox+*#@%&"
    for s_index, (name, ys) in enumerate(series.items()):
        mark = marks[s_index % len(marks)]
        for c, y in zip(cols, ys):
            r = int((y - lo) / span * (height - 1))
            grid[height - 1 - r][c] = mark
    lines = [title] if title else []
    lines += ["|" + "".join(row) for row in grid]
    lines.append("+" + "-" * width)
    legend = "   ".join(
        f"{marks[i % len(marks)]}={name}" for i, name in enumerate(series)
    )
    lines.append(f" y: [{lo:.3g}, {hi:.3g}]   {legend}")
    return "\n".join(lines)
