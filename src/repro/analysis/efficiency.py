"""Whole-network evaluation: compile every layer, aggregate the results.

This is the path behind the paper's §V-C numbers: schedule each CONV/MM
layer of a network on one overlay configuration, sum the cycles, and
derive FPS, network hardware efficiency, DRAM traffic, and the EWOP work
left to the host CPU.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.compiler.cache import ScheduleCache
from repro.compiler.search import Schedule
from repro.overlay.config import OverlayConfig
from repro.sim.trace import DramTrace
from repro.units import OPS_PER_MACC
from repro.workloads.network import Network


@dataclass(frozen=True)
class LayerResult:
    """One layer's scheduled outcome within a network evaluation."""

    name: str
    schedule: Schedule

    @property
    def cycles(self) -> int:
        return self.schedule.cycles

    @property
    def hardware_efficiency(self) -> float:
        return self.schedule.hardware_efficiency

    @property
    def bottleneck(self) -> str:
        return self.schedule.estimate.bottleneck


@dataclass(frozen=True)
class NetworkResult:
    """Aggregate outcome of one network on one overlay configuration."""

    network: Network
    config: OverlayConfig
    objective: str
    layers: tuple[LayerResult, ...] = field(default_factory=tuple)

    # ------------------------------------------------------------------ #
    @property
    def total_cycles(self) -> int:
        return sum(layer.cycles for layer in self.layers)

    @property
    def seconds_per_frame(self) -> float:
        return self.total_cycles / (self.config.clk_h_mhz * 1e6)

    @property
    def fps(self) -> float:
        return 1.0 / self.seconds_per_frame if self.total_cycles else 0.0

    @property
    def hardware_efficiency(self) -> float:
        """Network-level efficiency: useful MACCs over offered slots."""
        if not self.total_cycles:
            return 0.0
        return self.network.accelerated_maccs / (
            self.config.n_tpe * self.total_cycles
        )

    @property
    def attained_gops(self) -> float:
        if not self.total_cycles:
            return 0.0
        return (
            OPS_PER_MACC * self.network.accelerated_maccs
            / self.seconds_per_frame / 1e9
        )

    @property
    def mean_e_wbuf(self) -> float:
        """Weight-traffic-weighted WBUF efficiency across layers."""
        stored = sum(
            layer.schedule.layer.weight_words / max(layer.schedule.estimate.e_wbuf, 1e-9)
            for layer in self.layers
        )
        unique = sum(layer.schedule.layer.weight_words for layer in self.layers)
        return unique / stored if stored else 0.0

    @property
    def host_ewop_ops(self) -> int:
        """Element-wise operations delegated to the host CPU per frame."""
        return self.network.op_breakdown().ewop_ops

    @property
    def host_ops(self) -> int:
        """All host-side (0-MACC) operations per frame — EWOP plus the
        transformer-suite eltwise/softmax/norm layers.  Never feeds a
        per-MACC divisor: these layers contribute no MACCs."""
        return self.network.op_breakdown().host_ops

    def dram_trace(self) -> DramTrace:
        """Synthesize a frame-level DRAM trace from the layer estimates."""
        trace = DramTrace()
        cycle = 0
        for layer in self.layers:
            est = layer.schedule.estimate
            rd_words = int(est.c_dram_rd * self.config.dram_rd_words_per_cycle())
            wr_words = int(est.c_dram_wr * self.config.dram_wr_words_per_cycle())
            trace.record(cycle, "RD", rd_words, "layer")
            trace.record(cycle, "WR", wr_words, "layer")
            cycle += layer.cycles
        return trace

    def describe(self) -> str:
        return (
            f"{self.network.name} on {self.config.d1}x{self.config.d2}x"
            f"{self.config.d3} @ {self.config.clk_h_mhz:.0f} MHz: "
            f"{self.fps:.1f} FPS, HW eff {self.hardware_efficiency:.1%}, "
            f"E_WBUF {self.mean_e_wbuf:.2f}"
        )


def evaluate_network(
    network: Network,
    config: OverlayConfig,
    objective: str = "performance",
    cache: ScheduleCache | None = None,
) -> NetworkResult:
    """Schedule every accelerated layer of ``network`` and aggregate.

    Args:
        network: The workload.
        config: Overlay configuration to schedule onto.
        objective: Search objective for every layer.
        cache: Optional shared :class:`ScheduleCache` (must match
            ``config`` and ``objective``); one is created if omitted.
    """
    if cache is None:
        cache = ScheduleCache(config, objective=objective)
    results = [
        LayerResult(name=layer.name, schedule=cache.schedule(layer))
        for layer in network.accelerated_layers()
    ]
    return NetworkResult(
        network=network,
        config=config,
        objective=objective,
        layers=tuple(results),
    )
