"""Self-contained SVG chart rendering (no plotting libraries).

Produces genuine vector figures for Fig. 6 / Fig. 7-style data: scatter
charts with a color axis and multi-series line charts, with axes, ticks,
and legends.  Deliberately small: enough for the benchmark artifacts to
include real figures, not a plotting framework.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from xml.sax.saxutils import escape

from repro.errors import FTDLError

_WIDTH, _HEIGHT = 640, 420
_MARGIN_L, _MARGIN_R, _MARGIN_T, _MARGIN_B = 70, 20, 40, 55

#: Okabe-Ito palette: colour-blind safe series colours.
_COLORS = ("#0072B2", "#D55E00", "#009E73", "#CC79A7",
           "#E69F00", "#56B4E9", "#F0E442", "#000000")


def _ticks(lo: float, hi: float, n: int = 5) -> list[float]:
    """Round tick positions spanning [lo, hi]."""
    if hi <= lo:
        return [lo]
    raw = (hi - lo) / max(n - 1, 1)
    magnitude = 10 ** math.floor(math.log10(raw))
    for step in (1, 2, 2.5, 5, 10):
        if raw <= step * magnitude:
            raw = step * magnitude
            break
    first = math.ceil(lo / raw) * raw
    ticks = []
    value = first
    while value <= hi + 1e-9 * raw:
        ticks.append(round(value, 10))
        value += raw
    return ticks or [lo]


@dataclass
class _Scale:
    lo: float
    hi: float
    pixel_lo: float
    pixel_hi: float
    log: bool = False

    def __call__(self, value: float) -> float:
        lo, hi, v = self.lo, self.hi, value
        if self.log:
            lo, hi, v = math.log10(lo), math.log10(hi), math.log10(v)
        span = hi - lo or 1.0
        frac = (v - lo) / span
        return self.pixel_lo + frac * (self.pixel_hi - self.pixel_lo)


def _axes(xs: _Scale, ys: _Scale, x_label: str, y_label: str,
          title: str) -> list[str]:
    title, x_label, y_label = escape(title), escape(x_label), escape(y_label)
    parts = [
        f'<rect x="0" y="0" width="{_WIDTH}" height="{_HEIGHT}" fill="white"/>',
        f'<text x="{_WIDTH / 2}" y="24" text-anchor="middle" '
        f'font-size="15" font-family="sans-serif">{title}</text>',
        f'<line x1="{_MARGIN_L}" y1="{_HEIGHT - _MARGIN_B}" '
        f'x2="{_WIDTH - _MARGIN_R}" y2="{_HEIGHT - _MARGIN_B}" '
        f'stroke="black"/>',
        f'<line x1="{_MARGIN_L}" y1="{_MARGIN_T}" x2="{_MARGIN_L}" '
        f'y2="{_HEIGHT - _MARGIN_B}" stroke="black"/>',
        f'<text x="{(_MARGIN_L + _WIDTH - _MARGIN_R) / 2}" '
        f'y="{_HEIGHT - 12}" text-anchor="middle" font-size="12" '
        f'font-family="sans-serif">{x_label}</text>',
        f'<text x="16" y="{(_MARGIN_T + _HEIGHT - _MARGIN_B) / 2}" '
        f'text-anchor="middle" font-size="12" font-family="sans-serif" '
        f'transform="rotate(-90 16 {(_MARGIN_T + _HEIGHT - _MARGIN_B) / 2})"'
        f'>{y_label}</text>',
    ]
    if xs.log:
        decades = range(
            math.floor(math.log10(xs.lo)), math.ceil(math.log10(xs.hi)) + 1
        )
        x_ticks = [10.0**d for d in decades if xs.lo <= 10.0**d <= xs.hi]
        x_ticks = x_ticks or [xs.lo, xs.hi]
    else:
        x_ticks = _ticks(xs.lo, xs.hi)
    for tick in x_ticks:
        px = xs(tick)
        parts.append(
            f'<line x1="{px:.1f}" y1="{_HEIGHT - _MARGIN_B}" '
            f'x2="{px:.1f}" y2="{_HEIGHT - _MARGIN_B + 5}" stroke="black"/>'
        )
        parts.append(
            f'<text x="{px:.1f}" y="{_HEIGHT - _MARGIN_B + 18}" '
            f'text-anchor="middle" font-size="11" '
            f'font-family="sans-serif">{tick:g}</text>'
        )
    for tick in _ticks(ys.lo, ys.hi):
        py = ys(tick)
        parts.append(
            f'<line x1="{_MARGIN_L - 5}" y1="{py:.1f}" x2="{_MARGIN_L}" '
            f'y2="{py:.1f}" stroke="black"/>'
        )
        parts.append(
            f'<text x="{_MARGIN_L - 8}" y="{py + 4:.1f}" text-anchor="end" '
            f'font-size="11" font-family="sans-serif">{tick:g}</text>'
        )
    return parts


def _document(parts: list[str]) -> str:
    body = "\n  ".join(parts)
    return (
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{_WIDTH}" '
        f'height="{_HEIGHT}" viewBox="0 0 {_WIDTH} {_HEIGHT}">\n  '
        f"{body}\n</svg>\n"
    )


def _scales(xs, ys, log_x):
    if not xs or len(xs) != len(ys):
        raise FTDLError("chart needs equal-length, non-empty series")
    if log_x and min(xs) <= 0:
        raise FTDLError("log scale requires positive x values")
    pad = 0.05 * ((max(ys) - min(ys)) or abs(max(ys)) or 1.0)
    x_scale = _Scale(min(xs), max(xs), _MARGIN_L + 10, _WIDTH - _MARGIN_R - 10,
                     log=log_x)
    y_scale = _Scale(min(ys) - pad, max(ys) + pad,
                     _HEIGHT - _MARGIN_B - 5, _MARGIN_T + 5)
    return x_scale, y_scale


def svg_scatter(
    xs: list[float],
    ys: list[float],
    colors: list[float] | None = None,
    title: str = "",
    x_label: str = "x",
    y_label: str = "y",
    log_x: bool = False,
) -> str:
    """Render a scatter chart; ``colors`` in [0, 1] maps to a blue-to-red
    ramp (the Fig. 7 WBUF-efficiency axis)."""
    x_scale, y_scale = _scales(xs, ys, log_x)
    parts = _axes(x_scale, y_scale, x_label, y_label, title)
    for i, (x, y) in enumerate(zip(xs, ys)):
        if colors is not None:
            c = min(1.0, max(0.0, colors[i]))
            fill = f"rgb({int(40 + 180 * (1 - c))},60,{int(40 + 180 * c)})"
        else:
            fill = _COLORS[0]
        parts.append(
            f'<circle cx="{x_scale(x):.1f}" cy="{y_scale(y):.1f}" r="4" '
            f'fill="{fill}" fill-opacity="0.75"/>'
        )
    if colors is not None:
        parts.append(
            f'<text x="{_WIDTH - _MARGIN_R}" y="{_MARGIN_T - 6}" '
            f'text-anchor="end" font-size="11" font-family="sans-serif">'
            f"color: red = low E_WBUF, blue = high</text>"
        )
    return _document(parts)


def svg_lines(
    xs: list[float],
    series: dict[str, list[float]],
    title: str = "",
    x_label: str = "x",
    y_label: str = "y",
) -> str:
    """Render one or more named line series over shared x values."""
    if not series:
        raise FTDLError("line chart needs at least one series")
    all_y = [y for ys in series.values() for y in ys]
    for name, ys in series.items():
        if len(ys) != len(xs):
            raise FTDLError(f"series {name!r} length != x length")
    x_scale, y_scale = _scales(list(xs) * len(series), all_y, log_x=False)
    x_scale = _Scale(min(xs), max(xs), _MARGIN_L + 10,
                     _WIDTH - _MARGIN_R - 10)
    parts = _axes(x_scale, y_scale, x_label, y_label, title)
    for index, (name, ys) in enumerate(series.items()):
        color = _COLORS[index % len(_COLORS)]
        points = " ".join(
            f"{x_scale(x):.1f},{y_scale(y):.1f}" for x, y in zip(xs, ys)
        )
        parts.append(
            f'<polyline points="{points}" fill="none" stroke="{color}" '
            f'stroke-width="2"/>'
        )
        for x, y in zip(xs, ys):
            parts.append(
                f'<circle cx="{x_scale(x):.1f}" cy="{y_scale(y):.1f}" '
                f'r="3.5" fill="{color}"/>'
            )
        parts.append(
            f'<text x="{_MARGIN_L + 10 + 130 * index}" y="{_MARGIN_T - 6}" '
            f'font-size="12" font-family="sans-serif" fill="{color}">'
            f"— {escape(name)}</text>"
        )
    return _document(parts)
