"""Table II: overall performance and related-works comparison.

The FTDL row comes out of the full stack (compiler + analytical model +
power model); the prior-work rows are the paper's own methodology — each
work's published (frequency, hardware efficiency) rescaled to the same
DSP count.  Speedup factors are normalized to the first row ([10]), as in
the paper.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.efficiency import NetworkResult
from repro.baselines.priorworks import PRIOR_WORKS, PriorWork
from repro.dram.power import estimate_power as estimate_dram_power
from repro.dram.spec import DDR4_2400
from repro.errors import FTDLError
from repro.fpga.devices import Device
from repro.power.model import estimate_overlay_power
from repro.units import OPS_PER_MACC


@dataclass(frozen=True)
class ComparisonRow:
    """One column of Table II (a design under comparison)."""

    key: str
    name: str
    quantization_bits: int
    dsp_freq_mhz: float
    hardware_efficiency: float
    fps: dict[str, float]
    gops_per_watt: float | None

    def speedup_over(self, baseline: "ComparisonRow", model: str) -> float:
        base = baseline.fps.get(model, 0.0)
        if base <= 0:
            raise FTDLError(f"baseline has no FPS for model {model!r}")
        return self.fps[model] / base


def _prior_row(work: PriorWork, n_dsp: int, model_ops: dict[str, int]) -> ComparisonRow:
    return ComparisonRow(
        key=work.key,
        name=work.name,
        quantization_bits=work.quantization_bits,
        dsp_freq_mhz=work.dsp_freq_mhz,
        hardware_efficiency=work.hardware_efficiency,
        fps={m: work.fps(n_dsp, ops) for m, ops in model_ops.items()},
        gops_per_watt=work.gops_per_watt,
    )


def build_table2(
    ftdl_results: dict[str, NetworkResult],
    device: Device,
) -> list[ComparisonRow]:
    """Build the Table II rows: every prior work plus FTDL last.

    Args:
        ftdl_results: Network name -> evaluated FTDL result (all on the
            same overlay configuration).
        device: The device FTDL runs on (for the power model).

    Returns:
        Rows in the paper's order; speedups can be derived against
        ``rows[0]`` (the [10] baseline).
    """
    if not ftdl_results:
        raise FTDLError("at least one FTDL network result is required")
    configs = {id(r.config) for r in ftdl_results.values()}
    first = next(iter(ftdl_results.values()))
    config = first.config
    if len({(r.config.d1, r.config.d2, r.config.d3, r.config.clk_h_mhz)
            for r in ftdl_results.values()}) != 1:
        raise FTDLError("all FTDL results must share one configuration")

    model_ops = {
        name: OPS_PER_MACC * result.network.accelerated_maccs
        for name, result in ftdl_results.items()
    }
    n_dsp = config.n_tpe

    rows = [_prior_row(work, n_dsp, model_ops) for work in PRIOR_WORKS]

    # FTDL row: measured efficiency per network, power from the model with
    # the first network's utilization and DRAM trace.
    mean_eff = sum(r.hardware_efficiency for r in ftdl_results.values()) / len(
        ftdl_results
    )
    dram_report = estimate_dram_power(
        first.dram_trace(), DDR4_2400, first.total_cycles, config.clk_h_mhz
    )
    power = estimate_overlay_power(config, device, mean_eff, dram_report)
    attained = OPS_PER_MACC * config.n_tpe * config.clk_h_mhz * 1e-3 * mean_eff
    rows.append(
        ComparisonRow(
            key="FTDL",
            name="FTDL (this work)",
            quantization_bits=16,
            dsp_freq_mhz=config.clk_h_mhz,
            hardware_efficiency=mean_eff,
            fps={name: r.fps for name, r in ftdl_results.items()},
            gops_per_watt=power.gops_per_watt(attained),
        )
    )
    return rows


def format_table2(rows: list[ComparisonRow], models: list[str]) -> str:
    """Render Table II as aligned text, speedups normalized to row 0."""
    baseline = rows[0]
    lines = [
        f"{'Work':18s} {'MHz':>5s} {'HW-eff':>7s} "
        + " ".join(f"{m + ' FPS':>18s}" for m in models)
        + f" {'GOPS/W':>8s}"
    ]
    for row in rows:
        fps_cells = []
        for model in models:
            fps = row.fps[model]
            speedup = row.speedup_over(baseline, model)
            fps_cells.append(f"{fps:9.1f} ({speedup:4.1f}x)")
        gpw = f"{row.gops_per_watt:8.1f}" if row.gops_per_watt else "     N/A"
        lines.append(
            f"{row.key + ' ' + row.name:18s} {row.dsp_freq_mhz:5.0f} "
            f"{row.hardware_efficiency:7.1%} "
            + " ".join(f"{c:>18s}" for c in fps_cells)
            + f" {gpw}"
        )
    return "\n".join(lines)
