"""Analysis and reporting: network evaluation, roofline, comparisons."""

from repro.analysis.efficiency import LayerResult, NetworkResult, evaluate_network
from repro.analysis.roofline import RooflinePoint, roofline_points, roof_curve
from repro.analysis.comparison import ComparisonRow, build_table2
from repro.analysis.ascii_plot import scatter_plot, line_plot
from repro.analysis.svg_plot import svg_scatter, svg_lines
from repro.analysis.partition import (
    DeploymentPlan,
    partition_by_weight_groups,
    plan_deployment,
)
from repro.analysis.quantization import (
    QuantizationReport,
    precision_sweep,
    quantized_layer_error,
)

__all__ = [
    "LayerResult",
    "NetworkResult",
    "evaluate_network",
    "RooflinePoint",
    "roofline_points",
    "roof_curve",
    "ComparisonRow",
    "build_table2",
    "scatter_plot",
    "line_plot",
    "svg_scatter",
    "svg_lines",
    "DeploymentPlan",
    "partition_by_weight_groups",
    "plan_deployment",
    "QuantizationReport",
    "precision_sweep",
    "quantized_layer_error",
]
