"""Multi-FPGA model partitioning (paper §II-B1).

When a model's weights exceed one device's aggregate WBUF, a multi-FPGA
system splits the layers across devices so the weight-stationary scheme
survives.  :func:`partition_by_weight_groups` balances *unique* weight
bytes (layers tied through a ``weight_group`` — e.g. unrolled LSTM
timesteps — stay together), and :func:`plan_deployment` evaluates the
resulting pipeline, switching each partition to resident weights when its
stored footprint fits.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field

from repro.analysis.efficiency import NetworkResult, evaluate_network
from repro.errors import FTDLError, PartitionError
from repro.overlay.config import OverlayConfig
from repro.units import BYTES_PER_WORD
from repro.workloads.layers import HOST_KINDS
from repro.workloads.network import Network


def partition_by_weight_groups(network: Network, n_devices: int) -> list[Network]:
    """Split layers into up to ``n_devices`` groups of roughly equal
    unique *stored* weight bytes.

    Weight groups are atomic; host layers (EWOP/eltwise/softmax/norm)
    follow their most recent accelerated producer.  Layers that stream
    run-time activations through the weight port (``weight_source``)
    store nothing, so they weigh zero in the balance but still anchor a
    group.  Returns only non-empty partitions.

    Raises:
        FTDLError: if ``n_devices`` is not positive.
    """
    if n_devices < 1:
        raise FTDLError(f"need >= 1 device, got {n_devices}")
    group_sizes: dict[str, int] = {}
    for layer in network.layers:
        if layer.kind in HOST_KINDS:
            continue
        key = getattr(layer, "weight_group", None) or layer.name
        group_sizes.setdefault(key, layer.parameter_words)

    total = sum(group_sizes.values())
    target = total / n_devices if n_devices else total
    assignment: dict[str, int] = {}
    device, acc = 0, 0
    for key, words in group_sizes.items():
        assignment[key] = device
        acc += words
        if acc >= target and device < n_devices - 1:
            device, acc = device + 1, 0

    buckets: list[list] = [[] for _ in range(n_devices)]
    current = 0
    for layer in network.layers:
        if layer.kind not in HOST_KINDS:
            key = getattr(layer, "weight_group", None) or layer.name
            current = assignment[key]
        buckets[current].append(layer)

    return [
        Network(
            name=f"{network.name}.part{i}",
            application=network.application,
            layers=tuple(layers),
        )
        for i, layers in enumerate(buckets)
        if layers
    ]


@dataclass(frozen=True)
class DeviceStage:
    """One pipeline stage of a multi-FPGA deployment."""

    partition: Network
    result: NetworkResult
    resident: bool
    stored_bytes: int


@dataclass(frozen=True)
class DeploymentPlan:
    """A pipelined multi-FPGA deployment of one network."""

    network: Network
    config: OverlayConfig
    stages: tuple[DeviceStage, ...] = field(default_factory=tuple)

    @property
    def n_devices(self) -> int:
        return len(self.stages)

    @property
    def bottleneck_cycles(self) -> int:
        """Slowest stage — the pipeline's inverse throughput."""
        return max((s.result.total_cycles for s in self.stages), default=0)

    @property
    def pipeline_fps(self) -> float:
        if not self.bottleneck_cycles:
            return 0.0
        return self.config.clk_h_mhz * 1e6 / self.bottleneck_cycles

    @property
    def all_resident(self) -> bool:
        return all(stage.resident for stage in self.stages)


def plan_deployment(
    network: Network,
    config: OverlayConfig,
    n_devices: int,
    objective: str = "balance",
    require_resident: bool = False,
) -> DeploymentPlan:
    """Partition ``network`` across ``n_devices`` identical overlays.

    Each partition compiles with ``objective`` (balance by default, since
    WBUF efficiency decides residency); partitions whose *stored* weight
    footprint fits the device's aggregate WBUF re-compile with resident
    weights, dropping their streaming bandwidth cost.

    ``require_resident`` enforces the point of a multi-FPGA deployment
    (§II-B1): every stage's stored weights must fit its device's WBUF.

    Raises:
        PartitionError: if ``network`` has no accelerated layers — there
            is nothing to deploy, and returning an empty plan would let
            the zero silently poison downstream throughput math.  Also
            raised under ``require_resident`` when the network is too
            large for ``n_devices`` of this device: some stage's weights
            still exceed the aggregate WBUF.
        ScheduleError: if some layer cannot be scheduled on ``config``
            at all (e.g. the network is too large for the device's
            buffers at any tiling).
    """
    if not network.accelerated_layers():
        raise PartitionError(
            f"network {network.name!r} has no CONV/MM layers to deploy"
        )
    wbuf_budget = config.n_tpe * config.s_wbuf_words * BYTES_PER_WORD
    stages = []
    for part in partition_by_weight_groups(network, n_devices):
        if not part.accelerated_layers():
            continue
        result = evaluate_network(part, config, objective=objective)
        stored_bytes = int(
            part.weight_bytes / max(result.mean_e_wbuf, 1e-9)
        )
        resident = stored_bytes <= wbuf_budget
        if resident:
            resident_config = dataclasses.replace(config, weights_resident=True)
            result = evaluate_network(part, resident_config, objective=objective)
        stages.append(DeviceStage(
            partition=part,
            result=result,
            resident=resident,
            stored_bytes=stored_bytes,
        ))
    if require_resident and not all(stage.resident for stage in stages):
        worst = max(stages, key=lambda s: s.stored_bytes)
        raise PartitionError(
            f"network {network.name!r} does not fit {n_devices} device(s) "
            f"with resident weights: stage {worst.partition.name!r} stores "
            f"{worst.stored_bytes:,} B against a WBUF budget of "
            f"{wbuf_budget:,} B"
        )
    return DeploymentPlan(network=network, config=config, stages=tuple(stages))
