"""Quantization error analysis.

The paper's premise (§II-B1, Table I) is 16-bit fixed-point weights; its
conclusion points at combining FTDL with more aggressive quantization.
This module quantifies what precision costs: quantize float operands at a
given bit width, run the *bit-true* integer pipeline, and compare against
the float reference — per layer or down a whole network.

The headline quantity is output SQNR (signal-to-quantization-noise ratio,
dB); the classic ~6 dB/bit staircase emerges, with 16-bit landing far
above the ~40 dB where classification accuracy is known to hold.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import FTDLError
from repro.fixedpoint import quantize_symmetric
from repro.sim.functional import conv2d_int16, matmul_int16
from repro.workloads.layers import ConvLayer, MatMulLayer

AcceleratedLayer = ConvLayer | MatMulLayer


def replace_conv_groups(layer: ConvLayer) -> ConvLayer:
    """One group's slice of a grouped conv, as an ungrouped layer."""
    import dataclasses

    return dataclasses.replace(
        layer,
        in_channels=layer.group_in_channels,
        out_channels=layer.group_out_channels,
        groups=1,
    )


@dataclass(frozen=True)
class QuantizationReport:
    """Error metrics of one quantized layer execution."""

    n_bits: int
    sqnr_db: float
    max_abs_error: float
    output_rms: float

    @property
    def effective_bits(self) -> float:
        """SQNR translated back into effective output bits (~6.02 dB/bit)."""
        return self.sqnr_db / 6.02


def _float_reference(
    layer: AcceleratedLayer, weights: np.ndarray, acts: np.ndarray
) -> np.ndarray:
    if isinstance(layer, ConvLayer):
        if layer.groups > 1:
            m_g = layer.group_out_channels
            n_g = layer.group_in_channels
            ungrouped = replace_conv_groups(layer)
            return np.concatenate([
                _float_reference(
                    ungrouped,
                    weights[g * m_g:(g + 1) * m_g],
                    acts[g * n_g:(g + 1) * n_g],
                )
                for g in range(layer.groups)
            ], axis=0)
        m, n = layer.out_channels, layer.in_channels
        padded = np.zeros(
            (n, layer.in_h + 2 * layer.padding, layer.in_w + 2 * layer.padding)
        )
        padded[:, layer.padding:layer.padding + layer.in_h,
               layer.padding:layer.padding + layer.in_w] = acts
        out = np.zeros((m, layer.out_h, layer.out_w))
        for dr in range(layer.kernel_h):
            for ds in range(layer.kernel_w):
                window = padded[
                    :,
                    dr:dr + layer.stride * layer.out_h:layer.stride,
                    ds:ds + layer.stride * layer.out_w:layer.stride,
                ]
                out += np.tensordot(weights[:, :, dr, ds], window, axes=([1], [0]))
        return out
    return weights @ acts


def quantized_layer_error(
    layer: AcceleratedLayer,
    weights: np.ndarray,
    acts: np.ndarray,
    n_bits: int,
) -> QuantizationReport:
    """Quantize float operands, run the integer pipeline, compare.

    Args:
        layer: The layer shape to execute.
        weights / acts: *Float* operand tensors shaped for ``layer``.
        n_bits: Quantizer width (2-16; 16 is the paper's deployment point).

    Returns:
        Error metrics of the integer execution against the float result.
    """
    weights = np.asarray(weights, dtype=np.float64)
    acts = np.asarray(acts, dtype=np.float64)
    q_w, s_w = quantize_symmetric(weights, n_bits)
    q_a, s_a = quantize_symmetric(acts, n_bits)
    if isinstance(layer, ConvLayer):
        q_out = conv2d_int16(q_w, q_a, layer.stride, layer.padding,
                             layer.groups)
    elif isinstance(layer, MatMulLayer):
        q_out = matmul_int16(q_w, q_a)
    else:
        raise FTDLError(f"cannot quantize layer kind {layer.kind}")
    dequantized = q_out.astype(np.float64) * (s_w * s_a)
    reference = _float_reference(layer, weights, acts)

    error = dequantized - reference
    signal_power = float(np.mean(reference**2))
    noise_power = float(np.mean(error**2))
    if noise_power == 0.0:
        sqnr = float("inf")
    elif signal_power == 0.0:
        sqnr = float("-inf")
    else:
        sqnr = 10.0 * np.log10(signal_power / noise_power)
    return QuantizationReport(
        n_bits=n_bits,
        sqnr_db=sqnr,
        max_abs_error=float(np.max(np.abs(error))),
        output_rms=float(np.sqrt(signal_power)),
    )


def precision_sweep(
    layer: AcceleratedLayer,
    rng: np.random.Generator,
    bit_widths: tuple[int, ...] = (4, 6, 8, 10, 12, 14, 16),
) -> list[QuantizationReport]:
    """SQNR across bit widths on Gaussian operands shaped for ``layer``."""
    if isinstance(layer, ConvLayer):
        w_shape = (layer.out_channels, layer.group_in_channels,
                   layer.kernel_h, layer.kernel_w)
        a_shape = (layer.in_channels, layer.in_h, layer.in_w)
    elif isinstance(layer, MatMulLayer):
        w_shape = (layer.out_features, layer.in_features)
        a_shape = (layer.in_features, layer.batch)
    else:
        raise FTDLError(f"cannot sweep layer kind {layer.kind}")
    weights = rng.normal(scale=0.5, size=w_shape)
    acts = rng.normal(scale=1.0, size=a_shape)
    return [
        quantized_layer_error(layer, weights, acts, bits)
        for bits in bit_widths
    ]
