"""Quantization error analysis.

The paper's premise (§II-B1, Table I) is 16-bit fixed-point weights; its
conclusion points at combining FTDL with more aggressive quantization.
This module quantifies what precision costs: quantize float operands at a
given bit width, run the *bit-true* integer pipeline, and compare against
the float reference — per layer or down a whole network.

The headline quantity is output SQNR (signal-to-quantization-noise ratio,
dB); the classic ~6 dB/bit staircase emerges, with 16-bit landing far
above the ~40 dB where classification accuracy is known to hold.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

import numpy as np

from repro.errors import FTDLError
from repro.fixedpoint import quantize_symmetric
from repro.sim.functional import conv2d_int16, matmul_int16
from repro.workloads.layers import ConvLayer, MatMulLayer
from repro.workloads.network import Network

AcceleratedLayer = ConvLayer | MatMulLayer

#: Supported per-layer precisions for mixed-precision specs.
PRECISIONS = ("int8", "int16", "bf16")
#: Stored bytes per weight word at each precision.
PRECISION_BYTES = {"int8": 1, "int16": 2, "bf16": 2}


def replace_conv_groups(layer: ConvLayer) -> ConvLayer:
    """One group's slice of a grouped conv, as an ungrouped layer."""
    import dataclasses

    return dataclasses.replace(
        layer,
        in_channels=layer.group_in_channels,
        out_channels=layer.group_out_channels,
        groups=1,
    )


@dataclass(frozen=True)
class QuantizationReport:
    """Error metrics of one quantized layer execution."""

    n_bits: int
    sqnr_db: float
    max_abs_error: float
    output_rms: float

    @property
    def effective_bits(self) -> float:
        """SQNR translated back into effective output bits (~6.02 dB/bit)."""
        return self.sqnr_db / 6.02


def _float_reference(
    layer: AcceleratedLayer, weights: np.ndarray, acts: np.ndarray
) -> np.ndarray:
    if isinstance(layer, ConvLayer):
        if layer.groups > 1:
            m_g = layer.group_out_channels
            n_g = layer.group_in_channels
            ungrouped = replace_conv_groups(layer)
            return np.concatenate([
                _float_reference(
                    ungrouped,
                    weights[g * m_g:(g + 1) * m_g],
                    acts[g * n_g:(g + 1) * n_g],
                )
                for g in range(layer.groups)
            ], axis=0)
        m, n = layer.out_channels, layer.in_channels
        padded = np.zeros(
            (n, layer.in_h + 2 * layer.padding, layer.in_w + 2 * layer.padding)
        )
        padded[:, layer.padding:layer.padding + layer.in_h,
               layer.padding:layer.padding + layer.in_w] = acts
        out = np.zeros((m, layer.out_h, layer.out_w))
        for dr in range(layer.kernel_h):
            for ds in range(layer.kernel_w):
                window = padded[
                    :,
                    dr:dr + layer.stride * layer.out_h:layer.stride,
                    ds:ds + layer.stride * layer.out_w:layer.stride,
                ]
                out += np.tensordot(weights[:, :, dr, ds], window, axes=([1], [0]))
        return out
    return weights @ acts


def quantized_layer_error(
    layer: AcceleratedLayer,
    weights: np.ndarray,
    acts: np.ndarray,
    n_bits: int,
) -> QuantizationReport:
    """Quantize float operands, run the integer pipeline, compare.

    Args:
        layer: The layer shape to execute.
        weights / acts: *Float* operand tensors shaped for ``layer``.
        n_bits: Quantizer width (2-16; 16 is the paper's deployment point).

    Returns:
        Error metrics of the integer execution against the float result.
    """
    weights = np.asarray(weights, dtype=np.float64)
    acts = np.asarray(acts, dtype=np.float64)
    q_w, s_w = quantize_symmetric(weights, n_bits)
    q_a, s_a = quantize_symmetric(acts, n_bits)
    if isinstance(layer, ConvLayer):
        q_out = conv2d_int16(q_w, q_a, layer.stride, layer.padding,
                             layer.groups)
    elif isinstance(layer, MatMulLayer):
        q_out = matmul_int16(q_w, q_a)
    else:
        raise FTDLError(f"cannot quantize layer kind {layer.kind}")
    dequantized = q_out.astype(np.float64) * (s_w * s_a)
    reference = _float_reference(layer, weights, acts)

    error = dequantized - reference
    signal_power = float(np.mean(reference**2))
    noise_power = float(np.mean(error**2))
    if noise_power == 0.0:
        sqnr = float("inf")
    elif signal_power == 0.0:
        sqnr = float("-inf")
    else:
        sqnr = 10.0 * np.log10(signal_power / noise_power)
    return QuantizationReport(
        n_bits=n_bits,
        sqnr_db=sqnr,
        max_abs_error=float(np.max(np.abs(error))),
        output_rms=float(np.sqrt(signal_power)),
    )


def bf16_round(x: np.ndarray) -> np.ndarray:
    """Round float values to bfloat16 (round-to-nearest-even), as float64.

    bfloat16 keeps float32's exponent and truncates the mantissa to 7
    bits; implemented on the uint32 view so it needs no ml_dtypes
    dependency.
    """
    f32 = np.asarray(x, dtype=np.float32)
    bits = f32.view(np.uint32)
    rounded = bits + 0x7FFF + ((bits >> 16) & 1)
    rounded &= np.uint32(0xFFFF0000)
    return rounded.view(np.float32).astype(np.float64)


def bf16_layer_error(
    layer: AcceleratedLayer, weights: np.ndarray, acts: np.ndarray
) -> QuantizationReport:
    """Error of executing ``layer`` with bfloat16-rounded operands.

    The float reference uses the full-precision operands; the test run
    rounds both operands to bf16 first.  Reported with ``n_bits=16`` (the
    storage width) — SQNR reflects the 8-bit mantissa.
    """
    weights = np.asarray(weights, dtype=np.float64)
    acts = np.asarray(acts, dtype=np.float64)
    test = _float_reference(layer, bf16_round(weights), bf16_round(acts))
    reference = _float_reference(layer, weights, acts)
    error = test - reference
    signal_power = float(np.mean(reference**2))
    noise_power = float(np.mean(error**2))
    if noise_power == 0.0:
        sqnr = float("inf")
    elif signal_power == 0.0:
        sqnr = float("-inf")
    else:
        sqnr = 10.0 * np.log10(signal_power / noise_power)
    return QuantizationReport(
        n_bits=16,
        sqnr_db=sqnr,
        max_abs_error=float(np.max(np.abs(error))),
        output_rms=float(np.sqrt(signal_power)),
    )


@dataclass(frozen=True)
class PrecisionSpec:
    """Per-layer precision assignment for a mixed-precision deployment.

    Attributes:
        default: Precision for layers without an override.
        overrides: Layer name -> precision.  Unknown precisions raise at
            construction; override names are validated against a network
            by :meth:`validate`.
    """

    default: str = "int16"
    overrides: Mapping[str, str] = field(default_factory=dict)

    def __post_init__(self) -> None:
        for precision in (self.default, *self.overrides.values()):
            if precision not in PRECISIONS:
                raise FTDLError(
                    f"unknown precision {precision!r}; "
                    f"known: {', '.join(PRECISIONS)}"
                )

    def precision_for(self, layer_name: str) -> str:
        return self.overrides.get(layer_name, self.default)

    def validate(self, network: Network) -> None:
        """Raise if an override names a layer ``network`` doesn't have."""
        known = {layer.name for layer in network.layers}
        unknown = sorted(set(self.overrides) - known)
        if unknown:
            raise FTDLError(
                f"precision overrides name unknown layers of "
                f"{network.name!r}: {unknown}"
            )


@dataclass(frozen=True)
class LayerPrecisionRow:
    """One accelerated layer's outcome under a :class:`PrecisionSpec`."""

    name: str
    precision: str
    sqnr_db: float
    stored_bytes: int


@dataclass(frozen=True)
class MixedPrecisionReport:
    """Whole-network mixed-precision accounting + per-layer error."""

    network_name: str
    rows: tuple[LayerPrecisionRow, ...]
    #: Stored model bytes under the spec (weight groups counted once).
    model_bytes: int
    #: Stored model bytes at uniform int16 (the paper's deployment).
    int16_bytes: int

    @property
    def compression(self) -> float:
        return self.int16_bytes / self.model_bytes if self.model_bytes else 0.0

    @property
    def min_sqnr_db(self) -> float:
        finite = [r.sqnr_db for r in self.rows if np.isfinite(r.sqnr_db)]
        return min(finite) if finite else float("inf")


def mixed_precision_report(
    network: Network,
    spec: PrecisionSpec,
    rng: np.random.Generator,
) -> MixedPrecisionReport:
    """Evaluate ``network`` under ``spec``: per-layer SQNR + model size.

    Per-layer error runs on Gaussian operands shaped for the layer
    (int8/int16 through the bit-true integer pipeline, bf16 through
    mantissa-rounded float).  Model bytes honor ``weight_group`` sharing
    and skip run-time-streamed (``weight_source``) and host layers.
    """
    spec.validate(network)
    rows = []
    group_bytes: dict[str, int] = {}
    for layer in network.accelerated_layers():
        precision = spec.precision_for(layer.name)
        if isinstance(layer, ConvLayer):
            w_shape = (layer.out_channels, layer.group_in_channels,
                       layer.kernel_h, layer.kernel_w)
            a_shape = (layer.in_channels, layer.in_h, layer.in_w)
        else:
            w_shape = (layer.out_features, layer.in_features)
            a_shape = (layer.in_features, layer.batch)
        weights = rng.normal(scale=0.5, size=w_shape)
        acts = rng.normal(scale=1.0, size=a_shape)
        if precision == "bf16":
            report = bf16_layer_error(layer, weights, acts)
        else:
            report = quantized_layer_error(
                layer, weights, acts, n_bits=8 if precision == "int8" else 16
            )
        stored = layer.parameter_words * PRECISION_BYTES[precision]
        rows.append(LayerPrecisionRow(
            name=layer.name, precision=precision,
            sqnr_db=report.sqnr_db, stored_bytes=stored,
        ))
        if layer.parameter_words:
            key = getattr(layer, "weight_group", None) or layer.name
            group_bytes.setdefault(key, stored)
    return MixedPrecisionReport(
        network_name=network.name,
        rows=tuple(rows),
        model_bytes=sum(group_bytes.values()),
        int16_bytes=network.weight_bytes,
    )


def precision_sweep(
    layer: AcceleratedLayer,
    rng: np.random.Generator,
    bit_widths: tuple[int, ...] = (4, 6, 8, 10, 12, 14, 16),
) -> list[QuantizationReport]:
    """SQNR across bit widths on Gaussian operands shaped for ``layer``."""
    if isinstance(layer, ConvLayer):
        w_shape = (layer.out_channels, layer.group_in_channels,
                   layer.kernel_h, layer.kernel_w)
        a_shape = (layer.in_channels, layer.in_h, layer.in_w)
    elif isinstance(layer, MatMulLayer):
        w_shape = (layer.out_features, layer.in_features)
        a_shape = (layer.in_features, layer.batch)
    else:
        raise FTDLError(f"cannot sweep layer kind {layer.kind}")
    weights = rng.normal(scale=0.5, size=w_shape)
    acts = rng.normal(scale=1.0, size=a_shape)
    return [
        quantized_layer_error(layer, weights, acts, bits)
        for bits in bit_widths
    ]
