"""Roofline visualization data (paper §V-C1, Fig. 7).

Each scheduled solution becomes a point: operational intensity (ops per
DRAM byte) against attained GOPS, coloured by WBUF efficiency.  The roof
is ``min(peak_gops, intensity * dram_bandwidth)``.  The paper renders this
interactively; here the series feed the ASCII plotter and the benchmark
CSV output.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.compiler.search import Schedule
from repro.errors import FTDLError
from repro.overlay.config import OverlayConfig
from repro.units import BYTES_PER_WORD


@dataclass(frozen=True)
class RooflinePoint:
    """One schedule plotted in roofline coordinates."""

    intensity_ops_per_byte: float
    attained_gops: float
    e_wbuf: float
    cycles: int
    mapping_desc: str


def _dram_bytes(schedule: Schedule) -> int:
    """DRAM bytes moved by one execution of the schedule."""
    config = schedule.config
    est = schedule.estimate
    rd = est.c_dram_rd * config.dram_rd_words_per_cycle()
    wr = est.c_dram_wr * config.dram_wr_words_per_cycle()
    return int((rd + wr) * BYTES_PER_WORD)


def roofline_points(schedules: list[Schedule]) -> list[RooflinePoint]:
    """Convert top-k schedules into roofline points."""
    points = []
    for schedule in schedules:
        est = schedule.estimate
        total_bytes = max(1, _dram_bytes(schedule))
        ops = 2 * est.useful_maccs
        points.append(
            RooflinePoint(
                intensity_ops_per_byte=ops / total_bytes,
                attained_gops=est.gops_at(schedule.config.clk_h_mhz),
                e_wbuf=est.e_wbuf,
                cycles=est.c_exe,
                mapping_desc=schedule.mapping.describe(),
            )
        )
    return points


def roof_curve(
    config: OverlayConfig,
    intensities: list[float],
) -> list[tuple[float, float]]:
    """The roofline itself: attainable GOPS at each operational intensity.

    The compute roof is the overlay's peak GOPS at CLK_h; the memory roof
    is intensity times the DRAM read bandwidth.
    """
    if not intensities:
        raise FTDLError("at least one intensity point is required")
    bandwidth_gbps = config.dram_rd_gbps
    return [
        (x, min(config.peak_gops, x * bandwidth_gbps))
        for x in sorted(intensities)
    ]


def ridge_intensity(config: OverlayConfig) -> float:
    """Operational intensity where the memory roof meets the compute roof."""
    return config.peak_gops / config.dram_rd_gbps
