"""Versioned, content-addressed on-disk schedule store.

A compiled schedule is a pure function of ``(layer shape, overlay
config, objective)`` — everything else (batch size folded into the MM
``P`` loop, a fault mask shrinking the grid) is already encoded in those
two signatures.  The store keys each entry by the SHA-256 of the
canonical JSON of ``(schema version, layer signature, config signature,
objective)`` and persists only the *mapping vectors*: on load the
mapping is re-priced by the authoritative analytical model and re-checked
against every constraint, so a loaded schedule is byte-for-byte the
schedule a fresh search would return — or it is rejected.

Failure containment: a corrupt file (truncated JSON, wrong schema
version, key mismatch after a hash collision or a hand-moved file, a
mapping that no longer validates or violates constraints) is *detected*,
counted, and treated as a miss — the caller falls back to a fresh search
and the fresh result overwrites the bad entry.  Writes are atomic
(temp file + ``os.replace``) so a crashed writer can at worst leave a
stale temp file, never a half-written entry.

Entries carry the originating search's step-clock charge; a cache load
replays it, so the compiler's virtual step timeline is identical whether
the store was cold or warm.
"""

from __future__ import annotations

import hashlib
import json
import os
import pathlib
from dataclasses import dataclass

from repro.compiler.cache import layer_signature
from repro.compiler.constraints import check_constraints
from repro.compiler.mapping import HW_LEVELS, MappingVectors
from repro.compiler.model import evaluate_mapping
from repro.compiler.search import Schedule
from repro.errors import FTDLError, MappingError, ScheduleError
from repro.overlay.config import OverlayConfig
from repro.workloads.layers import ConvLayer, MatMulLayer

AcceleratedLayer = ConvLayer | MatMulLayer

#: Bump on any change to the key derivation, the payload layout, or the
#: search/model arithmetic that could alter what a key should map to.
SCHEMA_VERSION = 1


def config_signature(config: OverlayConfig) -> tuple:
    """Everything about an overlay config that affects scheduling."""
    return (
        config.d1, config.d2, config.d3,
        config.s_actbuf_words, config.s_wbuf_words, config.s_psumbuf_words,
        config.actbus_words_per_cycle, config.psumbus_words_per_cycle,
        config.dram_rd_gbps, config.dram_wr_gbps, config.clk_h_mhz,
        config.double_pump, config.double_buffer, config.weights_resident,
    )


def _canonical(value) -> str:
    """Canonical JSON — tuples and lists collapse to the same text."""
    return json.dumps(value, sort_keys=True, separators=(",", ":"))


def store_key(
    layer: AcceleratedLayer,
    config: OverlayConfig,
    objective: str,
) -> str:
    """Content address of one (layer, config, objective) entry."""
    material = _canonical([
        SCHEMA_VERSION,
        list(layer_signature(layer)),
        list(config_signature(config)),
        objective,
    ])
    return hashlib.sha256(material.encode()).hexdigest()


@dataclass(frozen=True)
class StoreStats:
    """Point-in-time snapshot of one store's counters."""

    hits: int
    misses: int
    stores: int
    corrupt: int
    size: int

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0

    def describe(self) -> str:
        return (
            f"{self.size} entries: {self.hits} hits / {self.misses} misses "
            f"({self.hit_rate:.1%}), {self.stores} stores, "
            f"{self.corrupt} corrupt"
        )


class PersistentScheduleStore:
    """One directory of ``<sha256>.json`` schedule entries.

    Args:
        root: Directory holding the entries (created if absent).
    """

    def __init__(self, root: str | os.PathLike):
        self.root = pathlib.Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.hits = 0
        self.misses = 0
        self.stores = 0
        self.corrupt = 0

    def __len__(self) -> int:
        return sum(1 for _ in self.root.glob("*.json"))

    # ------------------------------------------------------------------ #
    def load(
        self,
        layer: AcceleratedLayer,
        config: OverlayConfig,
        objective: str,
    ) -> tuple[Schedule, int] | None:
        """Return ``(schedule, steps)`` for the entry, or None on a miss.

        ``steps`` is the original search's step-clock charge, replayed by
        the caller so warm and cold runs share one virtual timeline.
        Corrupt or stale entries count in :attr:`corrupt` and read as a
        miss — the caller searches fresh and overwrites.
        """
        key = store_key(layer, config, objective)
        path = self.root / f"{key}.json"
        try:
            text = path.read_text()
        except (FileNotFoundError, OSError):
            self.misses += 1
            return None
        try:
            schedule, steps = self._decode(text, key, layer, config, objective)
        except (ValueError, KeyError, TypeError, FTDLError):
            self.corrupt += 1
            self.misses += 1
            return None
        self.hits += 1
        return schedule, steps

    def _decode(
        self,
        text: str,
        key: str,
        layer: AcceleratedLayer,
        config: OverlayConfig,
        objective: str,
    ) -> tuple[Schedule, int]:
        payload = json.loads(text)
        if payload.get("version") != SCHEMA_VERSION:
            raise ValueError(f"schema version {payload.get('version')!r}")
        expected_key = {
            "layer": json.loads(_canonical(list(layer_signature(layer)))),
            "config": json.loads(_canonical(list(config_signature(config)))),
            "objective": objective,
        }
        if payload.get("key") != expected_key:
            raise ValueError("key mismatch (stale or relocated entry)")
        loop_names = tuple(payload["loop_names"])
        if loop_names != tuple(d.name for d in layer.loop_dims()):
            raise ValueError("loop names do not match the layer")
        trips = {
            level: {str(k): int(v) for k, v in payload["trips"][level].items()}
            for level in HW_LEVELS
        }
        mapping = MappingVectors.from_partial(loop_names, trips)
        violations = check_constraints(layer, config, mapping)
        if violations:
            raise MappingError(f"stored mapping violates constraints: {violations}")
        estimate = evaluate_mapping(layer, config, mapping)
        steps = int(payload.get("steps", 0))
        if steps < 0:
            raise ValueError(f"negative step charge {steps}")
        return (
            Schedule(
                layer=layer, config=config, mapping=mapping,
                estimate=estimate, objective=objective,
            ),
            steps,
        )

    # ------------------------------------------------------------------ #
    def save(
        self,
        schedule: Schedule,
        steps: int = 0,
    ) -> None:
        """Persist one schedule atomically under its content address."""
        if not isinstance(schedule, Schedule):
            raise ScheduleError(f"cannot persist {type(schedule).__name__}")
        layer = schedule.layer
        config = schedule.config
        key = store_key(layer, config, schedule.objective)
        payload = {
            "version": SCHEMA_VERSION,
            "key": {
                "layer": list(layer_signature(layer)),
                "config": list(config_signature(config)),
                "objective": schedule.objective,
            },
            "loop_names": list(schedule.mapping.loop_names),
            "trips": {
                level: dict(schedule.mapping.trips[level])
                for level in HW_LEVELS
            },
            "steps": int(steps),
        }
        path = self.root / f"{key}.json"
        tmp = self.root / f".{key}.{os.getpid()}.tmp"
        tmp.write_text(_canonical(payload))
        os.replace(tmp, path)
        self.stores += 1

    # ------------------------------------------------------------------ #
    def stats(self) -> StoreStats:
        return StoreStats(
            hits=self.hits, misses=self.misses, stores=self.stores,
            corrupt=self.corrupt, size=len(self),
        )

    def describe(self) -> str:
        return f"disk store at {self.root}: {self.stats().describe()}"
