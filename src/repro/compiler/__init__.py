"""The FTDL compiler: workload scheduling onto the overlay (paper §IV).

Pipeline: a layer's K-level loop nest is tiled across the six hardware
loops (``D3, D2, D1, X, L, T``) by *mapping vectors*; the adjacency matrix
restricts which workload loop may occupy which hardware loop; the
analytical model prices every candidate (compute, ActBUS, PSumBUS, DRAM,
WBUF efficiency); and the search enumerates the feasible space to return
top-k schedules under Objective 1 (performance), Objective 2
(performance/WBUF balance) or Objective 3 (best hardware shape).
"""

from repro.compiler.mapping import (
    HW_LEVELS,
    SPATIAL_LEVELS,
    TEMPORAL_LEVELS,
    MappingVectors,
)
from repro.compiler.adjacency import adjacency_matrix, needs_ewop_reduction
from repro.compiler.model import PerformanceEstimate, evaluate_mapping
from repro.compiler.constraints import check_constraints
from repro.compiler.search import (
    Schedule,
    ScheduleSearch,
    ceil_tile_candidates,
    schedule_layer,
    schedule_network,
)
from repro.compiler.memo import TemporalMemo
from repro.compiler.hwsearch import HardwareSearchResult, search_hardware_config
from repro.compiler.codegen import compile_schedule, compile_network, CompiledLayer, NetworkProgram
from repro.compiler.cache import CacheStats, ScheduleCache
from repro.compiler.persist import PersistentScheduleStore
from repro.compiler.parallel import parallel_schedule_network
from repro.compiler.residency import ResidencyPlan, plan_residency
from repro.compiler.randsearch import random_schedule_search

__all__ = [
    "HW_LEVELS",
    "SPATIAL_LEVELS",
    "TEMPORAL_LEVELS",
    "MappingVectors",
    "adjacency_matrix",
    "needs_ewop_reduction",
    "PerformanceEstimate",
    "evaluate_mapping",
    "check_constraints",
    "Schedule",
    "ScheduleSearch",
    "TemporalMemo",
    "ceil_tile_candidates",
    "schedule_layer",
    "schedule_network",
    "parallel_schedule_network",
    "HardwareSearchResult",
    "search_hardware_config",
    "compile_schedule",
    "compile_network",
    "CompiledLayer",
    "NetworkProgram",
    "CacheStats",
    "ScheduleCache",
    "PersistentScheduleStore",
    "ResidencyPlan",
    "plan_residency",
    "random_schedule_search",
]
