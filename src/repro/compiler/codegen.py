"""Instruction generation: lower schedules to controller instructions.

One :class:`CompiledLayer` carries the per-row instruction streams the
paper's compiler "dumps for all Controllers": a weight-load prologue and
the COMPUTE instruction encoding the X/L/T loop nest and buffer tiles.
The cycle simulator executes these instructions; the encoded bytes round-
trip through :mod:`repro.overlay.isa` so the InstBUS format is exercised.

:func:`compile_network` lowers a whole network against a
:class:`repro.compiler.residency.ResidencyPlan`: resident layers get
non-overlapping per-TPE WBUF base addresses (packed at initialization,
no run-time LOAD_WEIGHT), streamed layers reload a shared scratch region
at WBUF address 0 per execution.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.compiler.search import Schedule
from repro.errors import IsaError, ScheduleError
from repro.overlay.isa import (
    FLAG_DOUBLE_BUFFER,
    FLAG_EWOP_ACCUMULATE,
    FLAG_LAST,
    Instruction,
    OpKind,
    encode_instruction,
)


@dataclass(frozen=True)
class CompiledLayer:
    """Instruction streams for one scheduled layer.

    Attributes:
        schedule: The schedule this code implements.
        row_programs: One instruction list per SuperBlock row (D3 rows;
            the SIMD columns of a row share the stream).
    """

    schedule: Schedule
    row_programs: tuple[tuple[Instruction, ...], ...]

    @property
    def n_rows(self) -> int:
        return len(self.row_programs)

    def encoded(self) -> list[bytes]:
        """The byte stream sent over each row's InstBUS, concatenated."""
        return [
            b"".join(encode_instruction(inst) for inst in program)
            for program in self.row_programs
        ]


def compile_schedule(schedule: Schedule, wbuf_base: int = 0,
                     load_weights: bool = True) -> CompiledLayer:
    """Lower ``schedule`` to per-row controller instructions.

    Raises:
        IsaError: if a trip count or tile overflows its instruction field
            (the encoding supports the full hardware range; overflow means
            the schedule itself is out of spec).
    """
    mapping = schedule.mapping
    estimate = schedule.estimate
    config = schedule.config

    flags = 0
    if config.double_buffer:
        flags |= FLAG_DOUBLE_BUFFER
    if estimate.ewop_accumulate:
        flags |= FLAG_EWOP_ACCUMULATE

    compute = Instruction(
        op=OpKind.COMPUTE,
        x=mapping.x,
        l=mapping.l,
        t=mapping.t,
        act_tile_words=estimate.actbuf_words,
        psum_tile_words=estimate.psumbuf_words,
        wbuf_base=wbuf_base,
        psum_base=0,
        flags=flags | FLAG_LAST,
    )
    instructions: tuple[Instruction, ...]
    if load_weights:
        load = Instruction(
            op=OpKind.LOAD_WEIGHT,
            x=1,
            l=1,
            t=max(1, estimate.wbuf_words),
            act_tile_words=0,
            psum_tile_words=0,
            wbuf_base=wbuf_base,
            psum_base=0,
            flags=flags,
        )
        instructions = (load, compute)
    else:
        instructions = (compute,)
    for inst in instructions:
        inst.validate()

    used_d3 = mapping.level_product("D3")
    row_programs = tuple(instructions for _ in range(used_d3))
    return CompiledLayer(schedule=schedule, row_programs=row_programs)


@dataclass(frozen=True)
class NetworkProgram:
    """A whole network lowered against a WBUF residency plan.

    Attributes:
        layers: Per accelerated layer, its :class:`CompiledLayer` (resident
            layers carry no LOAD_WEIGHT — their weights preload at
            initialization; streamed layers reload the scratch region).
        wbuf_bases: Per-TPE WBUF base address of each *resident* layer.
        scratch_base: Start of the streaming scratch region (above every
            resident allocation).
        spilled: Names the residency plan marked resident but that did not
            fit the per-TPE packing and were demoted to streaming.
    """

    layers: tuple[CompiledLayer, ...]
    wbuf_bases: dict[str, int] = field(default_factory=dict)
    scratch_base: int = 0
    spilled: tuple[str, ...] = ()

    @property
    def n_instructions(self) -> int:
        return sum(
            len(program)
            for layer in self.layers
            for program in layer.row_programs
        )


def compile_network(plan) -> NetworkProgram:
    """Lower every layer of a :class:`ResidencyPlan` into one program.

    Resident layers get packed, non-overlapping per-TPE WBUF allocations;
    layers whose per-TPE slice no longer fits (the plan packs aggregate
    words, the WBUF is a per-TPE memory) are demoted to streaming through
    the shared scratch region above the resident allocations.

    Raises:
        ScheduleError: if even an empty residency set cannot host some
            streamed layer's pass slice (cannot happen for schedules that
            passed the WBUF constraint, but checked for safety).
    """
    config = plan.config
    base = 0
    wbuf_bases: dict[str, int] = {}
    spilled: list[str] = []
    group_bases: dict[str, int] = {}

    # First pass: allocate per-TPE space for resident layers.
    for entry in plan.layers:
        if not entry.resident:
            continue
        layer = entry.schedule.layer
        group = getattr(layer, "weight_group", None)
        if group and group in group_bases:
            wbuf_bases[entry.name] = group_bases[group]
            continue
        per_tpe = entry.schedule.estimate.wbuf_words
        if base + per_tpe > config.s_wbuf_words:
            spilled.append(entry.name)
            continue
        wbuf_bases[entry.name] = base
        if group:
            group_bases[group] = base
        base += per_tpe

    scratch_base = base
    compiled = []
    for entry in plan.layers:
        resident = entry.name in wbuf_bases
        if resident:
            layer_base = wbuf_bases[entry.name]
        else:
            layer_base = scratch_base
            per_tpe = entry.schedule.estimate.wbuf_words
            if layer_base + per_tpe > config.s_wbuf_words:
                # Fall back to the whole WBUF as scratch: legal because a
                # streamed layer's pass slice passed the WBUF constraint.
                layer_base = 0
                if per_tpe > config.s_wbuf_words:
                    raise ScheduleError(
                        f"layer {entry.name!r} pass slice {per_tpe} exceeds "
                        f"the WBUF ({config.s_wbuf_words} words)"
                    )
        compiled.append(
            compile_schedule(
                entry.schedule,
                wbuf_base=layer_base,
                load_weights=not resident,
            )
        )
    return NetworkProgram(
        layers=tuple(compiled),
        wbuf_bases=wbuf_bases,
        scratch_base=scratch_base,
        spilled=tuple(spilled),
    )
