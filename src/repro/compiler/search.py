"""Mapping-vector search (paper §IV-D4).

The paper's searching scheme, reproduced: generate candidates under the
guidance of the adjacency matrix, exclude infeasible ones against the
constraints, evaluate the rest with the analytical model, and keep the
top-k under the requested objective.

Enumeration strategy (kept exhaustive over the *structured* space):

1. **Spatial** — per level (D1, D2, D3), enumerate per-loop tile sizes
   from the ceiling-divisor lattice of each loop's trip count, bounded by
   the level's resource cap (Eqn 10).  Joint spatial choices are ranked by
   TPE utilization and padding so a configurable beam keeps the search
   tractable without losing the high-performance region.
2. **Temporal** — for each spatial choice's per-loop remainders, enumerate
   LoopT tiles under the ActBUF capacity, then LoopL tiles (adjacency-
   restricted) under the PSumBUF/WBUF capacities.  LoopX is then *forced*:
   the minimal cover of each loop's remainder (Eqn 11), which is always
   optimal because X is unconstrained and outermost.  Temporal combos are
   memoized per remainder vector — spatial twins share them.

Candidates are priced inline with the same arithmetic as
:func:`repro.compiler.model.evaluate_mapping` (a hot loop over plain
tuples); the top-k winners are re-materialized as full
:class:`MappingVectors` and re-priced by the authoritative model, which
also re-checks every constraint.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass
from functools import lru_cache
from math import prod

from repro.compiler.adjacency import adjacency_matrix
from repro.compiler.constraints import check_constraints
from repro.compiler.mapping import MappingVectors
from repro.compiler.memo import TemporalMemo
from repro.compiler.model import PerformanceEstimate, evaluate_mapping
from repro.errors import ScheduleError
from repro.overlay.config import OverlayConfig
from repro.trace.metrics import MetricsRegistry, as_metrics
from repro.trace.span import Tracer, as_tracer
from repro.units import ceil_div
from repro.workloads.layers import ConvLayer, MatMulLayer

AcceleratedLayer = ConvLayer | MatMulLayer

#: Valid objective names.
OBJECTIVES = ("performance", "balance")


@dataclass(frozen=True)
class Schedule:
    """One feasible schedule: mapping vectors plus their price."""

    layer: AcceleratedLayer
    config: OverlayConfig
    mapping: MappingVectors
    estimate: PerformanceEstimate
    objective: str

    @property
    def cycles(self) -> int:
        return self.estimate.c_exe

    @property
    def hardware_efficiency(self) -> float:
        return self.estimate.hardware_efficiency

    def describe(self) -> str:
        est = self.estimate
        return (
            f"{self.layer.name}: {est.c_exe} cycles, "
            f"eff {est.hardware_efficiency:.1%}, E_WBUF {est.e_wbuf:.2f}, "
            f"bound by {est.bottleneck} | {self.mapping.describe()}"
        )


@lru_cache(maxsize=65536)
def _ceil_tile_lattice(size: int, cap: int) -> tuple[int, ...]:
    """The memoized lattice behind :func:`ceil_tile_candidates`."""
    if size <= 0:
        raise ScheduleError(f"loop size must be positive, got {size}")
    cap = min(cap, size)
    if cap < 1:
        return (1,)
    values = set()
    m = 1
    while m <= size:
        tile = ceil_div(size, m)
        if tile <= cap:
            values.add(tile)
        # Jump to the next m that can change ceil(size / m).
        m = max(m + 1, size // tile + 1) if tile > 1 else size + 1
    values.add(1)
    return tuple(sorted(values))


def ceil_tile_candidates(size: int, cap: int) -> list[int]:
    """Tile sizes worth considering for a loop of ``size``, at most ``cap``.

    The ceiling-divisor lattice ``{ceil(size / m)}`` contains, for every
    possible split count ``m``, the smallest tile covering the loop — any
    other tile only adds padding.  O(sqrt(size)) distinct values.

    The lattice itself is process-wide memoized (it is a pure function of
    its arguments and the search calls it once per loop per level per
    candidate); callers get a fresh list each time.
    """
    return list(_ceil_tile_lattice(size, cap))


def _level_assignments(
    loop_sizes: dict[str, int],
    allowed: list[str],
    cap: int,
) -> list[dict[str, int]]:
    """All per-loop tile dicts for one hardware level, product <= cap."""
    assignments: list[dict[str, int]] = []

    def recurse(index: int, current: dict[str, int], budget: int) -> None:
        if index == len(allowed):
            assignments.append(dict(current))
            return
        name = allowed[index]
        for tile in _ceil_tile_lattice(loop_sizes[name], budget):
            current[name] = tile
            recurse(index + 1, current, budget // tile)
        current.pop(name, None)

    recurse(0, {}, cap)
    return assignments


@dataclass(frozen=True)
class _TemporalCombo:
    """One memoized (T, L, forced-X) split of a remainder vector."""

    t_tile: tuple[int, ...]
    l_tile: tuple[int, ...]
    x_tile: tuple[int, ...]
    t: int
    l: int
    x: int
    #: ActBUF footprint of the T tile (words per TPE).
    act_fp_t: int
    #: PSumBUF footprint of the T*L tile (words per SuperBlock).
    psum_fp: int
    #: Weight words per TPE over T*L (one LoopX pass slice).
    wbuf_slice: int
    #: Weight words per TPE over X*L*T (the streamed slice).
    wbuf_stream: int
    #: Double-pump stall: T tile has no 2-cycle weight reuse.
    stalled: bool
    #: A LoopX trip splits a reduction loop (multipass accumulation).
    multipass: bool


class ScheduleSearch:
    """Top-k mapping-vector search for one layer on one overlay config.

    Args:
        layer: CONV or MM layer to schedule.
        config: Overlay hardware configuration.
        objective: ``"performance"`` (Objective 1: min execution time) or
            ``"balance"`` (Objective 2: max corrected Eqn-13 score).
        top_k: Number of schedules to return, best first.
        spatial_beam: Max joint spatial choices explored (ranked by TPE
            utilization, then padding).  ``None`` explores all.
        temporal_beam: Max (T, L) combos per remainder vector.  ``None``
            explores all.
        tracer: Optional :class:`~repro.trace.span.Tracer`; the search
            opens per-phase spans stamped with a monotonic step counter
            (``step_base`` + work units done) — never wall clock.
        metrics: Optional :class:`~repro.trace.metrics.MetricsRegistry`;
            candidate / pruning / memo counters are mirrored into it at
            the end of each :meth:`run`.
        step_base: Offset added to this search's step clock so several
            searches sharing one tracer stay on one monotonic timeline.
        temporal_memo: Optional :class:`~repro.compiler.memo.TemporalMemo`
            shared across searches (incremental reuse across batch sizes
            and fault masks).  Shared hits replay the original step/prune
            accounting, so results, trace spans, and mirrored counters
            are bit-identical whether the memo was cold or warm.
    """

    def __init__(
        self,
        layer: AcceleratedLayer,
        config: OverlayConfig,
        objective: str = "performance",
        top_k: int = 1,
        spatial_beam: int | None = 160,
        temporal_beam: int | None = 240,
        tracer: Tracer | None = None,
        metrics: MetricsRegistry | None = None,
        step_base: int = 0,
        temporal_memo: TemporalMemo | None = None,
    ):
        if objective not in OBJECTIVES:
            raise ScheduleError(
                f"unknown objective {objective!r}; expected one of {OBJECTIVES}"
            )
        if top_k < 1:
            raise ScheduleError(f"top_k must be >= 1, got {top_k}")
        self.layer = layer
        self.config = config
        self.objective = objective
        self.top_k = top_k
        self.spatial_beam = spatial_beam
        self.temporal_beam = temporal_beam
        self._adjacency = adjacency_matrix(layer)
        dims = layer.loop_dims()
        self._loop_names = tuple(d.name for d in dims)
        self._sizes = tuple(d.size for d in dims)
        self._reduction = tuple(d.reduction for d in dims)
        self._in_weights = tuple(d.in_weights for d in dims)
        self._k = len(dims)
        self.candidates_evaluated = 0
        self.tracer = as_tracer(tracer)
        self.metrics = as_metrics(metrics)
        self.step_base = step_base
        #: Monotonic work counter (spatial choices ranked + temporal
        #: combos built + candidates priced) — the search's trace clock.
        self.steps = 0
        self.spatial_enumerated = 0
        self.spatial_beam_dropped = 0
        self.pruned_by_capacity = 0
        self.temporal_memo_hits = 0
        self.temporal_memo = temporal_memo
        #: Remainder vectors served from the *shared* cross-search memo.
        self.shared_memo_hits = 0
        #: Loops with iterations that the adjacency matrix (Fig. 5) bars
        #: from some hardware level — the search space it never visits.
        self.adjacency_excluded_loops = sum(
            1
            for level in ("D1", "D2", "D3", "T", "L")
            for name, size in zip(self._loop_names, self._sizes)
            if size > 1 and not self._adjacency[level][name]
        )

    def _now(self) -> int:
        """Current step-clock timestamp for trace spans."""
        return self.step_base + self.steps

    # ------------------------------------------------------------------ #
    # fast footprint helpers on positional tiles
    # ------------------------------------------------------------------ #
    def _act_fp(self, tile: tuple[int, ...]) -> int:
        layer = self.layer
        if isinstance(layer, ConvLayer):
            m, n, h, w, r, s = tile
            rows = (h - 1) * layer.stride + r
            cols = (w - 1) * layer.stride + s
            groups_touched = 1
            if layer.groups > 1:
                groups_touched = min(
                    layer.groups, -(-m // layer.group_out_channels)
                )
            return groups_touched * n * rows * cols
        m, n, p = tile
        return m * p

    def _out_fp(self, tile: tuple[int, ...]) -> int:
        if isinstance(self.layer, ConvLayer):
            return tile[0] * tile[2] * tile[3]
        return tile[1] * tile[2]

    def _weight_fp(self, tile: tuple[int, ...]) -> int:
        if isinstance(self.layer, ConvLayer):
            return tile[0] * tile[1] * tile[4] * tile[5]
        return tile[0] * tile[1]

    def _nonweight_product(self, tile: tuple[int, ...]) -> int:
        return prod(
            t for t, in_w in zip(tile, self._in_weights) if not in_w
        )

    # ------------------------------------------------------------------ #
    # spatial stage
    # ------------------------------------------------------------------ #
    def _allowed_loops(self, level: str) -> list[str]:
        return [
            name for name, size in zip(self._loop_names, self._sizes)
            if self._adjacency[level][name] and size > 1
        ]

    def _spatial_choices(self) -> list[tuple[tuple[int, ...], ...]]:
        """Joint (D1, D2, D3) positional tiles, beam-ranked."""
        sizes = dict(zip(self._loop_names, self._sizes))
        per_level = [
            _level_assignments(sizes, self._allowed_loops(level), cap)
            for level, cap in (
                ("D1", self.config.d1),
                ("D2", self.config.d2),
                ("D3", self.config.d3),
            )
        ]

        def positional(assignment: dict[str, int]) -> tuple[int, ...]:
            return tuple(assignment.get(n, 1) for n in self._loop_names)

        joint = []
        for a1, a2, a3 in itertools.product(*per_level):
            t1, t2, t3 = positional(a1), positional(a2), positional(a3)
            used = prod(t1) * prod(t2) * prod(t3)
            pad = 1.0
            for i, size in enumerate(self._sizes):
                split = t1[i] * t2[i] * t3[i]
                if split > 1:
                    tile = ceil_div(size, split)
                    pad *= (tile * split) / size if tile * split > size else 1.0
            joint.append((used, pad, (t1, t2, t3)))
        joint.sort(key=lambda item: (-item[0], item[1]))
        self.spatial_enumerated += len(joint)
        self.steps += len(joint)
        if self.spatial_beam is not None and len(joint) > self.spatial_beam:
            self.spatial_beam_dropped += len(joint) - self.spatial_beam
            joint = joint[: self.spatial_beam]
        return [spatial for _, _, spatial in joint]

    # ------------------------------------------------------------------ #
    # temporal stage (memoized per remainder vector)
    # ------------------------------------------------------------------ #
    def temporal_context(self) -> tuple:
        """Everything the temporal stage reads besides the remainder vector.

        Two searches with equal contexts enumerate identical combos for
        equal remainders — the key of the shared :class:`TemporalMemo`.
        Note the spatial grid ``(D1, D2, D3)`` is deliberately absent: a
        fault-mask recompile shrinks the grid but keeps every buffer
        capacity, so the whole temporal memo carries over.
        """
        layer = self.layer
        if isinstance(layer, ConvLayer):
            kind = ("conv", layer.stride, layer.groups,
                    layer.group_out_channels)
        else:
            kind = ("mm",)
        return (
            kind,
            self._loop_names,
            self._reduction,
            self._in_weights,
            tuple(self._allowed_loops("T")),
            tuple(self._allowed_loops("L")),
            self.config.actbuf_usable_words,
            self.config.psumbuf_usable_words,
            self.config.s_wbuf_words,
            self.config.double_pump,
            self.temporal_beam,
        )

    def _t_tiles(self, rem: tuple[int, ...]) -> list[tuple[int, ...]]:
        allowed = set(self._allowed_loops("T"))
        active = [
            i for i, name in enumerate(self._loop_names)
            if name in allowed and rem[i] > 1
        ]
        act_cap = self.config.actbuf_usable_words
        psum_cap = self.config.psumbuf_usable_words
        wbuf_cap = self.config.s_wbuf_words
        tiles: list[tuple[int, ...]] = []
        current = [1] * self._k

        def recurse(pos: int) -> None:
            if pos == len(active):
                tiles.append(tuple(current))
                return
            i = active[pos]
            # Largest tiles first: they amortize LoopX overhead best.
            for tile in reversed(_ceil_tile_lattice(rem[i], rem[i])):
                current[i] = tile
                candidate = tuple(current)
                if (
                    self._act_fp(candidate) <= act_cap
                    and self._out_fp(candidate) <= psum_cap
                    and self._weight_fp(candidate) <= wbuf_cap
                ):
                    recurse(pos + 1)
                else:
                    self.pruned_by_capacity += 1
            current[i] = 1

        recurse(0)
        return tiles or [tuple(current)]

    def _temporal_combos(self, rem: tuple[int, ...]) -> list[_TemporalCombo]:
        l_allowed = set(self._allowed_loops("L"))
        l_active_base = [
            i for i, name in enumerate(self._loop_names) if name in l_allowed
        ]
        combos: list[_TemporalCombo] = []
        psum_cap = self.config.psumbuf_usable_words
        wbuf_cap = self.config.s_wbuf_words

        for t_tile in self._t_tiles(rem):
            if self.temporal_beam is not None and len(combos) >= self.temporal_beam:
                break
            # Enumerate L tiles over the loops still carrying iterations.
            l_choices: list[tuple[int, ...]] = [tuple([1] * self._k)]
            for i in l_active_base:
                remaining = ceil_div(rem[i], t_tile[i])
                if remaining <= 1:
                    continue
                extended = []
                for base in l_choices:
                    for tile in reversed(_ceil_tile_lattice(remaining, remaining)):
                        candidate = list(base)
                        candidate[i] = tile
                        combined = tuple(
                            t_tile[j] * candidate[j] for j in range(self._k)
                        )
                        if (
                            self._out_fp(combined) <= psum_cap
                            and self._weight_fp(combined) <= wbuf_cap
                        ):
                            extended.append(tuple(candidate))
                        else:
                            self.pruned_by_capacity += 1
                if extended:
                    l_choices = extended
            for l_tile in l_choices:
                if (
                    self.temporal_beam is not None
                    and len(combos) >= self.temporal_beam
                ):
                    break
                x_tile = tuple(
                    ceil_div(rem[i], t_tile[i] * l_tile[i])
                    for i in range(self._k)
                )
                lt_tile = tuple(
                    t_tile[i] * l_tile[i] for i in range(self._k)
                )
                xlt_tile = tuple(
                    lt_tile[i] * x_tile[i] for i in range(self._k)
                )
                self.steps += 1
                combos.append(
                    _TemporalCombo(
                        t_tile=t_tile,
                        l_tile=l_tile,
                        x_tile=x_tile,
                        t=prod(t_tile),
                        l=prod(l_tile),
                        x=prod(x_tile),
                        act_fp_t=self._act_fp(t_tile),
                        psum_fp=self._out_fp(lt_tile),
                        wbuf_slice=self._weight_fp(lt_tile),
                        wbuf_stream=self._weight_fp(xlt_tile),
                        stalled=(
                            self.config.double_pump
                            and self._nonweight_product(t_tile) < 2
                        ),
                        multipass=any(
                            x_tile[i] > 1
                            for i in range(self._k)
                            if self._reduction[i]
                        ),
                    )
                )
        return combos

    # ------------------------------------------------------------------ #
    # pricing (mirrors evaluate_mapping on plain tuples)
    # ------------------------------------------------------------------ #
    def _price(
        self,
        spatial: tuple[tuple[int, ...], ...],
        combo: _TemporalCombo,
    ) -> tuple[int, float, float]:
        """Return (c_exe, e_wbuf, score) for one candidate."""
        config = self.config
        d1_tile, d2_tile, d3_tile = spatial
        used_d1, used_d2, used_d3 = prod(d1_tile), prod(d2_tile), prod(d3_tile)
        used_tpes = used_d1 * used_d2 * used_d3

        stall = 2 if combo.stalled else 1
        c_comp = combo.x * (combo.l * combo.t * stall + config.pipeline_latency)

        td1 = tuple(combo.t_tile[i] * d1_tile[i] for i in range(self._k))
        f_act_row = self._act_fp(td1)
        c_actbus = int(
            -(-combo.x * combo.l * f_act_row // config.actbus_wpc)
        )

        round_trips = 2 if combo.multipass else 1
        c_psumbus = int(
            -(-combo.x * used_d3 * combo.psum_fp * round_trips
              // config.psumbus_words_per_cycle)
        )

        td1d3 = tuple(td1[i] * d3_tile[i] for i in range(self._k))
        act_read = combo.x * combo.l * self._act_fp(td1d3)
        psum_total = combo.x * used_d2 * used_d3 * combo.psum_fp
        stored = used_tpes * combo.wbuf_stream
        streamed = 0 if config.weights_resident else stored
        read_words = act_read + psum_total * (round_trips - 1) + streamed
        c_dram_rd = int(-(-read_words // config.dram_rd_words_per_cycle()))
        c_dram_wr = int(-(-psum_total // config.dram_wr_words_per_cycle()))

        terms = (c_comp, c_actbus, c_psumbus, c_dram_rd, c_dram_wr)
        c_exe = max(terms) if config.double_buffer else sum(terms)

        e_wbuf = min(1.0, self.layer.weight_words / stored) if stored else 0.0
        c_min = max(1, ceil_div(self.layer.maccs, config.n_tpe))
        score = c_min / c_exe + e_wbuf
        return c_exe, e_wbuf, score

    def _objective_key(self, c_exe: int, e_wbuf: float, score: float) -> tuple:
        if self.objective == "performance":
            return (c_exe, -e_wbuf)
        return (-score, c_exe)

    # ------------------------------------------------------------------ #
    def run(self) -> list[Schedule]:
        """Execute the search; returns top-k schedules, best first.

        Raises:
            ScheduleError: if no feasible mapping exists (e.g. buffers too
                small for any tile of this layer).
        """
        tracer = self.tracer
        depth0 = tracer.open_depth
        snapshot = (
            self.candidates_evaluated, self.steps, self.spatial_enumerated,
            self.spatial_beam_dropped, self.pruned_by_capacity,
            self.temporal_memo_hits,
        )
        tracer.begin(
            f"search:{self.layer.name}", at=self._now(), track="search",
            objective=self.objective,
            grid=f"{self.config.d1}x{self.config.d2}x{self.config.d3}",
        )
        try:
            return self._run_traced(tracer)
        finally:
            # Error paths may leave phase spans open; close everything
            # this call opened (root included) at the final step clock.
            while tracer.open_depth > depth0:
                tracer.end(self._now())
            self._mirror_metrics(snapshot)

    def _memoized_combos(
        self,
        rem: tuple[int, ...],
        context: tuple | None,
    ) -> tuple[_TemporalCombo, ...]:
        """Temporal combos for ``rem``, via the shared memo when available.

        A shared hit replays the recorded step and capacity-prune charges
        so the search's virtual step clock is independent of memo warmth.
        """
        memo = self.temporal_memo
        if memo is None:
            return tuple(self._temporal_combos(rem))
        entry = memo.lookup(context, rem)
        if entry is not None:
            self.steps += entry.steps
            self.pruned_by_capacity += entry.pruned
            self.shared_memo_hits += 1
            return entry.combos
        steps0 = self.steps
        pruned0 = self.pruned_by_capacity
        combos = tuple(self._temporal_combos(rem))
        memo.store(
            context, rem, combos,
            steps=self.steps - steps0,
            pruned=self.pruned_by_capacity - pruned0,
        )
        return combos

    def _run_traced(self, tracer: Tracer) -> list[Schedule]:
        heap: list[tuple[tuple, int, tuple, _TemporalCombo]] = []
        counter = itertools.count()
        temporal_memo: dict[tuple[int, ...], tuple[_TemporalCombo, ...]] = {}
        context = (
            self.temporal_context() if self.temporal_memo is not None else None
        )

        span = tracer.begin("spatial", at=self._now(), track="search")
        spatials = self._spatial_choices()
        tracer.end(self._now(), span)

        span = tracer.begin("evaluate", at=self._now(), track="search")
        for spatial in spatials:
            d1_tile, d2_tile, d3_tile = spatial
            rem = tuple(
                ceil_div(
                    self._sizes[i],
                    d1_tile[i] * d2_tile[i] * d3_tile[i],
                )
                for i in range(self._k)
            )
            combos = temporal_memo.get(rem)
            if combos is None:
                combos = self._memoized_combos(rem, context)
                temporal_memo[rem] = combos
            else:
                self.temporal_memo_hits += 1
            for combo in combos:
                c_exe, e_wbuf, score = self._price(spatial, combo)
                self.candidates_evaluated += 1
                self.steps += 1
                key = self._objective_key(c_exe, e_wbuf, score)
                neg_key = tuple(-v for v in key)
                entry = (neg_key, next(counter), spatial, combo)
                if len(heap) < self.top_k:
                    heapq.heappush(heap, entry)
                else:
                    heapq.heappushpop(heap, entry)
        tracer.end(self._now(), span)

        if not heap:
            raise ScheduleError(
                f"no feasible schedule for layer {self.layer.name!r} on "
                f"({self.config.d1}, {self.config.d2}, {self.config.d3})"
            )

        span = tracer.begin("materialize", at=self._now(), track="search")
        results = sorted(heap, key=lambda item: tuple(-v for v in item[0]))
        schedules = [self._materialize(spatial, combo) for _, _, spatial, combo in results]
        tracer.end(self._now(), span)

        violations = check_constraints(self.layer, self.config, schedules[0].mapping)
        if violations:
            raise ScheduleError(
                f"search produced an infeasible winner for {self.layer.name!r}: "
                f"{violations}"
            )
        return schedules

    def _mirror_metrics(self, snapshot: tuple[int, ...]) -> None:
        """Publish this run's counter deltas into the metrics registry."""
        metrics = self.metrics
        if not metrics.enabled:
            return
        deltas = {
            "search_candidates_evaluated": self.candidates_evaluated,
            "search_steps": self.steps,
            "search_spatial_choices": self.spatial_enumerated,
            "search_spatial_beam_dropped": self.spatial_beam_dropped,
            "search_pruned_by_capacity": self.pruned_by_capacity,
            "search_temporal_memo_hits": self.temporal_memo_hits,
        }
        helps = {
            "search_candidates_evaluated": "mapping candidates priced",
            "search_steps": "search work units (the trace step clock)",
            "search_spatial_choices": "joint spatial choices enumerated",
            "search_spatial_beam_dropped": "spatial choices cut by the beam",
            "search_pruned_by_capacity": "tiles rejected by buffer capacity",
            "search_temporal_memo_hits": "remainder vectors reused from memo",
        }
        for (name, total), base in zip(deltas.items(), snapshot):
            metrics.counter(name, helps[name]).inc(
                total - base, objective=self.objective
            )
        metrics.counter(
            "search_adjacency_excluded_loops",
            "loop/level pairs the adjacency matrix excludes",
        ).inc(self.adjacency_excluded_loops, objective=self.objective)

    def _materialize(
        self,
        spatial: tuple[tuple[int, ...], ...],
        combo: _TemporalCombo,
    ) -> Schedule:
        """Build the full mapping and re-price it authoritatively."""
        names = self._loop_names
        partial = {
            "D1": dict(zip(names, spatial[0])),
            "D2": dict(zip(names, spatial[1])),
            "D3": dict(zip(names, spatial[2])),
            "X": dict(zip(names, combo.x_tile)),
            "L": dict(zip(names, combo.l_tile)),
            "T": dict(zip(names, combo.t_tile)),
        }
        mapping = MappingVectors.from_partial(names, partial)
        estimate = evaluate_mapping(self.layer, self.config, mapping)
        return Schedule(
            layer=self.layer,
            config=self.config,
            mapping=mapping,
            estimate=estimate,
            objective=self.objective,
        )


def schedule_layer(
    layer: AcceleratedLayer,
    config: OverlayConfig,
    objective: str = "performance",
) -> Schedule:
    """Convenience wrapper: best schedule for ``layer`` on ``config``."""
    return ScheduleSearch(layer, config, objective=objective, top_k=1).run()[0]


def schedule_network(
    network,
    config: OverlayConfig,
    objective: str = "performance",
    cache=None,
    workers: int | None = None,
) -> list[Schedule]:
    """Best schedule per accelerated layer of ``network``, in layer order.

    The whole-network entry point behind network evaluation, the serving
    batch model, and fault-aware degraded compilation: shape twins are
    deduplicated through one :class:`~repro.compiler.cache.ScheduleCache`
    (a fresh unbounded one when ``cache`` is None).

    Args:
        workers: When > 1, independent layer searches fan out across a
            :mod:`multiprocessing` pool (see
            :func:`repro.compiler.parallel.parallel_schedule_network`);
            results are merged deterministically and are byte-for-byte
            identical to the sequential path.  ``None`` or 1 searches
            in-process.

    Raises:
        ScheduleError: if any layer has no feasible mapping on ``config``.
    """
    # Local imports: cache.py / parallel.py import this module at load time.
    from repro.compiler.cache import ScheduleCache

    if cache is None:
        cache = ScheduleCache(config, objective=objective)
    if workers is not None and workers > 1:
        from repro.compiler.parallel import parallel_schedule_network

        return parallel_schedule_network(
            network, config, objective=objective, cache=cache,
            max_workers=workers,
        )
    return [cache.schedule(layer) for layer in network.accelerated_layers()]
