"""Mapping vectors: the tiled-loop abstraction of paper §IV-A.

A *mapping vector* for hardware level ``ℓ`` assigns each of the K workload
loops a sub-loop trip count ``Tℓ_k`` (Fig. 4).  The six vectors together
fix both the spatial partition (which TPE computes what) and the temporal
order (when), making the workload↔hardware relation of Eqn. 1 unique.

Index math: the hardware iterates the tuple ``(d3, d2, d1, x, l, t)``;
decomposing each hardware index into its per-loop sub-indices (mixed radix
over the ``Tℓ_k``) and recombining per loop across levels — outer levels
most significant — yields the workload indices ``(i_1 … i_K)``.  This is
the constructive form of the paper's ``[T·H]`` product (Eqns 2-5), and it
is what both the WBUF layout and the cycle simulator use, so a schedule's
functional correctness is checkable against the golden models.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from math import prod

from repro.errors import MappingError

#: Hardware loop levels, outermost-significance first (paper Fig. 4).
HW_LEVELS = ("D3", "D2", "D1", "X", "L", "T")
SPATIAL_LEVELS = ("D3", "D2", "D1")
TEMPORAL_LEVELS = ("X", "L", "T")


@dataclass(frozen=True)
class MappingVectors:
    """The six mapping vectors for one (layer, hardware) pair.

    Attributes:
        loop_names: Workload loop names in nest order (the K loops).
        trips: ``trips[level][loop]`` is the sub-loop trip count ``Tℓ_k``;
            every level maps every loop (1 where a loop is absent).
    """

    loop_names: tuple[str, ...]
    trips: dict[str, dict[str, int]]

    # ------------------------------------------------------------------ #
    # construction / validation
    # ------------------------------------------------------------------ #
    @classmethod
    def from_partial(
        cls,
        loop_names: tuple[str, ...],
        partial: dict[str, dict[str, int]],
    ) -> "MappingVectors":
        """Build vectors from a sparse spec; unspecified trips default to 1."""
        trips = {
            level: {name: 1 for name in loop_names} for level in HW_LEVELS
        }
        for level, loops in partial.items():
            if level not in trips:
                raise MappingError(f"unknown hardware level {level!r}")
            for name, trip in loops.items():
                if name not in trips[level]:
                    raise MappingError(f"unknown workload loop {name!r}")
                trips[level][name] = int(trip)
        mapping = cls(loop_names=loop_names, trips=trips)
        mapping.validate()
        return mapping

    def validate(self) -> None:
        """Raise :class:`MappingError` on structural problems."""
        if not self.loop_names:
            raise MappingError("mapping has no workload loops")
        if set(self.trips) != set(HW_LEVELS):
            raise MappingError(
                f"mapping must cover levels {HW_LEVELS}, got {tuple(self.trips)}"
            )
        for level, loops in self.trips.items():
            if set(loops) != set(self.loop_names):
                raise MappingError(
                    f"level {level} must map loops {self.loop_names}"
                )
            for name, trip in loops.items():
                if trip < 1:
                    raise MappingError(
                        f"trip count T{level}_{name} must be >= 1, got {trip}"
                    )

    # ------------------------------------------------------------------ #
    # derived products
    # ------------------------------------------------------------------ #
    def level_product(self, level: str) -> int:
        """Total trips of one hardware level (``X``, ``L``, ``T`` of Eqn 6;
        spatial usage for ``D1``/``D2``/``D3``)."""
        return prod(self.trips[level].values())

    def loop_product(self, loop: str, levels: tuple[str, ...] = HW_LEVELS) -> int:
        """Padded size ``P_k`` of one workload loop over ``levels``."""
        return prod(self.trips[level][loop] for level in levels)

    def tile(self, levels: tuple[str, ...]) -> dict[str, int]:
        """Combined per-loop tile sizes across ``levels`` (for footprints)."""
        return {
            name: prod(self.trips[level][name] for level in levels)
            for name in self.loop_names
        }

    @property
    def x(self) -> int:
        return self.level_product("X")

    @property
    def l(self) -> int:
        return self.level_product("L")

    @property
    def t(self) -> int:
        return self.level_product("T")

    def padded_sizes(self) -> dict[str, int]:
        """Padded workload size per loop (left side of Eqn 11)."""
        return {name: self.loop_product(name) for name in self.loop_names}

    def used_tpes(self) -> int:
        """TPEs actually occupied: the product of all spatial trips."""
        return prod(self.level_product(level) for level in SPATIAL_LEVELS)

    # ------------------------------------------------------------------ #
    # index math (Eqns 1-5)
    # ------------------------------------------------------------------ #
    def decompose_level_index(self, level: str, index: int) -> dict[str, int]:
        """Split a flat hardware index into per-loop sub-indices.

        Mixed-radix decomposition in ``loop_names`` order, first loop most
        significant.
        """
        size = self.level_product(level)
        if not 0 <= index < size:
            raise MappingError(
                f"index {index} out of range for level {level} (size {size})"
            )
        sub: dict[str, int] = {}
        for name in reversed(self.loop_names):
            radix = self.trips[level][name]
            sub[name] = index % radix
            index //= radix
        return sub

    def workload_indices(
        self, d3: int, d2: int, d1: int, x: int, l: int, t: int
    ) -> tuple[int, ...]:
        """Map one hardware iteration to its workload indices (Eqn 1).

        Returns one index per workload loop, in ``loop_names`` order.
        Indices may land in the padded region (>= the true trip count);
        the caller treats those as invalid computation.
        """
        hw_index = dict(zip(HW_LEVELS, (d3, d2, d1, x, l, t)))
        subs = {
            level: self.decompose_level_index(level, hw_index[level])
            for level in HW_LEVELS
        }
        indices = []
        for name in self.loop_names:
            value = 0
            for level in HW_LEVELS:  # outermost significance first
                value = value * self.trips[level][name] + subs[level][name]
            indices.append(value)
        return tuple(indices)

    def t_matrix(self) -> list[list[int]]:
        """The paper's ``T`` matrix (Eqn 4): rows are loops, columns are
        the six mapping vectors in ``(TD1, TD2, TD3, TX, TL, TT)`` order."""
        order = ("D1", "D2", "D3", "X", "L", "T")
        return [
            [self.trips[level][name] for level in order]
            for name in self.loop_names
        ]

    # ------------------------------------------------------------------ #
    def describe(self) -> str:
        """Compact human-readable rendering used in reports and logs."""
        parts = []
        for level in HW_LEVELS:
            inner = ",".join(
                f"{name}:{trip}"
                for name, trip in self.trips[level].items()
                if trip > 1
            )
            parts.append(f"{level}[{inner or '-'}]")
        return " ".join(parts)
