"""WBUF residency planning across a network's layers.

This is what the paper's Objective 2 exists for (§IV-D2): "less weight
duplication means more workload layers can be arranged on one FPGA
device".  Given per-layer schedules, the planner packs layers' *stored*
weight footprints (duplication included — that is the E_WBUF price) into
the device's aggregate WBUF budget.  Resident layers skip the per-frame
DRAM weight stream; the rest keep streaming.

The packing is a greedy knapsack by streamed-bytes-saved per stored byte
— optimal enough for the monotone benefit here and deterministic.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.compiler.cache import ScheduleCache
from repro.compiler.search import Schedule
from repro.errors import ScheduleError
from repro.overlay.config import OverlayConfig
from repro.units import BYTES_PER_WORD
from repro.workloads.network import Network


@dataclass(frozen=True)
class ResidentLayer:
    """One layer's residency decision."""

    name: str
    schedule: Schedule
    stored_words: int
    resident: bool


@dataclass(frozen=True)
class ResidencyPlan:
    """Outcome of planning one network's WBUF residency.

    Attributes:
        network: The planned network.
        config: The overlay (budget source).
        layers: Per accelerated layer, the decision and its schedule.
    """

    network: Network
    config: OverlayConfig
    layers: tuple[ResidentLayer, ...] = field(default_factory=tuple)

    @property
    def budget_words(self) -> int:
        """Aggregate WBUF capacity of the overlay."""
        return self.config.n_tpe * self.config.s_wbuf_words

    @property
    def resident_words(self) -> int:
        return sum(l.stored_words for l in self.layers if l.resident)

    @property
    def n_resident(self) -> int:
        return sum(1 for l in self.layers if l.resident)

    @property
    def streamed_bytes_per_frame(self) -> int:
        """DRAM weight traffic left after residency, per inference."""
        return BYTES_PER_WORD * sum(
            l.stored_words for l in self.layers if not l.resident
        )

    def total_cycles(self) -> int:
        """Network cycles with resident layers re-priced stream-free."""
        resident_config = replace(self.config, weights_resident=True)
        total = 0
        for layer in self.layers:
            if layer.resident:
                # Same mapping, weight stream removed.
                from repro.compiler.model import evaluate_mapping
                estimate = evaluate_mapping(
                    layer.schedule.layer, resident_config,
                    layer.schedule.mapping,
                )
                total += estimate.c_exe
            else:
                total += layer.schedule.cycles
        return total

    def fps(self) -> float:
        cycles = self.total_cycles()
        if not cycles:
            return 0.0
        return self.config.clk_h_mhz * 1e6 / cycles


def plan_residency(
    network: Network,
    config: OverlayConfig,
    objective: str = "balance",
    cache: ScheduleCache | None = None,
) -> ResidencyPlan:
    """Schedule every layer and pack as many as fit into the WBUF budget.

    Args:
        network: Workload to plan.
        config: Overlay configuration (must not itself claim global
            residency — the plan decides per layer).
        objective: Scheduling objective; ``"balance"`` (Objective 2) keeps
            stored footprints small, which is the whole point.
        cache: Optional shared schedule cache matching ``config``.

    Raises:
        ScheduleError: if ``config.weights_resident`` is already set (the
            global flag and per-layer planning would double-count).
    """
    if config.weights_resident:
        raise ScheduleError(
            "plan_residency needs a streaming config; the plan assigns "
            "residency per layer"
        )
    if cache is None:
        cache = ScheduleCache(config, objective=objective)

    entries = []
    for layer in network.accelerated_layers():
        schedule = cache.schedule(layer)
        estimate = schedule.estimate
        stored = int(round(layer.weight_words / max(estimate.e_wbuf, 1e-9)))
        entries.append((layer.name, schedule, stored))

    # Tied weight groups store one copy; credit the group to its first
    # layer and make twins free riders (their stream cost is also shared).
    budget = config.n_tpe * config.s_wbuf_words
    seen_groups: set[str] = set()
    decisions: dict[str, bool] = {}
    charged: dict[str, int] = {}
    for name, schedule, stored in entries:
        group = getattr(schedule.layer, "weight_group", None)
        if group and group in seen_groups:
            charged[name] = 0
        else:
            charged[name] = stored
            if group:
                seen_groups.add(group)

    # Greedy: small stored footprints first maximizes resident layer
    # count and, with equal duplication, streamed bytes saved per word.
    order = sorted(entries, key=lambda e: charged[e[0]])
    remaining = budget
    group_resident: dict[str, bool] = {}
    for name, schedule, stored in order:
        group = getattr(schedule.layer, "weight_group", None)
        if group and group in group_resident:
            decisions[name] = group_resident[group]
            continue
        cost = charged[name]
        resident = cost <= remaining
        if resident:
            remaining -= cost
        decisions[name] = resident
        if group:
            group_resident[group] = resident

    planned = tuple(
        ResidentLayer(
            name=name,
            schedule=schedule,
            stored_words=stored,
            resident=decisions[name],
        )
        for name, schedule, stored in entries
    )
    return ResidencyPlan(network=network, config=config, layers=planned)
