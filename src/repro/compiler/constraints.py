"""Feasibility constraints on mapping vectors (paper §IV-C2).

Three families, exactly the paper's:

1. **Adjacency** — a loop may only take a trip count > 1 at a hardware
   level the adjacency matrix permits.
2. **Logical** (Eqns 10-11) — spatial products within (D1, D2, D3); every
   loop's padded size covers its true trip count.
3. **Capacity** — the per-TPE ActBUF/WBUF tiles and the per-SuperBlock
   PSumBUF tile fit their (double-buffer-halved) capacities.
"""

from __future__ import annotations

from repro.compiler.adjacency import adjacency_matrix
from repro.compiler.mapping import MappingVectors, SPATIAL_LEVELS
from repro.overlay.config import OverlayConfig
from repro.workloads.layers import ConvLayer, MatMulLayer

AcceleratedLayer = ConvLayer | MatMulLayer


def check_constraints(
    layer: AcceleratedLayer,
    config: OverlayConfig,
    mapping: MappingVectors,
) -> list[str]:
    """Return all constraint violations of ``mapping`` (empty = feasible)."""
    violations: list[str] = []
    sizes = layer.loop_sizes

    expected = tuple(sizes)
    if mapping.loop_names != expected:
        return [f"mapping loops {mapping.loop_names} != layer loops {expected}"]

    # 1. Adjacency.
    matrix = adjacency_matrix(layer)
    for level, loops in mapping.trips.items():
        for name, trip in loops.items():
            if trip > 1 and not matrix[level][name]:
                violations.append(
                    f"loop {name} cannot map to level {level} "
                    f"(adjacency), got trip {trip}"
                )

    # 2a. Eqn 10: spatial products within the hardware grid.
    for level, limit in zip(SPATIAL_LEVELS, (config.d3, config.d2, config.d1)):
        used = mapping.level_product(level)
        if used > limit:
            violations.append(
                f"spatial level {level} uses {used} > {limit} available"
            )

    # 2b. Eqn 11: full coverage of every workload loop.
    for name, size in sizes.items():
        padded = mapping.loop_product(name)
        if padded < size:
            violations.append(
                f"loop {name} covered {padded} < required {size}"
            )

    # 3. Buffer capacities.
    actbuf = layer.act_footprint(mapping.tile(("T",)))
    if actbuf > config.actbuf_usable_words:
        violations.append(
            f"ActBUF tile {actbuf} words > usable {config.actbuf_usable_words}"
        )
    # One LoopX pass's weight slice must be resident; slices swap across
    # passes via DRAM weight streaming.
    wbuf = layer.weight_footprint(mapping.tile(("L", "T")))
    if wbuf > config.s_wbuf_words:
        violations.append(
            f"WBUF pass slice {wbuf} words > capacity {config.s_wbuf_words}"
        )
    psumbuf = layer.out_footprint(mapping.tile(("T", "L")))
    if psumbuf > config.psumbuf_usable_words:
        violations.append(
            f"PSumBUF tile {psumbuf} words > usable {config.psumbuf_usable_words}"
        )

    return violations
