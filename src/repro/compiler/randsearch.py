"""Random-sampling scheduler baseline.

The paper's search generates candidates "under the guidance of the
adjacency matrix" over a structured tile lattice (§IV-D4).  This module
is the control experiment: sample mapping vectors uniformly at random
(respecting only the adjacency zeros and Eqn 11 coverage), keep the
feasible ones, and return the best found.  Comparing it at an equal
evaluation budget against :class:`repro.compiler.search.ScheduleSearch`
quantifies what the structure buys.
"""

from __future__ import annotations

import random

from repro.compiler.adjacency import adjacency_matrix
from repro.compiler.constraints import check_constraints
from repro.compiler.mapping import HW_LEVELS, MappingVectors
from repro.compiler.model import evaluate_mapping
from repro.compiler.search import AcceleratedLayer, Schedule
from repro.errors import ScheduleError
from repro.overlay.config import OverlayConfig
from repro.units import ceil_div


def _random_mapping(
    layer: AcceleratedLayer,
    config: OverlayConfig,
    rng: random.Random,
) -> MappingVectors:
    """Draw one coverage-complete mapping at random.

    Per loop: pick random trip counts for a random subset of the allowed
    levels, then force LoopX to cover the remainder (Eqn 11), mirroring
    the structured search's X handling so the comparison isolates the
    *candidate generation*, not the coverage rule.
    """
    matrix = adjacency_matrix(layer)
    sizes = layer.loop_sizes
    caps = {"D1": config.d1, "D2": config.d2, "D3": config.d3}
    partial: dict[str, dict[str, int]] = {level: {} for level in HW_LEVELS}
    for name, size in sizes.items():
        remaining = size
        for level in ("D1", "D2", "D3", "L", "T"):
            if not matrix[level][name] or remaining <= 1:
                continue
            if rng.random() < 0.5:
                continue
            bound = min(remaining, caps.get(level, remaining))
            trip = rng.randint(1, bound)
            partial[level][name] = trip
            remaining = ceil_div(remaining, trip)
        partial["X"][name] = remaining
    return MappingVectors.from_partial(tuple(sizes), partial)


def random_schedule_search(
    layer: AcceleratedLayer,
    config: OverlayConfig,
    budget: int,
    *,
    seed: int,
) -> tuple[Schedule, int]:
    """Sample ``budget`` random mappings; return (best schedule, number of
    feasible samples).

    ``seed`` is keyword-required: every stochastic path in the library
    takes an explicit seed so results are reproducible by construction
    (no module-level RNG state anywhere).

    Raises:
        ScheduleError: if no sampled mapping is feasible.
    """
    if budget < 1:
        raise ScheduleError(f"budget must be >= 1, got {budget}")
    rng = random.Random(seed)
    best: Schedule | None = None
    feasible = 0
    for _ in range(budget):
        mapping = _random_mapping(layer, config, rng)
        if check_constraints(layer, config, mapping):
            continue
        feasible += 1
        estimate = evaluate_mapping(layer, config, mapping)
        if best is None or estimate.c_exe < best.estimate.c_exe:
            best = Schedule(
                layer=layer,
                config=config,
                mapping=mapping,
                estimate=estimate,
                objective="performance",
            )
    if best is None:
        raise ScheduleError(
            f"no feasible mapping in {budget} random samples for "
            f"{layer.name!r}"
        )
    return best, feasible
