"""Cross-invocation temporal-combo memoization for the mapping search.

The search's temporal stage enumerates (T, L, forced-X) splits of a
*remainder vector* — the per-loop iterations left after the spatial
levels.  Within one :class:`~repro.compiler.search.ScheduleSearch` run
those combos are memoized per remainder vector; this module lifts that
memo across searches: a batch-size sweep re-schedules the same MM layer
with only the ``P`` loop perturbed, and a fault-mask recompile shrinks
the spatial grid while every buffer capacity stays put — in both cases
most remainder vectors (and therefore their temporal enumerations)
recur verbatim.

The memo key is the *temporal context*: everything the temporal stage
reads apart from the remainder vector itself — layer kind and footprint
parameters, reduction/weight tags, the adjacency-allowed T/L loops, the
buffer capacities, double-pump, and the temporal beam.  Two searches
with equal contexts produce identical combos for equal remainders, so
reuse is result-transparent by construction.

Reuse is also **virtual-clock transparent**: every entry records the
step and capacity-prune counts its original enumeration charged, and a
shared hit replays those charges.  A search's step clock (and therefore
its trace spans and mirrored metrics) is identical whether the memo was
cold or warm — cache warmth never perturbs the virtual timeline.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.errors import ScheduleError

if TYPE_CHECKING:  # pragma: no cover - import cycle with search.py
    from repro.compiler.search import _TemporalCombo


@dataclass(frozen=True)
class MemoEntry:
    """One memoized temporal enumeration plus its replay accounting.

    Attributes:
        combos: The (T, L, X) combos, in enumeration order.
        steps: Step-clock charge of the original enumeration.
        pruned: Capacity prunes the original enumeration counted.
    """

    combos: tuple["_TemporalCombo", ...]
    steps: int
    pruned: int


class TemporalMemo:
    """Bounded LRU store of temporal enumerations, shared across searches.

    Args:
        max_entries: Bound on stored (context, remainder) entries;
            least-recently-used entries are evicted past it.  ``None``
            keeps everything.
    """

    def __init__(self, max_entries: int | None = 100_000):
        if max_entries is not None and max_entries < 1:
            raise ScheduleError(
                f"max_entries must be >= 1 or None, got {max_entries}"
            )
        self.max_entries = max_entries
        self._entries: OrderedDict[tuple, MemoEntry] = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0

    def lookup(self, context: tuple, rem: tuple[int, ...]) -> MemoEntry | None:
        """Return the entry for ``(context, rem)``, or None on a miss."""
        key = (context, rem)
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
            return None
        self.hits += 1
        self._entries.move_to_end(key)
        return entry

    def store(
        self,
        context: tuple,
        rem: tuple[int, ...],
        combos: tuple["_TemporalCombo", ...],
        steps: int,
        pruned: int,
    ) -> None:
        """Record one enumeration with its replay accounting."""
        self._entries[(context, rem)] = MemoEntry(
            combos=combos, steps=steps, pruned=pruned
        )
        if self.max_entries is not None and len(self._entries) > self.max_entries:
            self._entries.popitem(last=False)
            self.evictions += 1

    def clear(self) -> None:
        self._entries.clear()

    def describe(self) -> str:
        return (
            f"{len(self._entries)} entries: {self.hits} hits / "
            f"{self.misses} misses ({self.hit_rate:.1%}), "
            f"{self.evictions} evictions"
        )
