"""Schedule memoization keyed by layer shape.

Real networks repeat layer shapes heavily (ResNet50's six identical
``layer3`` bottlenecks, the seqLSTM's 50 tied-gate MMs); the cache makes
whole-network compilation pay for each distinct shape once.

The cache is optionally bounded: a long-running server compiling
schedules for every (layer, batch) combination it encounters would grow
without limit, so :class:`ScheduleCache` accepts ``max_entries`` and
evicts least-recently-used shapes past that bound.  Hit/miss/eviction
counters are exposed through :meth:`ScheduleCache.stats` for the serving
metrics layer.

Two fast-path layers sit behind the in-memory map:

* a shared :class:`~repro.compiler.memo.TemporalMemo` carries the
  search's per-remainder temporal enumerations across misses, so a
  batch-size sweep or a fault-mask recompile only re-searches what the
  perturbation actually changed;
* an optional :class:`~repro.compiler.persist.PersistentScheduleStore`
  turns cold starts into disk loads: misses consult the store before
  searching, and fresh searches are written back.  Loads replay the
  original search's step-clock charge, so the trace timeline is the
  same warm or cold.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, replace
from typing import TYPE_CHECKING

from repro.compiler.memo import TemporalMemo
from repro.compiler.search import Schedule, ScheduleSearch
from repro.errors import ScheduleError
from repro.overlay.config import OverlayConfig
from repro.trace.metrics import MetricsRegistry, as_metrics
from repro.trace.span import Tracer, as_tracer
from repro.workloads.layers import ConvLayer, MatMulLayer

if TYPE_CHECKING:  # pragma: no cover - avoids an import cycle
    from repro.compiler.persist import PersistentScheduleStore

AcceleratedLayer = ConvLayer | MatMulLayer


def layer_signature(layer: AcceleratedLayer) -> tuple:
    """Shape signature: everything that affects scheduling but not names."""
    if isinstance(layer, ConvLayer):
        return (
            "conv", layer.in_channels, layer.out_channels, layer.in_h,
            layer.in_w, layer.kernel_h, layer.kernel_w, layer.stride,
            layer.padding, layer.groups,
        )
    return ("mm", layer.in_features, layer.out_features, layer.batch)


@dataclass(frozen=True)
class CacheStats:
    """A point-in-time snapshot of one :class:`ScheduleCache`'s counters."""

    hits: int
    misses: int
    evictions: int
    size: int
    max_entries: int | None
    #: Lookups served by loading the persistent store (subset of misses).
    persistent_hits: int = 0
    #: Store lookups that found nothing (or a corrupt entry).
    persistent_misses: int = 0
    #: Entries written back to the persistent store.
    persistent_stores: int = 0
    #: Corrupt / stale entries detected and skipped.
    persistent_corrupt: int = 0
    #: Whether a persistent store is attached at all.
    has_store: bool = False

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0

    @property
    def compiles(self) -> int:
        """Lookups that actually ran a search."""
        return self.misses - self.persistent_hits

    def describe(self) -> str:
        bound = "unbounded" if self.max_entries is None else str(self.max_entries)
        text = (
            f"{self.size} entries (bound {bound}): {self.hits} hits / "
            f"{self.misses} misses ({self.hit_rate:.1%}), "
            f"{self.evictions} evictions"
        )
        if self.has_store:
            text += (
                f"; disk {self.persistent_hits} hits / "
                f"{self.persistent_misses} misses, "
                f"{self.persistent_stores} stores, "
                f"{self.persistent_corrupt} corrupt"
            )
        return text


class ScheduleCache:
    """Memoized per-layer scheduling against one overlay config.

    Args:
        config: The overlay all layers are scheduled for.
        objective: Search objective forwarded to :class:`ScheduleSearch`.
        max_entries: Bound on cached distinct shapes; least-recently-used
            entries are evicted past it.  ``None`` keeps every shape.
        tracer: Optional :class:`~repro.trace.span.Tracer`; hit/miss/
            eviction instants land on the ``cache`` track and miss
            compiles are forwarded to :class:`ScheduleSearch` on one
            monotonic step timeline shared across all lookups.
        metrics: Optional :class:`~repro.trace.metrics.MetricsRegistry`
            receiving live ``schedule_cache_*`` counters.
        store: Optional :class:`~repro.compiler.persist.
            PersistentScheduleStore`; misses consult it before searching
            and fresh searches are persisted into it.
        temporal_memo: Shared :class:`~repro.compiler.memo.TemporalMemo`
            for incremental search reuse.  Defaults to a fresh memo
            private to this cache; pass one in to share across caches
            (e.g. across batch-size or fault-mask recompiles).
        spatial_beam: Optional override of the search's spatial beam
            width.  ``None`` (default) keeps the search default; smaller
            beams trade schedule quality for compile time (the
            conformance harness's budget mode uses this).
        temporal_beam: Optional override of the search's temporal beam
            width; same semantics as ``spatial_beam``.
    """

    _SEARCH_DEFAULT = object()

    def __init__(
        self,
        config: OverlayConfig,
        objective: str = "performance",
        max_entries: int | None = None,
        tracer: Tracer | None = None,
        metrics: MetricsRegistry | None = None,
        store: "PersistentScheduleStore | None" = None,
        temporal_memo: TemporalMemo | None = None,
        spatial_beam: int | None | object = _SEARCH_DEFAULT,
        temporal_beam: int | None | object = _SEARCH_DEFAULT,
    ):
        if max_entries is not None and max_entries < 1:
            raise ScheduleError(
                f"max_entries must be >= 1 or None, got {max_entries}"
            )
        self.config = config
        self.objective = objective
        self.max_entries = max_entries
        self.tracer = as_tracer(tracer)
        self.metrics = as_metrics(metrics)
        self.store = store
        self.temporal_memo = (
            temporal_memo if temporal_memo is not None else TemporalMemo()
        )
        self._beam_kwargs: dict[str, int | None] = {}
        if spatial_beam is not ScheduleCache._SEARCH_DEFAULT:
            self._beam_kwargs["spatial_beam"] = spatial_beam
        if temporal_beam is not ScheduleCache._SEARCH_DEFAULT:
            self._beam_kwargs["temporal_beam"] = temporal_beam
        self._cache: OrderedDict[tuple, Schedule] = OrderedDict()
        self._step_base = 0
        self.misses = 0
        self.hits = 0
        self.evictions = 0
        self.persistent_hits = 0

    def __len__(self) -> int:
        return len(self._cache)

    # ------------------------------------------------------------------ #
    def cached(self, layer: AcceleratedLayer) -> bool:
        """Whether the in-memory map already holds this layer's shape."""
        return layer_signature(layer) in self._cache

    def _insert(self, key: tuple, schedule: Schedule) -> None:
        self._cache[key] = schedule
        if self.max_entries is not None and len(self._cache) > self.max_entries:
            self._cache.popitem(last=False)
            self.evictions += 1
            self.metrics.counter(
                "schedule_cache_evictions", "LRU entries dropped at the bound"
            ).inc()

    def _memory_hit(self, key: tuple, layer: AcceleratedLayer) -> Schedule:
        self.hits += 1
        self.metrics.counter(
            "schedule_cache_hits", "schedule lookups served from cache"
        ).inc()
        self.tracer.instant(
            "cache.hit", at=self._step_base, track="cache",
            layer=layer.name,
        )
        self._cache.move_to_end(key)
        cached = self._cache[key]
        if cached.layer is layer:
            return cached
        return replace(cached, layer=layer)

    def load_persistent(self, layer: AcceleratedLayer) -> bool:
        """Try to promote this layer's entry from the store into memory.

        Returns True when the store held a valid entry.  The entry's
        recorded step charge is replayed onto the cache's step clock so
        trace timelines are identical warm or cold.
        """
        if self.store is None:
            return False
        loaded = self.store.load(layer, self.config, self.objective)
        if loaded is None:
            return False
        schedule, steps = loaded
        self._step_base += steps
        self.persistent_hits += 1
        self.tracer.instant(
            "cache.persistent_hit", at=self._step_base, track="cache",
            layer=layer.name,
        )
        self.metrics.counter(
            "schedule_cache_persistent_hits",
            "schedule lookups loaded from the persistent store",
        ).inc()
        self._insert(layer_signature(layer), schedule)
        return True

    def adopt(self, layer: AcceleratedLayer, schedule: Schedule,
              steps: int = 0) -> None:
        """Insert an externally-computed schedule (e.g. a pool worker's).

        Counts as a miss (the shape was compiled, just not here), replays
        the worker's step charge, and writes through to the store.
        """
        if schedule.config != self.config or schedule.objective != self.objective:
            raise ScheduleError(
                "adopted schedule was compiled for a different cache context"
            )
        self.misses += 1
        self._step_base += steps
        self.metrics.counter(
            "schedule_cache_misses", "schedule lookups that compiled"
        ).inc()
        self._insert(layer_signature(layer), schedule)
        if self.store is not None:
            self.store.save(schedule, steps=steps)

    # ------------------------------------------------------------------ #
    def schedule(self, layer: AcceleratedLayer) -> Schedule:
        """Return the best schedule for ``layer``, reusing shape twins."""
        key = layer_signature(layer)
        if key in self._cache:
            return self._memory_hit(key, layer)
        if self.store is not None and self.load_persistent(layer):
            # A miss satisfied from disk: no search ran, the entry is in
            # memory now.  stats().compiles stays honest about searches.
            self.misses += 1
            self.metrics.counter(
                "schedule_cache_misses", "schedule lookups that compiled"
            ).inc()
            cached = self._cache[key]
            if cached.layer is layer:
                return cached
            return replace(cached, layer=layer)
        self.misses += 1
        self.metrics.counter(
            "schedule_cache_misses", "schedule lookups that compiled"
        ).inc()
        self.tracer.instant(
            "cache.miss", at=self._step_base, track="cache",
            layer=layer.name,
        )
        search = ScheduleSearch(
            layer, self.config, objective=self.objective, top_k=1,
            tracer=self.tracer, metrics=self.metrics,
            step_base=self._step_base,
            temporal_memo=self.temporal_memo,
            **self._beam_kwargs,
        )
        schedule = search.run()[0]
        self._step_base += search.steps
        self._insert(key, schedule)
        if self.store is not None:
            self.store.save(schedule, steps=search.steps)
        return schedule

    # ------------------------------------------------------------------ #
    def stats(self) -> CacheStats:
        """Snapshot the hit/miss/eviction counters."""
        store = self.store
        return CacheStats(
            hits=self.hits,
            misses=self.misses,
            evictions=self.evictions,
            size=len(self._cache),
            max_entries=self.max_entries,
            persistent_hits=self.persistent_hits,
            persistent_misses=store.misses if store is not None else 0,
            persistent_stores=store.stores if store is not None else 0,
            persistent_corrupt=store.corrupt if store is not None else 0,
            has_store=store is not None,
        )

    def describe(self) -> str:
        """One-line cache summary including memo and disk-store behavior."""
        text = self.stats().describe()
        memo = self.temporal_memo
        if memo is not None and memo.lookups:
            text += (
                f"; temporal memo {memo.hits} hits / {memo.misses} misses "
                f"({memo.hit_rate:.1%})"
            )
        return text
