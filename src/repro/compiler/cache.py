"""Schedule memoization keyed by layer shape.

Real networks repeat layer shapes heavily (ResNet50's six identical
``layer3`` bottlenecks, the seqLSTM's 50 tied-gate MMs); the cache makes
whole-network compilation pay for each distinct shape once.
"""

from __future__ import annotations

from dataclasses import replace

from repro.compiler.search import Schedule, ScheduleSearch
from repro.overlay.config import OverlayConfig
from repro.workloads.layers import ConvLayer, MatMulLayer

AcceleratedLayer = ConvLayer | MatMulLayer


def layer_signature(layer: AcceleratedLayer) -> tuple:
    """Shape signature: everything that affects scheduling but not names."""
    if isinstance(layer, ConvLayer):
        return (
            "conv", layer.in_channels, layer.out_channels, layer.in_h,
            layer.in_w, layer.kernel_h, layer.kernel_w, layer.stride,
            layer.padding, layer.groups,
        )
    return ("mm", layer.in_features, layer.out_features, layer.batch)


class ScheduleCache:
    """Memoized per-layer scheduling against one overlay config.

    Args:
        config: The overlay all layers are scheduled for.
        objective: Search objective forwarded to :class:`ScheduleSearch`.
    """

    def __init__(self, config: OverlayConfig, objective: str = "performance"):
        self.config = config
        self.objective = objective
        self._cache: dict[tuple, Schedule] = {}
        self.misses = 0
        self.hits = 0

    def schedule(self, layer: AcceleratedLayer) -> Schedule:
        """Return the best schedule for ``layer``, reusing shape twins."""
        key = layer_signature(layer)
        if key in self._cache:
            self.hits += 1
            cached = self._cache[key]
            if cached.layer is layer:
                return cached
            return replace(cached, layer=layer)
        self.misses += 1
        schedule = ScheduleSearch(
            layer, self.config, objective=self.objective, top_k=1
        ).run()[0]
        self._cache[key] = schedule
        return schedule
