"""Schedule memoization keyed by layer shape.

Real networks repeat layer shapes heavily (ResNet50's six identical
``layer3`` bottlenecks, the seqLSTM's 50 tied-gate MMs); the cache makes
whole-network compilation pay for each distinct shape once.

The cache is optionally bounded: a long-running server compiling
schedules for every (layer, batch) combination it encounters would grow
without limit, so :class:`ScheduleCache` accepts ``max_entries`` and
evicts least-recently-used shapes past that bound.  Hit/miss/eviction
counters are exposed through :meth:`ScheduleCache.stats` for the serving
metrics layer.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, replace

from repro.compiler.search import Schedule, ScheduleSearch
from repro.errors import ScheduleError
from repro.overlay.config import OverlayConfig
from repro.trace.metrics import MetricsRegistry, as_metrics
from repro.trace.span import Tracer, as_tracer
from repro.workloads.layers import ConvLayer, MatMulLayer

AcceleratedLayer = ConvLayer | MatMulLayer


def layer_signature(layer: AcceleratedLayer) -> tuple:
    """Shape signature: everything that affects scheduling but not names."""
    if isinstance(layer, ConvLayer):
        return (
            "conv", layer.in_channels, layer.out_channels, layer.in_h,
            layer.in_w, layer.kernel_h, layer.kernel_w, layer.stride,
            layer.padding, layer.groups,
        )
    return ("mm", layer.in_features, layer.out_features, layer.batch)


@dataclass(frozen=True)
class CacheStats:
    """A point-in-time snapshot of one :class:`ScheduleCache`'s counters."""

    hits: int
    misses: int
    evictions: int
    size: int
    max_entries: int | None

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0

    def describe(self) -> str:
        bound = "unbounded" if self.max_entries is None else str(self.max_entries)
        return (
            f"{self.size} entries (bound {bound}): {self.hits} hits / "
            f"{self.misses} misses ({self.hit_rate:.1%}), "
            f"{self.evictions} evictions"
        )


class ScheduleCache:
    """Memoized per-layer scheduling against one overlay config.

    Args:
        config: The overlay all layers are scheduled for.
        objective: Search objective forwarded to :class:`ScheduleSearch`.
        max_entries: Bound on cached distinct shapes; least-recently-used
            entries are evicted past it.  ``None`` keeps every shape.
        tracer: Optional :class:`~repro.trace.span.Tracer`; hit/miss/
            eviction instants land on the ``cache`` track and miss
            compiles are forwarded to :class:`ScheduleSearch` on one
            monotonic step timeline shared across all lookups.
        metrics: Optional :class:`~repro.trace.metrics.MetricsRegistry`
            receiving live ``schedule_cache_*`` counters.
    """

    def __init__(
        self,
        config: OverlayConfig,
        objective: str = "performance",
        max_entries: int | None = None,
        tracer: Tracer | None = None,
        metrics: MetricsRegistry | None = None,
    ):
        if max_entries is not None and max_entries < 1:
            raise ScheduleError(
                f"max_entries must be >= 1 or None, got {max_entries}"
            )
        self.config = config
        self.objective = objective
        self.max_entries = max_entries
        self.tracer = as_tracer(tracer)
        self.metrics = as_metrics(metrics)
        self._cache: OrderedDict[tuple, Schedule] = OrderedDict()
        self._step_base = 0
        self.misses = 0
        self.hits = 0
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._cache)

    def schedule(self, layer: AcceleratedLayer) -> Schedule:
        """Return the best schedule for ``layer``, reusing shape twins."""
        key = layer_signature(layer)
        if key in self._cache:
            self.hits += 1
            self.metrics.counter(
                "schedule_cache_hits", "schedule lookups served from cache"
            ).inc()
            self.tracer.instant(
                "cache.hit", at=self._step_base, track="cache",
                layer=layer.name,
            )
            self._cache.move_to_end(key)
            cached = self._cache[key]
            if cached.layer is layer:
                return cached
            return replace(cached, layer=layer)
        self.misses += 1
        self.metrics.counter(
            "schedule_cache_misses", "schedule lookups that compiled"
        ).inc()
        self.tracer.instant(
            "cache.miss", at=self._step_base, track="cache",
            layer=layer.name,
        )
        search = ScheduleSearch(
            layer, self.config, objective=self.objective, top_k=1,
            tracer=self.tracer, metrics=self.metrics,
            step_base=self._step_base,
        )
        schedule = search.run()[0]
        self._step_base += search.steps
        self._cache[key] = schedule
        if self.max_entries is not None and len(self._cache) > self.max_entries:
            self._cache.popitem(last=False)
            self.evictions += 1
            self.metrics.counter(
                "schedule_cache_evictions", "LRU entries dropped at the bound"
            ).inc()
        return schedule

    def stats(self) -> CacheStats:
        """Snapshot the hit/miss/eviction counters."""
        return CacheStats(
            hits=self.hits,
            misses=self.misses,
            evictions=self.evictions,
            size=len(self._cache),
            max_entries=self.max_entries,
        )
