"""Objective 3: best hardware configuration at fixed cost (paper §IV-D3).

Given a TPE budget ``D1 * D2 * D3``, enumerate the divisor triples, replay
the mapping search on each, and return the configuration whose best
schedule wins.  Device geometry constraints (§III-D) can prune triples
that no real part could host.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.compiler.search import Schedule, ScheduleSearch
from repro.errors import ScheduleError
from repro.fpga.devices import Device
from repro.overlay.config import OverlayConfig
from repro.trace.metrics import MetricsRegistry, as_metrics
from repro.trace.span import Tracer, as_tracer
from repro.workloads.layers import ConvLayer, MatMulLayer

AcceleratedLayer = ConvLayer | MatMulLayer


@dataclass(frozen=True)
class HardwareSearchResult:
    """Outcome of one Objective-3 sweep."""

    best: Schedule
    #: Every evaluated (d1, d2, d3) with its best schedule, best first.
    ranking: tuple[tuple[tuple[int, int, int], Schedule], ...]


def feasible_grids(
    n_tpe: int,
    device: Device | None = None,
    max_d1: int = 64,
) -> list[tuple[int, int, int]]:
    """All (d1, d2, d3) triples with ``d1 * d2 * d3 == n_tpe``.

    With a ``device``, apply the §III-D layout constraints: ``d2`` within
    the DSP column count and ``d1 * d3`` within one column's DSP count.
    """
    if n_tpe < 1:
        raise ScheduleError(f"TPE budget must be >= 1, got {n_tpe}")
    triples = []
    for d1 in range(1, min(max_d1, n_tpe) + 1):
        if n_tpe % d1:
            continue
        rest = n_tpe // d1
        for d2 in range(1, rest + 1):
            if rest % d2:
                continue
            d3 = rest // d2
            if device is not None:
                if d2 > len(device.dsp_columns):
                    continue
                if d1 * d3 > device.dsps_per_column:
                    continue
            triples.append((d1, d2, d3))
    return triples


def search_hardware_config(
    layer: AcceleratedLayer,
    base_config: OverlayConfig,
    device: Device | None = None,
    objective: str = "performance",
    spatial_beam: int | None = 80,
    temporal_beam: int | None = 120,
    tracer: Tracer | None = None,
    metrics: MetricsRegistry | None = None,
) -> HardwareSearchResult:
    """Find the best (d1, d2, d3) for ``layer`` at the TPE cost of
    ``base_config`` (Objective 3).

    With a ``tracer``, the sweep opens one ``hwsearch:<layer>`` span on
    the compiler step clock with each grid's mapping search nested under
    it; ``metrics`` receives ``hwsearch_grids_*`` counters.

    Raises:
        ScheduleError: if no grid shape admits a feasible schedule.
    """
    tracer = as_tracer(tracer)
    metrics = as_metrics(metrics)
    n_tpe = base_config.n_tpe
    ranked: list[tuple[tuple[int, int, int], Schedule]] = []
    step = 0
    root = tracer.begin(
        f"hwsearch:{layer.name}", at=step, track="hwsearch",
        n_tpe=n_tpe, objective=objective,
    )
    try:
        for d1, d2, d3 in feasible_grids(n_tpe, device):
            config = base_config.with_grid(d1, d2, d3)
            search = ScheduleSearch(
                layer,
                config,
                objective=objective,
                top_k=1,
                spatial_beam=spatial_beam,
                temporal_beam=temporal_beam,
                tracer=tracer,
                metrics=metrics,
                step_base=step,
            )
            metrics.counter(
                "hwsearch_grids_evaluated", "grid shapes swept"
            ).inc(objective=objective)
            try:
                schedule = search.run()[0]
            except ScheduleError:
                metrics.counter(
                    "hwsearch_grids_infeasible",
                    "grid shapes with no feasible schedule",
                ).inc(objective=objective)
                continue
            finally:
                step += search.steps
            ranked.append(((d1, d2, d3), schedule))
    finally:
        tracer.end(step, root)
    if not ranked:
        raise ScheduleError(
            f"no grid of {n_tpe} TPEs can schedule layer {layer.name!r}"
        )
    if objective == "performance":
        ranked.sort(key=lambda item: item[1].estimate.c_exe)
    else:
        ranked.sort(key=lambda item: -item[1].estimate.score)
    return HardwareSearchResult(best=ranked[0][1], ranking=tuple(ranked))
