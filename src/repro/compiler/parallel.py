"""Parallel whole-network scheduling over a multiprocessing pool.

Layer searches are embarrassingly parallel: each is a pure function of
``(layer shape, overlay config, objective)`` with no shared state.  This
module fans the *distinct* shapes of a network that are not already
cached (in memory or in the persistent store) across a
:mod:`multiprocessing` pool and merges the results back into the
:class:`~repro.compiler.cache.ScheduleCache` in deterministic
first-appearance order, so the final cache contents — and the returned
schedule list — are byte-for-byte what the sequential path produces.

Virtual-clock safety: pool workers run bare searches (no tracer, no
metrics) and return ``(schedule, steps)``; the merge replays each step
charge onto the cache's step clock in the same deterministic order, so
downstream trace timestamps do not depend on worker scheduling.

Degradation is graceful: if the platform cannot spawn processes (no
``fork``/``spawn``, sandboxed semaphores, a single-core box not worth
the fork cost) the fan-out silently becomes an in-process loop with
identical results.
"""

from __future__ import annotations

import os

from repro.compiler.cache import ScheduleCache, layer_signature
from repro.compiler.search import Schedule, ScheduleSearch
from repro.overlay.config import OverlayConfig

#: Exceptions that mean "no pool on this platform", not "bad schedule".
_POOL_ERRORS = (ImportError, OSError, PermissionError, ValueError)


def _search_worker(
    payload: tuple[object, OverlayConfig, str],
) -> tuple[Schedule, int]:
    """Top-level (picklable) pool target: one bare layer search."""
    layer, config, objective = payload
    search = ScheduleSearch(layer, config, objective=objective, top_k=1)
    return search.run()[0], search.steps


def default_workers() -> int:
    """Pool size when the caller does not pin one."""
    return max(1, os.cpu_count() or 1)


def _fan_out(
    payloads: list[tuple[object, OverlayConfig, str]],
    max_workers: int,
) -> list[tuple[Schedule, int]]:
    """Map the searches over a pool, or in-process when pooling fails.

    Search errors (e.g. an infeasible layer) propagate exactly as the
    sequential path raises them.
    """
    if max_workers <= 1 or len(payloads) <= 1:
        return [_search_worker(p) for p in payloads]
    try:
        import multiprocessing

        context = multiprocessing.get_context()
        with context.Pool(processes=min(max_workers, len(payloads))) as pool:
            # Ordered map: result i belongs to payload i regardless of
            # which worker finished first — the deterministic merge.
            return pool.map(_search_worker, payloads, chunksize=1)
    except _POOL_ERRORS:
        return [_search_worker(p) for p in payloads]


def parallel_schedule_network(
    network,
    config: OverlayConfig,
    objective: str = "performance",
    cache: ScheduleCache | None = None,
    max_workers: int | None = None,
) -> list[Schedule]:
    """Best schedule per accelerated layer, searched in parallel.

    Byte-for-byte identical to
    :func:`repro.compiler.search.schedule_network`: distinct shapes not
    already cached are searched concurrently, adopted into the cache in
    first-appearance order, then the ordinary cache path materializes
    the per-layer list (so name rebinding, stats, and store write-back
    all flow through the same code).

    Raises:
        ScheduleError: if any layer has no feasible mapping on ``config``.
    """
    if cache is None:
        cache = ScheduleCache(config, objective=objective)
    if max_workers is None:
        max_workers = default_workers()

    pending: list = []
    seen: set[tuple] = set()
    for layer in network.accelerated_layers():
        signature = layer_signature(layer)
        if signature in seen or cache.cached(layer):
            continue
        seen.add(signature)
        if cache.store is not None and cache.load_persistent(layer):
            continue
        pending.append(layer)

    payloads = [(layer, cache.config, cache.objective) for layer in pending]
    for layer, (schedule, steps) in zip(pending, _fan_out(payloads, max_workers)):
        cache.adopt(layer, schedule, steps=steps)

    return [cache.schedule(layer) for layer in network.accelerated_layers()]
