"""Adjacency matrices for workload mapping (paper §IV-C1, Fig. 5).

``A[level][loop]`` says whether workload loop ``loop`` may take a trip
count > 1 at hardware level ``level``.  The structural rules, from the
hardware semantics of §III:

* ``D1`` — the TPE chain of a SuperBlock accumulates compulsorily over the
  DSP cascade, so only *reduction* loops may live there.
* ``D2`` — SuperBlock columns in a row receive identical ActBUS data but
  hold different weights, so only loops that index weights *without*
  touching the activations qualify (CONV ``M``; MM ``N``).
* ``D3`` — rows are independent, any loop qualifies; mapping a reduction
  loop leaves partial sums in different rows that a host EWOP must add
  (the ``*`` footnote of Fig. 5).
* ``X`` — outermost temporal loop, unrestricted.
* ``L`` — ActBUF reloads while PSumBUF persists, so L must advance the
  activations without abandoning the held partial sums: reduction loops
  (CONV ``N``/``R``/``S``, MM ``M``) and, for MM, the batch loop ``P``
  (fresh activations, disjoint PSumBUF addresses) — exactly Fig. 5's rows.
* ``T`` — innermost temporal loop, unrestricted.

The paper's Fig. 5 prints the K=3 MM matrix and the (M, N, W) slice of the
CONV matrix; the full K=6 CONV matrix here extends the same rules to
``H``/``R``/``S`` and agrees with every printed entry.
"""

from __future__ import annotations

from repro.errors import MappingError
from repro.workloads.layers import ConvLayer, MatMulLayer

#: A[level][loop] for the 6-loop CONV nest (M, N, H, W, R, S).
_CONV_ADJACENCY: dict[str, dict[str, int]] = {
    "D1": {"M": 0, "N": 1, "H": 0, "W": 0, "R": 1, "S": 1},
    "D2": {"M": 1, "N": 0, "H": 0, "W": 0, "R": 0, "S": 0},
    "D3": {"M": 1, "N": 1, "H": 1, "W": 1, "R": 1, "S": 1},
    "X":  {"M": 1, "N": 1, "H": 1, "W": 1, "R": 1, "S": 1},
    "L":  {"M": 0, "N": 1, "H": 0, "W": 0, "R": 1, "S": 1},
    "T":  {"M": 1, "N": 1, "H": 1, "W": 1, "R": 1, "S": 1},
}

#: A[level][loop] for the 3-loop MM nest (paper notation: M = input
#: features / reduction, N = output features, P = batch).
_MM_ADJACENCY: dict[str, dict[str, int]] = {
    "D1": {"M": 1, "N": 0, "P": 0},
    "D2": {"M": 0, "N": 1, "P": 0},
    "D3": {"M": 1, "N": 1, "P": 1},
    "X":  {"M": 1, "N": 1, "P": 1},
    "L":  {"M": 1, "N": 0, "P": 1},
    "T":  {"M": 1, "N": 1, "P": 1},
}


def adjacency_matrix(layer: ConvLayer | MatMulLayer) -> dict[str, dict[str, int]]:
    """Return the adjacency matrix for ``layer``'s workload type.

    Grouped convolutions lose the ``M -> D2`` edge: with groups the output
    channel also selects the input-channel group, so SIMD columns holding
    different ``M`` slices would need *different* ActBUS data — exactly
    what ``D2`` forbids.  (This is why depthwise layers map poorly to
    weight-reuse overlays; the MobileNet extension bench measures it.)
    """
    if isinstance(layer, ConvLayer):
        matrix = {level: dict(loops) for level, loops in _CONV_ADJACENCY.items()}
        if layer.groups > 1:
            matrix["D2"]["M"] = 0
        return matrix
    if isinstance(layer, MatMulLayer):
        return {level: dict(loops) for level, loops in _MM_ADJACENCY.items()}
    raise MappingError(f"no adjacency matrix for layer kind {layer.kind}")


def needs_ewop_reduction(layer: ConvLayer | MatMulLayer, trips_d3: dict[str, int]) -> bool:
    """True if the ``D3`` mapping splits a reduction loop across rows.

    In that case each row produces a partial result for the same output
    element and the host CPU must add them (Fig. 5's ``*`` entries).
    """
    reduction_names = {d.name for d in layer.loop_dims() if d.reduction}
    return any(
        trip > 1 and name in reduction_names
        for name, trip in trips_d3.items()
    )
