"""Analytical performance model (paper §IV-B, Eqns 7-9, 12-13).

Prices one candidate mapping in CLK_h cycles along every potential
bottleneck — computation, ActBUS, PSumBUS, DRAM read, DRAM write — plus
the WBUF efficiency.  The execution time is the max of the five (Eqn 12)
because double-buffering overlaps communication with computation; the
ablation ``double_buffer=False`` serializes them instead.

Note on Eqn 13: the paper prints ``Score = C_exe / C_exe_min + E_WBUF``
under a *max* objective, which would reward slow schedules; we use the
evidently intended normalization ``C_exe_min / C_exe + E_WBUF`` so both
terms live in (0, 1] and larger is better (this matches the Fig. 7(b)
behaviour: near-peak performance at E_WBUF ≈ 1).

Two refinements the paper leaves implicit:

* **Weight streaming.**  A full network's weights exceed the aggregate
  WBUF of one device (GoogLeNet: 13.7 MB vs 2.4 MB on the vu125), so each
  layer's weights stream from DRAM, overlapped with computation like every
  other transfer.  The streamed volume is the *stored* volume — duplicated
  weights (low ``E_WBUF``) cost real bandwidth, which is exactly why
  Objective 2 matters at network scale.
* **Double-pump weight reuse.**  CLK_h runs at twice the BRAM clock, so a
  schedule must reuse each weight on two consecutive MACCs.  If the LoopT
  tile iterates weight-indexing loops only (e.g. a batch-1 MM), the DSP
  stalls every other cycle and the compute term doubles.
"""

from __future__ import annotations

from dataclasses import dataclass
from math import prod

from repro.compiler.adjacency import needs_ewop_reduction
from repro.compiler.mapping import MappingVectors, SPATIAL_LEVELS, TEMPORAL_LEVELS
from repro.overlay.config import OverlayConfig
from repro.units import ceil_div
from repro.workloads.layers import ConvLayer, MatMulLayer

AcceleratedLayer = ConvLayer | MatMulLayer


@dataclass(frozen=True)
class PerformanceEstimate:
    """All analytical quantities for one (layer, config, mapping) triple.

    Cycle counts are in CLK_h cycles.
    """

    c_comp: int
    c_actbus: int
    c_psumbus: int
    c_dram_rd: int
    c_dram_wr: int
    e_wbuf: float
    #: True when the LoopT tile cannot reuse each weight on two consecutive
    #: cycles, halving the double-pumped MACC rate (already in ``c_comp``).
    weight_stalled: bool
    #: Per-TPE words the schedule needs in each buffer.
    actbuf_words: int
    wbuf_words: int
    #: Per-SuperBlock partial-sum tile words.
    psumbuf_words: int
    #: True if a host EWOP must add partial results across D3 rows.
    ewop_accumulate: bool
    #: True MACCs of the layer (excluding padding).
    useful_maccs: int
    #: MACC slots offered: n_tpe * C_exe.
    n_tpe: int
    #: Theoretical minimum cycles on this hardware (ceil(maccs / n_tpe)).
    c_exe_min: int
    #: Whether comm/comp overlap (Eqn 12 max) or serialize (ablation).
    double_buffer: bool

    # ------------------------------------------------------------------ #
    @property
    def c_exe(self) -> int:
        """Overall execution time in cycles (Eqn 12)."""
        terms = (
            self.c_comp, self.c_actbus, self.c_psumbus,
            self.c_dram_rd, self.c_dram_wr,
        )
        return max(terms) if self.double_buffer else sum(terms)

    @property
    def bottleneck(self) -> str:
        """Which term of Eqn 12 binds."""
        named = {
            "compute": self.c_comp,
            "actbus": self.c_actbus,
            "psumbus": self.c_psumbus,
            "dram_rd": self.c_dram_rd,
            "dram_wr": self.c_dram_wr,
        }
        return max(named, key=named.get)  # type: ignore[arg-type]

    @property
    def hardware_efficiency(self) -> float:
        """Useful MACCs over offered MACC slots — the paper's headline
        per-layer metric."""
        return self.useful_maccs / (self.n_tpe * self.c_exe)

    @property
    def score(self) -> float:
        """Objective 2 balance score (corrected Eqn 13)."""
        return self.c_exe_min / self.c_exe + self.e_wbuf

    def gops_at(self, clk_h_mhz: float) -> float:
        """Attained throughput at a clock, in GOPS."""
        seconds = self.c_exe / (clk_h_mhz * 1e6)
        return 2.0 * self.useful_maccs / seconds / 1e9


@dataclass(frozen=True)
class AbftOverhead:
    """ABFT checksum work for one layer, priced in MACCs.

    Protecting a layer adds one checksum row and one checksum column to
    every GEMM the layer lowers to (one per channel group for CONV), so
    the extra work is exactly

    ``checksum_maccs = Σ_groups K·(rows + cols + 1)``

    where ``K`` is the reduction length and ``rows × cols`` the data
    output of one group's GEMM.  Relative to the data work ``rows·K·cols``
    that is exactly ``1/rows + 1/cols + 1/(rows·cols)`` — the paper-style
    intuition "one extra output row and column".  The functional ABFT
    kernels (:mod:`repro.integrity.abft`) count the same quantity from
    the arrays they actually compute, and the two must agree exactly.

    When the schedule protects each *tile* independently (checksums
    re-encoded per LoopX pass instead of once per layer), the rows/cols
    shrink to the tile's and the overhead grows to ``tile_bound`` — with
    output rows spread over TD1·TD2-style spatial tiles this is the
    ``≲ 1/TD1 + 1/TD2`` bound.

    Attributes:
        base_maccs: Unprotected data work of the layer.
        checksum_maccs: Extra MACCs for checksum rows/columns and the
            cross-check term.
        out_rows / out_cols: Data GEMM output shape (per channel group).
        tile_rows / tile_cols: Output tile shape under the given
            mapping (equal to ``out_rows``/``out_cols`` when the whole
            layer is encoded at once).
    """

    base_maccs: int
    checksum_maccs: int
    out_rows: int
    out_cols: int
    tile_rows: int
    tile_cols: int

    @property
    def overhead_fraction(self) -> float:
        """Layer-level checksum work over data work — exactly
        ``1/rows + 1/cols + 1/(rows·cols)``."""
        return self.checksum_maccs / self.base_maccs

    @property
    def tile_bound(self) -> float:
        """Overhead fraction when every output tile is independently
        encoded — the worst case a tiled schedule pays."""
        return (
            1.0 / self.tile_rows + 1.0 / self.tile_cols
            + 1.0 / (self.tile_rows * self.tile_cols)
        )

    @property
    def protected_maccs(self) -> int:
        """Total work of the ABFT-protected layer."""
        return self.base_maccs + self.checksum_maccs

    @property
    def throughput_factor(self) -> float:
        """Attainable fraction of unprotected throughput when the
        checksum work rides the same compute-bound datapath."""
        return self.base_maccs / self.protected_maccs


def abft_overhead(
    layer: AcceleratedLayer,
    mapping: MappingVectors | None = None,
) -> AbftOverhead:
    """Price the ABFT checksum work for ``layer``.

    Without a ``mapping`` the layer is encoded once (what
    :func:`repro.integrity.abft.abft_layer_output` measures).  With one,
    ``tile_rows``/``tile_cols`` reflect the output tile a single LoopX
    pass produces — spatial and temporal levels included, ``X`` excluded
    — capping the per-tile encoding overhead via ``tile_bound``.
    """
    tile: dict[str, int] | None = None
    if mapping is not None:
        tile = mapping.tile(("D3", "D2", "D1", "L", "T"))
    if isinstance(layer, MatMulLayer):
        rows, cols = layer.out_features, layer.batch
        reduction = layer.in_features
        groups = 1
    elif isinstance(layer, ConvLayer):
        rows, cols = layer.group_out_channels, layer.out_h * layer.out_w
        reduction = layer.group_in_channels * layer.kernel_h * layer.kernel_w
        groups = layer.groups
    else:
        raise TypeError(f"no ABFT cost model for layer kind {layer.kind}")
    tile_rows, tile_cols = rows, cols
    if tile is not None:
        if isinstance(layer, MatMulLayer):
            tile_rows = min(rows, tile["N"])
            tile_cols = min(cols, tile["P"])
        else:
            tile_rows = min(rows, tile["M"])
            tile_cols = min(cols, tile["H"] * tile["W"])
    return AbftOverhead(
        base_maccs=groups * rows * reduction * cols,
        checksum_maccs=groups * reduction * (rows + cols + 1),
        out_rows=rows,
        out_cols=cols,
        tile_rows=tile_rows,
        tile_cols=tile_cols,
    )


def evaluate_mapping(
    layer: AcceleratedLayer,
    config: OverlayConfig,
    mapping: MappingVectors,
) -> PerformanceEstimate:
    """Price ``mapping`` for ``layer`` on ``config`` (Eqns 7-9).

    The mapping is not checked for feasibility here; run
    :func:`repro.compiler.constraints.check_constraints` first when the
    mapping comes from outside the scheduler.
    """
    x, l_trips, t_trips = mapping.x, mapping.l, mapping.t

    # --- Eqn 7: computation time ------------------------------------- #
    # Double-pump needs >= 2 consecutive MACCs per weight word; a LoopT
    # tile without a non-weight loop cannot provide them.
    t_tile = mapping.tile(("T",))
    non_weight_reuse = prod(
        t_tile[d.name] for d in layer.loop_dims() if not d.in_weights
    )
    weight_stalled = config.double_pump and non_weight_reuse < 2
    stall = 2 if weight_stalled else 1
    c_comp = x * (l_trips * t_trips * stall + config.pipeline_latency)

    # --- buffer tiles -------------------------------------------------- #
    # ActBUF holds one LoopT tile per TPE.
    actbuf_words = layer.act_footprint(t_tile)
    # WBUF holds one LoopX pass's weight slice; slices swap across passes
    # and the layer's full per-TPE slice streams from DRAM once.
    wbuf_words = layer.weight_footprint(mapping.tile(("L", "T")))
    wbuf_stream_words = layer.weight_footprint(mapping.tile(TEMPORAL_LEVELS))
    # PSumBUF holds the outputs accumulated across one LoopX iteration.
    psumbuf_words = layer.out_footprint(mapping.tile(("T", "L")))

    # --- Eqn 8: ActBUS ------------------------------------------------- #
    # One row broadcast serves all D2 columns; the D1 TPEs of a SuperBlock
    # need distinct reduction slices, so the row tile spans T and D1.
    f_act_row = layer.act_footprint(mapping.tile(("T", "D1")))
    c_actbus = int(-(-x * l_trips * f_act_row // config.actbus_wpc))

    # --- Eqn 9: PSumBUS ------------------------------------------------ #
    reduction_names = {d.name for d in layer.loop_dims() if d.reduction}
    x_maps_reduction = any(
        mapping.trips["X"][name] > 1 for name in reduction_names
    )
    # Accumulating across LoopX passes re-fetches the tile before storing.
    psum_round_trips = 2 if x_maps_reduction else 1
    used_d3 = mapping.level_product("D3")
    used_d2 = mapping.level_product("D2")
    psum_volume_per_column = x * used_d3 * psumbuf_words * psum_round_trips
    c_psumbus = int(-(-psum_volume_per_column // config.psumbus_words_per_cycle))

    # --- DRAM ----------------------------------------------------------- #
    # Activations: rows mapping different activation slices each need their
    # own data, captured by the combined (T, D1, D3) tile footprint.
    f_act_dram = layer.act_footprint(mapping.tile(("T", "D1", "D3")))
    act_read_words = x * l_trips * f_act_dram
    psum_total = x * used_d2 * used_d3 * psumbuf_words
    psum_reread_words = psum_total * (psum_round_trips - 1)
    # Weight streaming: every stored (possibly duplicated) weight word
    # crosses the DRAM interface once per layer execution — unless the
    # config declares the weights resident (§III-A1 preload).
    stored_words = mapping.used_tpes() * wbuf_stream_words
    streamed_words = 0 if config.weights_resident else stored_words
    read_words = act_read_words + psum_reread_words + streamed_words
    c_dram_rd = int(-(-read_words // config.dram_rd_words_per_cycle()))
    c_dram_wr = int(-(-psum_total // config.dram_wr_words_per_cycle()))

    # --- WBUF efficiency ------------------------------------------------ #
    e_wbuf = layer.weight_words / stored_words if stored_words else 0.0

    return PerformanceEstimate(
        c_comp=c_comp,
        c_actbus=c_actbus,
        c_psumbus=c_psumbus,
        c_dram_rd=c_dram_rd,
        c_dram_wr=c_dram_wr,
        e_wbuf=min(e_wbuf, 1.0),
        weight_stalled=weight_stalled,
        actbuf_words=actbuf_words,
        wbuf_words=wbuf_words,
        psumbuf_words=psumbuf_words,
        ewop_accumulate=needs_ewop_reduction(layer, mapping.trips["D3"]),
        useful_maccs=layer.maccs,
        n_tpe=config.n_tpe,
        c_exe_min=max(1, ceil_div(layer.maccs, config.n_tpe)),
        double_buffer=config.double_buffer,
    )
