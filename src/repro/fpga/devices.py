"""Column-level FPGA device floorplans.

Modern Xilinx fabrics are *tiled*: primitives live in homogeneous vertical
columns that repeat horizontally (… CLB CLB BRAM CLB DSP CLB …).  FTDL's whole
argument is that an overlay whose unit cell matches this column structure
places predictably, so the device model here keeps exactly the information
that argument needs:

* which fabric columns hold DSPs, BRAM18s, and CLBs, and at what x position;
* how many sites each column holds vertically;
* the physical pitch between columns and between vertical sites, so the
  timing model can convert placement distances into net delays.

The floorplans are simplified relative to real parts (one monolithic column
instead of per-clock-region segments) but keep the real column counts,
primitive totals, and DSP:BRAM adjacency that the paper's Fig. 6 depends on.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import DeviceError
from repro.fpga.primitives import (
    BRAM18_7SERIES,
    BRAM18_ULTRASCALE,
    CLB_7SERIES,
    CLB_ULTRASCALE,
    DSP48E1,
    DSP48E2,
    PrimitiveKind,
    PrimitiveSpec,
)


@dataclass(frozen=True)
class FabricColumn:
    """One vertical column of identical primitive sites.

    Attributes:
        index: X position of the column in fabric-column units.
        kind: Primitive class of every site in this column.
        n_sites: Number of primitive sites stacked vertically.
    """

    index: int
    kind: PrimitiveKind
    n_sites: int


@dataclass(frozen=True)
class Device:
    """A column-level floorplan of one FPGA part.

    Attributes:
        name: Part name, e.g. ``"vu125"``.
        family: Fabric family, e.g. ``"ultrascale"``.
        dsp: Timing spec of the DSP primitive on this part.
        bram: Timing spec of the BRAM18 primitive.
        clb: Timing spec of the CLB.
        columns: All fabric columns, ordered by x index.
        column_pitch_ns: Signal propagation delay across one fabric-column
            pitch on general routing (ns).
        site_pitch_ns: Propagation delay across one vertical site pitch (ns).
        route_base_ns: Fixed cost of entering general routing (switchbox
            hops) that every non-dedicated net pays regardless of length.
        n_clb_total: Total CLBs available (for resource accounting of
            distributed RAM and control logic).
    """

    name: str
    family: str
    dsp: PrimitiveSpec
    bram: PrimitiveSpec
    clb: PrimitiveSpec
    columns: tuple[FabricColumn, ...]
    column_pitch_ns: float
    site_pitch_ns: float
    route_base_ns: float
    n_clb_total: int

    # ------------------------------------------------------------------ #
    # column queries
    # ------------------------------------------------------------------ #
    def columns_of(self, kind: PrimitiveKind) -> list[FabricColumn]:
        """Return all columns of one primitive kind, ordered by x index."""
        return [c for c in self.columns if c.kind == kind]

    @property
    def dsp_columns(self) -> list[FabricColumn]:
        return self.columns_of(PrimitiveKind.DSP)

    @property
    def bram_columns(self) -> list[FabricColumn]:
        return self.columns_of(PrimitiveKind.BRAM)

    @property
    def n_dsp_total(self) -> int:
        return sum(c.n_sites for c in self.dsp_columns)

    @property
    def n_bram18_total(self) -> int:
        return sum(c.n_sites for c in self.bram_columns)

    @property
    def dsps_per_column(self) -> int:
        """Sites in the tallest DSP column (all columns are equal height)."""
        return max(c.n_sites for c in self.dsp_columns)

    def nearest_bram_column(self, dsp_column: FabricColumn) -> FabricColumn:
        """Return the BRAM column closest to ``dsp_column`` in x."""
        brams = self.bram_columns
        if not brams:
            raise DeviceError(f"device {self.name} has no BRAM columns")
        return min(brams, key=lambda c: abs(c.index - dsp_column.index))

    def dsp_bram_spacing(self, dsp_column: FabricColumn) -> int:
        """Column distance from a DSP column to its nearest BRAM column."""
        return abs(self.nearest_bram_column(dsp_column).index - dsp_column.index)

    def validate(self) -> None:
        """Raise :class:`DeviceError` if the floorplan is inconsistent."""
        if not self.dsp_columns:
            raise DeviceError(f"device {self.name} has no DSP columns")
        if not self.bram_columns:
            raise DeviceError(f"device {self.name} has no BRAM columns")
        indices = [c.index for c in self.columns]
        if len(set(indices)) != len(indices):
            raise DeviceError(f"device {self.name} has duplicate column indices")
        if sorted(indices) != indices:
            raise DeviceError(f"device {self.name} columns are not x-ordered")
        for col in self.columns:
            if col.n_sites <= 0:
                raise DeviceError(
                    f"device {self.name} column {col.index} has no sites"
                )


def _build_columns(
    n_groups: int,
    dsps_per_column: int,
    brams_per_column: int,
    clbs_per_column: int,
    extra_bram_groups: int = 0,
) -> tuple[FabricColumn, ...]:
    """Build a repeating ``CLB CLB BRAM CLB DSP CLB`` fabric pattern.

    Each group contributes one DSP column with a BRAM column two fabric
    columns away — the local pairing a TPE exploits.  ``extra_bram_groups``
    appends BRAM-only groups to model parts whose BRAM count exceeds their
    DSP count (e.g. the vu125's 2520 BRAM18 vs 1200 DSP).
    """
    columns: list[FabricColumn] = []
    x = 0
    for _ in range(n_groups):
        for kind, sites in (
            (PrimitiveKind.CLB, clbs_per_column),
            (PrimitiveKind.CLB, clbs_per_column),
            (PrimitiveKind.BRAM, brams_per_column),
            (PrimitiveKind.CLB, clbs_per_column),
            (PrimitiveKind.DSP, dsps_per_column),
            (PrimitiveKind.CLB, clbs_per_column),
        ):
            columns.append(FabricColumn(index=x, kind=kind, n_sites=sites))
            x += 1
    for _ in range(extra_bram_groups):
        for kind, sites in (
            (PrimitiveKind.CLB, clbs_per_column),
            (PrimitiveKind.BRAM, brams_per_column),
            (PrimitiveKind.CLB, clbs_per_column),
        ):
            columns.append(FabricColumn(index=x, kind=kind, n_sites=sites))
            x += 1
    return tuple(columns)


def _make_device(
    name: str,
    family: str,
    n_dsp_columns: int,
    dsps_per_column: int,
    extra_bram_groups: int,
    n_clb_total: int,
) -> Device:
    if family == "7series":
        dsp, bram, clb = DSP48E1, BRAM18_7SERIES, CLB_7SERIES
        column_pitch_ns, site_pitch_ns, route_base_ns = 0.070, 0.014, 0.54
    elif family == "ultrascale":
        dsp, bram, clb = DSP48E2, BRAM18_ULTRASCALE, CLB_ULTRASCALE
        column_pitch_ns, site_pitch_ns, route_base_ns = 0.060, 0.012, 0.48
    else:
        raise DeviceError(f"unknown family {family!r}")
    device = Device(
        name=name,
        family=family,
        dsp=dsp,
        bram=bram,
        clb=clb,
        columns=_build_columns(
            n_groups=n_dsp_columns,
            dsps_per_column=dsps_per_column,
            brams_per_column=dsps_per_column,
            clbs_per_column=dsps_per_column * 2,
            extra_bram_groups=extra_bram_groups,
        ),
        column_pitch_ns=column_pitch_ns,
        site_pitch_ns=site_pitch_ns,
        route_base_ns=route_base_ns,
        n_clb_total=n_clb_total,
    )
    device.validate()
    return device


# Device catalogue.  DSP totals and column heights follow the real parts
# within the single-column simplification; the two paper devices come first.
_CATALOGUE: dict[str, Device] = {}

for _spec in (
    # name, family, dsp_cols, dsp/col, extra bram groups, clbs
    ("7vx330t", "7series", 7, 160, 2, 51000),
    ("vu125", "ultrascale", 5, 240, 5, 71000),
    ("7vx690t", "7series", 20, 180, 0, 108300),
    ("vu9p", "ultrascale", 28, 240, 8, 147000),
    ("zu7ev", "ultrascale", 9, 192, 0, 28800),
):
    _CATALOGUE[_spec[0]] = _make_device(*_spec)


def get_device(name: str) -> Device:
    """Return the catalogued :class:`Device` called ``name``.

    Raises:
        DeviceError: if the part is not in the catalogue.
    """
    try:
        return _CATALOGUE[name]
    except KeyError:
        known = ", ".join(sorted(_CATALOGUE))
        raise DeviceError(f"unknown device {name!r}; known devices: {known}") from None


def list_devices() -> list[str]:
    """Return the names of all catalogued devices."""
    return sorted(_CATALOGUE)
