"""FPGA primitive specifications.

The timing numbers are taken from (or calibrated to) the Xilinx switching
characteristics data sheets the paper cites: DSP and CLB primitives are
capable of roughly 740 MHz on the fastest speed grades, BRAM of roughly
528 MHz (DS923 for Virtex-7; the UltraScale DS892 numbers are similar for
the grades used in the paper's evaluation).

A :class:`PrimitiveSpec` carries the per-primitive timing arcs the
:mod:`repro.fpga.timing` model needs: clock-to-out, setup, and the maximum
toggle frequency, plus per-access dynamic energy used by :mod:`repro.power`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class PrimitiveKind(enum.Enum):
    """The three primitive classes a TPE is built from."""

    DSP = "dsp"
    BRAM = "bram"
    CLB = "clb"


@dataclass(frozen=True)
class PrimitiveSpec:
    """Static timing and energy characteristics of one FPGA primitive.

    Attributes:
        name: Vendor primitive name (e.g. ``DSP48E2``).
        kind: Primitive class.
        fmax_mhz: Maximum toggle frequency of the fully pipelined primitive.
        clk_to_out_ns: Clock-to-output delay of the primitive's registers.
        setup_ns: Setup time of the primitive's input registers.
        cascade_delay_ns: Delay of the dedicated cascade interconnect to the
            next primitive in the same column (0 if the primitive has none).
        energy_per_op_pj: Dynamic energy per active cycle (pJ), used by the
            power model.
    """

    name: str
    kind: PrimitiveKind
    fmax_mhz: float
    clk_to_out_ns: float
    setup_ns: float
    cascade_delay_ns: float
    energy_per_op_pj: float

    def min_period_ns(self) -> float:
        """Minimum clock period this primitive supports, in ns."""
        return 1e3 / self.fmax_mhz


# Virtex-7, fastest speed grade (-3): the family evaluated in Fig. 6(a).
# 700 MHz DSP fmax models the -2 grade used for the 7vx330t board builds,
# which is why Fig. 6(a) plateaus near 620-650 MHz while Fig. 6(b)
# (UltraScale, 740 MHz grade) plateaus above 650 MHz.
DSP48E1 = PrimitiveSpec(
    name="DSP48E1",
    kind=PrimitiveKind.DSP,
    fmax_mhz=700.0,
    clk_to_out_ns=0.39,
    setup_ns=0.21,
    cascade_delay_ns=0.25,
    energy_per_op_pj=20.0,
)

DSP48E2 = PrimitiveSpec(
    name="DSP48E2",
    kind=PrimitiveKind.DSP,
    fmax_mhz=740.0,
    clk_to_out_ns=0.35,
    setup_ns=0.19,
    cascade_delay_ns=0.22,
    energy_per_op_pj=18.0,
)

BRAM18_7SERIES = PrimitiveSpec(
    name="RAMB18E1",
    kind=PrimitiveKind.BRAM,
    fmax_mhz=501.0,
    clk_to_out_ns=0.68,
    setup_ns=0.35,
    cascade_delay_ns=0.0,
    energy_per_op_pj=25.0,
)

BRAM18_ULTRASCALE = PrimitiveSpec(
    name="RAMB18E2",
    kind=PrimitiveKind.BRAM,
    fmax_mhz=528.0,
    clk_to_out_ns=0.62,
    setup_ns=0.32,
    cascade_delay_ns=0.0,
    energy_per_op_pj=23.0,
)

CLB_7SERIES = PrimitiveSpec(
    name="CLB-7series",
    kind=PrimitiveKind.CLB,
    fmax_mhz=700.0,
    clk_to_out_ns=0.36,
    setup_ns=0.10,
    cascade_delay_ns=0.0,
    energy_per_op_pj=3.0,
)

CLB_ULTRASCALE = PrimitiveSpec(
    name="CLB-ultrascale",
    kind=PrimitiveKind.CLB,
    fmax_mhz=740.0,
    clk_to_out_ns=0.33,
    setup_ns=0.09,
    cascade_delay_ns=0.0,
    energy_per_op_pj=2.8,
)

#: Capacity of one BRAM18 primitive in 16-bit words (18 Kb, 16 data bits used).
BRAM18_WORDS = 1024

#: Capacity of the distributed RAM built from the CLBs of one TPE, in words.
#: The paper quotes 64-256 words for the ActBUF; the TPE default is 128 and
#: the exact value is an :class:`repro.overlay.OverlayConfig` parameter.
DISTRAM_WORDS_DEFAULT = 128
