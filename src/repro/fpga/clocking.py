"""Double-pump clock planning (paper §III-A2).

A TPE runs its BRAM on a slow clock ``CLK_l`` and its DSP plus distributed
RAM on a synchronized clock ``CLK_h`` at exactly twice the frequency.  Each
weight fetched from BRAM on one ``CLK_l`` edge is consumed by the DSP on two
consecutive ``CLK_h`` cycles, paired with two different activations — so the
overlay's MACC rate is set by ``CLK_h`` while the BRAM only needs to keep up
at half that rate.

:func:`plan_double_pump` computes the fastest legal pair for a device, and
is also used with ``double_pump=False`` to quantify the ablation where the
whole TPE runs at the BRAM-limited single clock.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ClockingError
from repro.fpga.devices import Device


@dataclass(frozen=True)
class ClockPlan:
    """A legal (CLK_h, CLK_l) pair for a device.

    Attributes:
        clk_h_mhz: Fast clock driving the DSP and distributed RAM.
        clk_l_mhz: Slow clock driving the BRAM.
        double_pump: Whether CLK_h = 2 x CLK_l (True) or the whole TPE runs
            on the single BRAM-limited clock (False, ablation mode).
        weight_reuse_cycles: CLK_h cycles each BRAM weight word is held for.
    """

    clk_h_mhz: float
    clk_l_mhz: float
    double_pump: bool

    @property
    def weight_reuse_cycles(self) -> int:
        return 2 if self.double_pump else 1

    def validate(self, device: Device) -> None:
        """Raise :class:`ClockingError` if this plan violates device limits."""
        if self.clk_h_mhz <= 0 or self.clk_l_mhz <= 0:
            raise ClockingError("clock frequencies must be positive")
        if self.clk_h_mhz > device.dsp.fmax_mhz:
            raise ClockingError(
                f"CLK_h {self.clk_h_mhz:.0f} MHz exceeds DSP fmax "
                f"{device.dsp.fmax_mhz:.0f} MHz on {device.name}"
            )
        if self.clk_h_mhz > device.clb.fmax_mhz:
            raise ClockingError(
                f"CLK_h {self.clk_h_mhz:.0f} MHz exceeds CLB fmax "
                f"{device.clb.fmax_mhz:.0f} MHz on {device.name}"
            )
        if self.clk_l_mhz > device.bram.fmax_mhz:
            raise ClockingError(
                f"CLK_l {self.clk_l_mhz:.0f} MHz exceeds BRAM fmax "
                f"{device.bram.fmax_mhz:.0f} MHz on {device.name}"
            )
        if self.double_pump:
            ratio = self.clk_h_mhz / self.clk_l_mhz
            if abs(ratio - 2.0) > 1e-9:
                raise ClockingError(
                    f"double-pump requires CLK_h = 2 x CLK_l, got ratio {ratio:.4f}"
                )
        elif abs(self.clk_h_mhz - self.clk_l_mhz) > 1e-9:
            raise ClockingError(
                "single-clock mode requires CLK_h == CLK_l "
                f"(got {self.clk_h_mhz} and {self.clk_l_mhz})"
            )


def plan_double_pump(
    device: Device,
    target_clk_h_mhz: float | None = None,
    double_pump: bool = True,
) -> ClockPlan:
    """Return the fastest legal :class:`ClockPlan` for ``device``.

    Args:
        device: Target device model.
        target_clk_h_mhz: Optional cap on CLK_h (e.g. the post-P&R fmax from
            :class:`repro.fpga.timing.TimingModel`).  ``None`` uses only the
            primitive datasheet limits.
        double_pump: If False, plan the single-clock ablation where the DSP
            is throttled to the BRAM fmax.

    Returns:
        The fastest legal plan at or below the requested target.
    """
    if double_pump:
        clk_h = min(device.dsp.fmax_mhz, device.clb.fmax_mhz, 2 * device.bram.fmax_mhz)
    else:
        clk_h = min(device.dsp.fmax_mhz, device.clb.fmax_mhz, device.bram.fmax_mhz)
    if target_clk_h_mhz is not None:
        if target_clk_h_mhz <= 0:
            raise ClockingError(f"target CLK_h must be positive, got {target_clk_h_mhz}")
        clk_h = min(clk_h, target_clk_h_mhz)
    clk_l = clk_h / 2 if double_pump else clk_h
    plan = ClockPlan(clk_h_mhz=clk_h, clk_l_mhz=clk_l, double_pump=double_pump)
    plan.validate(device)
    return plan
