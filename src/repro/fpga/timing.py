"""Post-place-and-route timing estimation.

Converts the net list of a :class:`repro.fpga.placement.Placement` into net
delays and a post-P&R fmax, playing the role Vivado's timing report plays in
the paper's Fig. 6.

Delay model per net::

    delay = clk_to_out(src) + route + fanout_term + setup(dst) + uncertainty
    route = (route_base + dx * column_pitch + dy * site_pitch)
            * congestion_detour * jitter

* ``route_base`` models the fixed switchbox-entry cost of general routing.
* ``congestion_detour`` grows with CLB utilization — nearly full devices
  route slightly worse.
* ``jitter`` is a deterministic ±1 % per-net factor seeded by the design
  identity, standing in for run-to-run P&R variation.
* Dedicated nets (the DSP accumulation cascade) bypass general routing and
  pay only the silicon cascade delay — the mechanism that lets FTDL chain
  TPEs without timing cost.

CLK_l-domain nets (BRAM side of a double-pumped TPE) have a two-cycle
budget relative to CLK_h, so their fmax contribution is doubled.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from math import log2

from repro.fpga.devices import Device
from repro.fpga.placement import Net, Placement
from repro.fpga.primitives import PrimitiveKind, PrimitiveSpec


#: Clock uncertainty (skew + jitter margin) applied to every path, ns.
CLOCK_UNCERTAINTY_NS = 0.10

#: Congestion detour factor: route *= 1 + alpha * clb_utilization**2.
DETOUR_ALPHA = 0.10

#: Magnitude of the deterministic per-net routing jitter (fraction).
JITTER_FRACTION = 0.01

#: Incremental delay per doubling of net fanout, ns.
FANOUT_NS = 0.06


@dataclass(frozen=True)
class PathTiming:
    """Timing of one evaluated net."""

    net: Net
    delay_ns: float
    #: Max CLK_h (MHz) this path allows, after domain budget scaling.
    clk_h_limit_mhz: float


@dataclass
class TimingReport:
    """Timing summary for one placed design.

    Attributes:
        fmax_mhz: Achievable CLK_h after P&R (MHz).
        theoretical_fmax_mhz: Datasheet DSP fmax of the device.
        critical_path: The binding :class:`PathTiming`.
        paths: All evaluated paths, worst first.
        limited_by: ``"routing"`` if a placed net binds, else the name of the
            binding primitive cap (e.g. ``"DSP48E2"``).
        double_pump: Whether CLK_l-domain nets got the two-cycle budget.
    """

    fmax_mhz: float
    theoretical_fmax_mhz: float
    critical_path: PathTiming
    paths: list[PathTiming] = field(default_factory=list)
    limited_by: str = "routing"
    double_pump: bool = True

    @property
    def fmax_fraction(self) -> float:
        """fmax as a fraction of the theoretical DSP fmax (paper's 88 %)."""
        return self.fmax_mhz / self.theoretical_fmax_mhz


class TimingModel:
    """Net-delay evaluator for placed designs.

    The model is deterministic: the same placement always yields the same
    report.  Constants are calibrated so the FTDL overlay lands in the
    620-700 MHz band of Fig. 6 while the boundary-fed systolic baseline
    degrades below 250 MHz at scale.
    """

    def __init__(self, device: Device):
        self.device = device

    # ------------------------------------------------------------------ #
    def _spec(self, kind: PrimitiveKind) -> PrimitiveSpec:
        return {
            PrimitiveKind.DSP: self.device.dsp,
            PrimitiveKind.BRAM: self.device.bram,
            PrimitiveKind.CLB: self.device.clb,
        }[kind]

    @staticmethod
    def _jitter(seed: int, net_name: str) -> float:
        """Deterministic per-net multiplicative jitter in [1-j, 1+j]."""
        digest = hashlib.sha256(f"{seed}:{net_name}".encode()).digest()
        unit = int.from_bytes(digest[:4], "big") / 0xFFFFFFFF  # [0, 1]
        return 1.0 + JITTER_FRACTION * (2.0 * unit - 1.0)

    def net_delay_ns(self, placement: Placement, net: Net) -> float:
        """Return the post-route delay of ``net`` within ``placement``."""
        src = self._spec(net.src_kind)
        dst = self._spec(net.dst_kind)
        if net.dedicated:
            route = src.cascade_delay_ns
        else:
            distance = (
                self.device.route_base_ns
                + net.dx_columns * self.device.column_pitch_ns
                + net.dy_sites * self.device.site_pitch_ns
            )
            detour = 1.0 + DETOUR_ALPHA * placement.clb_utilization**2
            route = distance * detour * self._jitter(placement.seed, net.name)
        fanout_term = FANOUT_NS * log2(net.fanout) if net.fanout > 1 else 0.0
        return (
            src.clk_to_out_ns + route + fanout_term + dst.setup_ns
            + CLOCK_UNCERTAINTY_NS
        )

    def report(self, placement: Placement, double_pump: bool = True) -> TimingReport:
        """Evaluate every net and return the achievable CLK_h.

        Args:
            placement: A placed design from :mod:`repro.fpga.placement`.
            double_pump: Give CLK_l-domain nets a two-cycle budget (the FTDL
                scheme).  With False, every net is held to one CLK_h period.
        """
        paths: list[PathTiming] = []
        for net in placement.nets:
            delay = self.net_delay_ns(placement, net)
            budget_factor = 2.0 if (double_pump and net.clock_domain == "l") else 1.0
            limit = budget_factor * 1e3 / delay
            paths.append(PathTiming(net=net, delay_ns=delay, clk_h_limit_mhz=limit))
        paths.sort(key=lambda p: p.clk_h_limit_mhz)

        # Primitive frequency caps.
        caps: list[tuple[float, str]] = [
            (self.device.dsp.fmax_mhz, self.device.dsp.name),
            (self.device.clb.fmax_mhz, self.device.clb.name),
        ]
        bram_budget = 2.0 if double_pump else 1.0
        caps.append((bram_budget * self.device.bram.fmax_mhz, self.device.bram.name))

        routing_limit = paths[0].clk_h_limit_mhz
        cap_limit, cap_name = min(caps, key=lambda c: c[0])
        if routing_limit <= cap_limit:
            fmax, limited_by = routing_limit, "routing"
        else:
            fmax, limited_by = cap_limit, cap_name

        return TimingReport(
            fmax_mhz=fmax,
            theoretical_fmax_mhz=self.device.dsp.fmax_mhz,
            critical_path=paths[0],
            paths=paths,
            limited_by=limited_by,
            double_pump=double_pump,
        )
