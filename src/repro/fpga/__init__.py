"""FPGA substrate models: primitives, device floorplans, placement, timing.

This subpackage replaces the Vivado place-and-route flow of the paper with a
column-accurate floorplan model plus a net-delay timing estimator.  It is the
substrate behind the Fig. 6 scalability experiment and the systolic-baseline
mismatch demonstration.
"""

from repro.fpga.primitives import (
    PrimitiveKind,
    PrimitiveSpec,
    DSP48E1,
    DSP48E2,
    BRAM18_7SERIES,
    BRAM18_ULTRASCALE,
    CLB_7SERIES,
    CLB_ULTRASCALE,
)
from repro.fpga.devices import Device, FabricColumn, get_device, list_devices
from repro.fpga.clocking import ClockPlan, plan_double_pump
from repro.fpga.placement import Placement, place_overlay, place_systolic
from repro.fpga.timing import TimingModel, TimingReport

__all__ = [
    "PrimitiveKind",
    "PrimitiveSpec",
    "DSP48E1",
    "DSP48E2",
    "BRAM18_7SERIES",
    "BRAM18_ULTRASCALE",
    "CLB_7SERIES",
    "CLB_ULTRASCALE",
    "Device",
    "FabricColumn",
    "get_device",
    "list_devices",
    "ClockPlan",
    "plan_double_pump",
    "Placement",
    "place_overlay",
    "place_systolic",
    "TimingModel",
    "TimingReport",
]
