"""Placement of overlay and baseline designs onto a device floorplan.

This module stands in for the Vivado placer.  It produces a
:class:`Placement`: the set of primitive sites each design element occupies
plus the *nets* connecting them, each net annotated with its Manhattan
distance in fabric units.  The :mod:`repro.fpga.timing` model turns those
distances into delays and a post-place-and-route fmax.

Two placers are provided:

* :func:`place_overlay` — the FTDL strategy.  Each TPE groups one DSP site,
  the BRAM site at the same height in the *nearest* BRAM column, and adjacent
  CLBs; inter-TPE accumulation rides the dedicated DSP cascade.  Every net's
  length is therefore independent of design scale, which is the mechanism
  behind Fig. 6's flat fmax curves.

* :func:`place_systolic` — the boundary-fed systolic baseline from the
  paper's introduction.  Activation and weight memories sit at the fabric
  edge and feed interior PEs directly, so the worst net grows with the array
  size and fmax collapses as the design scales (the *architecture-layout
  mismatch*).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field

from repro.errors import ResourceError
from repro.fpga.devices import Device
from repro.fpga.primitives import PrimitiveKind


@dataclass(frozen=True)
class Net:
    """One placed net with its routing distance.

    Attributes:
        name: Human-readable identifier of the worst instance of this net
            class (e.g. ``"wbuf_rd[col3]"``).
        src_kind: Primitive driving the net.
        dst_kind: Primitive receiving the net.
        dx_columns: Horizontal span in fabric columns.
        dy_sites: Vertical span in primitive-site units.
        clock_domain: ``"h"`` for CLK_h-budget nets, ``"l"`` for CLK_l-budget
            nets (BRAM side of a double-pumped TPE).
        dedicated: True if the net uses dedicated silicon (DSP cascade),
            which bypasses general routing entirely.
        fanout: Number of loads; high fanout adds delay unless pipelined.
    """

    name: str
    src_kind: PrimitiveKind
    dst_kind: PrimitiveKind
    dx_columns: int
    dy_sites: int
    clock_domain: str = "h"
    dedicated: bool = False
    fanout: int = 1


@dataclass
class Placement:
    """Result of placing a design: occupied sites and the net list.

    Attributes:
        device: The device the design was placed on.
        style: ``"ftdl"`` or ``"systolic"``.
        n_dsp_used: DSP sites consumed.
        n_bram_used: BRAM18 sites consumed.
        n_clb_used: CLB sites consumed (distributed RAM + control).
        nets: Worst-instance nets per net class; the timing model evaluates
            all of them.
        seed: Deterministic per-design jitter seed (models run-to-run P&R
            variation).
    """

    device: Device
    style: str
    n_dsp_used: int
    n_bram_used: int
    n_clb_used: int
    nets: list[Net] = field(default_factory=list)
    seed: int = 0

    @property
    def dsp_utilization(self) -> float:
        return self.n_dsp_used / self.device.n_dsp_total

    @property
    def bram_utilization(self) -> float:
        return self.n_bram_used / self.device.n_bram18_total

    @property
    def clb_utilization(self) -> float:
        return self.n_clb_used / self.device.n_clb_total


def _design_seed(*parts: object) -> int:
    """Deterministic 32-bit seed derived from the design identity."""
    text = "|".join(str(p) for p in parts)
    return int.from_bytes(hashlib.sha256(text.encode()).digest()[:4], "big")


#: CLBs per TPE: the 128 x 16 bit distributed-RAM ActBUF (32 LUT6s as
#: 64x1 LUTRAM = 4 CLBs), address generation, and pipeline registers.
CLBS_PER_TPE = 16

#: CLBs per SuperBlock controller (instruction decode + loop counters).
CLBS_PER_CONTROLLER = 200

#: Extra BRAM18s per SuperBlock for the partial-sum buffer.
BRAMS_PER_PSUMBUF = 2


def place_overlay(device: Device, d1: int, d2: int, d3: int) -> Placement:
    """Place a ``D1 x D2 x D3`` FTDL overlay on ``device``.

    Each of the ``d2`` SuperBlock columns occupies one DSP column, holding
    ``d1 * d3`` TPEs stacked vertically (paper §III-D constraints).

    Raises:
        ResourceError: if the overlay violates the device's column geometry
            or exhausts a primitive type.
    """
    if min(d1, d2, d3) < 1:
        raise ResourceError(f"overlay dimensions must be >= 1, got ({d1},{d2},{d3})")
    dsp_columns = device.dsp_columns
    if d2 > len(dsp_columns):
        raise ResourceError(
            f"D2={d2} exceeds the {len(dsp_columns)} DSP columns of {device.name}"
        )
    per_column = d1 * d3
    if per_column > device.dsps_per_column:
        raise ResourceError(
            f"D1*D3={per_column} exceeds the {device.dsps_per_column} DSPs per "
            f"column of {device.name}"
        )

    n_tpe = d1 * d2 * d3
    n_superblocks = d2 * d3
    n_bram = n_tpe + n_superblocks * BRAMS_PER_PSUMBUF
    if n_bram > device.n_bram18_total:
        raise ResourceError(
            f"overlay needs {n_bram} BRAM18s but {device.name} has "
            f"{device.n_bram18_total}"
        )
    n_clb = n_tpe * CLBS_PER_TPE + d3 * CLBS_PER_CONTROLLER
    if n_clb > device.n_clb_total:
        raise ResourceError(
            f"overlay needs {n_clb} CLBs but {device.name} has {device.n_clb_total}"
        )

    # The worst DSP<->BRAM pairing across the used columns.  Because pairing
    # is always to the *nearest* BRAM column, this distance is a per-device
    # constant, not a function of (d1, d2, d3).
    used_columns = dsp_columns[:d2]
    worst_spacing = max(device.dsp_bram_spacing(col) for col in used_columns)

    # Control/ActBUS hop between horizontally adjacent SuperBlocks: signals
    # are re-registered at every SuperBlock column (paper §III-C), so the
    # budget per CLK_h cycle is one inter-column hop, not the full row.
    if d2 > 1:
        hop_dx = max(
            abs(used_columns[i + 1].index - used_columns[i].index)
            for i in range(d2 - 1)
        )
    else:
        hop_dx = device.dsp_bram_spacing(used_columns[0])

    nets = [
        # Weight read: BRAM (CLK_l domain) to the DSP in the same TPE.
        Net(
            name="wbuf_rd",
            src_kind=PrimitiveKind.BRAM,
            dst_kind=PrimitiveKind.DSP,
            dx_columns=worst_spacing,
            dy_sites=0,
            clock_domain="l",
        ),
        # Activation read: distributed RAM (adjacent CLB column) to DSP.
        Net(
            name="actbuf_rd",
            src_kind=PrimitiveKind.CLB,
            dst_kind=PrimitiveKind.DSP,
            dx_columns=1,
            dy_sites=1,
        ),
        # Partial-sum accumulation between vertically adjacent TPEs: the
        # dedicated DSP cascade, zero general routing.
        Net(
            name="dsp_cascade",
            src_kind=PrimitiveKind.DSP,
            dst_kind=PrimitiveKind.DSP,
            dx_columns=0,
            dy_sites=1,
            dedicated=True,
        ),
        # SuperBlock boundary: last TPE's DSP to the PSumBUF BRAM placed at
        # the same height in the paired BRAM column.
        Net(
            name="psum_wr",
            src_kind=PrimitiveKind.DSP,
            dst_kind=PrimitiveKind.BRAM,
            dx_columns=worst_spacing,
            dy_sites=2,
        ),
        # Controller fanout inside one SuperBlock (d1 TPEs' buffer enables).
        Net(
            name="ctrl_local",
            src_kind=PrimitiveKind.CLB,
            dst_kind=PrimitiveKind.CLB,
            dx_columns=1,
            dy_sites=d1,
            fanout=d1,
        ),
        # Pipelined control/ActBUS hop to the next SuperBlock column.
        Net(
            name="row_pipeline_hop",
            src_kind=PrimitiveKind.CLB,
            dst_kind=PrimitiveKind.CLB,
            dx_columns=hop_dx,
            dy_sites=0,
        ),
    ]

    return Placement(
        device=device,
        style="ftdl",
        n_dsp_used=n_tpe,
        n_bram_used=n_bram,
        n_clb_used=n_clb,
        nets=nets,
        seed=_design_seed(device.name, "ftdl", d1, d2, d3),
    )


def place_systolic(device: Device, rows: int, cols: int) -> Placement:
    """Place a boundary-fed ``rows x cols`` systolic array on ``device``.

    PEs fill DSP columns bottom-up; activation BRAMs sit in the left-most
    BRAM column and drive each PE row directly, weight BRAMs sit at the
    bottom and drive each PE column directly.  Those boundary nets span the
    whole occupied region, so their length — and the design's critical path —
    grows with the array (the mismatch FTDL eliminates).

    Raises:
        ResourceError: if the array exceeds the device's DSPs or BRAMs.
    """
    if rows < 1 or cols < 1:
        raise ResourceError(f"array dimensions must be >= 1, got ({rows},{cols})")
    n_pe = rows * cols
    if n_pe > device.n_dsp_total:
        raise ResourceError(
            f"{n_pe} PEs exceed the {device.n_dsp_total} DSPs of {device.name}"
        )
    n_bram = rows + cols  # boundary feeders
    if n_bram > device.n_bram18_total:
        raise ResourceError(
            f"{n_bram} feeder BRAMs exceed the {device.n_bram18_total} "
            f"BRAM18s of {device.name}"
        )

    # Occupied region: PEs packed column-major into DSP columns.
    dsp_columns = device.dsp_columns
    per_column = device.dsps_per_column
    n_columns_used = -(-n_pe // per_column)
    if n_columns_used > len(dsp_columns):
        raise ResourceError(
            f"array needs {n_columns_used} DSP columns but {device.name} "
            f"has {len(dsp_columns)}"
        )
    rightmost = dsp_columns[n_columns_used - 1]
    leftmost_bram = device.bram_columns[0]
    span_x = rightmost.index - leftmost_bram.index
    span_y = min(n_pe, per_column)

    nets = [
        # Activation feed: boundary BRAM to the farthest PE in its row.
        Net(
            name="act_feed_boundary",
            src_kind=PrimitiveKind.BRAM,
            dst_kind=PrimitiveKind.DSP,
            dx_columns=span_x,
            dy_sites=span_y // 2,
            clock_domain="h",
            fanout=max(1, cols // 4),
        ),
        # Weight feed: bottom-boundary BRAM up a full occupied column.
        Net(
            name="wt_feed_boundary",
            src_kind=PrimitiveKind.BRAM,
            dst_kind=PrimitiveKind.DSP,
            dx_columns=span_x // 2,
            dy_sites=span_y,
            clock_domain="h",
        ),
        # Neighbour-to-neighbour PE links (these are fine; it is the
        # boundary feeds that break systolic designs on FPGAs).
        Net(
            name="pe_neighbour",
            src_kind=PrimitiveKind.DSP,
            dst_kind=PrimitiveKind.DSP,
            dx_columns=1,
            dy_sites=1,
        ),
    ]

    return Placement(
        device=device,
        style="systolic",
        n_dsp_used=n_pe,
        n_bram_used=n_bram,
        n_clb_used=n_pe * CLBS_PER_TPE,
        nets=nets,
        seed=_design_seed(device.name, "systolic", rows, cols),
    )
