"""CLI: SDC campaign — ABFT detection/correction under injected bit-flips.

Three linked experiments, all seeded and virtual-clock deterministic so
the output diffs against a golden file:

1. **Overhead accounting** — the compiler model's ABFT checksum-work
   term (:func:`repro.compiler.model.abft_overhead`) against the MACCs
   the functional ABFT kernels actually execute, per layer, plus the
   per-tile encoding bound under each layer's scheduled mapping on the
   chosen grid.  The two columns must agree exactly.
2. **Kernel campaign** — seeded single bit-flips into weights,
   activations, and accumulators of each layer under every integrity
   policy: detection / correction / re-execution / served-corrupt
   accounting (:func:`repro.integrity.run_sdc_campaign`).
3. **Serving integration** — one fault schedule replayed through the
   serving engine under each policy, showing how detected corruption
   moves between dropped, re-executed, and corrected-in-place, and that
   the engine's integrity counters reconcile exactly.

Examples::

    python -m repro.tools.sdc --seed 7
    python -m repro.tools.sdc --trials 500 --policies detect,detect-correct
    python -m repro.tools.sdc --grid 6,3,10 --rate 1500 --requests 300
"""

from __future__ import annotations

import argparse
import sys

from repro.compiler.model import abft_overhead
from repro.compiler.search import schedule_layer
from repro.errors import FTDLError
from repro.faults import generate_fault_schedule
from repro.integrity import (
    IntegrityPolicy,
    abft_layer_output,
    run_sdc_campaign,
)
from repro.overlay.config import OverlayConfig, PAPER_EXAMPLE_CONFIG
from repro.serving import (
    AdmissionPolicy,
    BatchPolicy,
    BatchServiceModel,
    ReplicaService,
    RetryPolicy,
    ServingEngine,
    make_requests,
    poisson_arrivals,
)
from repro.sim.functional import random_layer_operands
from repro.workloads.layers import ConvLayer, MatMulLayer
from repro.workloads.models import build_smallcnn

import numpy as np


def _campaign_layers() -> list[ConvLayer | MatMulLayer]:
    """Small CONV + MM layers that keep per-trial kernels cheap while
    covering stride, padding, groups, and batched MM."""
    return [
        ConvLayer("conv3x3", in_channels=8, out_channels=12, in_h=14,
                  in_w=14, kernel_h=3, kernel_w=3, stride=1, padding=1),
        ConvLayer("dwconv", in_channels=8, out_channels=8, in_h=10,
                  in_w=10, kernel_h=3, kernel_w=3, stride=2, padding=1,
                  groups=8),
        MatMulLayer("fc", in_features=64, out_features=24, batch=4),
    ]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.tools.sdc", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    parser.add_argument("--seed", type=int, default=0,
                        help="seed for operands, flips, arrivals, faults")
    parser.add_argument(
        "--grid", default=None, metavar="D1,D2,D3",
        help="overlay grid for the tile-bound column and the serving run "
             "(default: the paper's 12,5,20)",
    )
    parser.add_argument("--trials", type=int, default=100,
                        help="bit-flips injected per layer per policy")
    parser.add_argument(
        "--policies", default="off,detect,detect-reexecute,detect-correct",
        help="comma-separated integrity policies to exercise",
    )
    serving = parser.add_argument_group("serving integration run")
    serving.add_argument(
        "--serving-grid", default="3,2,2", metavar="D1,D2,D3",
        help="overlay grid for the serving run — small by default so "
             "service times are long enough for upsets to strike "
             "in-flight batches",
    )
    serving.add_argument("--replicas", type=int, default=2)
    serving.add_argument("--rate", type=float, default=2500.0,
                         help="offered load, requests/s")
    serving.add_argument("--requests", type=int, default=300)
    serving.add_argument("--max-batch", type=int, default=8)
    serving.add_argument("--max-wait-ms", type=float, default=2.0)
    serving.add_argument("--deadline-ms", type=float, default=40.0)
    serving.add_argument("--slo-ms", type=float, default=20.0)
    serving.add_argument("--retries", type=int, default=3)
    serving.add_argument("--tpe-fault-rate", type=float, default=30.0,
                         help="per-replica transient TPE upsets per second")
    serving.add_argument("--bitflip-rate", type=float, default=80.0,
                         help="per-replica DRAM upsets per second")
    serving.add_argument("--correctable-fraction", type=float, default=0.5)
    return parser


def _overhead_table(layers, config: OverlayConfig, seed: int) -> str:
    lines = [
        "ABFT overhead — compiler model vs measured functional kernels:",
        f"  {'layer':10s} {'data maccs':>11s} {'chk model':>10s} "
        f"{'chk meas':>9s} {'overhead':>9s} {'tile bound':>10s} "
        f"{'agree':>5s}",
    ]
    rng = np.random.default_rng(seed)
    for layer in layers:
        model = abft_overhead(layer)
        mapping = schedule_layer(layer, config).mapping
        tiled = abft_overhead(layer, mapping)
        weights, acts = random_layer_operands(layer, rng)
        measured = abft_layer_output(layer, weights, acts)
        agree = (
            model.checksum_maccs == measured.checksum_maccs
            and model.base_maccs == measured.data_maccs
        )
        lines.append(
            f"  {layer.name:10s} {model.base_maccs:11d} "
            f"{model.checksum_maccs:10d} {measured.checksum_maccs:9d} "
            f"{model.overhead_fraction:9.2%} {tiled.tile_bound:10.2%} "
            f"{'yes' if agree else 'NO':>5s}"
        )
        if not agree:
            raise FTDLError(
                f"ABFT cost model disagrees with measured kernel work on "
                f"layer {layer.name!r}"
            )
    return "\n".join(lines)


def _campaigns(layers, policies, trials: int, seed: int) -> str:
    blocks = []
    for policy in policies:
        lines = [f"kernel campaign — policy {policy.value} "
                 f"({trials} flips/layer):"]
        for layer in layers:
            report = run_sdc_campaign(
                layer, policy=policy, trials=trials, seed=seed,
            )
            lines.append(
                f"  {layer.name:10s}: {report.n_corrupting:3d} corrupting "
                f"/ {report.n_benign} benign; detected "
                f"{report.n_detected}/{report.n_corrupting} "
                f"({report.detection_rate:.0%}); corrected "
                f"{report.n_corrected}, re-executed {report.n_reexecuted}, "
                f"dropped {report.n_dropped}; served corrupt "
                f"{report.n_served_corrupt}"
            )
        blocks.append("\n".join(lines))
    return "\n\n".join(blocks)


def _parse_grid(text: str, flag: str) -> OverlayConfig:
    try:
        d1, d2, d3 = (int(x) for x in text.split(","))
    except ValueError:
        raise FTDLError(
            f"{flag} expects three integers D1,D2,D3, got {text!r}"
        ) from None
    return OverlayConfig(d1=d1, d2=d2, d3=d3)


def _serving_run(args, policies) -> str:
    config = _parse_grid(args.serving_grid, "--serving-grid")
    network = build_smallcnn()
    service = ReplicaService(
        BatchServiceModel(network, config), n_replicas=args.replicas
    )
    times = poisson_arrivals(args.rate, args.requests, seed=args.seed)
    requests_spec = (times, network.name, args.deadline_ms * 1e-3)
    faults = generate_fault_schedule(
        seed=args.seed,
        duration_s=times[-1] - times[0],
        replicas=service.replica_names(),
        grid=config,
        tpe_fault_rate_hz=args.tpe_fault_rate,
        stuck_fraction=0.0,
        bitflip_rate_hz=args.bitflip_rate,
        correctable_fraction=args.correctable_fraction,
        dram_words=network.weight_words or None,
    )
    lines = [
        f"serving integration — {network.name} on {args.replicas} "
        f"replica(s), grid {config.d1}x{config.d2}x{config.d3}; "
        f"{args.rate:g} req/s, {faults.describe()}",
        f"  {'policy':>17s} {'avail':>8s} {'p99 ms':>8s} {'drops':>6s} "
        f"{'retries':>7s} {'detected':>8s} {'corrected':>9s} "
        f"{'reexec':>6s} {'dropped':>7s}",
    ]
    for policy in policies:
        engine = ServingEngine(
            service,
            batch_policy=BatchPolicy(
                max_batch=args.max_batch,
                max_wait_s=args.max_wait_ms * 1e-3,
            ),
            admission_policy=AdmissionPolicy(),
            slo_s=args.slo_ms * 1e-3,
            fault_schedule=faults,
            retry_policy=RetryPolicy(max_attempts=args.retries),
            integrity_policy=policy,
        )
        report = engine.run(
            make_requests(requests_spec[0], requests_spec[1],
                          deadline_s=requests_spec[2])
        )
        counts = report.integrity_counts
        detected = counts.get("sdc_detected", 0)
        if detected != (counts.get("corrected", 0)
                        + counts.get("reexecuted", 0)
                        + counts.get("dropped", 0)):
            raise FTDLError(
                f"integrity counters do not reconcile under "
                f"{policy.value}: {counts}"
            )
        assert report.health is not None
        if (report.health.dram_uncorrectable
                != report.fault_counts.get("dram_uncorrectable", 0)):
            raise FTDLError(
                "health monitor SDC exposure disagrees with injected "
                "uncorrectable DRAM events"
            )
        lines.append(
            f"  {policy.value:>17s} {report.availability:8.2%} "
            f"{report.p99_s * 1e3:8.2f} {report.n_dropped:6d} "
            f"{report.n_retries:7d} {detected:8d} "
            f"{counts.get('corrected', 0):9d} "
            f"{counts.get('reexecuted', 0):6d} "
            f"{counts.get('dropped', 0):7d}"
        )
    lines.append(
        "  counters reconcile: sdc_detected == corrected + reexecuted + "
        "dropped; health SDC exposure == injected dram_uncorrectable"
    )
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        config = (
            _parse_grid(args.grid, "--grid") if args.grid
            else PAPER_EXAMPLE_CONFIG
        )
        policies = [
            IntegrityPolicy.parse(text)
            for text in args.policies.split(",") if text.strip()
        ]
        if not policies:
            raise FTDLError("no integrity policies selected")
        if args.trials < 1:
            raise FTDLError(f"--trials must be >= 1, got {args.trials}")
        layers = _campaign_layers()
        print(f"SDC campaign — grid {config.d1}x{config.d2}x{config.d3}, "
              f"seed {args.seed}, "
              f"policies {','.join(p.value for p in policies)}")
        print()
        print(_overhead_table(layers, config, args.seed))
        print()
        print(_campaigns(layers, policies, args.trials, args.seed))
        print()
        print(_serving_run(args, policies))
    except FTDLError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
