"""CLI: chaos harness — replay a seeded fault schedule through serving.

Drives one model deployment with seeded open-loop traffic *and* a
seeded fault schedule (crashes, slowdowns, DSP/BRAM tile faults, DRAM
bit-flips, link glitches), then reports the reliability metrics a
production deployment is judged by: request availability, the
SLO-violation-under-fault rate, MTTR, retry/drop accounting, and a
throughput-vs-masked-TPE-fraction degradation curve from fault-aware
recompilation.  Everything runs on the virtual clock with explicit
seeds, so a run is bit-reproducible — CI diffs this output against a
golden file.

Examples::

    python -m repro.tools.chaos --model SmallCNN --grid 3,2,2 \
        --replicas 3 --rate 600 --requests 300 --seed 7 \
        --crash-rate 4 --tpe-fault-rate 2 --bitflip-rate 10
    python -m repro.tools.chaos --model GoogLeNet --replicas 2 \
        --rate 300 --requests 200 --deadline-ms 80 --slo-ms 40
"""

from __future__ import annotations

import argparse
import sys

from repro.compiler.search import schedule_network
from repro.errors import FTDLError
from repro.faults import (
    degraded_compile,
    generate_fault_schedule,
    random_tpe_mask,
)
from repro.overlay.config import OverlayConfig, PAPER_EXAMPLE_CONFIG
from repro.serving import (
    AdmissionPolicy,
    BatchPolicy,
    BatchServiceModel,
    ReplicaService,
    RetryPolicy,
    ServingEngine,
    make_requests,
    poisson_arrivals,
)
from repro.workloads.mlperf import MLPERF_MODELS, build_model
from repro.workloads.models import build_smallcnn


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.tools.chaos", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    parser.add_argument(
        "--model", default="SmallCNN",
        choices=[*MLPERF_MODELS, "SmallCNN"],
    )
    parser.add_argument(
        "--grid", default=None, metavar="D1,D2,D3",
        help="overlay grid (default: the paper's 12,5,20)",
    )
    parser.add_argument("--replicas", type=int, default=3,
                        help="independent overlay replicas")
    parser.add_argument("--rate", type=float, default=600.0,
                        help="offered load, requests/s")
    parser.add_argument("--requests", type=int, default=300,
                        help="number of requests to serve")
    parser.add_argument("--seed", type=int, default=0,
                        help="seed for both arrivals and faults")
    parser.add_argument("--max-batch", type=int, default=8)
    parser.add_argument("--max-wait-ms", type=float, default=2.0)
    parser.add_argument("--queue-capacity", type=int, default=256)
    parser.add_argument("--slo-ms", type=float, default=50.0)
    parser.add_argument("--deadline-ms", type=float, default=None,
                        help="per-request deadline (default: none)")
    parser.add_argument("--retries", type=int, default=3,
                        help="max dispatch attempts per request")
    fault = parser.add_argument_group("fault injection (per-replica rates)")
    fault.add_argument("--crash-rate", type=float, default=2.0,
                       help="replica crashes per second")
    fault.add_argument("--mean-repair-s", type=float, default=0.05)
    fault.add_argument("--slowdown-rate", type=float, default=1.0,
                       help="throttling events per second")
    fault.add_argument("--slowdown-factor", type=float, default=2.0)
    fault.add_argument("--tpe-fault-rate", type=float, default=1.0,
                       help="DSP/BRAM tile faults per second")
    fault.add_argument("--stuck-fraction", type=float, default=0.5)
    fault.add_argument("--bitflip-rate", type=float, default=5.0,
                       help="DRAM upsets per second")
    fault.add_argument("--correctable-fraction", type=float, default=0.9)
    fault.add_argument("--link-fault-rate", type=float, default=0.5)
    curve = parser.add_argument_group("degradation curve")
    curve.add_argument(
        "--mask-fractions", default="0.05,0.1,0.2", metavar="F1,F2,...",
        help="masked-TPE fractions for the fault-aware recompilation "
             "curve ('' skips the curve)",
    )
    return parser


def _build_network(name: str):
    if name == "SmallCNN":
        return build_smallcnn()
    return build_model(name)


def _chaos_run(args, network, config: OverlayConfig) -> str:
    service = ReplicaService(
        BatchServiceModel(network, config), n_replicas=args.replicas
    )
    times = poisson_arrivals(args.rate, args.requests, seed=args.seed)
    deadline_s = (
        args.deadline_ms * 1e-3 if args.deadline_ms is not None else None
    )
    requests = make_requests(times, network.name, deadline_s=deadline_s)
    duration = times[-1] - times[0]
    faults = generate_fault_schedule(
        seed=args.seed,
        duration_s=duration,
        replicas=service.replica_names(),
        grid=config,
        crash_rate_hz=args.crash_rate,
        mean_repair_s=args.mean_repair_s,
        slowdown_rate_hz=args.slowdown_rate,
        slowdown_factor=args.slowdown_factor,
        tpe_fault_rate_hz=args.tpe_fault_rate,
        stuck_fraction=args.stuck_fraction,
        bitflip_rate_hz=args.bitflip_rate,
        correctable_fraction=args.correctable_fraction,
        link_fault_rate_hz=args.link_fault_rate,
    )
    engine = ServingEngine(
        service,
        batch_policy=BatchPolicy(
            max_batch=args.max_batch, max_wait_s=args.max_wait_ms * 1e-3
        ),
        admission_policy=AdmissionPolicy(capacity=args.queue_capacity),
        slo_s=args.slo_ms * 1e-3,
        fault_schedule=faults,
        retry_policy=RetryPolicy(max_attempts=args.retries),
    )
    report = engine.run(requests)
    lines = [
        f"fault schedule : {faults.describe()}",
        "",
        report.describe(),
        "",
        "reliability summary:",
        f"  availability          : {report.availability:.4%}",
        f"  SLO-violation-rate    : {report.slo_violation_rate:.4%} "
        f"(under fault)",
        f"  drop rate             : {report.drop_rate:.4%}",
        f"  retries               : {report.n_retries}",
    ]
    if report.health is not None:
        lines += [
            f"  MTTR                  : {report.health.mttr_s * 1e3:.3f} ms",
            f"  replica uptime        : {report.health.uptime_fraction:.4%}",
        ]
    return "\n".join(lines)


def _degradation_curve(args, network, config: OverlayConfig) -> str:
    fractions = [
        float(x) for x in args.mask_fractions.split(",") if x.strip()
    ]
    healthy_cycles = sum(
        s.cycles for s in schedule_network(network, config)
    )
    lines = [
        "degradation curve (seeded scattered stuck-at TPE masks, "
        "fault-aware recompilation):",
        f"  {'masked':>8s} {'tiles':>6s} {'grid':>10s} {'kept':>7s} "
        f"{'throughput':>11s} {'eff delta':>10s}",
    ]
    for fraction in fractions:
        mask = random_tpe_mask(config, fraction, seed=args.seed)
        result = degraded_compile(
            network, config, mask, healthy_cycles=healthy_cycles
        )
        d = result.degraded
        lines.append(
            f"  {fraction:8.1%} {result.n_masked:6d} "
            f"{f'{d.d1}x{d.d2}x{d.d3}':>10s} "
            f"{result.tpe_fraction_kept:7.1%} "
            f"{result.throughput_factor:11.1%} "
            f"{result.efficiency_delta:+10.2%}"
        )
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        if args.grid:
            try:
                d1, d2, d3 = (int(x) for x in args.grid.split(","))
            except ValueError:
                print(f"error: --grid expects three integers D1,D2,D3, "
                      f"got {args.grid!r}", file=sys.stderr)
                return 1
            config = OverlayConfig(d1=d1, d2=d2, d3=d3)
        else:
            config = PAPER_EXAMPLE_CONFIG
        network = _build_network(args.model)
        print(f"chaos run — {network.name} on {args.replicas} replica(s), "
              f"grid {config.d1}x{config.d2}x{config.d3} @ "
              f"{config.clk_h_mhz:.0f} MHz; {args.rate:g} req/s poisson, "
              f"seed {args.seed}")
        print()
        print(_chaos_run(args, network, config))
        if args.mask_fractions.strip():
            print()
            print(_degradation_curve(args, network, config))
    except FTDLError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
