"""CLI: simulated inference serving with batching and latency SLOs.

Drives one model deployment (N overlay replicas, or N replicas of a
multi-FPGA pipeline) with seeded open-loop traffic and reports
throughput, p50/p95/p99 latency, per-replica utilization, queue
behavior, and the SLO-violation rate.  Everything runs on a virtual
clock, so the run is deterministic given the seed.

Examples::

    python -m repro.tools.serve --model GoogLeNet --rate 300 \
        --requests 500 --replicas 2 --slo-ms 40
    python -m repro.tools.serve --model Sentimental-seqLSTM --rate 100 \
        --requests 200 --max-batch 16 --pipeline-devices 4
    python -m repro.tools.serve --model SmallCNN --grid 3,2,2 \
        --arrival uniform --rate 1000 --requests 300
"""

from __future__ import annotations

import argparse
import sys

from repro.errors import FTDLError
from repro.overlay.config import OverlayConfig, PAPER_EXAMPLE_CONFIG
from repro.serving import (
    AdmissionPolicy,
    BatchPolicy,
    BatchServiceModel,
    PipelineService,
    ReplicaService,
    ServingEngine,
    make_requests,
    poisson_arrivals,
    uniform_arrivals,
)
from repro.workloads.mlperf import MLPERF_MODELS, build_model
from repro.workloads.models import build_smallcnn


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.tools.serve", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    parser.add_argument(
        "--model", default="SmallCNN",
        choices=[*MLPERF_MODELS, "SmallCNN"],
    )
    parser.add_argument(
        "--grid", default=None, metavar="D1,D2,D3",
        help="overlay grid (default: the paper's 12,5,20)",
    )
    parser.add_argument("--replicas", type=int, default=1,
                        help="independent overlay replicas")
    parser.add_argument(
        "--pipeline-devices", type=int, default=0, metavar="N",
        help="partition the model across N devices per replica "
             "(0 = single-overlay replicas)",
    )
    parser.add_argument("--arrival", choices=("poisson", "uniform"),
                        default="poisson")
    parser.add_argument("--rate", type=float, default=100.0,
                        help="offered load, requests/s")
    parser.add_argument("--requests", type=int, default=200,
                        help="number of requests to serve")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--max-batch", type=int, default=8)
    parser.add_argument("--max-wait-ms", type=float, default=5.0,
                        help="batch formation deadline")
    parser.add_argument("--queue-capacity", type=int, default=256)
    parser.add_argument("--slo-ms", type=float, default=50.0,
                        help="latency objective for violation accounting")
    parser.add_argument("--cache-entries", type=int, default=None,
                        help="bound the schedule cache (LRU eviction)")
    parser.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help="persistent schedule store: cold starts load previously "
             "compiled schedules from DIR instead of re-searching",
    )
    return parser


def _build_network(name: str):
    if name == "SmallCNN":
        return build_smallcnn()
    return build_model(name)


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        if args.grid:
            try:
                d1, d2, d3 = (int(x) for x in args.grid.split(","))
            except ValueError:
                print(f"error: --grid expects three integers D1,D2,D3, "
                      f"got {args.grid!r}", file=sys.stderr)
                return 1
            config = OverlayConfig(d1=d1, d2=d2, d3=d3)
        else:
            config = PAPER_EXAMPLE_CONFIG
        network = _build_network(args.model)

        store = None
        if args.cache_dir:
            from repro.compiler.persist import PersistentScheduleStore
            store = PersistentScheduleStore(args.cache_dir)

        cache = None
        if args.pipeline_devices > 0:
            service = PipelineService(
                network, config,
                n_devices=args.pipeline_devices,
                n_replicas=args.replicas,
                store=store,
            )
            shape = (f"{args.replicas} x {service.n_devices}-device "
                     f"pipeline")
        else:
            from repro.compiler.cache import ScheduleCache
            cache = ScheduleCache(config, max_entries=args.cache_entries,
                                  store=store)
            service = ReplicaService(
                BatchServiceModel(network, config, cache=cache),
                n_replicas=args.replicas,
            )
            shape = f"{args.replicas} overlay replica(s)"

        if args.arrival == "poisson":
            times = poisson_arrivals(args.rate, args.requests,
                                     seed=args.seed)
        else:
            times = uniform_arrivals(args.rate, args.requests)
        requests = make_requests(times, network.name)

        engine = ServingEngine(
            service,
            batch_policy=BatchPolicy(
                max_batch=args.max_batch,
                max_wait_s=args.max_wait_ms * 1e-3,
            ),
            admission_policy=AdmissionPolicy(capacity=args.queue_capacity),
            slo_s=args.slo_ms * 1e-3,
        )
        print(f"{network.name} on {shape}, grid "
              f"{config.d1}x{config.d2}x{config.d3} @ "
              f"{config.clk_h_mhz:.0f} MHz; {args.arrival} traffic at "
              f"{args.rate:g} req/s (seed {args.seed})")
        report = engine.run(requests)
    except FTDLError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    print(report.describe())
    if cache is not None:
        # Richer than the report's stats line: includes the temporal
        # memo and persistent-store behavior behind the hit rate.
        print(f"  compile cache  : {cache.describe()}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
