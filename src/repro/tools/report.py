"""CLI: generate a markdown reproduction report.

Runs the fast experiments directly (device timing sweeps, Table I, a
Fig. 7 roofline) and, with ``--full``, the whole-network Table II; writes
one self-contained markdown file.

Examples::

    python -m repro.tools.report --out report.md
    python -m repro.tools.report --out report.md --full
"""

from __future__ import annotations

import argparse
import statistics
import sys

from repro.analysis.comparison import build_table2
from repro.analysis.efficiency import evaluate_network
from repro.analysis.roofline import roofline_points
from repro.compiler.search import ScheduleSearch
from repro.fpga.devices import get_device
from repro.fpga.placement import place_overlay, place_systolic
from repro.fpga.timing import TimingModel
from repro.overlay.config import PAPER_EXAMPLE_CONFIG
from repro.workloads.mlperf import build_model, table1_rows

FIG6_SWEEPS = {
    "vu125": [(12, 1, 5), (12, 1, 10), (12, 1, 20), (12, 2, 20),
              (12, 3, 20), (12, 4, 20), (12, 5, 20)],
    "7vx330t": [(10, 1, 4), (10, 1, 8), (10, 1, 16), (10, 2, 16),
                (10, 4, 16), (10, 6, 16), (10, 7, 16)],
}


def _section_table1() -> list[str]:
    lines = [
        "## Table I — benchmark characterization", "",
        "| Model | CONV % | MM % | EWOP % | Weights |",
        "|---|---|---|---|---|",
    ]
    for row in table1_rows():
        lines.append(
            f"| {row.model} | {row.conv_pct:.2f} | {row.mm_pct:.2f} | "
            f"{row.ewop_pct:.2f} | {row.format_weights()} |"
        )
    lines.append("")
    return lines


def _section_fig6() -> list[str]:
    lines = ["## Fig. 6 — fmax vs design scale", ""]
    for device_name, sweep in FIG6_SWEEPS.items():
        device = get_device(device_name)
        model = TimingModel(device)
        lines += [f"### {device_name}", "",
                  "| grid | DSPs | fmax (MHz) | % of DSP limit |",
                  "|---|---|---|---|"]
        for grid in sweep:
            report = model.report(place_overlay(device, *grid))
            lines.append(
                f"| {grid} | {grid[0] * grid[1] * grid[2]} | "
                f"{report.fmax_mhz:.0f} | {report.fmax_fraction:.1%} |"
            )
        systolic = model.report(
            place_systolic(device, 24, 24), double_pump=False
        )
        lines += ["",
                  f"Boundary-fed 576-PE systolic contrast: "
                  f"{systolic.fmax_mhz:.0f} MHz.", ""]
    return lines


def _section_fig7() -> list[str]:
    net = build_model("GoogLeNet")
    layer = next(l for l in net.accelerated_layers() if l.name == "3a.b2.3x3")
    lines = ["## Fig. 7 — schedule-space roofline (layer 3a.b2.3x3)", ""]
    for objective in ("performance", "balance"):
        schedules = ScheduleSearch(
            layer, PAPER_EXAMPLE_CONFIG, objective=objective, top_k=200
        ).run()
        points = roofline_points(schedules)
        mean_e = statistics.mean(p.e_wbuf for p in points)
        best = max(p.attained_gops for p in points)
        lines.append(
            f"* **{objective}**: top-200 solutions, best {best:.0f} GOPS "
            f"(peak {PAPER_EXAMPLE_CONFIG.peak_gops:.0f}), "
            f"mean E_WBUF {mean_e:.2f}"
        )
    lines.append("")
    return lines


def _section_table2() -> list[str]:
    results = {
        name: evaluate_network(build_model(name), PAPER_EXAMPLE_CONFIG)
        for name in ("GoogLeNet", "ResNet50")
    }
    rows = build_table2(results, get_device("vu125"))
    baseline = rows[0]
    lines = [
        "## Table II — overall performance", "",
        "| Work | MHz | HW eff | GoogLeNet FPS | ResNet50 FPS | GOPS/W |",
        "|---|---|---|---|---|---|",
    ]
    for row in rows:
        gpw = f"{row.gops_per_watt:.1f}" if row.gops_per_watt else "N/A"
        lines.append(
            f"| {row.key} {row.name} | {row.dsp_freq_mhz:.0f} | "
            f"{row.hardware_efficiency:.1%} | "
            f"{row.fps['GoogLeNet']:.1f} "
            f"({row.speedup_over(baseline, 'GoogLeNet'):.1f}x) | "
            f"{row.fps['ResNet50']:.1f} "
            f"({row.speedup_over(baseline, 'ResNet50'):.1f}x) | {gpw} |"
        )
    lines.append("")
    return lines


def generate_report(full: bool = False) -> str:
    """Assemble the markdown report text."""
    lines = [
        "# FTDL reproduction report", "",
        f"Overlay: D1={PAPER_EXAMPLE_CONFIG.d1}, "
        f"D2={PAPER_EXAMPLE_CONFIG.d2}, D3={PAPER_EXAMPLE_CONFIG.d3} "
        f"@ {PAPER_EXAMPLE_CONFIG.clk_h_mhz:.0f} MHz on the vu125; "
        f"DRAM {PAPER_EXAMPLE_CONFIG.dram_rd_gbps:.0f} GB/s.", "",
    ]
    lines += _section_table1()
    lines += _section_fig6()
    lines += _section_fig7()
    if full:
        lines += _section_table2()
    else:
        lines += ["## Table II", "",
                  "Skipped (pass `--full` to compile GoogLeNet and "
                  "ResNet50 end to end, ~2-3 minutes).", ""]
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(prog="repro.tools.report",
                                     description=__doc__)
    parser.add_argument("--out", default="ftdl_report.md")
    parser.add_argument("--full", action="store_true",
                        help="include the whole-network Table II")
    args = parser.parse_args(argv)
    text = generate_report(full=args.full)
    with open(args.out, "w") as handle:
        handle.write(text)
    print(f"wrote {args.out} ({len(text.splitlines())} lines)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
