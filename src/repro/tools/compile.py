"""CLI: compile a layer or model for an overlay configuration.

Examples::

    # one conv layer, explicit shape
    python -m repro.tools.compile --conv 64,3,224,224,7,7 --stride 2 \
        --padding 3 --grid 12,5,20

    # a named Table I model, per-layer schedule summary
    python -m repro.tools.compile --model GoogLeNet --grid 12,5,20

    # dump the winning schedule's InstBUS stream as hex
    python -m repro.tools.compile --mm 1000,1024,1 --grid 12,5,20 --dump-isa
"""

from __future__ import annotations

import argparse
import sys

from repro.compiler.cache import ScheduleCache
from repro.compiler.codegen import compile_schedule
from repro.compiler.search import schedule_layer
from repro.errors import FTDLError
from repro.overlay.config import OverlayConfig
from repro.workloads.layers import ConvLayer, MatMulLayer
from repro.workloads.mlperf import build_model


def _parse_grid(text: str) -> tuple[int, int, int]:
    parts = [int(p) for p in text.split(",")]
    if len(parts) != 3:
        raise argparse.ArgumentTypeError("grid must be D1,D2,D3")
    return tuple(parts)  # type: ignore[return-value]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.tools.compile", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    what = parser.add_mutually_exclusive_group(required=True)
    what.add_argument("--model", help="Table I model name")
    what.add_argument(
        "--conv", metavar="M,N,H,W,R,S",
        help="conv layer: out-ch, in-ch, in-h, in-w, kernel-h, kernel-w",
    )
    what.add_argument(
        "--mm", metavar="N,M,P",
        help="matmul layer: out-features, in-features, batch",
    )
    parser.add_argument("--stride", type=int, default=1)
    parser.add_argument("--padding", type=int, default=0)
    parser.add_argument("--grid", type=_parse_grid, default=(12, 5, 20),
                        help="overlay D1,D2,D3 (default: the paper's)")
    parser.add_argument("--clk", type=float, default=650.0,
                        help="CLK_h in MHz")
    parser.add_argument("--objective", choices=["performance", "balance"],
                        default="performance")
    parser.add_argument("--dump-isa", action="store_true",
                        help="print the row-0 InstBUS stream as hex")
    return parser


def _layer_from_args(args: argparse.Namespace):
    if args.conv:
        m, n, h, w, r, s = (int(x) for x in args.conv.split(","))
        return ConvLayer("cli_conv", n, m, in_h=h, in_w=w, kernel_h=r,
                         kernel_w=s, stride=args.stride, padding=args.padding)
    n, m, p = (int(x) for x in args.mm.split(","))
    return MatMulLayer("cli_mm", in_features=m, out_features=n, batch=p)


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    d1, d2, d3 = args.grid
    config = OverlayConfig(d1=d1, d2=d2, d3=d3, clk_h_mhz=args.clk)
    print(f"overlay {d1}x{d2}x{d3} @ {args.clk:.0f} MHz "
          f"({config.n_tpe} TPEs, peak {config.peak_gops:.0f} GOPS)")
    try:
        if args.model:
            net = build_model(args.model)
            cache = ScheduleCache(config, objective=args.objective)
            total = 0
            print(f"{'layer':24s} {'cycles':>11s} {'eff':>7s} {'bound':>8s} "
                  f"{'E_WBUF':>7s}")
            for layer in net.accelerated_layers():
                schedule = cache.schedule(layer)
                total += schedule.cycles
                est = schedule.estimate
                print(f"{layer.name:24s} {schedule.cycles:11,d} "
                      f"{est.hardware_efficiency:7.1%} {est.bottleneck:>8s} "
                      f"{est.e_wbuf:7.2f}")
            fps = args.clk * 1e6 / total
            eff = net.accelerated_maccs / (config.n_tpe * total)
            print(f"{'TOTAL':24s} {total:11,d}  -> {fps:.1f} FPS, "
                  f"network eff {eff:.1%}")
        else:
            layer = _layer_from_args(args)
            schedule = schedule_layer(layer, config, objective=args.objective)
            print(schedule.describe())
            est = schedule.estimate
            print(f"C_comp={est.c_comp:,} C_actbus={est.c_actbus:,} "
                  f"C_psumbus={est.c_psumbus:,} C_dram_rd={est.c_dram_rd:,} "
                  f"C_dram_wr={est.c_dram_wr:,}")
            if args.dump_isa:
                compiled = compile_schedule(schedule)
                stream = compiled.encoded()[0]
                print(f"row-0 InstBUS stream ({len(stream)} bytes):")
                for i in range(0, len(stream), 16):
                    print("  " + stream[i:i + 16].hex())
    except FTDLError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
