"""Command-line tools.

* ``python -m repro.tools.compile`` — schedule a layer or a whole model
  and dump schedules / controller instruction streams.
* ``python -m repro.tools.simulate`` — cycle-level simulation of one
  layer with bit-exact golden verification.
* ``python -m repro.tools.timing`` — post-P&R fmax report for an overlay
  (or systolic baseline) on a catalogued device.
* ``python -m repro.tools.characterize`` — the Table I characterization.
* ``python -m repro.tools.report`` — assemble a markdown reproduction
  report.
* ``python -m repro.tools.serve`` — simulated inference serving with
  dynamic batching, replica/pipeline dispatch, and latency SLO metrics.
* ``python -m repro.tools.chaos`` — chaos harness: replay a seeded fault
  schedule through the serving engine and report availability, MTTR, and
  throughput-vs-masked-TPE degradation curves.
"""
