"""CLI: fleet chaos campaign — rack-loss serving on a board fleet.

Builds a rack/board fleet serving one model, drives it with seeded
multi-tenant open-loop traffic, and replays a seeded schedule of
*correlated* failure-domain faults (rack power loss, network
partitions, correlated DRAM upsets) optionally merged with the
per-board taxonomy.  The self-healing router drains and re-admits
boards as gates close and reopen, the optional autoscaler grows and
shrinks the serving set from live gauges, and the report asserts the
per-tenant conservation identity ``offered == completed + rejected +
dropped``.  Everything runs on the virtual clock with explicit seeds,
so a campaign is bit-reproducible — CI diffs this output against a
golden file.

Examples::

    python -m repro.tools.cluster --model SmallCNN --grid 3,2,2 \
        --racks 4 --boards-per-rack 4 --rate 3000 --requests 2000 \
        --seed 7 --rack-loss-rate 2
    python -m repro.tools.cluster --model SmallCNN --grid 3,2,2 \
        --racks 2 --boards-per-rack 8 --tenants alpha:2,beta:1 \
        --autoscale --rack-loss-rate 1 --partition-rate 1
"""

from __future__ import annotations

import argparse
import sys

from repro.compiler.cache import ScheduleCache
from repro.cluster import (
    AutoscalePolicy,
    ClusterEngine,
    FleetService,
    TenantPolicy,
    build_fleet,
    generate_domain_fault_schedule,
)
from repro.errors import FTDLError
from repro.faults import FaultSchedule, generate_fault_schedule
from repro.overlay.config import OverlayConfig, PAPER_EXAMPLE_CONFIG
from repro.serving import (
    AdmissionPolicy,
    BatchPolicy,
    BatchServiceModel,
    RetryPolicy,
    make_requests,
    poisson_arrivals,
)
from repro.workloads.mlperf import MLPERF_MODELS, build_model
from repro.workloads.models import build_smallcnn


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.tools.cluster", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    parser.add_argument(
        "--model", default="SmallCNN",
        choices=[*MLPERF_MODELS, "SmallCNN"],
    )
    parser.add_argument(
        "--grid", default=None, metavar="D1,D2,D3",
        help="overlay grid (default: the paper's 12,5,20)",
    )
    fleet = parser.add_argument_group("fleet")
    fleet.add_argument("--racks", type=int, default=4)
    fleet.add_argument("--boards-per-rack", type=int, default=4)
    parser.add_argument("--rate", type=float, default=3000.0,
                        help="offered load, requests/s")
    parser.add_argument("--requests", type=int, default=2000,
                        help="number of requests to serve")
    parser.add_argument("--seed", type=int, default=0,
                        help="seed for arrivals, faults, and tenant mix")
    parser.add_argument(
        "--tenants", default="", metavar="NAME:WEIGHT,...",
        help="tenant mix, e.g. 'alpha:2,beta:1' (weights drive both the "
             "arrival split and fair-share batching; empty = one tenant)",
    )
    parser.add_argument("--quota", type=int, default=None,
                        help="per-tenant queue quota (default: none)")
    parser.add_argument("--max-batch", type=int, default=8)
    parser.add_argument("--max-wait-ms", type=float, default=2.0)
    parser.add_argument("--queue-capacity", type=int, default=1024)
    parser.add_argument("--slo-ms", type=float, default=50.0)
    parser.add_argument("--deadline-ms", type=float, default=200.0,
                        help="per-request deadline (<= 0 disables)")
    parser.add_argument("--retries", type=int, default=4,
                        help="max dispatch attempts per request")
    parser.add_argument("--integrity", default="off",
                        choices=["off", "detect", "detect-reexecute",
                                 "detect-correct"])
    parser.add_argument("--no-hedge", action="store_true",
                        help="disable hedged retry placement")
    parser.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help="persistent schedule store: cold starts load previously "
             "compiled schedules from DIR instead of re-searching",
    )
    scale = parser.add_argument_group("autoscaling")
    scale.add_argument("--autoscale", action="store_true",
                       help="enable the gauge-driven autoscaler")
    scale.add_argument("--scale-interval-ms", type=float, default=20.0)
    scale.add_argument("--min-active", type=int, default=1)
    domain = parser.add_argument_group(
        "correlated domain faults (per-rack rates)"
    )
    domain.add_argument("--rack-loss-rate", type=float, default=2.0,
                        help="rack power-loss events per second")
    domain.add_argument("--mean-rack-repair-s", type=float, default=0.1)
    domain.add_argument("--partition-rate", type=float, default=0.0,
                        help="rack network partitions per second")
    domain.add_argument("--mean-partition-s", type=float, default=0.05)
    domain.add_argument("--correlated-dram-rate", type=float, default=0.0,
                        help="correlated DRAM fault events per second")
    board = parser.add_argument_group(
        "independent board faults (per-board rates)"
    )
    board.add_argument("--crash-rate", type=float, default=0.0,
                       help="board crashes per second")
    board.add_argument("--mean-repair-s", type=float, default=0.05)
    board.add_argument("--bitflip-rate", type=float, default=0.0,
                       help="DRAM upsets per second")
    board.add_argument("--correctable-fraction", type=float, default=0.9)
    return parser


def _build_network(name: str):
    if name == "SmallCNN":
        return build_smallcnn()
    return build_model(name)


def parse_tenants(spec: str) -> dict[str, float]:
    """Parse ``NAME:WEIGHT,...`` into a weight mapping.

    Raises:
        ValueError: for a malformed entry.
    """
    weights: dict[str, float] = {}
    for entry in spec.split(","):
        entry = entry.strip()
        if not entry:
            continue
        name, _, weight = entry.partition(":")
        if not name:
            raise ValueError(f"tenant entry {entry!r} has no name")
        weights[name] = float(weight) if weight else 1.0
    return weights


def assign_tenants(requests, weights: dict[str, float]) -> None:
    """Deterministically spread requests over tenants by weight.

    Uses the same stride discipline as the fair-share batcher: the
    tenant with the lowest accumulated pass takes the next arrival, so
    the mix is proportional and reproducible with no RNG.
    """
    if not weights:
        return
    passes = {name: 0.0 for name in weights}
    for request in requests:
        tenant = min(passes, key=lambda t: (passes[t], t))
        request.tenant = tenant
        passes[tenant] += 1.0 / weights[tenant]


def _campaign(args, network, config: OverlayConfig) -> str:
    topology = build_fleet(args.racks, args.boards_per_rack)
    store = None
    if args.cache_dir:
        from repro.compiler.persist import PersistentScheduleStore
        store = PersistentScheduleStore(args.cache_dir)
    cache = ScheduleCache(config, store=store)
    service = FleetService(
        BatchServiceModel(network, config, cache=cache), topology
    )
    times = poisson_arrivals(args.rate, args.requests, seed=args.seed)
    deadline_s = (
        args.deadline_ms * 1e-3 if args.deadline_ms
        and args.deadline_ms > 0 else None
    )
    requests = make_requests(times, network.name, deadline_s=deadline_s)
    weights = parse_tenants(args.tenants)
    assign_tenants(requests, weights)
    duration = times[-1] - times[0]

    domain_faults = generate_domain_fault_schedule(
        seed=args.seed,
        duration_s=duration,
        topology=topology,
        rack_loss_rate_hz=args.rack_loss_rate,
        mean_rack_repair_s=args.mean_rack_repair_s,
        partition_rate_hz=args.partition_rate,
        mean_partition_s=args.mean_partition_s,
        correlated_dram_rate_hz=args.correlated_dram_rate,
    )
    board_faults = generate_fault_schedule(
        seed=args.seed + 1,
        duration_s=duration,
        replicas=list(topology.board_names),
        crash_rate_hz=args.crash_rate,
        mean_repair_s=args.mean_repair_s,
        bitflip_rate_hz=args.bitflip_rate,
        correctable_fraction=args.correctable_fraction,
    ) if (args.crash_rate > 0 or args.bitflip_rate > 0) \
        else FaultSchedule(events=())
    faults = FaultSchedule.merge(domain_faults, board_faults)

    engine = ClusterEngine(
        service,
        batch_policy=BatchPolicy(
            max_batch=args.max_batch, max_wait_s=args.max_wait_ms * 1e-3
        ),
        admission_policy=AdmissionPolicy(capacity=args.queue_capacity),
        slo_s=args.slo_ms * 1e-3,
        fault_schedule=faults,
        retry_policy=RetryPolicy(max_attempts=args.retries),
        integrity_policy=args.integrity,
        tenant_policy=TenantPolicy(
            weights=weights,
            quotas={t: args.quota for t in weights}
            if args.quota is not None else {},
        ),
        autoscale_policy=AutoscalePolicy(
            interval_s=args.scale_interval_ms * 1e-3,
            min_active=args.min_active,
        ) if args.autoscale else None,
        hedge_retries=not args.no_hedge,
    )
    report = engine.run(requests)
    lines = [
        f"fleet          : {topology.describe()}",
        f"fault schedule : {faults.describe()}",
        f"cold start     : "
        f"{service.cold_start_s * 1e6:.3f} us weight reload per board",
        "",
        report.describe(),
        "",
        "campaign summary:",
        f"  availability          : {report.availability:.4%}",
        f"  accounting identity   : "
        f"{'HOLDS' if report.conserved else 'VIOLATED'} "
        f"over {len(report.per_tenant)} tenant(s)",
        f"  drop rate             : {report.core.drop_rate:.4%}",
        f"  retries               : {report.core.n_retries}",
        f"  hedged dispatches     : {report.hedged_dispatches}",
        f"  schedule cache        : {cache.describe()}",
    ]
    if report.core.health is not None:
        health = report.core.health
        lines += [
            f"  MTTR                  : {health.mttr_s * 1e3:.3f} ms",
            f"  board uptime          : {health.uptime_fraction:.4%}",
        ]
        for name in sorted(health.per_domain):
            lines.append(
                f"  domain {health.per_domain[name].describe()}"
            )
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        if args.grid:
            try:
                d1, d2, d3 = (int(x) for x in args.grid.split(","))
            except ValueError:
                print(f"error: --grid expects three integers D1,D2,D3, "
                      f"got {args.grid!r}", file=sys.stderr)
                return 1
            config = OverlayConfig(d1=d1, d2=d2, d3=d3)
        else:
            config = PAPER_EXAMPLE_CONFIG
        network = _build_network(args.model)
        print(
            f"cluster campaign — {network.name} on "
            f"{args.racks}x{args.boards_per_rack} boards, grid "
            f"{config.d1}x{config.d2}x{config.d3} @ "
            f"{config.clk_h_mhz:.0f} MHz; {args.rate:g} req/s poisson, "
            f"seed {args.seed}"
        )
        print()
        print(_campaign(args, network, config))
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    except FTDLError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
