"""CLI: Table I characterization of the benchmark models.

Example::

    python -m repro.tools.characterize
    python -m repro.tools.characterize --model GoogLeNet --layers
"""

from __future__ import annotations

import argparse
import sys

from repro.errors import FTDLError
from repro.workloads.layers import HOST_KINDS
from repro.workloads.mlperf import MLPERF_MODELS, build_model, table1_rows


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.tools.characterize", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    parser.add_argument("--model", choices=list(MLPERF_MODELS),
                        help="characterize one model instead of the table")
    parser.add_argument("--layers", action="store_true",
                        help="with --model, list every layer")
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        if args.model:
            net = build_model(args.model)
            breakdown = net.op_breakdown()
            print(f"{net.name} ({net.application}): "
                  f"{len(net.layers)} layers, "
                  f"{net.weight_bytes / 1e6:.2f} MB weights, "
                  f"{breakdown.total_ops / 1e9:.3f} Gops/inference")
            print(f"  CONV {breakdown.conv_fraction:.2%} | "
                  f"MM {breakdown.mm_fraction:.2%} | "
                  f"EWOP {breakdown.ewop_fraction:.2%}")
            if args.layers:
                for layer in net.layers:
                    if layer.kind in HOST_KINDS:
                        mnemonic = getattr(layer, "op", layer.kind.value)
                        print(f"  {layer.name:26s} "
                              f"{layer.kind.value.upper():8s} {mnemonic:14s} "
                              f"{layer.ops:>12,d} ops")
                    else:
                        print(f"  {layer.name:26s} {layer.kind.value.upper():4s} "
                              f"{layer.loop_sizes}  {layer.ops:>12,d} ops")
        else:
            print(f"{'Model':22s} {'Application':20s} "
                  f"{'CONV%':>7s} {'MM%':>7s} {'EWOP%':>7s} {'Weights':>9s}")
            for row in table1_rows():
                print(f"{row.model:22s} {row.application:20s} "
                      f"{row.conv_pct:7.2f} {row.mm_pct:7.2f} "
                      f"{row.ewop_pct:7.2f} {row.format_weights():>9s}")
    except FTDLError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
