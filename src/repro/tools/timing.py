"""CLI: post-place-and-route timing report for a design on a device.

Examples::

    python -m repro.tools.timing --device vu125 --grid 12,5,20
    python -m repro.tools.timing --device vu125 --systolic 32,32
    python -m repro.tools.timing --device 7vx330t --grid 10,7,16 --paths
"""

from __future__ import annotations

import argparse
import sys

from repro.errors import FTDLError
from repro.fpga.clocking import plan_double_pump
from repro.fpga.devices import get_device, list_devices
from repro.fpga.placement import place_overlay, place_systolic
from repro.fpga.timing import TimingModel


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.tools.timing", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    parser.add_argument("--device", default="vu125",
                        help=f"one of: {', '.join(list_devices())}")
    what = parser.add_mutually_exclusive_group(required=True)
    what.add_argument("--grid", help="FTDL overlay D1,D2,D3")
    what.add_argument("--systolic", help="systolic array ROWS,COLS")
    parser.add_argument("--paths", action="store_true",
                        help="print every evaluated timing path")
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        device = get_device(args.device)
        if args.grid:
            d1, d2, d3 = (int(x) for x in args.grid.split(","))
            placement = place_overlay(device, d1, d2, d3)
            double_pump = True
        else:
            rows, cols = (int(x) for x in args.systolic.split(","))
            placement = place_systolic(device, rows, cols)
            double_pump = False
        report = TimingModel(device).report(placement, double_pump=double_pump)
    except FTDLError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1

    print(f"device   : {device.name} ({device.family}), "
          f"{device.n_dsp_total} DSPs / {device.n_bram18_total} BRAM18")
    print(f"design   : {placement.style}, {placement.n_dsp_used} DSPs "
          f"({placement.dsp_utilization:.0%}), "
          f"{placement.n_bram_used} BRAM18 ({placement.bram_utilization:.0%})")
    print(f"fmax     : {report.fmax_mhz:.0f} MHz "
          f"({report.fmax_fraction:.1%} of the {report.theoretical_fmax_mhz:.0f} MHz "
          f"DSP limit), limited by {report.limited_by}")
    critical = report.critical_path
    print(f"critical : {critical.net.name} — {critical.delay_ns:.3f} ns "
          f"({critical.net.src_kind.value} -> {critical.net.dst_kind.value}, "
          f"domain {critical.net.clock_domain})")
    if double_pump:
        plan = plan_double_pump(device, target_clk_h_mhz=report.fmax_mhz)
        print(f"clocks   : CLK_h {plan.clk_h_mhz:.0f} MHz / "
              f"CLK_l {plan.clk_l_mhz:.0f} MHz (double-pumped)")
    if args.paths:
        print("paths (worst first):")
        for path in report.paths:
            print(f"  {path.net.name:22s} {path.delay_ns:7.3f} ns  "
                  f"-> CLK_h <= {path.clk_h_limit_mhz:6.0f} MHz")
    return 0


if __name__ == "__main__":
    sys.exit(main())
