"""CLI: cycle-level simulation of one layer with golden verification.

Compiles a layer, executes it on the architectural simulator with random
operands, verifies the output bit-exactly against the golden model, and
reports cycles, efficiency, bus occupancy, and DRAM traffic.

Examples::

    python -m repro.tools.simulate --conv 8,6,8,8,3,3 --padding 1 \
        --grid 3,2,2
    python -m repro.tools.simulate --mm 16,32,4 --grid 2,2,2 --seed 7
"""

from __future__ import annotations

import argparse
import sys

import numpy as np

from repro.compiler.codegen import compile_schedule
from repro.compiler.search import schedule_layer
from repro.errors import FTDLError
from repro.overlay.config import OverlayConfig
from repro.sim.cycle import CycleSimulator
from repro.sim.functional import random_layer_operands
from repro.workloads.layers import ConvLayer, MatMulLayer


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.tools.simulate", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    what = parser.add_mutually_exclusive_group(required=True)
    what.add_argument("--conv", metavar="M,N,H,W,R,S")
    what.add_argument("--mm", metavar="N,M,P")
    parser.add_argument("--stride", type=int, default=1)
    parser.add_argument("--padding", type=int, default=0)
    parser.add_argument("--groups", type=int, default=1)
    parser.add_argument("--grid", default="3,2,2", help="overlay D1,D2,D3")
    parser.add_argument("--actbuf", type=int, default=64)
    parser.add_argument("--wbuf", type=int, default=256)
    parser.add_argument("--psumbuf", type=int, default=512)
    parser.add_argument("--seed", type=int, default=0)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        d1, d2, d3 = (int(x) for x in args.grid.split(","))
        config = OverlayConfig(
            d1=d1, d2=d2, d3=d3,
            s_actbuf_words=args.actbuf,
            s_wbuf_words=args.wbuf,
            s_psumbuf_words=args.psumbuf,
        )
        if args.conv:
            m, n, h, w, r, s = (int(x) for x in args.conv.split(","))
            layer = ConvLayer(
                "sim_conv", n, m, in_h=h, in_w=w, kernel_h=r, kernel_w=s,
                stride=args.stride, padding=args.padding, groups=args.groups,
            )
        else:
            n, m, p = (int(x) for x in args.mm.split(","))
            layer = MatMulLayer("sim_mm", in_features=m, out_features=n,
                                batch=p)

        schedule = schedule_layer(layer, config)
        compiled = compile_schedule(schedule)
        weights, acts = random_layer_operands(
            layer, np.random.default_rng(args.seed)
        )
        run = CycleSimulator(config).run_layer(compiled, weights, acts)
    except FTDLError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1

    est = schedule.estimate
    print(f"schedule : {schedule.mapping.describe()}")
    print(f"model    : {est.c_exe:,} cycles (bound by {est.bottleneck})")
    print(f"simulated: {run.cycles:,} cycles "
          f"({run.cycles / est.c_exe - 1.0:+.1%} vs model)")
    print(f"MACCs    : {run.useful_maccs:,} useful of {run.issued_maccs:,} "
          f"issued; efficiency {run.hardware_efficiency:.1%}")
    print(f"golden   : {'MATCH (bit-exact)' if run.golden_match else 'MISMATCH'}")
    print(f"DRAM     : {run.trace.total_bytes('RD'):,} B read "
          f"/ {run.trace.total_bytes('WR'):,} B written")
    busiest = sorted(run.bus_busy.items(), key=lambda kv: -kv[1])[:4]
    print("buses    : " + ", ".join(f"{k}={v}" for k, v in busiest))
    return 0 if run.golden_match else 2


if __name__ == "__main__":
    sys.exit(main())
