"""CLI: end-to-end observability — trace one pinned compile+serve run.

Runs a deterministic workload twice over the same virtual clocks with
tracing *on*: first the compiler warms every batch size's schedules
(spans on the compiler step clock), then a seeded serving run with a
seeded fault schedule replays through the engine (spans on the virtual
second clock).  Both tracers and one shared metrics registry are then
exported as a Chrome trace (``chrome://tracing`` / Perfetto) and
Prometheus text exposition, with the summary cross-checking that
trace-derived aggregates reconcile exactly with the engine's own report
— the property ``tests/test_trace_integration.py`` enforces.

Everything is seeded and wall-clock-free, so stdout is bit-reproducible
and CI diffs it against ``tests/golden/trace_smoke.txt``.

Examples::

    python -m repro.tools.trace --grid 3,2,2 --replicas 2 \
        --rate 1200 --requests 200 --seed 11 --crash-rate 8
    python -m repro.tools.trace --model GoogLeNet --requests 100 \
        --chrome-out /tmp/trace.json --prom-out /tmp/metrics.prom
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.compiler.cache import ScheduleCache
from repro.errors import FTDLError
from repro.faults import generate_fault_schedule
from repro.overlay.config import OverlayConfig, PAPER_EXAMPLE_CONFIG
from repro.serving import (
    BatchPolicy,
    BatchServiceModel,
    ReplicaService,
    RetryPolicy,
    ServingEngine,
    make_requests,
    poisson_arrivals,
)
from repro.trace import (
    MetricsRegistry,
    Tracer,
    chrome_trace,
    chrome_trace_json,
    prometheus_text,
)
from repro.workloads.mlperf import MLPERF_MODELS, build_model
from repro.workloads.models import build_smallcnn


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.tools.trace", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    parser.add_argument(
        "--model", default="SmallCNN",
        choices=[*MLPERF_MODELS, "SmallCNN"],
    )
    parser.add_argument(
        "--grid", default=None, metavar="D1,D2,D3",
        help="overlay grid (default: the paper's 12,5,20)",
    )
    parser.add_argument("--replicas", type=int, default=2,
                        help="independent overlay replicas")
    parser.add_argument("--rate", type=float, default=1200.0,
                        help="offered load, requests/s")
    parser.add_argument("--requests", type=int, default=200,
                        help="number of requests to serve")
    parser.add_argument("--seed", type=int, default=0,
                        help="seed for both arrivals and faults")
    parser.add_argument("--max-batch", type=int, default=4)
    parser.add_argument("--max-wait-ms", type=float, default=2.0)
    parser.add_argument("--slo-ms", type=float, default=25.0)
    parser.add_argument("--deadline-ms", type=float, default=None,
                        help="per-request deadline (default: none)")
    fault = parser.add_argument_group("fault injection (per-replica rates)")
    fault.add_argument("--crash-rate", type=float, default=6.0,
                       help="replica crashes per second")
    fault.add_argument("--mean-repair-s", type=float, default=0.02)
    fault.add_argument("--slowdown-rate", type=float, default=3.0)
    fault.add_argument("--bitflip-rate", type=float, default=10.0)
    fault.add_argument("--correctable-fraction", type=float, default=0.8)
    out = parser.add_argument_group("export targets")
    out.add_argument("--chrome-out", default=None, metavar="PATH",
                     help="write the Chrome trace JSON here")
    out.add_argument("--prom-out", default=None, metavar="PATH",
                     help="write the Prometheus text exposition here")
    return parser


def _build_network(name: str):
    if name == "SmallCNN":
        return build_smallcnn()
    return build_model(name)


def _ok(match: bool) -> str:
    return "ok" if match else "MISMATCH"


def _traced_run(args, network, config: OverlayConfig) -> str:
    compile_tracer = Tracer(unit="step")
    serve_tracer = Tracer(unit="s")
    registry = MetricsRegistry()

    # Phase 1 — compile: warm every batch size's schedules on the step
    # clock, so the serving phase below is pure cache hits.
    cache = ScheduleCache(config, tracer=compile_tracer, metrics=registry)
    model = BatchServiceModel(network, config, cache=cache)
    for batch_size in range(1, args.max_batch + 1):
        model.service_s(batch_size)

    # Phase 2 — serve: seeded traffic + seeded faults on the virtual
    # second clock.
    service = ReplicaService(model, n_replicas=args.replicas)
    times = poisson_arrivals(args.rate, args.requests, seed=args.seed)
    deadline_s = (
        args.deadline_ms * 1e-3 if args.deadline_ms is not None else None
    )
    requests = make_requests(times, network.name, deadline_s=deadline_s)
    faults = generate_fault_schedule(
        seed=args.seed,
        duration_s=times[-1] - times[0],
        replicas=service.replica_names(),
        grid=config,
        crash_rate_hz=args.crash_rate,
        mean_repair_s=args.mean_repair_s,
        slowdown_rate_hz=args.slowdown_rate,
        bitflip_rate_hz=args.bitflip_rate,
        correctable_fraction=args.correctable_fraction,
        metrics=registry,
    )
    engine = ServingEngine(
        service,
        batch_policy=BatchPolicy(
            max_batch=args.max_batch, max_wait_s=args.max_wait_ms * 1e-3
        ),
        slo_s=args.slo_ms * 1e-3,
        fault_schedule=faults,
        retry_policy=RetryPolicy(),
        tracer=serve_tracer,
        metrics=registry,
    )
    report = engine.run(requests)

    # Summaries + reconciliation (trace-derived == report, exactly).
    problems = compile_tracer.validate() + serve_tracer.validate()
    counter = registry.counter("search_candidates_evaluated", "").series()
    candidates = sum(counter.values())
    hits = registry.counter("schedule_cache_hits", "").value()
    misses = registry.counter("schedule_cache_misses", "").value()
    stats = cache.stats()
    roots = [s for s in serve_tracer.spans
             if s.name == "request" and s.parent_id is None]
    done = sorted(s.duration for s in roots
                  if s.args.get("status") == "completed")
    latencies = sorted(r.latency_s for r in report.completed)
    n_dropped = sum(
        registry.counter("serving_requests_dropped", "").series().values()
    )
    repairs = [i.args["repair_s"] for i in serve_tracer.instants
               if i.name == "health.up"]
    mttr = sum(repairs) / len(repairs) if repairs else 0.0
    lines = [
        "compile trace [step]:",
        f"  spans            : {len(compile_tracer.spans)} "
        f"({len(compile_tracer.roots())} roots), "
        f"{len(compile_tracer.instants)} instants",
        f"  candidates       : {int(candidates)} evaluated",
        f"  schedule cache   : {int(hits)} hits / {int(misses)} misses "
        f"(counters == cache stats: "
        f"{_ok(hits == stats.hits and misses == stats.misses)})",
        "",
        "serving trace [s]:",
        f"  spans            : {len(serve_tracer.spans)} "
        f"({len(roots)} request roots), "
        f"{len(serve_tracer.instants)} instants",
        f"  requests         : {len(done)} completed / "
        f"{len(report.dropped)} dropped "
        f"(counters == report: "
        f"{_ok(len(done) == report.n_completed and int(n_dropped) == report.n_dropped)})",
        f"  fault schedule   : {faults.describe()}",
        "",
        "reconciliation:",
        f"  latencies        : trace == report for all "
        f"{len(latencies)} completed: {_ok(done == latencies)}",
        f"  p50 / p95        : {report.p50_s * 1e3:.3f} / "
        f"{report.p95_s * 1e3:.3f} ms",
        f"  MTTR             : {mttr * 1e3:.3f} ms "
        f"(trace == health report: "
        f"{_ok(report.health is not None and mttr == report.health.mttr_s)})",
        f"  well-formed      : {_ok(not problems)} "
        f"({len(problems)} problems across 2 tracers)",
    ]

    tracers = {"compiler": compile_tracer, "serving": serve_tracer}
    chrome = chrome_trace(tracers)
    prom = prometheus_text(registry)
    lines += [
        "",
        f"chrome trace     : {len(chrome['traceEvents'])} events"
        + (f" -> {args.chrome_out}" if args.chrome_out else ""),
        f"prometheus text  : {len(prom.splitlines())} lines"
        + (f" -> {args.prom_out}" if args.prom_out else ""),
        "",
        prom.rstrip("\n"),
    ]
    if args.chrome_out:
        Path(args.chrome_out).write_text(chrome_trace_json(tracers) + "\n")
    if args.prom_out:
        Path(args.prom_out).write_text(prom)
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        if args.grid:
            try:
                d1, d2, d3 = (int(x) for x in args.grid.split(","))
            except ValueError:
                print(f"error: --grid expects three integers D1,D2,D3, "
                      f"got {args.grid!r}", file=sys.stderr)
                return 1
            config = OverlayConfig(d1=d1, d2=d2, d3=d3)
        else:
            config = PAPER_EXAMPLE_CONFIG
        network = _build_network(args.model)
        print(f"trace run — {network.name} on {args.replicas} replica(s), "
              f"grid {config.d1}x{config.d2}x{config.d3} @ "
              f"{config.clk_h_mhz:.0f} MHz; {args.rate:g} req/s poisson, "
              f"seed {args.seed}")
        print()
        print(_traced_run(args, network, config))
    except FTDLError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
