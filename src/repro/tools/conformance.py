"""CLI: full-stack workload conformance over the registered benchmarks.

Runs every requested workload through :func:`repro.conformance.
run_workload_conformance` — schedule search, bit-true simulation against
the functional golden kernels, serve-one-batch, fault-masked recompile,
ABFT detect/correct, host-kernel determinism, and (where declared) the
mixed-precision evaluation — and prints the deterministic summary table.

``--budget`` restricts the run to the small transformer-suite workloads
so CI can golden-diff the output in seconds; the full registry (both the
paper's Table I networks and the transformer family) runs by default.

Examples::

    python -m repro.tools.conformance --budget
    python -m repro.tools.conformance --suite paper
    python -m repro.tools.conformance --workloads TinyAttention --seed 3
"""

from __future__ import annotations

import argparse
import sys

from repro.conformance import (
    CONFORMANCE_CONFIG,
    ConformanceBudget,
    conformance_summary,
    run_workload_conformance,
)
from repro.errors import FTDLError
from repro.overlay.config import OverlayConfig
from repro.workloads import WORKLOADS, registered_workloads

#: The workloads ``--budget`` mode runs: the small transformer-suite
#: networks, which cover every new layer kind, weight streaming, the
#: sequential chain, and mixed precision in a few seconds.
BUDGET_WORKLOADS = ("TinyAttention", "Transformer-MLP", "Transformer-mixed")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.tools.conformance",
        description="Full-stack conformance over the workload registry.",
    )
    parser.add_argument(
        "--suite", default=None,
        help="restrict to one suite (paper / transformer)",
    )
    parser.add_argument(
        "--workloads", default=None,
        help="comma-separated workload names (overrides --suite)",
    )
    parser.add_argument(
        "--budget", action="store_true",
        help=f"smoke mode: only {', '.join(BUDGET_WORKLOADS)}",
    )
    parser.add_argument(
        "--grid", default=None,
        help="overlay grid d1,d2,d3 (default: the conformance 3,2,2)",
    )
    parser.add_argument("--seed", type=int, default=0, help="base RNG seed")
    parser.add_argument(
        "--spatial-beam", type=int, default=None,
        help="override the budget's spatial beam width",
    )
    parser.add_argument(
        "--temporal-beam", type=int, default=None,
        help="override the budget's temporal beam width",
    )
    return parser


def _select_specs(args: argparse.Namespace) -> list:
    if args.budget:
        return [WORKLOADS[name] for name in BUDGET_WORKLOADS]
    if args.workloads:
        names = [n.strip() for n in args.workloads.split(",") if n.strip()]
        if not names:
            raise FTDLError("--workloads named no workloads")
        missing = [n for n in names if n not in WORKLOADS]
        if missing:
            known = ", ".join(WORKLOADS)
            raise FTDLError(
                f"unknown workloads: {', '.join(missing)}; known: {known}"
            )
        return [WORKLOADS[n] for n in names]
    specs = registered_workloads(args.suite)
    if not specs:
        raise FTDLError(f"no workloads in suite {args.suite!r}")
    return specs


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        specs = _select_specs(args)
        config = CONFORMANCE_CONFIG
        if args.grid:
            d1, d2, d3 = (int(v) for v in args.grid.split(","))
            config = OverlayConfig(d1=d1, d2=d2, d3=d3)
        budget = ConformanceBudget()
        overrides = {}
        if args.spatial_beam is not None:
            overrides["spatial_beam"] = args.spatial_beam
        if args.temporal_beam is not None:
            overrides["temporal_beam"] = args.temporal_beam
        if overrides:
            budget = ConformanceBudget(**{
                **{f: getattr(budget, f) for f in (
                    "spatial_beam", "temporal_beam", "max_sim_layers",
                    "max_sim_maccs", "max_reference_layers",
                    "max_reference_maccs", "batch_size", "max_host_layers",
                )},
                **overrides,
            })
    except (FTDLError, ValueError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 1

    print("workload conformance: search -> sim-vs-golden -> serve -> "
          "faults -> abft -> host -> precision")
    print(f"grid {config.d1}x{config.d2}x{config.d3}, seed {args.seed}, "
          f"beams {budget.spatial_beam}/{budget.temporal_beam}, "
          f"{len(specs)} workload(s)")
    print()
    reports = [
        run_workload_conformance(spec, config, budget, seed=args.seed)
        for spec in specs
    ]
    print(conformance_summary(reports))
    print()
    n_ok = sum(r.ok for r in reports)
    print(f"{n_ok}/{len(reports)} workloads conformant")
    return 0 if n_ok == len(reports) else 1


if __name__ == "__main__":
    sys.exit(main())
