"""Trace-driven DRAM power estimation (the DRAMPower role).

Integrates per-byte access energies over a :class:`repro.sim.trace.DramTrace`
and adds background power over the execution window, returning average
power and total energy — the numbers the paper feeds into its
power-efficiency comparison.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.dram.spec import DramSpec
from repro.errors import FTDLError
from repro.sim.trace import DramTrace


@dataclass(frozen=True)
class DramPowerReport:
    """Energy/power summary of one trace.

    Attributes:
        read_energy_nj: Energy of all read transfers.
        write_energy_nj: Energy of all write transfers.
        background_energy_nj: Standby + refresh over the window.
        window_seconds: Execution window length.
    """

    read_energy_nj: float
    write_energy_nj: float
    background_energy_nj: float
    window_seconds: float

    @property
    def total_energy_nj(self) -> float:
        return self.read_energy_nj + self.write_energy_nj + self.background_energy_nj

    @property
    def average_power_w(self) -> float:
        if self.window_seconds <= 0:
            return 0.0
        return self.total_energy_nj * 1e-9 / self.window_seconds


def estimate_power(
    trace: DramTrace,
    spec: DramSpec,
    window_cycles: int,
    clk_mhz: float,
) -> DramPowerReport:
    """Estimate DRAM energy/power for ``trace`` over ``window_cycles``.

    Args:
        trace: Access trace from the simulator (or synthesized from the
            analytical volumes).
        spec: DRAM device parameters.
        window_cycles: Execution window in CLK_h cycles.
        clk_mhz: CLK_h frequency.
    """
    if window_cycles < 0 or clk_mhz <= 0:
        raise FTDLError("window and clock must be non-negative / positive")
    read_bytes = trace.total_bytes("RD")
    write_bytes = trace.total_bytes("WR")
    window_seconds = window_cycles / (clk_mhz * 1e6)
    return DramPowerReport(
        read_energy_nj=read_bytes * spec.energy_per_byte_rd_pj * 1e-3,
        write_energy_nj=write_bytes * spec.energy_per_byte_wr_pj * 1e-3,
        background_energy_nj=spec.background_power_w * window_seconds * 1e9,
        window_seconds=window_seconds,
    )
