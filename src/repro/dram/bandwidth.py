"""Transfer-time model for the off-chip interface."""

from __future__ import annotations

from repro.dram.spec import DramSpec
from repro.errors import FTDLError
from repro.units import BYTES_PER_WORD


def sustained_bandwidth_gbps(spec: DramSpec) -> float:
    """Sustained bandwidth of ``spec`` in GB/s."""
    return spec.sustained_gbps


def transfer_cycles(words: int, clk_mhz: float, bandwidth_gbps: float) -> int:
    """Cycles at ``clk_mhz`` to move ``words`` at ``bandwidth_gbps``.

    This is the conversion behind the compiler's ``C_dram`` terms: volume
    divided by the pre-set DRAM bandwidth, expressed in CLK_h cycles.
    """
    if words < 0:
        raise FTDLError(f"negative transfer of {words} words")
    if clk_mhz <= 0 or bandwidth_gbps <= 0:
        raise FTDLError("clock and bandwidth must be positive")
    bytes_total = words * BYTES_PER_WORD
    seconds = bytes_total / (bandwidth_gbps * 1e9)
    return int(-(-seconds * clk_mhz * 1e6 // 1))
