"""DDR device specifications for the power/bandwidth models.

The parameters mirror the quantities a DRAMPower XML device description
carries: interface geometry, clock, and IDD-style current classes folded
into per-event energies.  Values are representative of a 64-bit DDR4-2400
DIMM (the kind of interface behind the paper's 26 GB/s assumption).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import FTDLError


@dataclass(frozen=True)
class DramSpec:
    """One DRAM interface.

    Attributes:
        name: Device/DIMM identifier.
        data_bits: Interface width.
        clock_mhz: I/O bus clock (DDR transfers on both edges).
        peak_gbps: Peak theoretical bandwidth.
        efficiency: Sustained fraction of peak under streaming access
            (row-buffer friendly; the paper's 26 GB/s on a 38.4 GB/s DIMM
            corresponds to ~0.68).
        energy_per_byte_rd_pj: Read energy per byte (activation + I/O,
            amortized IDD4R-style).
        energy_per_byte_wr_pj: Write energy per byte.
        background_power_w: Standby + refresh power while powered.
    """

    name: str
    data_bits: int
    clock_mhz: float
    peak_gbps: float
    efficiency: float
    energy_per_byte_rd_pj: float
    energy_per_byte_wr_pj: float
    background_power_w: float

    def __post_init__(self) -> None:
        if not 0 < self.efficiency <= 1:
            raise FTDLError(f"efficiency must be in (0, 1], got {self.efficiency}")
        if self.peak_gbps <= 0:
            raise FTDLError(f"peak bandwidth must be positive, got {self.peak_gbps}")

    @property
    def sustained_gbps(self) -> float:
        """Bandwidth the scheduler may plan against."""
        return self.peak_gbps * self.efficiency


#: A 64-bit DDR4-2400 DIMM: 2400 MT/s * 8 B = 19.2 GB/s per channel; two
#: channels give the platform-level 38.4 GB/s peak / ~26 GB/s sustained the
#: paper assumes.
DDR4_2400 = DramSpec(
    name="DDR4-2400-2ch",
    data_bits=128,
    clock_mhz=1200.0,
    peak_gbps=38.4,
    efficiency=0.68,
    energy_per_byte_rd_pj=52.0,
    energy_per_byte_wr_pj=56.0,
    background_power_w=1.6,
)
