"""DRAM substrate: bandwidth and power models.

Replaces the paper's use of the DRAMPower tool: a DDR4-class current/energy
model driven by the simulator's access traces, plus the 26 GB/s transfer
model behind the compiler's ``C_dram`` terms.
"""

from repro.dram.spec import DramSpec, DDR4_2400
from repro.dram.bandwidth import transfer_cycles, sustained_bandwidth_gbps
from repro.dram.power import DramPowerReport, estimate_power

__all__ = [
    "DramSpec",
    "DDR4_2400",
    "transfer_cycles",
    "sustained_bandwidth_gbps",
    "DramPowerReport",
    "estimate_power",
]
