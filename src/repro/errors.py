"""Exception hierarchy for the FTDL reproduction library.

All library-specific errors derive from :class:`FTDLError` so callers can
catch a single base class at API boundaries.
"""

from __future__ import annotations


class FTDLError(Exception):
    """Base class for all errors raised by this library."""


class DeviceError(FTDLError):
    """A device model is malformed or an unknown device was requested."""


class ResourceError(FTDLError):
    """An overlay configuration does not fit on the target device."""


class ClockingError(FTDLError):
    """A clock configuration violates primitive timing limits."""


class MappingError(FTDLError):
    """A mapping vector is structurally invalid for its workload."""


class ScheduleError(FTDLError):
    """The scheduler could not produce a feasible schedule."""


class WorkloadError(FTDLError):
    """A layer or network definition is malformed."""


class SimulationError(FTDLError):
    """The cycle simulator detected an inconsistency at run time."""


class IsaError(FTDLError):
    """An instruction could not be encoded or decoded."""


class PartitionError(FTDLError):
    """A multi-FPGA partitioning request cannot produce a usable plan."""


class ServingError(FTDLError):
    """The serving runtime was configured or driven inconsistently."""
