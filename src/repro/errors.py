"""Exception hierarchy for the FTDL reproduction library.

All library-specific errors derive from :class:`FTDLError` so callers can
catch a single base class at API boundaries.

==========================  =====================================================
Class                       Raised when
==========================  =====================================================
:class:`DeviceError`        a device model is malformed / unknown device requested
:class:`ResourceError`      an overlay configuration does not fit on the device
:class:`ClockingError`      a clock configuration violates primitive timing limits
:class:`MappingError`       a mapping vector is structurally invalid
:class:`ScheduleError`      no feasible schedule exists for a layer
:class:`WorkloadError`      a layer or network definition is malformed
:class:`SimulationError`    the cycle simulator detects an inconsistency
:class:`IsaError`           an instruction cannot be encoded or decoded
:class:`PartitionError`     a multi-FPGA partitioning cannot produce a plan
:class:`ServingError`       the serving runtime is configured inconsistently
:class:`FaultError`         a fault event / mask / schedule is invalid, or a
                            fault leaves the overlay with no healthy sub-grid
:class:`RetryExhaustedError`  a request burned every dispatch attempt under
                            repeated faults (subclass of :class:`FaultError`)
:class:`IntegrityError`     a result failed its ABFT checksum verification and
                            could not be corrected or re-executed (subclass of
                            :class:`FaultError`)
:class:`TraceError`         a trace or metric is malformed (unbalanced spans,
                            non-finite timestamps, metric kind clashes)
==========================  =====================================================
"""

from __future__ import annotations


class FTDLError(Exception):
    """Base class for all errors raised by this library."""


class DeviceError(FTDLError):
    """A device model is malformed or an unknown device was requested."""


class ResourceError(FTDLError):
    """An overlay configuration does not fit on the target device."""


class ClockingError(FTDLError):
    """A clock configuration violates primitive timing limits."""


class MappingError(FTDLError):
    """A mapping vector is structurally invalid for its workload."""


class ScheduleError(FTDLError):
    """The scheduler could not produce a feasible schedule."""


class WorkloadError(FTDLError):
    """A layer or network definition is malformed."""


class SimulationError(FTDLError):
    """The cycle simulator detected an inconsistency at run time."""


class IsaError(FTDLError):
    """An instruction could not be encoded or decoded."""


class PartitionError(FTDLError):
    """A multi-FPGA partitioning request cannot produce a usable plan."""


class ServingError(FTDLError):
    """The serving runtime was configured or driven inconsistently."""


class FaultError(FTDLError):
    """A fault event, mask, or schedule is invalid — or a fault leaves the
    system unable to make progress (e.g. no healthy sub-grid remains).

    Carries structured context so chaos tooling can aggregate failures
    without parsing messages:

    Attributes:
        replica: Replica / device name the fault concerns (``None`` when
            the error is not tied to one replica).
        at_s: Virtual-clock timestamp of the triggering event, seconds
            (``None`` when the error is not tied to an instant).
    """

    def __init__(
        self,
        message: str,
        *,
        replica: str | None = None,
        at_s: float | None = None,
    ):
        context = []
        if replica is not None:
            context.append(f"replica={replica}")
        if at_s is not None:
            context.append(f"t={at_s:.6f}s")
        if context:
            message = f"{message} [{', '.join(context)}]"
        super().__init__(message)
        self.replica = replica
        self.at_s = at_s


class TraceError(FTDLError):
    """A trace or metric is malformed: unbalanced begin/end pairs, a span
    escaping its parent's interval, non-finite timestamps, or a metric
    registered under one kind and requested as another."""


class IntegrityError(FaultError):
    """A computed result failed its ABFT checksum verification and no
    recovery path (correction or re-execution) was available — silent
    data corruption would otherwise have been served.

    Attributes:
        detected: Count of non-zero checksum syndromes behind the error.
    """

    def __init__(
        self,
        message: str,
        *,
        detected: int = 1,
        replica: str | None = None,
        at_s: float | None = None,
    ):
        super().__init__(message, replica=replica, at_s=at_s)
        self.detected = detected


class RetryExhaustedError(FaultError):
    """A request used every dispatch attempt without completing.

    Attributes:
        request_id: The exhausted request.
        attempts: Dispatch attempts consumed (== the retry policy's cap).
    """

    def __init__(
        self,
        message: str,
        *,
        request_id: int,
        attempts: int,
        replica: str | None = None,
        at_s: float | None = None,
    ):
        super().__init__(
            f"{message} (request {request_id} after {attempts} attempts)",
            replica=replica,
            at_s=at_s,
        )
        self.request_id = request_id
        self.attempts = attempts
