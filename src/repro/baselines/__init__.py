"""Comparison baselines: the Table II prior-work registry and an
implemented boundary-fed systolic array comparator."""

from repro.baselines.priorworks import PriorWork, PRIOR_WORKS, prior_work
from repro.baselines.systolic import SystolicArray, SystolicRun

__all__ = [
    "PriorWork",
    "PRIOR_WORKS",
    "prior_work",
    "SystolicArray",
    "SystolicRun",
]
