"""Published statistics of the prior works compared in Table II.

The paper compares against ten FPGA CNN accelerators "with their own
statistics but the same DSP number" as the example FTDL design: each
work's published operating frequency and hardware efficiency are rescaled
to 1200 DSPs, so FPS = 2 * n_dsp * f * eff / model_ops.  This registry
holds those published statistics; :mod:`repro.analysis.comparison`
performs the rescaling.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import FTDLError


@dataclass(frozen=True)
class PriorWork:
    """Published operating point of one prior accelerator.

    Attributes:
        key: Citation number in the paper's reference list.
        name: Short identifier (first author + venue).
        dsp_freq_mhz: Published DSP operating frequency.
        hardware_efficiency: Published attainable/theoretical throughput
            ratio.
        quantization_bits: Weight precision (all compared works use 16).
        gops_per_watt: Published power efficiency, or ``None`` where the
            paper lists N/A.
    """

    key: str
    name: str
    dsp_freq_mhz: float
    hardware_efficiency: float
    quantization_bits: int = 16
    gops_per_watt: float | None = None

    def macc_rate(self, n_dsp: int) -> float:
        """Effective MACC/s when rescaled to ``n_dsp`` DSPs."""
        return n_dsp * self.dsp_freq_mhz * 1e6 * self.hardware_efficiency

    def fps(self, n_dsp: int, model_ops: int) -> float:
        """Frames per second on a model of ``model_ops`` operations."""
        if model_ops <= 0:
            raise FTDLError(f"model_ops must be positive, got {model_ops}")
        return 2.0 * self.macc_rate(n_dsp) / model_ops


#: Table II columns, in the paper's order ([10] is the 1.0x baseline).
PRIOR_WORKS: tuple[PriorWork, ...] = (
    PriorWork("[10]", "Ma-ISCAS17", 150.0, 0.454),
    PriorWork("[2]", "Liu-TRETS17", 100.0, 0.730, gops_per_watt=16.8),
    PriorWork("[3]", "Venieris-FPL17", 125.0, 0.720),
    PriorWork("[4]", "Lu-FCCM17", 167.0, 0.675, gops_per_watt=21.4),
    PriorWork("[5]", "Ma-FPL17", 200.0, 0.483),
    PriorWork("[7]", "Ma-TVLSI18", 200.0, 0.482),
    PriorWork("[8]", "Guan-FCCM17", 150.0, 0.719, gops_per_watt=14.5),
    PriorWork("[21]", "Ma-FPGA17", 150.0, 0.708, gops_per_watt=30.4),
    PriorWork("[1]", "Shen-ISCA17", 170.0, 0.765),
    PriorWork("[9]", "Wei-DAC17", 240.0, 0.891),
)


def prior_work(key: str) -> PriorWork:
    """Look up a prior work by its citation key (e.g. ``"[9]"``).

    Raises:
        FTDLError: for unknown keys.
    """
    for work in PRIOR_WORKS:
        if work.key == key:
            return work
    known = ", ".join(w.key for w in PRIOR_WORKS)
    raise FTDLError(f"unknown prior work {key!r}; known: {known}")
