"""An implemented boundary-fed systolic-array comparator.

This is the "widely adopted systolic-array-liked architecture" of the
paper's introduction, built out so the architecture-layout mismatch can be
*measured* rather than asserted: its placement (boundary memories feeding
interior PEs) comes from :func:`repro.fpga.placement.place_systolic`, its
post-P&R frequency from the same timing model that prices FTDL, and its
throughput from a weight-stationary GEMM schedule with the classic array
fill/drain overheads.

CONV layers are lowered to GEMM by im2col: ``K = N*R*S`` reduction rows,
``Mo`` output-channel columns, ``Npix = OH*OW`` activation columns.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ScheduleError
from repro.fpga.devices import Device
from repro.fpga.placement import place_systolic
from repro.fpga.timing import TimingModel
from repro.units import ceil_div
from repro.workloads.layers import ConvLayer, MatMulLayer
from repro.workloads.network import Network

AcceleratedLayer = ConvLayer | MatMulLayer


@dataclass(frozen=True)
class SystolicRun:
    """Result of running one layer or network on the array."""

    cycles: int
    useful_maccs: int
    n_pe: int
    fmax_mhz: float

    @property
    def hardware_efficiency(self) -> float:
        if self.cycles <= 0:
            return 0.0
        return self.useful_maccs / (self.n_pe * self.cycles)

    @property
    def seconds(self) -> float:
        return self.cycles / (self.fmax_mhz * 1e6)

    @property
    def gops(self) -> float:
        if self.seconds <= 0:
            return 0.0
        return 2.0 * self.useful_maccs / self.seconds / 1e9


class SystolicArray:
    """A ``rows x cols`` weight-stationary systolic array on ``device``.

    Args:
        device: FPGA the array is placed on; its timing model sets the
            operating frequency (which *degrades* with array size — the
            mismatch FTDL avoids).
        rows: Reduction dimension of the array (K).
        cols: Output dimension of the array (M).
    """

    def __init__(self, device: Device, rows: int, cols: int):
        if rows < 1 or cols < 1:
            raise ScheduleError(f"array must be >= 1x1, got {rows}x{cols}")
        self.device = device
        self.rows = rows
        self.cols = cols
        placement = place_systolic(device, rows, cols)
        self.timing = TimingModel(device).report(placement, double_pump=False)

    @property
    def n_pe(self) -> int:
        return self.rows * self.cols

    @property
    def fmax_mhz(self) -> float:
        return self.timing.fmax_mhz

    # ------------------------------------------------------------------ #
    def _gemm_shape(self, layer: AcceleratedLayer) -> tuple[int, int, int]:
        """(K, M, N) GEMM dimensions of ``layer`` after lowering."""
        if isinstance(layer, ConvLayer):
            k = layer.in_channels * layer.kernel_h * layer.kernel_w
            return k, layer.out_channels, layer.out_h * layer.out_w
        return layer.in_features, layer.out_features, layer.batch

    def layer_cycles(self, layer: AcceleratedLayer) -> int:
        """Cycles for one layer under weight-stationary tiling.

        Per (K, M) weight tile: ``rows`` fill cycles to preload weights,
        then one activation column per cycle plus ``rows + cols`` drain.
        """
        k, m, n = self._gemm_shape(layer)
        k_tiles = ceil_div(k, self.rows)
        m_tiles = ceil_div(m, self.cols)
        per_tile = self.rows + n + (self.rows + self.cols)
        return k_tiles * m_tiles * per_tile

    def run_layer(self, layer: AcceleratedLayer) -> SystolicRun:
        return SystolicRun(
            cycles=self.layer_cycles(layer),
            useful_maccs=layer.maccs,
            n_pe=self.n_pe,
            fmax_mhz=self.fmax_mhz,
        )

    def run_network(self, network: Network) -> SystolicRun:
        """Run every accelerated layer back to back."""
        layers = network.accelerated_layers()
        if not layers:
            raise ScheduleError(f"network {network.name!r} has no CONV/MM layers")
        cycles = sum(self.layer_cycles(layer) for layer in layers)
        return SystolicRun(
            cycles=cycles,
            useful_maccs=network.accelerated_maccs,
            n_pe=self.n_pe,
            fmax_mhz=self.fmax_mhz,
        )

    def fps(self, network: Network) -> float:
        """Frames per second on ``network`` at the array's post-P&R fmax."""
        run = self.run_network(network)
        return 1.0 / run.seconds
