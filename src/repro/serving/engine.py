"""Event-driven serving loop over a virtual clock.

The engine is a discrete-event simulator with five event sources: the
arrival trace, batch-formation deadlines, batch completions, retry
timers, and an optional :class:`~repro.faults.schedule.FaultSchedule`.
It is fully deterministic — virtual time only, no wall clock, no RNG —
so a fixed arrival trace and fault schedule always reproduce identical
metrics bit-for-bit.

A request's end-to-end latency decomposes exactly as:

    queue wait (arrival → batch launch, bounded by admission + max_wait)
  + service    (Σ scheduled layer cycles / f_clk + DRAM transfer)

with the batch-formation wait folded into the queue wait: a request that
arrives first and waits for the batch to fill pays that wait in its
dispatch delta.

Fault-tolerant execution (when a fault schedule is supplied):

* **Crashes** take a replica out of dispatch; its in-flight batches are
  lost and their requests retried on the surviving replicas under the
  :class:`~repro.serving.request.RetryPolicy` (capped exponential
  backoff, deadline-aware — a retry that cannot land before a request's
  deadline drops it instead).
* **Transient corruption** (SEU TPE faults, uncorrectable DRAM
  bit-flips, link glitches) poisons the in-flight batches of the struck
  replica — same retry path — while the replica stays up.
* **Stuck-at TPE faults** permanently mask grid tiles: the replica's
  service times inflate to its largest healthy sub-grid's compiled
  schedule (fault-aware compilation).  If no sub-grid remains, the
  replica is treated as crashed.
* **Degraded-mode admission**: while any replica is down the admission
  controller's *fault pressure* waives batch formation, draining the
  queue through the survivors exactly like the deep-queue watermark.
* Requests whose deadline expires in the queue are dropped and counted
  with a reason breakdown; if every replica is down with no recovery in
  sight, stranded work is dropped as ``no_healthy_replica``.
"""

from __future__ import annotations

import heapq
import itertools
import math
from typing import Sequence

from repro.errors import FaultError, ScheduleError, ServingError
from repro.faults.events import (
    DramBitFlip,
    FaultEvent,
    LinkFault,
    ReplicaCrash,
    ReplicaRecovery,
    ReplicaSlowdown,
    TPEFault,
)
from repro.faults.monitor import HealthMonitor
from repro.faults.schedule import FaultSchedule
from repro.integrity.policy import IntegrityPolicy
from repro.serving.admission import AdmissionController, AdmissionPolicy
from repro.serving.batcher import Batcher, BatchPolicy
from repro.serving.metrics import ServingReport
from repro.serving.request import InferenceRequest, RetryPolicy
from repro.serving.scheduler import (
    Dispatch,
    DispatchScheduler,
    PipelineService,
    ReplicaService,
)
from repro.trace.metrics import MetricsRegistry, as_metrics
from repro.trace.span import Tracer, as_tracer

#: Drop reasons the engine emits.
DROP_DEADLINE = "deadline"
DROP_RETRY_EXHAUSTED = "retry_exhausted"
DROP_NO_REPLICA = "no_healthy_replica"
DROP_SDC = "sdc_detected"


class ServingEngine:
    """Run one arrival trace through batcher → scheduler → replicas.

    Args:
        service: Replica or pipeline deployment to dispatch onto.
        batch_policy: Dynamic-batching knobs.
        admission_policy: Queue bound and degradation knobs.
        slo_s: Latency objective for violation accounting.
        fault_schedule: Optional deterministic fault events to replay
            against the run's virtual clock.
        retry_policy: Backoff/attempt budget for fault retries.
        integrity_policy: How silent-corruption faults (transient TPE
            upsets, uncorrectable DRAM bit-flips) are handled.  Under
            the default ``OFF`` the engine keeps its omniscient
            pre-integrity behaviour — the struck batch is aborted the
            instant the fault fires — and the run is bit-identical to
            earlier releases.  Under a detecting policy the corruption
            rides to the batch's *retirement*, where the ABFT checksum
            verification catches it: the batch pays its full service
            time, then is dropped (``DETECT``), re-executed through the
            deadline-aware retry path (``DETECT_REEXECUTE``), or — for
            localizable accumulator upsets — corrected in place from
            the syndromes with no re-execution (``DETECT_CORRECT``).
            Link faults keep the abort path under every policy: the bus
            protocol's own CRC catches those at transfer time.
        tracer: Optional :class:`~repro.trace.span.Tracer`.  Every
            retired request emits its lifecycle span tree
            (``request`` → ``queue`` / ``compute`` / ``dram``) stamped
            with the virtual clock; batches land on their replica's
            track, faults and failovers as instants.  Tracing only
            observes timestamps the engine already computed — a traced
            run's report is identical to an untraced one.
        metrics: Optional :class:`~repro.trace.metrics.MetricsRegistry`
            receiving ``serving_*`` counters, the request latency
            histogram, and per-replica utilization gauges.
    """

    def __init__(
        self,
        service: ReplicaService | PipelineService,
        batch_policy: BatchPolicy | None = None,
        admission_policy: AdmissionPolicy | None = None,
        slo_s: float = 10e-3,
        fault_schedule: FaultSchedule | None = None,
        retry_policy: RetryPolicy | None = None,
        integrity_policy: "IntegrityPolicy | str" = IntegrityPolicy.OFF,
        tracer: Tracer | None = None,
        metrics: MetricsRegistry | None = None,
    ):
        if slo_s <= 0:
            raise ServingError(f"slo_s must be positive, got {slo_s}")
        self.service = service
        self.batch_policy = batch_policy or BatchPolicy()
        self.admission_policy = admission_policy or AdmissionPolicy()
        self.slo_s = slo_s
        self.fault_schedule = fault_schedule
        self.retry_policy = retry_policy or RetryPolicy()
        self.integrity_policy = IntegrityPolicy.parse(integrity_policy)
        self.tracer = as_tracer(tracer)
        self.metrics = as_metrics(metrics)

    def run(self, requests: Sequence[InferenceRequest]) -> ServingReport:
        """Serve ``requests`` (sorted by arrival) to completion."""
        if not requests:
            raise ServingError("no requests to serve")
        if any(b.arrival_s < a.arrival_s
               for a, b in zip(requests, requests[1:])):
            raise ServingError("requests are not sorted by arrival time")
        model = requests[0].model

        batcher = Batcher(self.batch_policy)
        admission = AdmissionController(self.admission_policy)
        scheduler = DispatchScheduler(self.service)
        tracer = self.tracer
        metrics = self.metrics
        faults: tuple[FaultEvent, ...] = (
            self.fault_schedule.events if self.fault_schedule else ()
        )
        monitor = HealthMonitor(self.service.replica_names(),
                                tracer=tracer) \
            if faults else None

        now = requests[0].arrival_s
        arrival_idx = 0
        fault_idx = 0
        seq = 0
        retry_seq = itertools.count()
        inflight: list[tuple[float, int, Dispatch]] = []
        retryq: list[tuple[float, int, InferenceRequest]] = []
        aborted: set[int] = set()
        inflight_seqs: dict[int, Dispatch] = {}
        completed: list[InferenceRequest] = []
        dropped: list[InferenceRequest] = []
        fault_counts: dict[str, int] = {}
        policy = self.integrity_policy
        corrupt: dict[int, str] = {}  # in-flight seq -> corruption cause
        integrity_counts: dict[str, int] = {}
        n_retries = 0
        masked: dict[str, set] = {}  # replica -> stuck TPE coords
        depth_integral = 0.0
        depth_max = 0
        t_start = requests[0].arrival_s
        t_last_complete = t_start

        def drop(request: InferenceRequest, reason: str,
                 at_s: float) -> None:
            request.drop_reason = reason
            dropped.append(request)
            metrics.counter(
                "serving_requests_dropped", "requests dropped, by reason"
            ).inc(reason=reason)
            tracer.add_span(
                "request", request.arrival_s, max(at_s, request.arrival_s),
                track="requests", id=request.request_id, status="dropped",
                reason=reason, attempts=request.attempts,
            )

        def retry_or_drop(request: InferenceRequest, at_s: float) -> None:
            """Requeue a fault-struck request, or drop it."""
            nonlocal n_retries
            if request.attempts >= self.retry_policy.max_attempts:
                drop(request, DROP_RETRY_EXHAUSTED, at_s)
                return
            retry_at = at_s + self.retry_policy.backoff_s(request.attempts)
            if retry_at >= request.deadline_at_s:
                drop(request, DROP_DEADLINE, at_s)
                return
            n_retries += 1
            metrics.counter(
                "serving_retries", "fault-driven retry dispatches"
            ).inc()
            tracer.instant(
                "failover.retry", at=at_s, track="engine",
                id=request.request_id, retry_at_s=retry_at,
            )
            heapq.heappush(retryq, (retry_at, next(retry_seq), request))

        def abort_inflight(replica: str, at_s: float) -> None:
            """Poison every batch in flight on ``replica``."""
            for seq_id, dispatch in list(inflight_seqs.items()):
                if dispatch.replica != replica or seq_id in aborted:
                    continue
                aborted.add(seq_id)
                del inflight_seqs[seq_id]
                corrupt.pop(seq_id, None)
                scheduler.by_name(replica).aborted_batches += 1
                for request in dispatch.batch.requests:
                    retry_or_drop(request, at_s)

        def mark_corrupt(replica: str, cause: str) -> None:
            """Silently corrupt the batches in flight on ``replica``.

            Unlike :func:`abort_inflight` nothing happens *now*: the
            batch keeps computing and the checksum verification settles
            its fate at retirement.  A batch struck more than once
            escalates to cause ``"multiple"`` — stacked corruptions are
            never localizable to a single element, so correction is off
            the table and only re-execution recovers the result.
            """
            for seq_id, dispatch in inflight_seqs.items():
                if dispatch.replica != replica:
                    continue
                corrupt[seq_id] = (
                    cause if seq_id not in corrupt else "multiple"
                )

        def apply_fault(event: FaultEvent) -> None:
            assert monitor is not None
            fault_counts[event.kind] = fault_counts.get(event.kind, 0) + 1
            metrics.counter(
                "faults_injected", "fault events applied, by kind"
            ).inc(kind=event.kind)
            tracer.instant(
                f"fault.{event.kind}", at=event.at_s, track=event.replica,
            )
            if isinstance(event, ReplicaCrash):
                replica = scheduler.by_name(event.replica)
                if replica.healthy:
                    abort_inflight(event.replica, event.at_s)
                    scheduler.crash(event.replica, event.at_s)
                    monitor.record_crash(event.replica, event.at_s)
            elif isinstance(event, ReplicaRecovery):
                scheduler.recover(event.replica, event.at_s)
                monitor.record_recovery(event.replica, event.at_s)
            elif isinstance(event, ReplicaSlowdown):
                replica = scheduler.by_name(event.replica)
                if replica.healthy:
                    replica.slow_factor = event.factor
                    monitor.record_slowdown(event.replica, event.at_s)
            elif isinstance(event, TPEFault):
                if event.stuck:
                    coords = masked.setdefault(event.replica, set())
                    coords.add(event.coord)
                    replica = scheduler.by_name(event.replica)
                    try:
                        replica.degrade_factor = (
                            self.service.degrade_slowdown(
                                frozenset(coords),
                                self.batch_policy.max_batch,
                            )
                        )
                    except (FaultError, ScheduleError):
                        # No healthy (schedulable) sub-grid left: the
                        # overlay is gone.
                        if replica.healthy:
                            abort_inflight(event.replica, event.at_s)
                            scheduler.crash(event.replica, event.at_s)
                            monitor.record_crash(event.replica, event.at_s)
                elif policy.detects:
                    mark_corrupt(event.replica, "tpe_transient")
                else:
                    abort_inflight(event.replica, event.at_s)
            elif isinstance(event, DramBitFlip):
                if not event.correctable:
                    monitor.record_dram_uncorrectable(
                        event.replica, event.at_s
                    )
                    if policy.detects:
                        mark_corrupt(event.replica, "dram_uncorrectable")
                    else:
                        abort_inflight(event.replica, event.at_s)
            elif isinstance(event, LinkFault):
                abort_inflight(event.replica, event.at_s)
            admission.fault_pressure = (
                scheduler.n_healthy < len(scheduler.replicas)
            )

        while (arrival_idx < len(requests) or retryq or len(batcher)
               or inflight_seqs):
            # Apply fault events due at the current instant first: a
            # crash at t must not receive work dispatched at t.
            while fault_idx < len(faults) and faults[fault_idx].at_s <= now:
                apply_fault(faults[fault_idx])
                fault_idx += 1

            # Requeue retries that have served their backoff.
            while retryq and retryq[0][0] <= now:
                _, _, request = heapq.heappop(retryq)
                batcher.push(request)
                depth_max = max(depth_max, batcher.depth)

            # Admit every arrival due at the current instant, so a burst
            # landing at one timestamp batches together.
            while (arrival_idx < len(requests)
                   and requests[arrival_idx].arrival_s <= now):
                request = requests[arrival_idx]
                arrival_idx += 1
                if admission.admit(batcher.depth):
                    batcher.push(request)
                    depth_max = max(depth_max, batcher.depth)

            # Shed queued requests whose deadline has already passed.
            for request in batcher.expire(now):
                drop(request, DROP_DEADLINE, now)

            # Launch batches while a replica is free and the policy fires.
            while True:
                replica = scheduler.free_replica(now)
                if replica is None:
                    break
                degraded = admission.degraded(batcher.depth)
                if not batcher.ready(now, degraded=degraded):
                    break
                if degraded:
                    admission.degraded_dispatches += 1
                batch = batcher.pop(now)
                dispatch = scheduler.dispatch(replica, batch, now)
                for req in batch.requests:
                    req.dispatch_s = now
                    req.batch_size = batch.size
                    req.replica = dispatch.replica
                    req.attempts += 1
                seq += 1
                inflight_seqs[seq] = dispatch
                heapq.heappush(
                    inflight, (dispatch.complete_s, seq, dispatch)
                )

            # Advance the clock to the next event.
            candidates = []
            if arrival_idx < len(requests):
                candidates.append(requests[arrival_idx].arrival_s)
            if retryq:
                candidates.append(retryq[0][0])
            if inflight_seqs:
                candidates.append(inflight[0][0])
            if fault_idx < len(faults):
                candidates.append(faults[fault_idx].at_s)
            if len(batcher):
                # A queued batch can next launch at its formation
                # deadline or when a replica frees, whichever is later —
                # provided any healthy replica exists; it can also shed
                # work at the earliest queued deadline.
                next_free = scheduler.next_free_s()
                if math.isfinite(next_free):
                    candidates.append(
                        max(batcher.next_deadline(), next_free)
                    )
                expiry = batcher.next_expiry_s()
                if math.isfinite(expiry):
                    candidates.append(expiry)
            if not candidates:
                # No replica will ever free and no event is pending:
                # strand-drop whatever is still queued or backing off.
                for request in batcher.pop_all():
                    drop(request, DROP_NO_REPLICA, now)
                while retryq:
                    _, _, request = heapq.heappop(retryq)
                    drop(request, DROP_NO_REPLICA, now)
                break
            next_t = max(min(candidates), now)
            depth_integral += batcher.depth * (next_t - now)
            now = next_t

            # Retire completions due at the new instant.
            while inflight and inflight[0][0] <= now:
                done_s, seq_id, dispatch = heapq.heappop(inflight)
                if seq_id in aborted:
                    aborted.discard(seq_id)
                    continue
                del inflight_seqs[seq_id]
                cause = corrupt.pop(seq_id, None)
                if cause is not None:
                    # The batch's ABFT verification fails here, after it
                    # paid its full service time.
                    integrity_counts["sdc_detected"] = (
                        integrity_counts.get("sdc_detected", 0) + 1
                    )
                    metrics.counter(
                        "integrity_events", "ABFT verification outcomes"
                    ).inc(kind="sdc_detected", cause=cause)
                    tracer.instant(
                        "integrity.sdc_detected", at=done_s,
                        track=dispatch.replica, cause=cause,
                        size=dispatch.batch.size,
                    )
                    if policy.corrects and cause == "tpe_transient":
                        # A lone accumulator upset: the row/column
                        # syndromes localize it and the repaired output
                        # re-verifies — serve the batch normally.
                        integrity_counts["corrected"] = (
                            integrity_counts.get("corrected", 0) + 1
                        )
                        metrics.counter(
                            "integrity_events", "ABFT verification outcomes"
                        ).inc(kind="corrected", cause=cause)
                        tracer.instant(
                            "integrity.corrected", at=done_s,
                            track=dispatch.replica,
                        )
                    elif policy.reexecutes:
                        integrity_counts["reexecuted"] = (
                            integrity_counts.get("reexecuted", 0) + 1
                        )
                        metrics.counter(
                            "integrity_events", "ABFT verification outcomes"
                        ).inc(kind="reexecuted", cause=cause)
                        tracer.instant(
                            "integrity.reexecuted", at=done_s,
                            track=dispatch.replica,
                            size=dispatch.batch.size,
                        )
                        for req in dispatch.batch.requests:
                            retry_or_drop(req, done_s)
                        continue
                    else:
                        integrity_counts["dropped"] = (
                            integrity_counts.get("dropped", 0) + 1
                        )
                        metrics.counter(
                            "integrity_events", "ABFT verification outcomes"
                        ).inc(kind="dropped", cause=cause)
                        for req in dispatch.batch.requests:
                            drop(req, DROP_SDC, done_s)
                        continue
                for req in dispatch.batch.requests:
                    req.complete_s = done_s
                    completed.append(req)
                    metrics.counter(
                        "serving_requests_completed", "requests served"
                    ).inc()
                    metrics.histogram(
                        "serving_request_latency_s",
                        "end-to-end request latency, seconds",
                    ).observe(done_s - req.arrival_s)
                if tracer.enabled:
                    self._trace_batch(tracer, dispatch, done_s)
                t_last_complete = max(t_last_complete, done_s)

        makespan = t_last_complete - t_start
        if metrics.enabled:
            for name, util in scheduler.utilization(makespan).items():
                metrics.gauge(
                    "serving_replica_utilization",
                    "busy fraction over the makespan",
                ).set(util, replica=name)
            metrics.gauge(
                "serving_queue_depth_max", "peak batcher queue depth"
            ).set(depth_max)
            metrics.counter(
                "serving_requests_rejected", "arrivals refused by admission"
            ).inc(admission.rejected)
        return ServingReport(
            model=model,
            completed=tuple(completed),
            n_rejected=admission.rejected,
            slo_s=self.slo_s,
            makespan_s=makespan,
            queue_depth_time_avg=(
                depth_integral / makespan if makespan > 0 else 0.0
            ),
            queue_depth_max=depth_max,
            utilization=scheduler.utilization(makespan),
            degraded_dispatches=admission.degraded_dispatches,
            cache_stats=self.service.cache_stats(),
            dropped=tuple(dropped),
            n_retries=n_retries,
            fault_counts=dict(sorted(fault_counts.items())),
            integrity_policy=policy.value if policy.detects else None,
            integrity_counts=dict(sorted(integrity_counts.items())),
            health=(
                monitor.finalize(t_last_complete, t_start)
                if monitor is not None else None
            ),
        )

    def _trace_batch(self, tracer: Tracer, dispatch: Dispatch,
                     done_s: float) -> None:
        trace_retired_batch(self.service, tracer, dispatch, done_s)


def trace_retired_batch(
    service: ReplicaService | PipelineService,
    tracer: Tracer,
    dispatch: Dispatch,
    done_s: float,
) -> None:
    """Emit a retired batch's span and its requests' lifecycle trees.

    Timestamps are the exact virtual-clock instants the engine
    already stamped on the requests, so every ``request`` root
    span's duration *is* that request's end-to-end latency, and the
    ``queue`` / ``compute`` / ``dram`` children partition it.  The
    compute/DRAM boundary applies the service model's healthy
    compute fraction to the batch's actual (possibly slowdown- or
    degrade-inflated) service interval.

    Shared by the single-engine and cluster event loops, so fleet
    traces carry identical lifecycle trees.
    """
    batch = dispatch.batch
    tracer.add_span(
        "batch", dispatch.start_s, done_s, track=dispatch.replica,
        size=batch.size,
    )
    split = getattr(service, "latency_split", None)
    compute_s, transfer_s = split(batch.size) if split else (1.0, 0.0)
    total = compute_s + transfer_s
    frac = compute_s / total if total > 0 else 1.0
    for req in batch.requests:
        root = tracer.add_span(
            "request", req.arrival_s, done_s, track="requests",
            id=req.request_id, status="completed",
            replica=dispatch.replica, batch=batch.size,
            attempts=req.attempts,
        )
        dispatch_s = req.dispatch_s
        assert dispatch_s is not None
        tracer.add_span(
            "queue", req.arrival_s, dispatch_s, parent=root,
            track="requests", id=req.request_id,
        )
        # min() guards the last-ulp case where frac == 1.0 and the
        # add rounds a hair past done_s.
        compute_end = min(
            dispatch_s + (done_s - dispatch_s) * frac, done_s
        )
        tracer.add_span(
            "compute", dispatch_s, compute_end, parent=root,
            track="requests", id=req.request_id,
        )
        tracer.add_span(
            "dram", compute_end, done_s, parent=root,
            track="requests", id=req.request_id,
        )
