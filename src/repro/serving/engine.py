"""Event-driven serving loop over a virtual clock.

The engine is a discrete-event simulator with three event sources: the
arrival trace, batch-formation deadlines, and batch completions.  It is
fully deterministic — virtual time only, no wall clock, no RNG — so a
fixed arrival trace always reproduces identical metrics bit-for-bit.

A request's end-to-end latency decomposes exactly as:

    queue wait (arrival → batch launch, bounded by admission + max_wait)
  + service    (Σ scheduled layer cycles / f_clk + DRAM transfer)

with the batch-formation wait folded into the queue wait: a request that
arrives first and waits for the batch to fill pays that wait in its
dispatch delta.
"""

from __future__ import annotations

import heapq
from typing import Sequence

from repro.errors import ServingError
from repro.serving.admission import AdmissionController, AdmissionPolicy
from repro.serving.batcher import Batcher, BatchPolicy
from repro.serving.metrics import ServingReport
from repro.serving.request import InferenceRequest
from repro.serving.scheduler import (
    DispatchScheduler,
    PipelineService,
    ReplicaService,
)


class ServingEngine:
    """Run one arrival trace through batcher → scheduler → replicas."""

    def __init__(
        self,
        service: ReplicaService | PipelineService,
        batch_policy: BatchPolicy | None = None,
        admission_policy: AdmissionPolicy | None = None,
        slo_s: float = 10e-3,
    ):
        if slo_s <= 0:
            raise ServingError(f"slo_s must be positive, got {slo_s}")
        self.service = service
        self.batch_policy = batch_policy or BatchPolicy()
        self.admission_policy = admission_policy or AdmissionPolicy()
        self.slo_s = slo_s

    def run(self, requests: Sequence[InferenceRequest]) -> ServingReport:
        """Serve ``requests`` (sorted by arrival) to completion."""
        if not requests:
            raise ServingError("no requests to serve")
        if any(b.arrival_s < a.arrival_s
               for a, b in zip(requests, requests[1:])):
            raise ServingError("requests are not sorted by arrival time")
        model = requests[0].model

        batcher = Batcher(self.batch_policy)
        admission = AdmissionController(self.admission_policy)
        scheduler = DispatchScheduler(self.service)

        now = requests[0].arrival_s
        arrival_idx = 0
        seq = 0
        inflight: list[tuple[float, int, object]] = []  # (done_s, seq, Dispatch)
        completed: list[InferenceRequest] = []
        depth_integral = 0.0
        depth_max = 0
        t_start = requests[0].arrival_s
        t_last_complete = t_start

        while arrival_idx < len(requests) or len(batcher) or inflight:
            # Admit every arrival due at the current instant first, so a
            # burst landing at one timestamp batches together.
            while (arrival_idx < len(requests)
                   and requests[arrival_idx].arrival_s <= now):
                request = requests[arrival_idx]
                arrival_idx += 1
                if admission.admit(batcher.depth):
                    batcher.push(request)
                    depth_max = max(depth_max, batcher.depth)

            # Launch batches while a replica is free and the policy fires.
            while True:
                replica = scheduler.free_replica(now)
                if replica is None:
                    break
                degraded = admission.degraded(batcher.depth)
                if not batcher.ready(now, degraded=degraded):
                    break
                if degraded:
                    admission.degraded_dispatches += 1
                batch = batcher.pop(now)
                dispatch = scheduler.dispatch(replica, batch, now)
                for req in batch.requests:
                    req.dispatch_s = now
                    req.batch_size = batch.size
                    req.replica = dispatch.replica
                seq += 1
                heapq.heappush(
                    inflight, (dispatch.complete_s, seq, dispatch)
                )

            # Advance the clock to the next event.
            candidates = []
            if arrival_idx < len(requests):
                candidates.append(requests[arrival_idx].arrival_s)
            if inflight:
                candidates.append(inflight[0][0])
            if len(batcher):
                # A queued batch can next launch at its formation
                # deadline or when a replica frees, whichever is later.
                candidates.append(
                    max(batcher.next_deadline(), scheduler.next_free_s())
                )
            if not candidates:
                break
            next_t = max(min(candidates), now)
            depth_integral += batcher.depth * (next_t - now)
            now = next_t

            # Retire completions due at the new instant.
            while inflight and inflight[0][0] <= now:
                done_s, _, dispatch = heapq.heappop(inflight)
                for req in dispatch.batch.requests:
                    req.complete_s = done_s
                    completed.append(req)
                t_last_complete = max(t_last_complete, done_s)

        makespan = t_last_complete - t_start
        return ServingReport(
            model=model,
            completed=tuple(completed),
            n_rejected=admission.rejected,
            slo_s=self.slo_s,
            makespan_s=makespan,
            queue_depth_time_avg=(
                depth_integral / makespan if makespan > 0 else 0.0
            ),
            queue_depth_max=depth_max,
            utilization=scheduler.utilization(makespan),
            degraded_dispatches=admission.degraded_dispatches,
            cache_stats=self.service.cache_stats(),
        )
