"""Inference requests and deterministic arrival processes.

The serving runtime is driven entirely by virtual time, so a workload is
just a sorted list of arrival instants.  Three generators cover the
usual experiments: a seeded Poisson process (open-loop traffic at a
target offered load), a uniform process (the deterministic control), and
a replayed trace.  Every stochastic path takes an explicit ``seed`` —
there is no module-level RNG anywhere in this package, so identical
inputs always reproduce identical metrics.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Iterable, Sequence

from repro.errors import ServingError


@dataclass
class InferenceRequest:
    """One inference request travelling through the serving runtime.

    Attributes:
        request_id: Dense index, unique within one run.
        model: Workload name (informational; one engine serves one model).
        arrival_s: Virtual-clock arrival instant, seconds.
        dispatch_s: Set by the engine when the request's batch launches.
        complete_s: Set by the engine when the batch finishes.
        batch_size: Size of the batch the request rode in.
        replica: Name of the overlay replica that served it.
    """

    request_id: int
    model: str
    arrival_s: float
    dispatch_s: float | None = field(default=None, compare=False)
    complete_s: float | None = field(default=None, compare=False)
    batch_size: int = field(default=0, compare=False)
    replica: str = field(default="", compare=False)

    @property
    def latency_s(self) -> float:
        """End-to-end latency: queue wait + batch formation + service."""
        if self.complete_s is None:
            raise ServingError(f"request {self.request_id} not complete")
        return self.complete_s - self.arrival_s

    @property
    def queue_wait_s(self) -> float:
        """Time from arrival to batch dispatch."""
        if self.dispatch_s is None:
            raise ServingError(f"request {self.request_id} not dispatched")
        return self.dispatch_s - self.arrival_s


def poisson_arrivals(
    rate_rps: float, n_requests: int, *, seed: int, start_s: float = 0.0
) -> list[float]:
    """Arrival instants of a Poisson process at ``rate_rps`` requests/s.

    Args:
        rate_rps: Mean offered load (1/rate is the mean inter-arrival gap).
        n_requests: Number of arrivals to draw.
        seed: RNG seed; required so every run is reproducible.
        start_s: Virtual time of the process origin.

    Raises:
        ServingError: for a non-positive rate or request count.
    """
    if rate_rps <= 0:
        raise ServingError(f"arrival rate must be positive, got {rate_rps}")
    if n_requests < 1:
        raise ServingError(f"need >= 1 request, got {n_requests}")
    rng = random.Random(seed)
    t = start_s
    times = []
    for _ in range(n_requests):
        t += rng.expovariate(rate_rps)
        times.append(t)
    return times


def uniform_arrivals(
    rate_rps: float, n_requests: int, *, start_s: float = 0.0
) -> list[float]:
    """Evenly spaced arrivals at ``rate_rps`` — the deterministic control.

    Raises:
        ServingError: for a non-positive rate or request count.
    """
    if rate_rps <= 0:
        raise ServingError(f"arrival rate must be positive, got {rate_rps}")
    if n_requests < 1:
        raise ServingError(f"need >= 1 request, got {n_requests}")
    gap = 1.0 / rate_rps
    return [start_s + (i + 1) * gap for i in range(n_requests)]


def trace_arrivals(times: Iterable[float]) -> list[float]:
    """Validate and normalize a replayed arrival trace.

    Raises:
        ServingError: if the trace is empty, unsorted, or has negative
            instants.
    """
    out = list(times)
    if not out:
        raise ServingError("arrival trace is empty")
    if any(t < 0 for t in out):
        raise ServingError("arrival trace has negative instants")
    if any(b < a for a, b in zip(out, out[1:])):
        raise ServingError("arrival trace is not sorted")
    return out


def make_requests(times: Sequence[float], model: str) -> list[InferenceRequest]:
    """Wrap sorted arrival instants into :class:`InferenceRequest` objects."""
    validated = trace_arrivals(times)
    return [
        InferenceRequest(request_id=i, model=model, arrival_s=t)
        for i, t in enumerate(validated)
    ]
