"""Inference requests and deterministic arrival processes.

The serving runtime is driven entirely by virtual time, so a workload is
just a sorted list of arrival instants.  Three generators cover the
usual experiments: a seeded Poisson process (open-loop traffic at a
target offered load), a uniform process (the deterministic control), and
a replayed trace.  Every stochastic path takes an explicit ``seed`` —
there is no module-level RNG anywhere in this package, so identical
inputs always reproduce identical metrics.

Every numeric knob is validated as *finite*: a NaN rate or wait silently
poisons every downstream comparison (NaN compares false against
everything), so the generators and policies reject non-finite inputs
loudly instead.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import Iterable, Sequence

from repro.errors import ServingError


def require_finite(name: str, value: float) -> float:
    """Reject NaN/inf knobs with a clear message.

    Raises:
        ServingError: if ``value`` is not a finite number.
    """
    if not math.isfinite(value):
        raise ServingError(f"{name} must be finite, got {value}")
    return value


@dataclass
class InferenceRequest:
    """One inference request travelling through the serving runtime.

    Attributes:
        request_id: Dense index, unique within one run.
        model: Workload name (informational; one engine serves one model).
        arrival_s: Virtual-clock arrival instant, seconds.
        deadline_s: Optional end-to-end deadline *relative to arrival*;
            a request that cannot dispatch (or retry) before
            ``arrival_s + deadline_s`` is dropped and counted.
        dispatch_s: Set by the engine when the request's batch launches.
        complete_s: Set by the engine when the batch finishes.
        batch_size: Size of the batch the request rode in.
        replica: Name of the overlay replica that served it.
        attempts: Dispatch attempts consumed (> 1 means the request was
            retried after a fault).
        drop_reason: Why the request was dropped (``None`` if it was
            not), e.g. ``"deadline"`` or ``"retry_exhausted"``.
        tenant: Owning tenant for fleet-scale fair-share admission
            (:mod:`repro.cluster`); single-engine runs leave the
            default and behave exactly as before.
    """

    request_id: int
    model: str
    arrival_s: float
    deadline_s: float | None = field(default=None, compare=False)
    dispatch_s: float | None = field(default=None, compare=False)
    complete_s: float | None = field(default=None, compare=False)
    batch_size: int = field(default=0, compare=False)
    replica: str = field(default="", compare=False)
    attempts: int = field(default=0, compare=False)
    drop_reason: str | None = field(default=None, compare=False)
    tenant: str = field(default="default", compare=False)

    def __post_init__(self) -> None:
        require_finite("arrival_s", self.arrival_s)
        if self.deadline_s is not None:
            require_finite("deadline_s", self.deadline_s)
            if self.deadline_s <= 0:
                raise ServingError(
                    f"deadline_s must be positive, got {self.deadline_s}"
                )

    @property
    def deadline_at_s(self) -> float:
        """Absolute drop-dead instant (inf when no deadline is set)."""
        if self.deadline_s is None:
            return math.inf
        return self.arrival_s + self.deadline_s

    def expired(self, now_s: float) -> bool:
        """Whether the deadline has passed at ``now_s``."""
        return now_s >= self.deadline_at_s

    @property
    def latency_s(self) -> float:
        """End-to-end latency: queue wait + batch formation + service."""
        if self.complete_s is None:
            raise ServingError(f"request {self.request_id} not complete")
        return self.complete_s - self.arrival_s

    @property
    def queue_wait_s(self) -> float:
        """Time from arrival to batch dispatch."""
        if self.dispatch_s is None:
            raise ServingError(f"request {self.request_id} not dispatched")
        return self.dispatch_s - self.arrival_s


@dataclass(frozen=True)
class RetryPolicy:
    """Deadline-aware retry with capped exponential backoff.

    When a fault kills a dispatched batch, each of its requests is
    retried after ``backoff_s(attempts)`` — unless its attempt budget is
    exhausted or the backoff would land past its deadline, in which case
    it is dropped with a structured reason.

    Attributes:
        max_attempts: Total dispatch attempts per request (1 = never
            retry).
        backoff_base_s: Backoff after the first failed attempt; doubles
            per subsequent failure.
        backoff_cap_s: Upper bound on any single backoff.
    """

    max_attempts: int = 3
    backoff_base_s: float = 1e-3
    backoff_cap_s: float = 16e-3

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ServingError(
                f"max_attempts must be >= 1, got {self.max_attempts}"
            )
        require_finite("backoff_base_s", self.backoff_base_s)
        require_finite("backoff_cap_s", self.backoff_cap_s)
        if self.backoff_base_s < 0 or self.backoff_cap_s < 0:
            raise ServingError(
                f"backoff must be >= 0, got base {self.backoff_base_s}, "
                f"cap {self.backoff_cap_s}"
            )

    def backoff_s(self, failed_attempts: int) -> float:
        """Backoff before retry number ``failed_attempts`` (1-based)."""
        if failed_attempts < 1:
            raise ServingError(
                f"failed_attempts must be >= 1, got {failed_attempts}"
            )
        return min(
            self.backoff_base_s * 2 ** (failed_attempts - 1),
            self.backoff_cap_s,
        )


def poisson_arrivals(
    rate_rps: float, n_requests: int, *, seed: int, start_s: float = 0.0
) -> list[float]:
    """Arrival instants of a Poisson process at ``rate_rps`` requests/s.

    Args:
        rate_rps: Mean offered load (1/rate is the mean inter-arrival gap).
        n_requests: Number of arrivals to draw.
        seed: RNG seed; required so every run is reproducible.
        start_s: Virtual time of the process origin.

    Raises:
        ServingError: for a non-positive or non-finite rate, request
            count, or start instant.
    """
    require_finite("rate_rps", rate_rps)
    require_finite("start_s", start_s)
    if rate_rps <= 0:
        raise ServingError(f"arrival rate must be positive, got {rate_rps}")
    if n_requests < 1:
        raise ServingError(f"need >= 1 request, got {n_requests}")
    rng = random.Random(seed)
    t = start_s
    times = []
    for _ in range(n_requests):
        t += rng.expovariate(rate_rps)
        times.append(t)
    return times


def uniform_arrivals(
    rate_rps: float, n_requests: int, *, start_s: float = 0.0
) -> list[float]:
    """Evenly spaced arrivals at ``rate_rps`` — the deterministic control.

    Raises:
        ServingError: for a non-positive or non-finite rate, request
            count, or start instant.
    """
    require_finite("rate_rps", rate_rps)
    require_finite("start_s", start_s)
    if rate_rps <= 0:
        raise ServingError(f"arrival rate must be positive, got {rate_rps}")
    if n_requests < 1:
        raise ServingError(f"need >= 1 request, got {n_requests}")
    gap = 1.0 / rate_rps
    return [start_s + (i + 1) * gap for i in range(n_requests)]


def trace_arrivals(times: Iterable[float]) -> list[float]:
    """Validate and normalize a replayed arrival trace.

    Raises:
        ServingError: if the trace is empty, unsorted, or has negative
            or non-finite instants.
    """
    out = list(times)
    if not out:
        raise ServingError("arrival trace is empty")
    if any(not math.isfinite(t) for t in out):
        raise ServingError("arrival trace has non-finite instants")
    if any(t < 0 for t in out):
        raise ServingError("arrival trace has negative instants")
    if any(b < a for a, b in zip(out, out[1:])):
        raise ServingError("arrival trace is not sorted")
    return out


def make_requests(
    times: Sequence[float],
    model: str,
    deadline_s: float | None = None,
) -> list[InferenceRequest]:
    """Wrap sorted arrival instants into :class:`InferenceRequest` objects.

    ``deadline_s`` (relative to each arrival) applies to every request.
    """
    validated = trace_arrivals(times)
    return [
        InferenceRequest(
            request_id=i, model=model, arrival_s=t, deadline_s=deadline_s
        )
        for i, t in enumerate(validated)
    ]
