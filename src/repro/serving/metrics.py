"""Serving metrics: throughput, tail latency, utilization, SLO tracking.

Percentiles use the nearest-rank method (deterministic, no
interpolation), matching how serving dashboards usually define p99: the
smallest observed latency that at least 99% of requests met.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.compiler.cache import CacheStats
from repro.errors import ServingError
from repro.faults.monitor import HealthReport
from repro.serving.request import InferenceRequest


def percentile(values: list[float], q: float) -> float:
    """Nearest-rank percentile of ``values`` (``q`` in [0, 100])."""
    if not values:
        raise ServingError("percentile of empty sample")
    if not 0.0 <= q <= 100.0:
        raise ServingError(f"percentile must be in [0, 100], got {q}")
    ordered = sorted(values)
    if q == 0.0:
        return ordered[0]
    rank = int(max(1, -(-len(ordered) * q // 100)))  # ceil(n * q / 100)
    # The float ceil can land one past the last sample on tiny n (e.g.
    # p99 of 2 values); a high percentile clamps to the max, never past.
    return ordered[min(rank, len(ordered)) - 1]


@dataclass(frozen=True)
class ServingReport:
    """Aggregate outcome of one serving run.

    Attributes:
        model: Workload name.
        completed: Every request that finished, in completion order.
        n_rejected: Arrivals turned away by admission control.
        slo_s: Latency objective the run was measured against.
        makespan_s: Virtual time from first arrival to last completion.
        queue_depth_time_avg: Time-weighted mean batcher queue depth.
        queue_depth_max: Peak batcher queue depth.
        utilization: Busy fraction per replica over the makespan.
        degraded_dispatches: Batches launched under the degraded
            (formation-wait waived) admission regime.
        cache_stats: Schedule-cache counters accumulated by the run.
        dropped: Requests dropped in flight or in queue (expired
            deadline, exhausted retries, no healthy replica), each
            carrying its ``drop_reason``.
        n_retries: Retry dispatches performed after faults.
        fault_counts: Injected fault events by kind (empty when the run
            had no fault schedule).
        integrity_policy: Active ABFT policy value (``"detect"``,
            ``"detect-reexecute"``, ``"detect-correct"``); ``None``
            when integrity checking was off.
        integrity_counts: ABFT verification outcomes, in batches:
            ``sdc_detected`` (failed verifications), partitioned
            exactly into ``corrected`` + ``reexecuted`` + ``dropped``.
        health: Replica health summary (None when no fault schedule).
    """

    model: str
    completed: tuple[InferenceRequest, ...]
    n_rejected: int
    slo_s: float
    makespan_s: float
    queue_depth_time_avg: float
    queue_depth_max: int
    utilization: dict[str, float] = field(default_factory=dict)
    degraded_dispatches: int = 0
    cache_stats: CacheStats | None = None
    dropped: tuple[InferenceRequest, ...] = ()
    n_retries: int = 0
    fault_counts: dict[str, int] = field(default_factory=dict)
    integrity_policy: str | None = None
    integrity_counts: dict[str, int] = field(default_factory=dict)
    health: HealthReport | None = None

    # ------------------------------------------------------------------ #
    @property
    def n_completed(self) -> int:
        return len(self.completed)

    @property
    def n_dropped(self) -> int:
        return len(self.dropped)

    @property
    def n_offered(self) -> int:
        return self.n_completed + self.n_rejected + self.n_dropped

    @property
    def drop_reasons(self) -> dict[str, int]:
        """Drop count per reason, sorted by reason."""
        reasons: dict[str, int] = {}
        for request in self.dropped:
            key = request.drop_reason or "unknown"
            reasons[key] = reasons.get(key, 0) + 1
        return dict(sorted(reasons.items()))

    @property
    def drop_rate(self) -> float:
        return self.n_dropped / self.n_offered if self.n_offered else 0.0

    @property
    def availability(self) -> float:
        """Share of offered requests that completed (request-level)."""
        if not self.n_offered:
            return 1.0
        return self.n_completed / self.n_offered

    @property
    def throughput_rps(self) -> float:
        """Sustained completions per virtual second."""
        if self.makespan_s <= 0:
            return 0.0
        return self.n_completed / self.makespan_s

    @property
    def latencies_s(self) -> list[float]:
        return [r.latency_s for r in self.completed]

    def latency_percentile_s(self, q: float) -> float:
        """Nearest-rank latency percentile; 0.0 over an empty window."""
        lat = self.latencies_s
        return percentile(lat, q) if lat else 0.0

    @property
    def p50_s(self) -> float:
        return self.latency_percentile_s(50)

    @property
    def p95_s(self) -> float:
        return self.latency_percentile_s(95)

    @property
    def p99_s(self) -> float:
        return self.latency_percentile_s(99)

    @property
    def mean_latency_s(self) -> float:
        lat = self.latencies_s
        return sum(lat) / len(lat) if lat else 0.0

    @property
    def mean_queue_wait_s(self) -> float:
        waits = [r.queue_wait_s for r in self.completed]
        return sum(waits) / len(waits) if waits else 0.0

    @property
    def mean_batch_size(self) -> float:
        if not self.completed:
            return 0.0
        # Each request carries its batch's size; averaging per *batch*
        # weighs a size-1 straggler equally with a full batch.
        batches: dict[tuple[str, float], int] = {}
        for r in self.completed:
            assert r.dispatch_s is not None
            batches[(r.replica, r.dispatch_s)] = r.batch_size
        return sum(batches.values()) / len(batches)

    @property
    def slo_violations(self) -> int:
        """Completed requests over the SLO plus every rejection and drop."""
        late = sum(1 for lat in self.latencies_s if lat > self.slo_s)
        return late + self.n_rejected + self.n_dropped

    @property
    def slo_violation_rate(self) -> float:
        if not self.n_offered:
            return 0.0
        return self.slo_violations / self.n_offered

    @property
    def mean_utilization(self) -> float:
        if not self.utilization:
            return 0.0
        return sum(self.utilization.values()) / len(self.utilization)

    # ------------------------------------------------------------------ #
    def describe(self) -> str:
        """Multi-line report table."""
        lines = [
            f"serving report — {self.model}",
            f"  offered        : {self.n_offered} requests "
            f"({self.n_rejected} rejected, "
            f"{self.n_rejected / max(self.n_offered, 1):.1%})",
            f"  throughput     : {self.throughput_rps:,.1f} req/s sustained "
            f"over {self.makespan_s * 1e3:,.2f} ms",
        ]
        if self.completed:
            lines += [
                f"  latency        : p50 {self.p50_s * 1e3:8.3f} ms | "
                f"p95 {self.p95_s * 1e3:8.3f} ms | "
                f"p99 {self.p99_s * 1e3:8.3f} ms | "
                f"mean {self.mean_latency_s * 1e3:8.3f} ms",
                f"  queue wait     : mean {self.mean_queue_wait_s * 1e3:.3f} "
                f"ms; depth avg {self.queue_depth_time_avg:.2f} / "
                f"max {self.queue_depth_max}",
                f"  batching       : mean batch {self.mean_batch_size:.2f}, "
                f"{self.degraded_dispatches} degraded dispatches",
            ]
        lines.append(
            f"  SLO {self.slo_s * 1e3:6.2f} ms   : "
            f"{self.slo_violations} violations "
            f"({self.slo_violation_rate:.2%} of offered)"
        )
        if self.dropped or self.fault_counts or self.health is not None:
            reasons = ", ".join(
                f"{reason}={count}"
                for reason, count in self.drop_reasons.items()
            )
            lines.append(
                f"  availability   : {self.availability:.2%} "
                f"({self.n_dropped} dropped"
                + (f": {reasons}" if reasons else "")
                + f", {self.n_retries} retries)"
            )
            if self.fault_counts:
                injected = ", ".join(
                    f"{kind}={count}"
                    for kind, count in sorted(self.fault_counts.items())
                )
                lines.append(f"  faults         : {injected}")
            if self.integrity_policy is not None:
                outcomes = ", ".join(
                    f"{kind}={count}"
                    for kind, count in sorted(self.integrity_counts.items())
                ) or "no SDC detected"
                lines.append(
                    f"  integrity      : policy={self.integrity_policy}; "
                    f"{outcomes}"
                )
            if self.health is not None:
                lines.append(f"  health         : {self.health.describe()}")
        for name, util in self.utilization.items():
            lines.append(f"  util {name:14s}: {util:7.1%}")
        if self.cache_stats is not None:
            lines.append(f"  schedule cache : {self.cache_stats.describe()}")
        return "\n".join(lines)
