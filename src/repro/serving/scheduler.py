"""Dispatch across overlay replicas or a multi-FPGA pipeline.

Two deployment shapes, one dispatch interface:

* :class:`ReplicaService` — N identical single-overlay replicas, each
  serving whole batches end-to-end.  A batch occupies its replica for the
  full service time.
* :class:`PipelineService` — one logical server built from
  :func:`repro.analysis.partition.plan_deployment`: the model's layers
  are split across devices and batches stream through the stages.  A
  batch's *latency* is the sum of all stage times (fill), but the
  pipeline accepts the next batch after only the *bottleneck* stage time
  (initiation interval), so occupancy < latency.

:class:`DispatchScheduler` is deployment-agnostic: it tracks per-replica
free times and busy accounting, and places each batch on the replica
that frees earliest.
"""

from __future__ import annotations

import dataclasses
import math
from dataclasses import dataclass
from typing import Collection

from repro.analysis.partition import plan_deployment
from repro.compiler.cache import CacheStats, ScheduleCache
from repro.errors import FaultError, ServingError
from repro.faults.events import TpeCoord
from repro.faults.mask import FaultMask, largest_healthy_subgrid
from repro.overlay.config import OverlayConfig
from repro.serving.batcher import Batch, BatchServiceModel
from repro.workloads.network import Network


class ReplicaService:
    """Service model for N identical single-overlay replicas."""

    def __init__(self, model: BatchServiceModel, n_replicas: int = 1):
        if n_replicas < 1:
            raise ServingError(f"need >= 1 replica, got {n_replicas}")
        self.model = model
        self.n_replicas = n_replicas
        self._degraded: dict[tuple[int, int, int], BatchServiceModel] = {}

    def latency_s(self, batch_size: int) -> float:
        return self.model.service_s(batch_size)

    def occupancy_s(self, batch_size: int) -> float:
        return self.model.service_s(batch_size)

    def latency_split(self, batch_size: int) -> tuple[float, float]:
        """(compute_s, dram_transfer_s) decomposition of the healthy
        service time — the tracer uses the ratio to subdivide a batch's
        service span."""
        cost = self.model.cost(batch_size)
        return cost.compute_s, cost.transfer_s

    def cache_stats(self) -> CacheStats:
        return self.model.cache.stats()

    def replica_names(self) -> list[str]:
        return [f"overlay{i}" for i in range(self.n_replicas)]

    def degrade_slowdown(
        self, masked: Collection[TpeCoord], batch_size: int
    ) -> float:
        """Service-time inflation of running on the largest healthy
        sub-grid that avoids ``masked`` TPEs, at ``batch_size``.

        The degraded grid's :class:`BatchServiceModel` is compiled once
        per distinct sub-grid shape and memoized; the returned factor
        multiplies the healthy service time (1.0 = no masked TPEs).

        Raises:
            FaultError: if no healthy sub-grid remains.
        """
        if not masked:
            return 1.0
        config = largest_healthy_subgrid(
            self.model.config, FaultMask.from_coords(masked)
        )
        if config.grid == self.model.config.grid:
            return 1.0
        if config.grid not in self._degraded:
            self._degraded[config.grid] = BatchServiceModel(
                self.model.network, config
            )
        degraded_s = self._degraded[config.grid].service_s(batch_size)
        return max(1.0, degraded_s / self.model.service_s(batch_size))


class PipelineService:
    """Service model for one multi-FPGA pipeline (optionally replicated).

    Built from :func:`plan_deployment`: each pipeline stage gets its own
    :class:`BatchServiceModel` over its partition, compiled against the
    stage's residency outcome (resident stages drop the per-frame weight
    stream).  Compiled schedules are shared across replicas — the
    pipelines are identical, so one set of schedule caches serves all.
    """

    def __init__(
        self,
        network: Network,
        config: OverlayConfig,
        n_devices: int,
        n_replicas: int = 1,
        objective: str = "balance",
        store=None,
    ):
        if n_replicas < 1:
            raise ServingError(f"need >= 1 replica, got {n_replicas}")
        plan = plan_deployment(network, config, n_devices=n_devices,
                               objective=objective)
        if not plan.stages:
            raise ServingError(
                f"deployment plan for {network.name!r} has no stages"
            )
        self.plan = plan
        self.n_replicas = n_replicas
        self._stages = []
        for stage in plan.stages:
            stage_config = (
                dataclasses.replace(config, weights_resident=True)
                if stage.resident else config
            )
            # Stages share one persistent store safely: the store key
            # includes the stage's config signature, so resident and
            # non-resident stages never collide.
            self._stages.append(BatchServiceModel(
                stage.partition, stage_config,
                objective=objective,
                cache=ScheduleCache(stage_config, objective=objective,
                                    store=store),
            ))

    @property
    def n_devices(self) -> int:
        return len(self._stages)

    def latency_s(self, batch_size: int) -> float:
        """Pipeline fill: a batch traverses every stage in sequence."""
        return sum(s.service_s(batch_size) for s in self._stages)

    def occupancy_s(self, batch_size: int) -> float:
        """Initiation interval: the bottleneck stage gates admission."""
        return max(s.service_s(batch_size) for s in self._stages)

    def latency_split(self, batch_size: int) -> tuple[float, float]:
        """(compute_s, dram_transfer_s) summed across the pipeline's
        stages — the fill latency's decomposition."""
        costs = [s.cost(batch_size) for s in self._stages]
        return (
            sum(c.compute_s for c in costs),
            sum(c.transfer_s for c in costs),
        )

    def cache_stats(self) -> CacheStats:
        """Aggregate schedule-cache counters across the pipeline stages."""
        stats = [s.cache.stats() for s in self._stages]
        return CacheStats(
            hits=sum(s.hits for s in stats),
            misses=sum(s.misses for s in stats),
            evictions=sum(s.evictions for s in stats),
            size=sum(s.size for s in stats),
            max_entries=None,
            persistent_hits=sum(s.persistent_hits for s in stats),
            persistent_misses=sum(s.persistent_misses for s in stats),
            persistent_stores=sum(s.persistent_stores for s in stats),
            persistent_corrupt=sum(s.persistent_corrupt for s in stats),
            has_store=any(s.has_store for s in stats),
        )

    def replica_names(self) -> list[str]:
        return [
            f"pipeline{i}x{self.n_devices}" for i in range(self.n_replicas)
        ]

    def degrade_slowdown(
        self, masked: Collection[TpeCoord], batch_size: int
    ) -> float:
        """Pipeline service inflation under a per-device TPE mask.

        Approximation: the mask is applied to every stage's grid (the
        stages share the replica's physical overlay shape) and the
        inflation of the *bottleneck* stage is returned, since the
        initiation interval gates pipeline throughput.

        Raises:
            FaultError: if no healthy sub-grid remains.
        """
        if not masked:
            return 1.0
        worst = 1.0
        for stage in self._stages:
            config = largest_healthy_subgrid(
                stage.config, FaultMask.from_coords(masked)
            )
            if config.grid == stage.config.grid:
                continue
            degraded = BatchServiceModel(stage.network, config)
            worst = max(
                worst, degraded.service_s(batch_size)
                / stage.service_s(batch_size)
            )
        return worst


@dataclass
class ReplicaState:
    """Dispatch and health bookkeeping for one replica.

    Attributes:
        healthy: False while crashed; the scheduler never places work
            on an unhealthy replica.
        slow_factor: Service-time multiplier from throttling faults
            (1.0 = full speed); cleared on recovery.
        degrade_factor: Service-time multiplier from running on a
            masked (degraded) sub-grid; permanent for the run.
    """

    name: str
    free_at_s: float = 0.0
    busy_s: float = 0.0
    batches: int = 0
    requests: int = 0
    healthy: bool = True
    slow_factor: float = 1.0
    degrade_factor: float = 1.0
    crashes: int = 0
    aborted_batches: int = 0

    @property
    def service_factor(self) -> float:
        """Combined service-time inflation for new dispatches."""
        return self.slow_factor * self.degrade_factor


@dataclass(frozen=True)
class Dispatch:
    """Outcome of placing one batch."""

    batch: Batch
    replica: str
    start_s: float
    complete_s: float


class DispatchScheduler:
    """Earliest-free placement of batches onto *healthy* replicas."""

    def __init__(self, service: ReplicaService | PipelineService):
        self.service = service
        self.replicas = [
            ReplicaState(name=name) for name in service.replica_names()
        ]
        self._by_name = {r.name: r for r in self.replicas}

    def by_name(self, name: str) -> ReplicaState:
        """Look up one replica's state.

        Raises:
            FaultError: for an unknown replica name.
        """
        try:
            return self._by_name[name]
        except KeyError:
            raise FaultError("unknown replica", replica=name) from None

    @property
    def n_healthy(self) -> int:
        return sum(1 for r in self.replicas if r.healthy)

    def free_replica(self, now_s: float) -> ReplicaState | None:
        """The free healthy replica with the lowest index, or None."""
        for replica in self.replicas:
            if replica.healthy and replica.free_at_s <= now_s:
                return replica
        return None

    def next_free_s(self) -> float:
        """Earliest instant a healthy replica frees (inf if none up)."""
        return min(
            (r.free_at_s for r in self.replicas if r.healthy),
            default=math.inf,
        )

    def crash(self, name: str, now_s: float) -> ReplicaState:
        """Mark ``name`` crashed; rolls back its unfinished busy time."""
        replica = self.by_name(name)
        if replica.healthy:
            replica.healthy = False
            replica.crashes += 1
            if replica.free_at_s > now_s:
                replica.busy_s -= replica.free_at_s - now_s
                replica.free_at_s = now_s
        return replica

    def recover(self, name: str, now_s: float) -> ReplicaState:
        """Return ``name`` to healthy full-speed service at ``now_s``."""
        replica = self.by_name(name)
        if not replica.healthy:
            replica.healthy = True
            replica.free_at_s = max(replica.free_at_s, now_s)
        replica.slow_factor = 1.0
        return replica

    def dispatch(self, replica: ReplicaState, batch: Batch,
                 now_s: float) -> Dispatch:
        """Place ``batch`` on ``replica`` starting at ``now_s``."""
        if not replica.healthy:
            raise ServingError(f"replica {replica.name} is down")
        if replica.free_at_s > now_s:
            raise ServingError(
                f"replica {replica.name} busy until {replica.free_at_s:.6f}"
            )
        factor = replica.service_factor
        occupancy = self.service.occupancy_s(batch.size) * factor
        latency = self.service.latency_s(batch.size) * factor
        replica.free_at_s = now_s + occupancy
        replica.busy_s += occupancy
        replica.batches += 1
        replica.requests += batch.size
        return Dispatch(
            batch=batch,
            replica=replica.name,
            start_s=now_s,
            complete_s=now_s + latency,
        )

    def utilization(self, makespan_s: float) -> dict[str, float]:
        """Busy fraction per replica over the run's makespan."""
        if makespan_s <= 0:
            return {r.name: 0.0 for r in self.replicas}
        return {r.name: r.busy_s / makespan_s for r in self.replicas}
