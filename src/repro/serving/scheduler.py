"""Dispatch across overlay replicas or a multi-FPGA pipeline.

Two deployment shapes, one dispatch interface:

* :class:`ReplicaService` — N identical single-overlay replicas, each
  serving whole batches end-to-end.  A batch occupies its replica for the
  full service time.
* :class:`PipelineService` — one logical server built from
  :func:`repro.analysis.partition.plan_deployment`: the model's layers
  are split across devices and batches stream through the stages.  A
  batch's *latency* is the sum of all stage times (fill), but the
  pipeline accepts the next batch after only the *bottleneck* stage time
  (initiation interval), so occupancy < latency.

:class:`DispatchScheduler` is deployment-agnostic: it tracks per-replica
free times and busy accounting, and places each batch on the replica
that frees earliest.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field

from repro.analysis.partition import plan_deployment
from repro.compiler.cache import CacheStats, ScheduleCache
from repro.errors import ServingError
from repro.overlay.config import OverlayConfig
from repro.serving.batcher import Batch, BatchServiceModel
from repro.workloads.network import Network


class ReplicaService:
    """Service model for N identical single-overlay replicas."""

    def __init__(self, model: BatchServiceModel, n_replicas: int = 1):
        if n_replicas < 1:
            raise ServingError(f"need >= 1 replica, got {n_replicas}")
        self.model = model
        self.n_replicas = n_replicas

    def latency_s(self, batch_size: int) -> float:
        return self.model.service_s(batch_size)

    def occupancy_s(self, batch_size: int) -> float:
        return self.model.service_s(batch_size)

    def cache_stats(self) -> CacheStats:
        return self.model.cache.stats()

    def replica_names(self) -> list[str]:
        return [f"overlay{i}" for i in range(self.n_replicas)]


class PipelineService:
    """Service model for one multi-FPGA pipeline (optionally replicated).

    Built from :func:`plan_deployment`: each pipeline stage gets its own
    :class:`BatchServiceModel` over its partition, compiled against the
    stage's residency outcome (resident stages drop the per-frame weight
    stream).  Compiled schedules are shared across replicas — the
    pipelines are identical, so one set of schedule caches serves all.
    """

    def __init__(
        self,
        network: Network,
        config: OverlayConfig,
        n_devices: int,
        n_replicas: int = 1,
        objective: str = "balance",
    ):
        if n_replicas < 1:
            raise ServingError(f"need >= 1 replica, got {n_replicas}")
        plan = plan_deployment(network, config, n_devices=n_devices,
                               objective=objective)
        if not plan.stages:
            raise ServingError(
                f"deployment plan for {network.name!r} has no stages"
            )
        self.plan = plan
        self.n_replicas = n_replicas
        self._stages = []
        for stage in plan.stages:
            stage_config = (
                dataclasses.replace(config, weights_resident=True)
                if stage.resident else config
            )
            self._stages.append(BatchServiceModel(
                stage.partition, stage_config,
                objective=objective,
                cache=ScheduleCache(stage_config, objective=objective),
            ))

    @property
    def n_devices(self) -> int:
        return len(self._stages)

    def latency_s(self, batch_size: int) -> float:
        """Pipeline fill: a batch traverses every stage in sequence."""
        return sum(s.service_s(batch_size) for s in self._stages)

    def occupancy_s(self, batch_size: int) -> float:
        """Initiation interval: the bottleneck stage gates admission."""
        return max(s.service_s(batch_size) for s in self._stages)

    def cache_stats(self) -> CacheStats:
        """Aggregate schedule-cache counters across the pipeline stages."""
        stats = [s.cache.stats() for s in self._stages]
        return CacheStats(
            hits=sum(s.hits for s in stats),
            misses=sum(s.misses for s in stats),
            evictions=sum(s.evictions for s in stats),
            size=sum(s.size for s in stats),
            max_entries=None,
        )

    def replica_names(self) -> list[str]:
        return [
            f"pipeline{i}x{self.n_devices}" for i in range(self.n_replicas)
        ]


@dataclass
class ReplicaState:
    """Dispatch bookkeeping for one replica."""

    name: str
    free_at_s: float = 0.0
    busy_s: float = 0.0
    batches: int = 0
    requests: int = 0


@dataclass(frozen=True)
class Dispatch:
    """Outcome of placing one batch."""

    batch: Batch
    replica: str
    start_s: float
    complete_s: float


class DispatchScheduler:
    """Earliest-free placement of batches onto replicas."""

    def __init__(self, service: ReplicaService | PipelineService):
        self.service = service
        self.replicas = [
            ReplicaState(name=name) for name in service.replica_names()
        ]

    def free_replica(self, now_s: float) -> ReplicaState | None:
        """The free replica with the lowest index, or None if all busy."""
        for replica in self.replicas:
            if replica.free_at_s <= now_s:
                return replica
        return None

    def next_free_s(self) -> float:
        return min(r.free_at_s for r in self.replicas)

    def dispatch(self, replica: ReplicaState, batch: Batch,
                 now_s: float) -> Dispatch:
        """Place ``batch`` on ``replica`` starting at ``now_s``."""
        if replica.free_at_s > now_s:
            raise ServingError(
                f"replica {replica.name} busy until {replica.free_at_s:.6f}"
            )
        occupancy = self.service.occupancy_s(batch.size)
        latency = self.service.latency_s(batch.size)
        replica.free_at_s = now_s + occupancy
        replica.busy_s += occupancy
        replica.batches += 1
        replica.requests += batch.size
        return Dispatch(
            batch=batch,
            replica=replica.name,
            start_s=now_s,
            complete_s=now_s + latency,
        )

    def utilization(self, makespan_s: float) -> dict[str, float]:
        """Busy fraction per replica over the run's makespan."""
        if makespan_s <= 0:
            return {r.name: 0.0 for r in self.replicas}
        return {r.name: r.busy_s / makespan_s for r in self.replicas}
