"""Dynamic batching and the batch-size → service-time model.

The paper's introduction (§I) observes that MM-heavy workloads are
weight-bandwidth-bound at batch 1 and recover hardware efficiency as the
batch grows, at a latency cost.  :class:`BatchServiceModel` makes that
trade concrete for serving: each batch size compiles the model's MM
layers with the batch dimension folded in (``P`` columns amortize every
streamed weight) through :mod:`repro.compiler.search`, reusing schedules
across batch sizes through one shared :class:`~repro.compiler.cache.
ScheduleCache`.  CONV layers have no batch loop in the mapping space, so
a batch of B frames runs them back-to-back (B× the per-frame cycles).

:class:`Batcher` implements the standard dynamic-batching policy: launch
when ``max_batch`` requests are waiting, or when the oldest request has
waited ``max_wait_s``, whichever comes first.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, replace

from repro.compiler.cache import ScheduleCache
from repro.errors import ServingError
from repro.overlay.config import OverlayConfig
from repro.serving.request import InferenceRequest, require_finite
from repro.units import BYTES_PER_WORD
from repro.workloads.layers import LayerKind, MatMulLayer
from repro.workloads.network import Network


@dataclass(frozen=True)
class BatchPolicy:
    """Dynamic-batching knobs.

    Attributes:
        max_batch: Largest batch the scheduler may launch.
        max_wait_s: Deadline on batch formation — the oldest queued
            request never waits longer than this before launch (the
            latency half of the batch/efficiency trade).
    """

    max_batch: int = 8
    max_wait_s: float = 5e-3

    def __post_init__(self) -> None:
        if self.max_batch < 1:
            raise ServingError(f"max_batch must be >= 1, got {self.max_batch}")
        require_finite("max_wait_s", self.max_wait_s)
        if self.max_wait_s < 0:
            raise ServingError(
                f"max_wait_s must be >= 0, got {self.max_wait_s}"
            )


@dataclass(frozen=True)
class Batch:
    """A formed batch, ready to dispatch to one replica."""

    requests: tuple[InferenceRequest, ...]
    formed_s: float

    @property
    def size(self) -> int:
        return len(self.requests)


class Batcher:
    """FIFO queue with max-batch / max-wait launch conditions."""

    def __init__(self, policy: BatchPolicy):
        self.policy = policy
        self._queue: deque[InferenceRequest] = deque()

    def __len__(self) -> int:
        return len(self._queue)

    @property
    def depth(self) -> int:
        return len(self._queue)

    def push(self, request: InferenceRequest) -> None:
        self._queue.append(request)

    def ready(self, now_s: float, degraded: bool = False) -> bool:
        """Whether a batch should launch at ``now_s``.

        ``degraded`` (set by admission control under load) waives the
        formation wait: any queued work launches as soon as a replica
        frees, trading batch efficiency for queue drain.
        """
        if not self._queue:
            return False
        if degraded or len(self._queue) >= self.policy.max_batch:
            return True
        # Same expression as next_deadline(): with floats,
        # ``now - arrival >= wait`` can disagree with
        # ``now >= arrival + wait`` exactly at the deadline instant, and
        # the engine would spin on a deadline event that never fires.
        return now_s >= self._queue[0].arrival_s + self.policy.max_wait_s

    def next_deadline(self) -> float:
        """Virtual time at which the oldest request's max-wait expires."""
        if not self._queue:
            raise ServingError("batcher queue is empty")
        return self._queue[0].arrival_s + self.policy.max_wait_s

    def next_expiry_s(self) -> float:
        """Earliest request deadline in the queue (inf when none)."""
        return min(
            (r.deadline_at_s for r in self._queue), default=float("inf")
        )

    def expire(self, now_s: float) -> list[InferenceRequest]:
        """Remove and return queued requests whose deadline has passed."""
        if not self._queue:
            return []
        expired = [r for r in self._queue if r.expired(now_s)]
        if expired:
            self._queue = deque(
                r for r in self._queue if not r.expired(now_s)
            )
        return expired

    def pop(self, now_s: float) -> Batch:
        """Form a batch of up to ``max_batch`` oldest requests."""
        if not self._queue:
            raise ServingError("batcher queue is empty")
        taken = []
        while self._queue and len(taken) < self.policy.max_batch:
            taken.append(self._queue.popleft())
        return Batch(requests=tuple(taken), formed_s=now_s)

    def pop_all(self) -> list[InferenceRequest]:
        """Drain the whole queue (used to strand-drop unreachable work)."""
        drained = list(self._queue)
        self._queue.clear()
        return drained


@dataclass(frozen=True)
class BatchCost:
    """Modelled cost of serving one batch on one overlay."""

    batch_size: int
    compute_cycles: int
    compute_s: float
    transfer_s: float

    @property
    def service_s(self) -> float:
        """Σ layer cycles / fclk + DRAM transfer."""
        return self.compute_s + self.transfer_s


class BatchServiceModel:
    """Batch-size → service-time for one network on one overlay config.

    Every distinct batch size triggers one compilation pass; MM layers
    re-schedule with the batch folded into their ``P`` dimension (the §I
    efficiency recovery), CONV layers reuse their per-frame schedule B
    times.  All passes share one :class:`ScheduleCache`, so a serving
    run pays for each distinct (shape, batch) once.
    """

    def __init__(
        self,
        network: Network,
        config: OverlayConfig,
        objective: str = "performance",
        cache: ScheduleCache | None = None,
    ):
        if not network.accelerated_layers():
            raise ServingError(
                f"network {network.name!r} has no accelerated layers to serve"
            )
        self.network = network
        self.config = config
        # Explicit None test: a fresh ScheduleCache is empty and falsy.
        if cache is None:
            cache = ScheduleCache(config, objective=objective)
        self.cache = cache
        self._costs: dict[int, BatchCost] = {}

    def cost(self, batch_size: int) -> BatchCost:
        """Service cost of one batch of ``batch_size`` requests."""
        if batch_size < 1:
            raise ServingError(f"batch size must be >= 1, got {batch_size}")
        if batch_size not in self._costs:
            self._costs[batch_size] = self._compile(batch_size)
        return self._costs[batch_size]

    def service_s(self, batch_size: int) -> float:
        return self.cost(batch_size).service_s

    def _compile(self, batch_size: int) -> BatchCost:
        cycles = 0
        for layer in self.network.accelerated_layers():
            if layer.kind == LayerKind.MM:
                assert isinstance(layer, MatMulLayer)
                batched = replace(layer, batch=layer.batch * batch_size)
                cycles += self.cache.schedule(batched).cycles
            else:
                cycles += self.cache.schedule(layer).cycles * batch_size
        compute_s = cycles / (self.config.clk_h_mhz * 1e6)
        return BatchCost(
            batch_size=batch_size,
            compute_cycles=cycles,
            compute_s=compute_s,
            transfer_s=self._transfer_s(batch_size),
        )

    def _transfer_s(self, batch_size: int) -> float:
        """Host↔DRAM time for the batch's network inputs and outputs."""
        accel = self.network.accelerated_layers()
        in_bytes = accel[0].input_words * BYTES_PER_WORD * batch_size
        out_bytes = accel[-1].output_words * BYTES_PER_WORD * batch_size
        return (
            in_bytes / (self.config.dram_rd_gbps * 1e9)
            + out_bytes / (self.config.dram_wr_gbps * 1e9)
        )
