"""Batched multi-overlay inference serving runtime.

The serving layer sits on top of the compiler/simulator stack and
answers system-level questions the per-layer model cannot: what
throughput a deployment sustains under open-loop traffic, where p99
latency knees as offered load approaches saturation, and how dynamic
batching (paper §I's batch → efficiency trade) moves both.

Everything runs on a deterministic virtual clock:

* :mod:`repro.serving.request` — requests + seeded arrival processes.
* :mod:`repro.serving.batcher` — dynamic batching and the batch-size →
  service-time model (compiled through :mod:`repro.compiler.search`).
* :mod:`repro.serving.scheduler` — dispatch across overlay replicas or
  a :func:`repro.analysis.partition.plan_deployment` pipeline.
* :mod:`repro.serving.admission` — bounded queues, backpressure, and
  graceful degradation to smaller batches under load.
* :mod:`repro.serving.engine` — the event-driven loop, including
  fault-tolerant execution against a :class:`repro.faults.FaultSchedule`
  (failover, deadline-aware retry, degraded-mode dispatch) and
  result-integrity handling under a
  :class:`repro.integrity.IntegrityPolicy` (ABFT detection, in-place
  correction, verified re-execution).
* :mod:`repro.serving.metrics` — throughput, p50/p95/p99, utilization,
  SLO-violation, availability, and drop-reason accounting.
"""

from repro.integrity.policy import IntegrityPolicy
from repro.serving.admission import AdmissionController, AdmissionPolicy
from repro.serving.batcher import (
    Batch,
    BatchCost,
    BatchPolicy,
    Batcher,
    BatchServiceModel,
)
from repro.serving.engine import ServingEngine
from repro.serving.metrics import ServingReport, percentile
from repro.serving.request import (
    InferenceRequest,
    RetryPolicy,
    make_requests,
    poisson_arrivals,
    trace_arrivals,
    uniform_arrivals,
)
from repro.serving.scheduler import (
    DispatchScheduler,
    PipelineService,
    ReplicaService,
)

__all__ = [
    "AdmissionController",
    "AdmissionPolicy",
    "Batch",
    "BatchCost",
    "BatchPolicy",
    "Batcher",
    "BatchServiceModel",
    "DispatchScheduler",
    "InferenceRequest",
    "IntegrityPolicy",
    "PipelineService",
    "ReplicaService",
    "RetryPolicy",
    "ServingEngine",
    "ServingReport",
    "make_requests",
    "percentile",
    "poisson_arrivals",
    "trace_arrivals",
    "uniform_arrivals",
]
