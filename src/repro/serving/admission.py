"""Admission control: bounded queues, backpressure, graceful degradation.

A serving queue that grows without bound converts overload into
unbounded latency; a bounded queue converts it into explicit rejections
the client can retry elsewhere.  Between "healthy" and "full" sits a
degraded band: past ``degrade_watermark`` of capacity the batcher stops
waiting out its formation deadline and launches whatever is queued as
soon as a replica frees — smaller batches, lower per-batch efficiency,
but the queue drains instead of collapsing into the SLO.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ServingError


@dataclass(frozen=True)
class AdmissionPolicy:
    """Queue bound and degradation knobs.

    Attributes:
        capacity: Hard queue bound; arrivals beyond it are rejected
            (backpressure to the client).
        degrade_watermark: Fraction of capacity above which batch
            formation stops waiting for ``max_wait_s`` and dispatches
            immediately with whatever is queued.
    """

    capacity: int = 256
    degrade_watermark: float = 0.75

    def __post_init__(self) -> None:
        if self.capacity < 1:
            raise ServingError(f"capacity must be >= 1, got {self.capacity}")
        if not 0.0 < self.degrade_watermark <= 1.0:
            raise ServingError(
                f"degrade_watermark must be in (0, 1], got "
                f"{self.degrade_watermark}"
            )


class AdmissionController:
    """Stateful gate in front of the batcher queue.

    Besides the watermark band, the controller carries *fault pressure*:
    the serving engine raises :attr:`fault_pressure` while part of the
    replica fleet is down, which forces the same degraded dispatch
    regime (waived batch formation) regardless of queue depth — with
    fewer replicas, draining beats batching.
    """

    def __init__(self, policy: AdmissionPolicy):
        self.policy = policy
        self.admitted = 0
        self.rejected = 0
        self.degraded_dispatches = 0
        #: Set by the engine while any replica is crashed; forces the
        #: degraded dispatch regime independent of the watermark.
        self.fault_pressure = False

    def admit(self, queue_depth: int) -> bool:
        """Whether a new arrival fits; counts the outcome either way."""
        if queue_depth >= self.policy.capacity:
            self.rejected += 1
            return False
        self.admitted += 1
        return True

    def degraded(self, queue_depth: int) -> bool:
        """Whether to waive batch formation (deep queue or fault pressure)."""
        if self.fault_pressure:
            return True
        threshold = self.policy.degrade_watermark * self.policy.capacity
        return queue_depth >= threshold

    @property
    def offered(self) -> int:
        return self.admitted + self.rejected

    @property
    def rejection_rate(self) -> float:
        return self.rejected / self.offered if self.offered else 0.0
