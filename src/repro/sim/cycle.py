"""Cycle-level simulation of compiled layers on the overlay.

Plays the role of the paper's RTL simulation: executes a
:class:`repro.compiler.codegen.CompiledLayer` on an architectural model of
the ``D1 x D2 x D3`` grid and reports

* **functional output** — every MACC routed through the TPE/SuperBlock
  datapath objects using the mapping's index math, checked against the
  golden NumPy models (bit-true, including 48-bit wrap and zero padding);
* **cycle count** — a double-buffered pipeline timeline per SuperBlock
  row with explicit ActBUS / PSumBUS / DRAM contention, from which the
  measured *hardware efficiency* follows;
* **DRAM trace** — the access stream handed to :mod:`repro.dram`.

The functional path visits every MACC in Python, so it is meant for
moderate layer sizes (tests, examples); full-network results use the
analytical model, which tests validate against this simulator.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.compiler.codegen import CompiledLayer
from repro.errors import SimulationError
from repro.overlay.buses import BusModel
from repro.overlay.config import OverlayConfig
from repro.overlay.superblock import SuperBlock
from repro.fixedpoint import to_int16, wrap48
from repro.sim.functional import golden_layer_output
from repro.sim.trace import DramTrace
from repro.workloads.layers import ConvLayer, MatMulLayer

AcceleratedLayer = ConvLayer | MatMulLayer


@dataclass
class LayerRun:
    """Result of simulating one compiled layer.

    Attributes:
        cycles: End-to-end CLK_h cycles (last drain or compute).
        useful_maccs: MACCs that contributed to in-range outputs.
        issued_maccs: MACC slots issued (includes padding waste).
        output: Accumulated output tensor in the layer's logical shape.
        golden_match: Whether ``output`` equals the golden model.
        trace: The DRAM access trace.
        n_tpe: TPEs of the simulated configuration.
        bus_busy: Busy cycles per bus name.
    """

    cycles: int
    useful_maccs: int
    issued_maccs: int
    output: np.ndarray
    golden_match: bool
    trace: DramTrace
    n_tpe: int
    bus_busy: dict[str, int] = field(default_factory=dict)

    @property
    def hardware_efficiency(self) -> float:
        """Useful MACCs over the offered MACC slots."""
        if self.cycles <= 0:
            return 0.0
        return self.useful_maccs / (self.n_tpe * self.cycles)


class CycleSimulator:
    """Executes compiled layers on an overlay configuration."""

    def __init__(self, config: OverlayConfig):
        self.config = config

    # ------------------------------------------------------------------ #
    # functional execution
    # ------------------------------------------------------------------ #
    def _functional(
        self,
        compiled: CompiledLayer,
        weights: np.ndarray,
        acts: np.ndarray,
    ) -> tuple[np.ndarray, int, int]:
        """Route every MACC through the datapath objects.

        Returns (output, useful_maccs, issued_maccs).
        """
        layer: AcceleratedLayer = compiled.schedule.layer
        mapping = compiled.schedule.mapping
        config = self.config
        weights = to_int16(weights)
        acts = to_int16(acts)
        sizes = layer.loop_sizes
        names = mapping.loop_names

        used_d1 = mapping.level_product("D1")
        used_d2 = mapping.level_product("D2")
        used_d3 = mapping.level_product("D3")
        x_total, l_total, t_total = mapping.x, mapping.l, mapping.t

        blocks = {
            (d3, d2): SuperBlock(
                used_d1,
                config.s_wbuf_words,
                config.s_actbuf_words,
                config.s_psumbuf_words,
                double_buffer=config.double_buffer,
            )
            for d3 in range(used_d3)
            for d2 in range(used_d2)
        }

        output = np.zeros(layer.out_shape(), dtype=np.int64)
        useful = 0
        issued = 0

        def value_at(idx: dict[str, int]) -> tuple[int, int, bool]:
            """(weight, activation, in_range) for one workload index."""
            if any(idx[n] >= sizes[n] for n in names):
                return 0, 0, False
            w = int(weights[layer.weight_coord(idx)])
            a_coord = layer.act_coord(idx)
            a = int(acts[a_coord]) if layer.act_in_range(a_coord) else 0
            return w, a, True

        for x in range(x_total):
            # Fresh accumulation tile per LoopX pass; per-block address map.
            psum_addr: dict[tuple, dict[tuple, int]] = {key: {} for key in blocks}
            for block in blocks.values():
                block.clear_psums()

            for (d3, d2), block in blocks.items():
                addr_map = psum_addr[(d3, d2)]
                for l in range(l_total):
                    # Build the (x, l) tile: each TPE's buffer slices and
                    # the T cascade steps addressing them.
                    w_slices: list[dict[tuple, int]] = [{} for _ in range(used_d1)]
                    a_slices: list[dict[tuple, int]] = [{} for _ in range(used_d1)]
                    w_values: list[dict[int, int]] = [{} for _ in range(used_d1)]
                    a_values: list[dict[int, int]] = [{} for _ in range(used_d1)]
                    steps = []
                    for t in range(t_total):
                        w_addrs, a_addrs = [], []
                        out_key = None
                        in_range_count = 0
                        for d1 in range(used_d1):
                            idx = dict(zip(
                                names,
                                mapping.workload_indices(d3, d2, d1, x, l, t),
                            ))
                            w, a, in_range = value_at(idx)
                            w_addr = w_slices[d1].setdefault(
                                layer.weight_coord(idx), len(w_slices[d1])
                            )
                            a_addr = a_slices[d1].setdefault(
                                layer.act_coord(idx), len(a_slices[d1])
                            )
                            if in_range:
                                # Padded iterations must not clobber real
                                # buffer contents: a padded (H, R) pair can
                                # alias a real input row through the affine
                                # h*stride + r address map.  A padded step's
                                # contribution is already zero — padded
                                # reduction indices hit a distinct zero
                                # weight word, and padded output indices
                                # discard the whole cascade step.
                                w_values[d1][w_addr] = w
                                a_values[d1][a_addr] = a
                            w_addrs.append(w_addr)
                            a_addrs.append(a_addr)
                            if in_range:
                                in_range_count += 1
                                if out_key is None:
                                    out_key = layer.out_coord(idx)
                        steps.append((w_addrs, a_addrs, out_key, in_range_count))

                    # Load the slices through the TPE objects.
                    for d1, tpe in enumerate(block.tpes):
                        w_vals = np.zeros(max(1, len(w_slices[d1])), dtype=np.int16)
                        a_vals = np.zeros(max(1, len(a_slices[d1])), dtype=np.int16)
                        for addr, value in w_values[d1].items():
                            w_vals[addr] = value
                        for addr, value in a_values[d1].items():
                            a_vals[addr] = value
                        tpe.load_weights(0, w_vals)
                        tpe.load_activations(a_vals)
                        tpe.swap_actbuf()

                    for w_addrs, a_addrs, out_key, in_range_count in steps:
                        issued += used_d1
                        useful += in_range_count
                        result = block.cascade_macc(w_addrs, a_addrs)
                        if out_key is not None:
                            addr = addr_map.setdefault(out_key, len(addr_map))
                            block.accumulate_psum(addr, result)

            # Drain every block's tile into the host-side output (the
            # PSumBUS path; cross-row reduction lands here as EWOP adds).
            for key, block in blocks.items():
                addr_map = psum_addr[key]
                if not addr_map:
                    continue
                drained = block.read_psums(len(addr_map))
                for out_key, addr in addr_map.items():
                    output[out_key] = wrap48(
                        int(output[out_key]) + int(drained[addr])
                    )

        return output, useful, issued

    # ------------------------------------------------------------------ #
    # timing
    # ------------------------------------------------------------------ #
    def _timeline(
        self, compiled: CompiledLayer
    ) -> tuple[int, DramTrace, dict[str, int]]:
        """Double-buffered pipeline timeline with bus contention.

        Per row, tiles run back to back; each tile's activation load
        overlaps the previous tile's computation when double-buffering is
        on, and serializes otherwise.  Partial sums drain at every LoopX
        boundary over the column PSumBUS and the shared DRAM write port.
        """
        schedule = compiled.schedule
        mapping = schedule.mapping
        estimate = schedule.estimate
        config = self.config
        layer = schedule.layer

        used_d2 = mapping.level_product("D2")
        used_d3 = mapping.level_product("D3")
        x_total, l_total, t_total = mapping.x, mapping.l, mapping.t
        compute_cycles = t_total * (2 if estimate.weight_stalled else 1)

        trace = DramTrace()
        dram_rd = BusModel("dram_rd", config.dram_rd_words_per_cycle())
        dram_wr = BusModel("dram_wr", config.dram_wr_words_per_cycle())
        actbuses = [
            BusModel(f"actbus.row{r}", config.actbus_wpc)
            for r in range(used_d3)
        ]
        psumbuses = [
            BusModel(f"psumbus.col{c}", config.psumbus_words_per_cycle)
            for c in range(used_d2)
        ]

        # Weight streaming for the whole layer, issued at cycle 0.  With
        # double-buffering the stream hides under the surrounding network
        # execution (layer-granularity prefetch); without it, the first
        # compute waits for it.
        if config.weights_resident:
            stream_words = 0  # preloaded at initialization (§III-A1)
        else:
            stream_words = mapping.used_tpes() * layer.weight_footprint(
                mapping.tile(("X", "L", "T"))
            )
        weights_done = dram_rd.transfer(0, stream_words)
        trace.record(0, "RD", stream_words, "weight")

        act_words_row = layer.act_footprint(mapping.tile(("T", "D1")))
        act_words_dram = layer.act_footprint(mapping.tile(("T", "D1", "D3")))
        dram_share = -(-act_words_dram // used_d3)
        psum_words = estimate.psumbuf_words

        reduction_names = {d.name for d in layer.loop_dims() if d.reduction}
        multipass = any(mapping.trips["X"][n] > 1 for n in reduction_names)

        compute_start = [0] * used_d3
        compute_end = [0] * used_d3
        if not config.double_buffer:
            compute_end = [weights_done] * used_d3
        last_drain_end = 0
        first_tile = True

        for _x in range(x_total):
            for _l in range(l_total):
                for r in range(used_d3):
                    if config.double_buffer:
                        # Load overlaps the previous compute: it may begin
                        # once the previous tile's shadow half freed up.
                        load_issue = compute_start[r]
                    else:
                        load_issue = compute_end[r]
                    # DRAM and the row bus stream cut-through: the tile is
                    # ready when the slower of the two finishes.
                    rd_end = dram_rd.transfer(load_issue, dram_share)
                    trace.record(load_issue, "RD", dram_share, "act")
                    bus_end = actbuses[r].transfer(load_issue, act_words_row)
                    load_end = max(rd_end, bus_end)
                    start = max(compute_end[r], load_end)
                    if first_tile and not config.double_buffer:
                        start = max(start, weights_done)
                    compute_start[r] = start
                    compute_end[r] = start + compute_cycles
                first_tile = False

            # LoopX boundary: drain (and refetch when accumulating across
            # passes) every column's tile.
            round_trips = 2 if multipass else 1
            pass_end = max(compute_end)
            for c in range(used_d2):
                bus_end = psumbuses[c].transfer(
                    pass_end, psum_words * used_d3 * round_trips
                )
                wr_end = dram_wr.transfer(bus_end, psum_words * used_d3)
                trace.record(bus_end, "WR", psum_words * used_d3, "psum")
                if multipass:
                    rf_end = dram_rd.transfer(bus_end, psum_words * used_d3)
                    trace.record(bus_end, "RD", psum_words * used_d3, "psum")
                    wr_end = max(wr_end, rf_end)
                last_drain_end = max(last_drain_end, wr_end)
            if not config.double_buffer:
                compute_end = [max(e, last_drain_end) for e in compute_end]

        pipeline_fill = x_total * config.pipeline_latency
        finish = max(max(compute_end) + pipeline_fill, last_drain_end)
        busy = {
            bus.name: bus.busy_cycles
            for bus in (dram_rd, dram_wr, *actbuses, *psumbuses)
        }
        return int(finish), trace, busy

    # ------------------------------------------------------------------ #
    def run_layer(
        self,
        compiled: CompiledLayer,
        weights: np.ndarray,
        acts: np.ndarray,
        check_golden: bool = True,
    ) -> LayerRun:
        """Simulate ``compiled`` end to end.

        Raises:
            SimulationError: if the functional output disagrees with the
                golden model (with ``check_golden``) or the useful-MACC
                count does not equal the layer's MACC count.
        """
        layer = compiled.schedule.layer
        output, useful, issued = self._functional(compiled, weights, acts)
        cycles, trace, busy = self._timeline(compiled)

        golden_match = True
        if check_golden:
            golden = golden_layer_output(layer, weights, acts)
            golden_match = bool(np.array_equal(output, golden))
            if not golden_match:
                mismatches = int(np.count_nonzero(output != golden))
                raise SimulationError(
                    f"layer {layer.name!r}: simulated output disagrees with "
                    f"golden model at {mismatches} positions"
                )
        if useful != layer.maccs:
            raise SimulationError(
                f"layer {layer.name!r}: simulated {useful} useful MACCs, "
                f"expected {layer.maccs}"
            )

        return LayerRun(
            cycles=cycles,
            useful_maccs=useful,
            issued_maccs=issued,
            output=output,
            golden_match=golden_match,
            trace=trace,
            n_tpe=self.config.n_tpe,
            bus_busy=busy,
        )
