"""Cycle-level simulation of compiled layers on the overlay.

Plays the role of the paper's RTL simulation: executes a
:class:`repro.compiler.codegen.CompiledLayer` on an architectural model of
the ``D1 x D2 x D3`` grid and reports

* **functional output** — every MACC routed through the TPE/SuperBlock
  datapath objects using the mapping's index math, checked against the
  golden NumPy models (bit-true, including 48-bit wrap and zero padding);
* **cycle count** — a double-buffered pipeline timeline per SuperBlock
  row with explicit ActBUS / PSumBUS / DRAM contention, from which the
  measured *hardware efficiency* follows;
* **DRAM trace** — the access stream handed to :mod:`repro.dram`.

Two functional engines produce that output, selectable per simulator and
bit-identical by construction (and by test sweep):

* ``"reference"`` — visits every MACC in Python, routing each through
  the TPE/SuperBlock datapath objects.  Slow, but it exercises the
  buffer addressing and cascade structure directly.
* ``"vectorized"`` (default) — enumerates the same hardware-iteration
  lattice as flat NumPy index arrays, gathers operands in bulk, and
  scatter-accumulates into int64.  48-bit wrapping commutes with exact
  mod-2^64 accumulation (2^48 divides 2^64), so one final ``wrap48``
  reproduces the cascade's per-step wrapping exactly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from math import prod

import numpy as np

from repro.compiler.codegen import CompiledLayer
from repro.compiler.mapping import HW_LEVELS
from repro.errors import SimulationError
from repro.overlay.buses import BusModel
from repro.overlay.config import OverlayConfig
from repro.overlay.superblock import SuperBlock
from repro.fixedpoint import to_int16, wrap48
from repro.sim.functional import golden_layer_output
from repro.sim.trace import DramTrace
from repro.workloads.layers import ConvLayer, MatMulLayer

AcceleratedLayer = ConvLayer | MatMulLayer


@dataclass
class LayerRun:
    """Result of simulating one compiled layer.

    Attributes:
        cycles: End-to-end CLK_h cycles (last drain or compute).
        useful_maccs: MACCs that contributed to in-range outputs.
        issued_maccs: MACC slots issued (includes padding waste).
        output: Accumulated output tensor in the layer's logical shape.
        golden_match: Whether ``output`` equals the golden model.
        trace: The DRAM access trace.
        n_tpe: TPEs of the simulated configuration.
        bus_busy: Busy cycles per bus name.
    """

    cycles: int
    useful_maccs: int
    issued_maccs: int
    output: np.ndarray
    golden_match: bool
    trace: DramTrace
    n_tpe: int
    bus_busy: dict[str, int] = field(default_factory=dict)

    @property
    def hardware_efficiency(self) -> float:
        """Useful MACCs over the offered MACC slots."""
        if self.cycles <= 0:
            return 0.0
        return self.useful_maccs / (self.n_tpe * self.cycles)


#: Functional-engine names accepted by :class:`CycleSimulator`.
FUNCTIONAL_ENGINES = ("vectorized", "reference")

#: Lanes materialized per vectorized chunk (bounds peak index memory).
_VEC_CHUNK = 1 << 19


class CycleSimulator:
    """Executes compiled layers on an overlay configuration.

    Args:
        config: The overlay to simulate.
        functional_engine: ``"vectorized"`` (NumPy lattice enumeration,
            the default) or ``"reference"`` (per-MACC datapath objects).
            Both produce bit-identical outputs and MACC counts.
    """

    def __init__(self, config: OverlayConfig,
                 functional_engine: str = "vectorized"):
        if functional_engine not in FUNCTIONAL_ENGINES:
            raise SimulationError(
                f"unknown functional engine {functional_engine!r}; "
                f"expected one of {FUNCTIONAL_ENGINES}"
            )
        self.config = config
        self.functional_engine = functional_engine

    # ------------------------------------------------------------------ #
    # functional execution
    # ------------------------------------------------------------------ #
    def _functional(
        self,
        compiled: CompiledLayer,
        weights: np.ndarray,
        acts: np.ndarray,
    ) -> tuple[np.ndarray, int, int]:
        """Dispatch to the selected functional engine.

        Returns (output, useful_maccs, issued_maccs).
        """
        if self.functional_engine == "reference":
            return self._functional_reference(compiled, weights, acts)
        return self._functional_vectorized(compiled, weights, acts)

    def _functional_reference(
        self,
        compiled: CompiledLayer,
        weights: np.ndarray,
        acts: np.ndarray,
    ) -> tuple[np.ndarray, int, int]:
        """Route every MACC through the datapath objects.

        Returns (output, useful_maccs, issued_maccs).
        """
        layer: AcceleratedLayer = compiled.schedule.layer
        mapping = compiled.schedule.mapping
        config = self.config
        weights = to_int16(weights)
        acts = to_int16(acts)
        sizes = layer.loop_sizes
        names = mapping.loop_names

        used_d1 = mapping.level_product("D1")
        used_d2 = mapping.level_product("D2")
        used_d3 = mapping.level_product("D3")
        x_total, l_total, t_total = mapping.x, mapping.l, mapping.t

        blocks = {
            (d3, d2): SuperBlock(
                used_d1,
                config.s_wbuf_words,
                config.s_actbuf_words,
                config.s_psumbuf_words,
                double_buffer=config.double_buffer,
            )
            for d3 in range(used_d3)
            for d2 in range(used_d2)
        }

        output = np.zeros(layer.out_shape(), dtype=np.int64)
        useful = 0
        issued = 0

        def value_at(idx: dict[str, int]) -> tuple[int, int, bool]:
            """(weight, activation, in_range) for one workload index."""
            if any(idx[n] >= sizes[n] for n in names):
                return 0, 0, False
            w = int(weights[layer.weight_coord(idx)])
            a_coord = layer.act_coord(idx)
            a = int(acts[a_coord]) if layer.act_in_range(a_coord) else 0
            return w, a, True

        for x in range(x_total):
            # Fresh accumulation tile per LoopX pass; per-block address map.
            psum_addr: dict[tuple, dict[tuple, int]] = {key: {} for key in blocks}
            for block in blocks.values():
                block.clear_psums()

            for (d3, d2), block in blocks.items():
                addr_map = psum_addr[(d3, d2)]
                for l in range(l_total):
                    # Build the (x, l) tile: each TPE's buffer slices and
                    # the T cascade steps addressing them.
                    w_slices: list[dict[tuple, int]] = [{} for _ in range(used_d1)]
                    a_slices: list[dict[tuple, int]] = [{} for _ in range(used_d1)]
                    w_values: list[dict[int, int]] = [{} for _ in range(used_d1)]
                    a_values: list[dict[int, int]] = [{} for _ in range(used_d1)]
                    steps = []
                    for t in range(t_total):
                        w_addrs, a_addrs = [], []
                        out_key = None
                        in_range_count = 0
                        for d1 in range(used_d1):
                            idx = dict(zip(
                                names,
                                mapping.workload_indices(d3, d2, d1, x, l, t),
                            ))
                            w, a, in_range = value_at(idx)
                            w_addr = w_slices[d1].setdefault(
                                layer.weight_coord(idx), len(w_slices[d1])
                            )
                            a_addr = a_slices[d1].setdefault(
                                layer.act_coord(idx), len(a_slices[d1])
                            )
                            if in_range:
                                # Padded iterations must not clobber real
                                # buffer contents: a padded (H, R) pair can
                                # alias a real input row through the affine
                                # h*stride + r address map.  A padded step's
                                # contribution is already zero — padded
                                # reduction indices hit a distinct zero
                                # weight word, and padded output indices
                                # discard the whole cascade step.
                                w_values[d1][w_addr] = w
                                a_values[d1][a_addr] = a
                            w_addrs.append(w_addr)
                            a_addrs.append(a_addr)
                            if in_range:
                                in_range_count += 1
                                if out_key is None:
                                    out_key = layer.out_coord(idx)
                        steps.append((w_addrs, a_addrs, out_key, in_range_count))

                    # Load the slices through the TPE objects.
                    for d1, tpe in enumerate(block.tpes):
                        w_vals = np.zeros(max(1, len(w_slices[d1])), dtype=np.int16)
                        a_vals = np.zeros(max(1, len(a_slices[d1])), dtype=np.int16)
                        for addr, value in w_values[d1].items():
                            w_vals[addr] = value
                        for addr, value in a_values[d1].items():
                            a_vals[addr] = value
                        tpe.load_weights(0, w_vals)
                        tpe.load_activations(a_vals)
                        tpe.swap_actbuf()

                    for w_addrs, a_addrs, out_key, in_range_count in steps:
                        issued += used_d1
                        useful += in_range_count
                        result = block.cascade_macc(w_addrs, a_addrs)
                        if out_key is not None:
                            addr = addr_map.setdefault(out_key, len(addr_map))
                            block.accumulate_psum(addr, result)

            # Drain every block's tile into the host-side output (the
            # PSumBUS path; cross-row reduction lands here as EWOP adds).
            for key, block in blocks.items():
                addr_map = psum_addr[key]
                if not addr_map:
                    continue
                drained = block.read_psums(len(addr_map))
                for out_key, addr in addr_map.items():
                    output[out_key] = wrap48(
                        int(output[out_key]) + int(drained[addr])
                    )

        return output, useful, issued

    def _functional_vectorized(
        self,
        compiled: CompiledLayer,
        weights: np.ndarray,
        acts: np.ndarray,
    ) -> tuple[np.ndarray, int, int]:
        """Enumerate the hardware-iteration lattice as NumPy arrays.

        The lattice is the same ``(d3, d2, d1, x, l, t)`` space the
        reference engine walks: flat lane numbers decompose into
        per-level indices, per-level mixed-radix tables give each loop's
        sub-index, and place values recombine them into workload indices
        (Eqn 1).  Valid lanes gather operands and scatter-add into an
        int64 accumulator; a single final ``wrap48`` matches the
        cascade's stepwise wrapping because both compute the same value
        mod 2^48.

        Returns (output, useful_maccs, issued_maccs).
        """
        layer: AcceleratedLayer = compiled.schedule.layer
        mapping = compiled.schedule.mapping
        weights = to_int16(weights)
        acts = to_int16(acts)
        names = mapping.loop_names
        k = len(names)
        sizes = np.array(
            [layer.loop_sizes[n] for n in names], dtype=np.int64
        )

        level_sizes = [mapping.level_product(level) for level in HW_LEVELS]
        total = prod(level_sizes)

        # tables[li][j, i]: loop j's sub-index at flat index i of level
        # li (mixed radix over the level's trips, last loop least
        # significant — decompose_level_index in array form).
        tables = []
        for level, n_level in zip(HW_LEVELS, level_sizes):
            flat = np.arange(n_level, dtype=np.int64)
            table = np.empty((k, n_level), dtype=np.int64)
            div = 1
            for j in range(k - 1, -1, -1):
                radix = mapping.trips[level][names[j]]
                table[j] = (flat // div) % radix
                div *= radix
            tables.append(table)

        # place[li, j]: weight of level li's sub-index in loop j's
        # combined workload index — the product of all inner levels'
        # trips (outer levels most significant).
        n_levels = len(HW_LEVELS)
        place = np.ones((n_levels, k), dtype=np.int64)
        for li in range(n_levels - 2, -1, -1):
            inner_trips = np.array(
                [mapping.trips[HW_LEVELS[li + 1]][n] for n in names],
                dtype=np.int64,
            )
            place[li] = place[li + 1] * inner_trips

        # level_div[li]: divisor extracting level li's index from a flat
        # lane number (T varies fastest).
        level_div = np.ones(n_levels, dtype=np.int64)
        for li in range(n_levels - 2, -1, -1):
            level_div[li] = level_div[li + 1] * level_sizes[li + 1]

        out_shape = layer.out_shape()
        acc = np.zeros(prod(out_shape), dtype=np.int64)
        w_flat = weights.reshape(-1)
        a_flat = acts.reshape(-1)
        useful = 0

        for lo in range(0, total, _VEC_CHUNK):
            lanes = np.arange(lo, min(lo + _VEC_CHUNK, total), dtype=np.int64)
            idx = np.zeros((k, lanes.size), dtype=np.int64)
            for li in range(n_levels):
                level_idx = (lanes // level_div[li]) % level_sizes[li]
                idx += tables[li][:, level_idx] * place[li][:, None]
            valid = np.all(idx < sizes[:, None], axis=0)
            n_valid = int(np.count_nonzero(valid))
            if not n_valid:
                continue
            useful += n_valid
            idx = idx[:, valid]
            w_lane, a_lane, out_lane = self._gather_lanes(
                layer, names, idx, w_flat, a_flat
            )
            np.add.at(acc, out_lane, w_lane * a_lane)

        output = wrap48(acc).reshape(out_shape)
        return output, useful, int(total)

    @staticmethod
    def _gather_lanes(
        layer: AcceleratedLayer,
        names: tuple[str, ...],
        idx: np.ndarray,
        w_flat: np.ndarray,
        a_flat: np.ndarray,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Operand and output gathers for one chunk of valid lanes.

        Array form of ``weight_coord`` / ``act_coord`` / ``out_coord``;
        out-of-range activation coordinates (zero padding) read as zero,
        exactly like ``act_in_range`` gating in the reference engine.
        """
        pos = {name: j for j, name in enumerate(names)}
        if isinstance(layer, ConvLayer):
            m = idx[pos["M"]]
            n = idx[pos["N"]]
            h = idx[pos["H"]]
            w = idx[pos["W"]]
            r = idx[pos["R"]]
            s = idx[pos["S"]]
            gin = layer.group_in_channels
            w_lane = w_flat[
                ((m * gin + n) * layer.kernel_h + r) * layer.kernel_w + s
            ].astype(np.int64)
            if layer.groups > 1:
                channel = (m // layer.group_out_channels) * gin + n
            else:
                channel = n
            ih = h * layer.stride + r - layer.padding
            iw = w * layer.stride + s - layer.padding
            in_range = (
                (ih >= 0) & (ih < layer.in_h) & (iw >= 0) & (iw < layer.in_w)
            )
            a_index = (
                channel * layer.in_h + np.clip(ih, 0, layer.in_h - 1)
            ) * layer.in_w + np.clip(iw, 0, layer.in_w - 1)
            a_lane = np.where(in_range, a_flat[a_index].astype(np.int64), 0)
            out_lane = (m * layer.out_h + h) * layer.out_w + w
            return w_lane, a_lane, out_lane
        if isinstance(layer, MatMulLayer):
            m = idx[pos["M"]]
            n = idx[pos["N"]]
            p = idx[pos["P"]]
            w_lane = w_flat[n * layer.in_features + m].astype(np.int64)
            a_lane = a_flat[m * layer.batch + p].astype(np.int64)
            out_lane = n * layer.batch + p
            return w_lane, a_lane, out_lane
        raise SimulationError(
            f"no vectorized gather for layer kind {layer.kind}"
        )

    # ------------------------------------------------------------------ #
    # timing
    # ------------------------------------------------------------------ #
    def _timeline(
        self, compiled: CompiledLayer
    ) -> tuple[int, DramTrace, dict[str, int]]:
        """Double-buffered pipeline timeline with bus contention.

        Per row, tiles run back to back; each tile's activation load
        overlaps the previous tile's computation when double-buffering is
        on, and serializes otherwise.  Partial sums drain at every LoopX
        boundary over the column PSumBUS and the shared DRAM write port.
        """
        schedule = compiled.schedule
        mapping = schedule.mapping
        estimate = schedule.estimate
        config = self.config
        layer = schedule.layer

        used_d2 = mapping.level_product("D2")
        used_d3 = mapping.level_product("D3")
        x_total, l_total, t_total = mapping.x, mapping.l, mapping.t
        compute_cycles = t_total * (2 if estimate.weight_stalled else 1)

        trace = DramTrace()
        dram_rd = BusModel("dram_rd", config.dram_rd_words_per_cycle())
        dram_wr = BusModel("dram_wr", config.dram_wr_words_per_cycle())
        actbuses = [
            BusModel(f"actbus.row{r}", config.actbus_wpc)
            for r in range(used_d3)
        ]
        psumbuses = [
            BusModel(f"psumbus.col{c}", config.psumbus_words_per_cycle)
            for c in range(used_d2)
        ]

        # Weight streaming for the whole layer, issued at cycle 0.  With
        # double-buffering the stream hides under the surrounding network
        # execution (layer-granularity prefetch); without it, the first
        # compute waits for it.
        if config.weights_resident:
            stream_words = 0  # preloaded at initialization (§III-A1)
        else:
            stream_words = mapping.used_tpes() * layer.weight_footprint(
                mapping.tile(("X", "L", "T"))
            )
        weights_done = dram_rd.transfer(0, stream_words)
        trace.record(0, "RD", stream_words, "weight")

        act_words_row = layer.act_footprint(mapping.tile(("T", "D1")))
        act_words_dram = layer.act_footprint(mapping.tile(("T", "D1", "D3")))
        dram_share = -(-act_words_dram // used_d3)
        psum_words = estimate.psumbuf_words

        reduction_names = {d.name for d in layer.loop_dims() if d.reduction}
        multipass = any(mapping.trips["X"][n] > 1 for n in reduction_names)

        compute_start = [0] * used_d3
        compute_end = [0] * used_d3
        if not config.double_buffer:
            compute_end = [weights_done] * used_d3
        last_drain_end = 0
        first_tile = True

        for _x in range(x_total):
            for _l in range(l_total):
                for r in range(used_d3):
                    if config.double_buffer:
                        # Load overlaps the previous compute: it may begin
                        # once the previous tile's shadow half freed up.
                        load_issue = compute_start[r]
                    else:
                        load_issue = compute_end[r]
                    # DRAM and the row bus stream cut-through: the tile is
                    # ready when the slower of the two finishes.
                    rd_end = dram_rd.transfer(load_issue, dram_share)
                    trace.record(load_issue, "RD", dram_share, "act")
                    bus_end = actbuses[r].transfer(load_issue, act_words_row)
                    load_end = max(rd_end, bus_end)
                    start = max(compute_end[r], load_end)
                    if first_tile and not config.double_buffer:
                        start = max(start, weights_done)
                    compute_start[r] = start
                    compute_end[r] = start + compute_cycles
                first_tile = False

            # LoopX boundary: drain (and refetch when accumulating across
            # passes) every column's tile.
            round_trips = 2 if multipass else 1
            pass_end = max(compute_end)
            for c in range(used_d2):
                bus_end = psumbuses[c].transfer(
                    pass_end, psum_words * used_d3 * round_trips
                )
                wr_end = dram_wr.transfer(bus_end, psum_words * used_d3)
                trace.record(bus_end, "WR", psum_words * used_d3, "psum")
                if multipass:
                    rf_end = dram_rd.transfer(bus_end, psum_words * used_d3)
                    trace.record(bus_end, "RD", psum_words * used_d3, "psum")
                    wr_end = max(wr_end, rf_end)
                last_drain_end = max(last_drain_end, wr_end)
            if not config.double_buffer:
                compute_end = [max(e, last_drain_end) for e in compute_end]

        pipeline_fill = x_total * config.pipeline_latency
        finish = max(max(compute_end) + pipeline_fill, last_drain_end)
        busy = {
            bus.name: bus.busy_cycles
            for bus in (dram_rd, dram_wr, *actbuses, *psumbuses)
        }
        return int(finish), trace, busy

    # ------------------------------------------------------------------ #
    def run_layer(
        self,
        compiled: CompiledLayer,
        weights: np.ndarray,
        acts: np.ndarray,
        check_golden: bool = True,
    ) -> LayerRun:
        """Simulate ``compiled`` end to end.

        Raises:
            SimulationError: if the functional output disagrees with the
                golden model (with ``check_golden``) or the useful-MACC
                count does not equal the layer's MACC count.
        """
        layer = compiled.schedule.layer
        output, useful, issued = self._functional(compiled, weights, acts)
        cycles, trace, busy = self._timeline(compiled)

        golden_match = True
        if check_golden:
            golden = golden_layer_output(layer, weights, acts)
            golden_match = bool(np.array_equal(output, golden))
            if not golden_match:
                mismatches = int(np.count_nonzero(output != golden))
                raise SimulationError(
                    f"layer {layer.name!r}: simulated output disagrees with "
                    f"golden model at {mismatches} positions"
                )
        if useful != layer.maccs:
            raise SimulationError(
                f"layer {layer.name!r}: simulated {useful} useful MACCs, "
                f"expected {layer.maccs}"
            )

        return LayerRun(
            cycles=cycles,
            useful_maccs=useful,
            issued_maccs=issued,
            output=output,
            golden_match=golden_match,
            trace=trace,
            n_tpe=self.config.n_tpe,
            bus_busy=busy,
        )
