"""Whole-network pipeline simulation: overlay + host CPU.

Chains layers of a *sequential* network through the full stack: every
CONV/MM executes on the cycle-level overlay simulator (bit-true, checked
against the golden model), the wide accumulators requantize at each layer
boundary, EWOP layers run on the :class:`repro.sim.host.HostCpu`, and the
pipeline model overlaps host work with the next layer's overlay work —
the paper's "EWOP processed by host CPU in a pipeline fashion".

Topology restriction: the flat :class:`repro.workloads.Network` list can
express straight-line networks exactly; branching topologies (inception
modules, residual skips) would need a graph IR and are evaluated through
the analytical path instead.  The simulator raises on ops it cannot chain.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.compiler.cache import ScheduleCache
from repro.compiler.codegen import compile_schedule
from repro.errors import SimulationError
from repro.fixedpoint import to_int16
from repro.overlay.config import OverlayConfig
from repro.sim.cycle import CycleSimulator, LayerRun
from repro.sim.host import HostCpu, choose_shift, requantize
from repro.workloads.layers import (
    HOST_KINDS,
    NETWORK_INPUT,
    ConvLayer,
    EltwiseLayer,
    LayerKind,
    MatMulLayer,
)
from repro.workloads.network import Network

AcceleratedLayer = ConvLayer | MatMulLayer


@dataclass(frozen=True)
class StageResult:
    """One executed layer within a pipeline run."""

    name: str
    kind: str
    overlay_cycles: int
    host_cycles: int
    #: Requantization shift applied after this stage (accelerated only).
    shift: int


@dataclass
class PipelineRun:
    """Result of simulating one input through a network."""

    output: np.ndarray
    stages: list[StageResult] = field(default_factory=list)
    #: Serial overlay time (layers run back to back on one overlay).
    overlay_cycles: int = 0
    #: Host time, overlapped with the overlay in the pipeline model.
    host_cycles: int = 0

    @property
    def pipelined_cycles(self) -> int:
        """End-to-end cycles with host EWOP hidden under overlay work.

        The host processes layer i's EWOPs while the overlay runs layer
        i+1, so the pipeline is bound by the slower of the two totals.
        """
        return max(self.overlay_cycles, self.host_cycles)

    @property
    def host_bound(self) -> bool:
        return self.host_cycles > self.overlay_cycles


class NetworkSimulator:
    """Bit-true, cycle-level simulation of sequential networks."""

    def __init__(self, config: OverlayConfig, host: HostCpu | None = None):
        self.config = config
        self.host = host or HostCpu()
        self._cache = ScheduleCache(config)
        self._simulator = CycleSimulator(config)

    # ------------------------------------------------------------------ #
    def _expected_input_shape(self, layer: AcceleratedLayer) -> tuple[int, ...]:
        if isinstance(layer, ConvLayer):
            return (layer.in_channels, layer.in_h, layer.in_w)
        return (layer.in_features, layer.batch)

    @staticmethod
    def _reshape_for_host(layer, activation: np.ndarray) -> np.ndarray:
        """Coerce the chained activation to the host layer's (F, B) shape."""
        expected = (layer.n_features, layer.batch)
        if activation.shape == expected:
            return activation
        if activation.size == layer.n_features * layer.batch:
            return activation.reshape(expected)
        raise SimulationError(
            f"layer {layer.name!r} expects input {expected}, "
            f"chain carries {activation.shape}"
        )

    def run(
        self,
        network: Network,
        inputs: np.ndarray,
        weights: dict[str, np.ndarray],
        check_golden: bool = True,
    ) -> PipelineRun:
        """Push one input through every layer of ``network``.

        Args:
            network: A sequential network (each layer consumes the
                previous one's output).
            inputs: int16 input tensor shaped for the first layer.
            weights: Layer name -> int16 weight tensor for every CONV/MM.
            check_golden: Verify each accelerated layer against its golden
                model (bit-exact).

        Raises:
            SimulationError: on shape breaks in the chain, missing
                weights, or unchainable EWOPs.
        """
        activation = to_int16(inputs)
        run = PipelineRun(output=activation)
        saved: dict[str, np.ndarray] = {NETWORK_INPUT: activation}
        for layer in network.layers:
            if layer.kind in HOST_KINDS:
                skip = None
                if isinstance(layer, EltwiseLayer) and layer.source:
                    if layer.source not in saved:
                        raise SimulationError(
                            f"eltwise layer {layer.name!r} references "
                            f"unknown source {layer.source!r}"
                        )
                    skip = saved[layer.source]
                if layer.kind != LayerKind.EWOP:
                    activation = self._reshape_for_host(layer, activation)
                    if skip is not None:
                        skip = self._reshape_for_host(layer, skip)
                activation = self.host.execute(layer, activation, skip=skip)
                host_cycles = self.host.cycles_for(layer)
                run.host_cycles += host_cycles
                saved[layer.name] = activation
                run.stages.append(StageResult(
                    name=layer.name, kind=layer.kind.value,
                    overlay_cycles=0, host_cycles=host_cycles, shift=0,
                ))
                continue

            expected = self._expected_input_shape(layer)
            if isinstance(layer, MatMulLayer) and activation.ndim != 2:
                activation = activation.reshape(-1, 1)  # flatten for FC
            if activation.shape != expected:
                raise SimulationError(
                    f"layer {layer.name!r} expects input {expected}, "
                    f"chain carries {activation.shape}"
                )
            source = getattr(layer, "weight_source", None)
            if layer.name in weights:
                layer_weights = weights[layer.name]
            elif source is not None:
                # Attention-style matmul: the "weight" operand is a
                # run-time activation produced earlier in the chain.
                if source not in saved:
                    raise SimulationError(
                        f"layer {layer.name!r} streams weights from "
                        f"unknown source {source!r}"
                    )
                streamed = saved[source]
                if streamed.size != layer.out_features * layer.in_features:
                    raise SimulationError(
                        f"layer {layer.name!r} weight source {source!r} has "
                        f"{streamed.size} words, needs "
                        f"{layer.out_features * layer.in_features}"
                    )
                layer_weights = streamed.reshape(
                    layer.out_features, layer.in_features
                )
            else:
                raise SimulationError(f"no weights provided for {layer.name!r}")

            schedule = self._cache.schedule(layer)
            compiled = compile_schedule(schedule)
            layer_run: LayerRun = self._simulator.run_layer(
                compiled, layer_weights, activation,
                check_golden=check_golden,
            )
            shift = choose_shift(layer_run.output)
            activation = requantize(layer_run.output, shift)
            saved[layer.name] = activation
            run.overlay_cycles += layer_run.cycles
            run.stages.append(StageResult(
                name=layer.name, kind=layer.kind.value,
                overlay_cycles=layer_run.cycles, host_cycles=0, shift=shift,
            ))
        run.output = activation
        return run
