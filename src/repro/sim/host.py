"""Host-CPU execution of EWOP layers (paper §II-A).

FTDL accelerates CONV and MM only; activations, pooling, residual adds —
the EWOP category — run on the host CPU, pipelined with the overlay.  This
module is that host: bit-true int16 implementations of the common EWOPs,
plus requantization of the overlay's wide accumulators back to 16-bit
activations, and a simple throughput model so the pipeline simulator can
check the paper's claim that performance "is not bounded by these layers".
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import SimulationError
from repro.fixedpoint import to_int16
from repro.workloads.layers import EwopLayer


def requantize(acc: np.ndarray, shift: int) -> np.ndarray:
    """Scale wide accumulators back to int16 activations.

    Arithmetic right shift with round-half-up, then saturation — the
    standard fixed-point requantization an inference deployment folds into
    each layer boundary.
    """
    if shift < 0:
        raise SimulationError(f"requantize shift must be >= 0, got {shift}")
    acc = np.asarray(acc, dtype=np.int64)
    if shift == 0:
        return to_int16(acc)
    rounded = (acc + (1 << (shift - 1))) >> shift
    return to_int16(rounded)


def choose_shift(acc: np.ndarray) -> int:
    """Smallest right shift that brings ``acc`` into the int16 range."""
    peak = int(np.max(np.abs(np.asarray(acc, dtype=np.int64)))) if acc.size else 0
    shift = 0
    while (peak >> shift) > 32767:
        shift += 1
    return shift


def _pool(x: np.ndarray, kernel: int, stride: int, padding: int,
          reduce_max: bool) -> np.ndarray:
    """2-D max/avg pooling on a (C, H, W) int16 tensor."""
    c, h, w = x.shape
    if padding:
        pad_value = np.iinfo(np.int16).min if reduce_max else 0
        padded = np.full(
            (c, h + 2 * padding, w + 2 * padding), pad_value, dtype=np.int64
        )
        padded[:, padding:padding + h, padding:padding + w] = x
    else:
        padded = x.astype(np.int64)
    oh = (padded.shape[1] - kernel) // stride + 1
    ow = (padded.shape[2] - kernel) // stride + 1
    if oh < 1 or ow < 1:
        raise SimulationError("pooling output is empty")
    windows = np.empty((kernel * kernel, c, oh, ow), dtype=np.int64)
    for i, (dy, dx) in enumerate(
        (dy, dx) for dy in range(kernel) for dx in range(kernel)
    ):
        windows[i] = padded[
            :, dy:dy + stride * oh:stride, dx:dx + stride * ow:stride
        ]
    if reduce_max:
        return to_int16(windows.max(axis=0))
    # Average pooling counts padded positions like inference runtimes do
    # when padding is zero (count_include_pad).
    return to_int16(windows.sum(axis=0) // (kernel * kernel))


@dataclass
class HostCpu:
    """Executes EWOP layers and accounts their cost.

    Attributes:
        ops_per_cycle: Host arithmetic throughput, in EWOP operations per
            overlay CLK_h cycle.  The default (16) models a modest
            embedded CPU with SIMD — enough that EWOP stays off the
            critical path, which is exactly the §II-A claim the pipeline
            simulator verifies.
        total_ops: Operations executed so far.
    """

    ops_per_cycle: float = 16.0
    total_ops: int = 0

    def cycles_for(self, layer: EwopLayer) -> int:
        """Equivalent overlay cycles the host spends on ``layer``."""
        return int(-(-layer.ops // self.ops_per_cycle))

    def execute(self, layer: EwopLayer, x: np.ndarray,
                skip: np.ndarray | None = None) -> np.ndarray:
        """Run one EWOP layer on int16 activations.

        Args:
            layer: The EWOP to run (op mnemonic + params).
            x: Primary input tensor (int16).
            skip: Second operand for residual adds.

        Raises:
            SimulationError: for unknown ops or missing operands.
        """
        x = to_int16(x)
        self.total_ops += layer.ops
        if layer.op == "relu":
            return np.maximum(x, 0)
        if layer.op in ("add", "add_relu"):
            if skip is None:
                raise SimulationError(f"{layer.name!r} needs a skip operand")
            total = to_int16(x.astype(np.int64) + to_int16(skip).astype(np.int64))
            return np.maximum(total, 0) if layer.op == "add_relu" else total
        if layer.op in ("pool_max", "pool_avg"):
            return _pool(
                x,
                kernel=layer.param("kernel"),
                stride=layer.param("stride"),
                padding=layer.param("padding", 0),
                reduce_max=(layer.op == "pool_max"),
            )
        if layer.op == "bn_relu":
            # Inference-folded batch norm: the scale/shift are folded into
            # the conv weights by the deployment flow; at this point only
            # the activation remains.
            return np.maximum(x, 0)
        if layer.op == "softmax":
            # Classification head: monotone, so the int16 logits are
            # returned unchanged (argmax-equivalent); the float softmax
            # itself runs on the host outside the fixed-point domain.
            return x
        raise SimulationError(
            f"host CPU has no implementation for EWOP {layer.op!r}"
        )
