"""Host-CPU execution of host-side layers (paper §II-A).

FTDL accelerates CONV and MM only; activations, pooling, residual adds —
the EWOP category — run on the host CPU, pipelined with the overlay.  This
module is that host: bit-true int16 implementations of the common EWOPs,
the transformer-suite host layers (eltwise add/mul, fixed-point softmax,
integer layernorm), requantization of the overlay's wide accumulators back
to 16-bit activations, and a simple throughput model so the pipeline
simulator can check the paper's claim that performance "is not bounded by
these layers".

The softmax and layernorm kernels are pure integer arithmetic (no libm):
their outputs are a deterministic function of the int16 inputs alone, so
CI golden files stay byte-stable across platforms and BLAS builds.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import SimulationError
from repro.fixedpoint import to_int16
from repro.workloads.layers import (
    EltwiseLayer,
    EwopLayer,
    LayerNormLayer,
    SoftmaxLayer,
)

HostLayer = EwopLayer | EltwiseLayer | SoftmaxLayer | LayerNormLayer


def requantize(acc: np.ndarray, shift: int) -> np.ndarray:
    """Scale wide accumulators back to int16 activations.

    Arithmetic right shift with round-half-up, then saturation — the
    standard fixed-point requantization an inference deployment folds into
    each layer boundary.
    """
    if shift < 0:
        raise SimulationError(f"requantize shift must be >= 0, got {shift}")
    acc = np.asarray(acc, dtype=np.int64)
    if shift == 0:
        return to_int16(acc)
    rounded = (acc + (1 << (shift - 1))) >> shift
    return to_int16(rounded)


def choose_shift(acc: np.ndarray) -> int:
    """Smallest right shift that brings ``acc`` into the int16 range."""
    peak = int(np.max(np.abs(np.asarray(acc, dtype=np.int64)))) if acc.size else 0
    shift = 0
    while (peak >> shift) > 32767:
        shift += 1
    return shift


def _pool(x: np.ndarray, kernel: int, stride: int, padding: int,
          reduce_max: bool) -> np.ndarray:
    """2-D max/avg pooling on a (C, H, W) int16 tensor."""
    c, h, w = x.shape
    if padding:
        pad_value = np.iinfo(np.int16).min if reduce_max else 0
        padded = np.full(
            (c, h + 2 * padding, w + 2 * padding), pad_value, dtype=np.int64
        )
        padded[:, padding:padding + h, padding:padding + w] = x
    else:
        padded = x.astype(np.int64)
    oh = (padded.shape[1] - kernel) // stride + 1
    ow = (padded.shape[2] - kernel) // stride + 1
    if oh < 1 or ow < 1:
        raise SimulationError("pooling output is empty")
    windows = np.empty((kernel * kernel, c, oh, ow), dtype=np.int64)
    for i, (dy, dx) in enumerate(
        (dy, dx) for dy in range(kernel) for dx in range(kernel)
    ):
        windows[i] = padded[
            :, dy:dy + stride * oh:stride, dx:dx + stride * ow:stride
        ]
    if reduce_max:
        return to_int16(windows.max(axis=0))
    # Average pooling counts padded positions like inference runtimes do
    # when padding is zero (count_include_pad).
    return to_int16(windows.sum(axis=0) // (kernel * kernel))


# --------------------------------------------------------------------- #
# Transformer-suite host kernels — pure integer, bit-reproducible.
# --------------------------------------------------------------------- #

#: log2(e) in Q15 — converts a natural-units exponent to a base-2 one.
_LOG2E_Q15 = 47274
#: Quadratic minimax coefficients for 2**f, f in [0, 1), Q15.
_POW2_C1_Q15 = 21507
_POW2_C2_Q15 = 11261


def _isqrt_i64(v: np.ndarray) -> np.ndarray:
    """Exact elementwise floor(sqrt(v)) for non-negative int64 arrays.

    Seeds from the float sqrt and repairs the few-ULP error with integer
    comparisons, so the result is independent of the platform's libm.
    """
    v = np.asarray(v, dtype=np.int64)
    if np.any(v < 0):
        raise SimulationError("isqrt of a negative value")
    r = np.sqrt(v.astype(np.float64)).astype(np.int64)
    r = np.maximum(r, 0)
    for _ in range(4):  # float seed is within a couple of ULPs
        over = r * r > v
        r = np.where(over, r - 1, r)
        under = (r + 1) * (r + 1) <= v
        r = np.where(under, r + 1, r)
        if not (np.any(over) or np.any(under)):
            break
    return r


def eltwise_int16(x: np.ndarray, y: np.ndarray, op: str,
                  shift: int = 0) -> np.ndarray:
    """Element-wise int16 add/mul with post-op requantization.

    The sum/product is formed in int64 and pushed back to int16 via
    :func:`requantize` (round-half-up shift, saturate) — the same layer
    boundary treatment the overlay's accumulators get.
    """
    x = to_int16(x).astype(np.int64)
    y = to_int16(y).astype(np.int64)
    if x.shape != y.shape:
        raise SimulationError(
            f"eltwise operand shapes differ: {x.shape} vs {y.shape}"
        )
    if op == "add":
        wide = x + y
    elif op == "mul":
        wide = x * y
    else:
        raise SimulationError(f"unknown eltwise op {op!r}")
    return requantize(wide, shift)


def softmax_q15(x: np.ndarray, frac_bits: int) -> np.ndarray:
    """Fixed-point softmax along axis 0, returning Q15 probabilities.

    Inputs are int16 logits with ``frac_bits`` fractional bits.  The
    kernel is base-2 throughout: ``exp(x - max)`` becomes
    ``2**(-(d * log2 e))`` with the fractional power evaluated by a Q15
    quadratic, and the final normalization divides by the column sum so
    each column sums to ~32767 regardless of the pow2 approximation.
    """
    if x.ndim != 2:
        raise SimulationError(f"softmax expects a 2-D (F, B) array, got {x.shape}")
    x = to_int16(x).astype(np.int64)
    d = x.max(axis=0, keepdims=True) - x  # >= 0, units of 2**-frac_bits
    t = (d * _LOG2E_Q15) >> frac_bits     # base-2 exponent, Q15
    int_part = t >> 15
    frac = t & 0x7FFF
    poly = 32768 + (
        (frac * (_POW2_C1_Q15 + ((_POW2_C2_Q15 * frac) >> 15))) >> 15
    )  # 2**(frac/2**15) in [1, 2), Q15
    inv = (1 << 30) // poly               # 2**(-frac/2**15) in (0.5, 1], Q15
    shift_amt = np.minimum(int_part, 40)
    v = np.where(int_part >= 40, 0, inv >> shift_amt)
    s = v.sum(axis=0, keepdims=True)
    # The max element always contributes 2**0 = 32768, so s > 0.
    return to_int16((v * 32767 + s // 2) // s)


def layernorm_int16(x: np.ndarray, out_frac_bits: int) -> np.ndarray:
    """Integer layernorm along axis 0: (x - mean) / std in Qout_frac_bits.

    Mean uses round-half-up integer division; the standard deviation is an
    exact integer sqrt of the Q16-scaled variance, and the final division
    floors — every step is integer, so outputs are platform-invariant.
    Affine scale/shift is assumed folded into the neighbouring MM layer.
    """
    if x.ndim != 2:
        raise SimulationError(
            f"layernorm expects a 2-D (F, B) array, got {x.shape}"
        )
    x = to_int16(x).astype(np.int64)
    n = x.shape[0]
    s = x.sum(axis=0, keepdims=True)
    mu = (2 * s + n) // (2 * n)           # round-half-up mean
    c = x - mu
    var_q16 = ((c * c).sum(axis=0, keepdims=True) << 16) // n
    std_q8 = np.maximum(_isqrt_i64(var_q16), 1)
    return to_int16((c << (out_frac_bits + 8)) // std_q8)


@dataclass
class HostCpu:
    """Executes host-side layers and accounts their cost.

    Attributes:
        ops_per_cycle: Host arithmetic throughput, in EWOP operations per
            overlay CLK_h cycle.  The default (16) models a modest
            embedded CPU with SIMD — enough that EWOP stays off the
            critical path, which is exactly the §II-A claim the pipeline
            simulator verifies.
        total_ops: Operations executed so far.
    """

    ops_per_cycle: float = 16.0
    total_ops: int = 0

    def cycles_for(self, layer: HostLayer) -> int:
        """Equivalent overlay cycles the host spends on ``layer``."""
        return int(-(-layer.ops // self.ops_per_cycle))

    def execute(self, layer: HostLayer, x: np.ndarray,
                skip: np.ndarray | None = None) -> np.ndarray:
        """Run one host layer on int16 activations.

        Args:
            layer: The host layer to run (EWOP mnemonic + params, or an
                eltwise/softmax/layernorm layer).
            x: Primary input tensor (int16).
            skip: Second operand for residual adds / eltwise layers.

        Raises:
            SimulationError: for unknown ops or missing operands.
        """
        x = to_int16(x)
        self.total_ops += layer.ops
        if isinstance(layer, EltwiseLayer):
            if skip is None:
                raise SimulationError(
                    f"{layer.name!r} needs a second eltwise operand"
                )
            return eltwise_int16(x, skip, layer.op, layer.shift)
        if isinstance(layer, SoftmaxLayer):
            return softmax_q15(x, layer.frac_bits)
        if isinstance(layer, LayerNormLayer):
            return layernorm_int16(x, layer.out_frac_bits)
        if layer.op == "relu":
            return np.maximum(x, 0)
        if layer.op in ("add", "add_relu"):
            if skip is None:
                raise SimulationError(f"{layer.name!r} needs a skip operand")
            total = to_int16(x.astype(np.int64) + to_int16(skip).astype(np.int64))
            return np.maximum(total, 0) if layer.op == "add_relu" else total
        if layer.op in ("pool_max", "pool_avg"):
            return _pool(
                x,
                kernel=layer.param("kernel"),
                stride=layer.param("stride"),
                padding=layer.param("padding", 0),
                reduce_max=(layer.op == "pool_max"),
            )
        if layer.op == "bn_relu":
            # Inference-folded batch norm: the scale/shift are folded into
            # the conv weights by the deployment flow; at this point only
            # the activation remains.
            return np.maximum(x, 0)
        if layer.op == "softmax":
            # Classification head: monotone, so the int16 logits are
            # returned unchanged (argmax-equivalent); the float softmax
            # itself runs on the host outside the fixed-point domain.
            return x
        raise SimulationError(
            f"host CPU has no implementation for EWOP {layer.op!r}"
        )
