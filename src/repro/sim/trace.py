"""DRAM access traces: the interface between the simulator and the power
model (the paper dumps data-access traces into DRAMPower the same way)."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import SimulationError
from repro.units import BYTES_PER_WORD


@dataclass(frozen=True)
class TraceEvent:
    """One DRAM transfer.

    Attributes:
        cycle: CLK_h cycle at which the transfer begins.
        op: ``"RD"`` or ``"WR"``.
        words: 16-bit words moved.
        stream: Logical stream tag (``"act"``, ``"weight"``, ``"psum"``).
    """

    cycle: int
    op: str
    words: int
    stream: str

    def __post_init__(self) -> None:
        if self.op not in ("RD", "WR"):
            raise SimulationError(f"trace op must be RD/WR, got {self.op!r}")
        if self.words < 0 or self.cycle < 0:
            raise SimulationError("trace events need non-negative cycle/words")

    @property
    def bytes(self) -> int:
        return self.words * BYTES_PER_WORD


@dataclass
class DramTrace:
    """An ordered collection of DRAM transfers for one execution."""

    events: list[TraceEvent] = field(default_factory=list)

    def record(self, cycle: int, op: str, words: int, stream: str) -> None:
        if words > 0:
            self.events.append(TraceEvent(cycle, op, words, stream))

    # ------------------------------------------------------------------ #
    def total_words(self, op: str | None = None, stream: str | None = None) -> int:
        """Words moved, optionally filtered by direction and/or stream."""
        return sum(
            e.words for e in self.events
            if (op is None or e.op == op) and (stream is None or e.stream == stream)
        )

    def total_bytes(self, op: str | None = None) -> int:
        return self.total_words(op) * BYTES_PER_WORD

    @property
    def last_cycle(self) -> int:
        return max((e.cycle for e in self.events), default=0)

    def merge(self, other: "DramTrace", cycle_offset: int = 0) -> None:
        """Append ``other``'s events shifted by ``cycle_offset``."""
        for e in other.events:
            self.events.append(
                TraceEvent(e.cycle + cycle_offset, e.op, e.words, e.stream)
            )
