"""Bit-true reference (golden) implementations of the accelerated layers.

These are the oracles the cycle simulator is checked against: 16-bit
operands, exact integer products, 48-bit wrapping accumulation — the same
arithmetic a DSP48 cascade performs.  They are written for clarity and
small test shapes, not speed.
"""

from __future__ import annotations

import numpy as np

from repro.errors import SimulationError
from repro.fixedpoint import flip_int16_bit, flip_wrap48_bit, to_int16, wrap48
from repro.workloads.layers import ConvLayer, MatMulLayer


def matmul_int16(weights: np.ndarray, acts: np.ndarray) -> np.ndarray:
    """Golden MM: ``out[N, P] = W[N, M] @ act[M, P]`` with 48-bit wrap.

    Args:
        weights: int16 array of shape (N, M).
        acts: int16 array of shape (M, P).

    Returns:
        int64 array of shape (N, P) holding the wrapped accumulators.
    """
    weights = np.asarray(weights)
    acts = np.asarray(acts)
    if weights.ndim != 2 or acts.ndim != 2:
        raise SimulationError("matmul operands must be 2-D")
    if weights.shape[1] != acts.shape[0]:
        raise SimulationError(
            f"shape mismatch: W{weights.shape} @ act{acts.shape}"
        )
    out = weights.astype(np.int64) @ acts.astype(np.int64)
    return wrap48(out)


def conv2d_int16(
    weights: np.ndarray,
    acts: np.ndarray,
    stride: int = 1,
    padding: int = 0,
    groups: int = 1,
) -> np.ndarray:
    """Golden CONV: NCHW direct convolution with 48-bit wrap.

    Args:
        weights: int16 array of shape (M, N/groups, R, S).
        acts: int16 array of shape (N, IH, IW).
        stride: Spatial stride.
        padding: Zero padding on each side.
        groups: Channel groups (depthwise when groups == N == M).

    Returns:
        int64 array of shape (M, OH, OW).
    """
    weights = np.asarray(weights)
    acts = np.asarray(acts)
    if weights.ndim != 4 or acts.ndim != 3:
        raise SimulationError("conv expects W(M,N/g,R,S) and act(N,IH,IW)")
    if groups > 1:
        m, n_g, _, _ = weights.shape
        n_a = acts.shape[0]
        if m % groups or n_a % groups or n_g != n_a // groups:
            raise SimulationError(
                f"group mismatch: W{weights.shape}, act{acts.shape}, "
                f"groups={groups}"
            )
        m_g = m // groups
        slices = [
            conv2d_int16(
                weights[g * m_g:(g + 1) * m_g],
                acts[g * n_g:(g + 1) * n_g],
                stride=stride, padding=padding,
            )
            for g in range(groups)
        ]
        return np.concatenate(slices, axis=0)
    m, n, r, s = weights.shape
    n_a, ih, iw = acts.shape
    if n != n_a:
        raise SimulationError(f"channel mismatch: weights {n} vs acts {n_a}")
    padded = np.zeros((n, ih + 2 * padding, iw + 2 * padding), dtype=np.int64)
    padded[:, padding:padding + ih, padding:padding + iw] = acts.astype(np.int64)
    oh = (ih + 2 * padding - r) // stride + 1
    ow = (iw + 2 * padding - s) // stride + 1
    if oh < 1 or ow < 1:
        raise SimulationError("convolution output is empty")
    # (N, OH, OW, R, S) strided view over the padded input; einsum on
    # int64 accumulates exactly (mod 2^64), which the final 48-bit wrap
    # reduces to the cascade's value.
    windows = np.lib.stride_tricks.sliding_window_view(
        padded, (r, s), axis=(1, 2)
    )[:, ::stride, ::stride]
    out = np.einsum("mnrs,nhwrs->mhw", weights.astype(np.int64), windows)
    return wrap48(out)


def golden_layer_output(
    layer: ConvLayer | MatMulLayer,
    weights: np.ndarray,
    acts: np.ndarray,
) -> np.ndarray:
    """Dispatch to the golden model matching ``layer``'s kind and shape."""
    weights = to_int16(weights)
    acts = to_int16(acts)
    if isinstance(layer, ConvLayer):
        expected_w = (
            layer.out_channels, layer.group_in_channels,
            layer.kernel_h, layer.kernel_w,
        )
        expected_a = (layer.in_channels, layer.in_h, layer.in_w)
        if weights.shape != expected_w or acts.shape != expected_a:
            raise SimulationError(
                f"layer {layer.name!r} expects W{expected_w}/act{expected_a}, "
                f"got W{weights.shape}/act{acts.shape}"
            )
        return conv2d_int16(
            weights, acts, layer.stride, layer.padding, layer.groups
        )
    if isinstance(layer, MatMulLayer):
        expected_w = (layer.out_features, layer.in_features)
        expected_a = (layer.in_features, layer.batch)
        if weights.shape != expected_w or acts.shape != expected_a:
            raise SimulationError(
                f"layer {layer.name!r} expects W{expected_w}/act{expected_a}, "
                f"got W{weights.shape}/act{acts.shape}"
            )
        return matmul_int16(weights, acts)
    raise SimulationError(f"no golden model for layer kind {layer.kind}")


def corrupted_layer_output(
    layer: ConvLayer | MatMulLayer,
    weights: np.ndarray,
    acts: np.ndarray,
    *,
    weight_flips: tuple[tuple[int, int], ...] = (),
    act_flips: tuple[tuple[int, int], ...] = (),
    psum_flips: tuple[tuple[int, int], ...] = (),
) -> np.ndarray:
    """Golden output under injected bit-flips — what the overlay would
    actually produce when an SDC event strikes during execution.

    Each flip is a ``(flat_index, bit)`` pair: ``weight_flips`` and
    ``act_flips`` strike the stored int16 operand words (a DRAM upset
    that slipped past ECC), ``psum_flips`` strike the wrapped 48-bit
    output accumulators (a transient SEU in a TPE's DSP cascade).  With
    no flips this is exactly :func:`golden_layer_output`.
    """
    weights = to_int16(weights)
    acts = to_int16(acts)
    for index, bit in weight_flips:
        weights = flip_int16_bit(weights, index, bit)
    for index, bit in act_flips:
        acts = flip_int16_bit(acts, index, bit)
    out = golden_layer_output(layer, weights, acts)
    for index, bit in psum_flips:
        out = flip_wrap48_bit(out, index, bit)
    return out


def random_layer_operands(
    layer: ConvLayer | MatMulLayer,
    rng: np.random.Generator,
    magnitude: int = 127,
) -> tuple[np.ndarray, np.ndarray]:
    """Draw random int16 weights and activations shaped for ``layer``.

    ``magnitude`` bounds the operand range so small test layers stay far
    from accumulator wrap unless a test asks otherwise.
    """
    if isinstance(layer, ConvLayer):
        w_shape = (
            layer.out_channels, layer.group_in_channels,
            layer.kernel_h, layer.kernel_w,
        )
        a_shape = (layer.in_channels, layer.in_h, layer.in_w)
    elif isinstance(layer, MatMulLayer):
        w_shape = (layer.out_features, layer.in_features)
        a_shape = (layer.in_features, layer.batch)
    else:
        raise SimulationError(f"no operands for layer kind {layer.kind}")
    weights = rng.integers(-magnitude, magnitude + 1, size=w_shape)
    acts = rng.integers(-magnitude, magnitude + 1, size=a_shape)
    return to_int16(weights), to_int16(acts)
