"""Simulation substrate: bit-true functional models and the cycle simulator.

This subpackage replaces the paper's Synopsys VCS RTL simulation.  The
functional layer (:mod:`repro.sim.functional`, :mod:`repro.fixedpoint`)
gives bit-true 16-bit reference results; the cycle layer
(:mod:`repro.sim.cycle`) executes compiled instruction streams on the
overlay model and counts useful versus idle MACC cycles — the quantity
behind the paper's *hardware efficiency* numbers.
"""

from repro.fixedpoint import to_int16, wrap48, quantize_symmetric
from repro.sim.functional import conv2d_int16, matmul_int16, golden_layer_output
from repro.sim.cycle import CycleSimulator, LayerRun
from repro.sim.trace import DramTrace, TraceEvent
from repro.sim.host import HostCpu, requantize, choose_shift
from repro.sim.pipeline import NetworkSimulator, PipelineRun

__all__ = [
    "to_int16",
    "wrap48",
    "quantize_symmetric",
    "conv2d_int16",
    "matmul_int16",
    "golden_layer_output",
    "CycleSimulator",
    "LayerRun",
    "DramTrace",
    "TraceEvent",
    "HostCpu",
    "requantize",
    "choose_shift",
    "NetworkSimulator",
    "PipelineRun",
]
