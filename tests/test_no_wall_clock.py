"""Guard: the library never reads the wall clock.

Every timestamp in the repo is virtual — the serving engine's event
clock, the compiler's monotonic step counter — so a seeded run (and its
trace) is a pure function of its inputs.  One ``time.time()`` or
``datetime.now()`` anywhere would leak real time into spans, metrics,
or schedules and break bit-reproducibility.  This mirrors
``test_no_global_rng.py``: scan ``src/repro`` line by line (comments
stripped), then double-check with an AST pass that catches aliased
imports the regex can't see.
"""

from __future__ import annotations

import ast
import pathlib
import re

SRC = pathlib.Path(__file__).parent.parent / "src" / "repro"

#: Wall-clock reads: ``time.time/monotonic/perf_counter/...`` and
#: ``datetime.now/today/utcnow``.  ``time.sleep`` is banned too — the
#: virtual clock never blocks.
_WALL_CLOCK = re.compile(
    r"\btime\.(time|time_ns|monotonic|monotonic_ns|perf_counter"
    r"|perf_counter_ns|process_time|process_time_ns|sleep)\s*\("
    r"|\bdatetime\.(now|today|utcnow)\s*\("
)

#: Modules whose import alone signals wall-clock intent in this library.
_BANNED_IMPORTS = {"time", "datetime"}

#: Callable names that read the clock regardless of how they were
#: imported (``from time import time as _t`` style aliasing).
_BANNED_CALLS = {
    ("time", "time"), ("time", "time_ns"), ("time", "monotonic"),
    ("time", "monotonic_ns"), ("time", "perf_counter"),
    ("time", "perf_counter_ns"), ("time", "process_time"),
    ("time", "process_time_ns"), ("time", "sleep"),
    ("datetime", "now"), ("datetime", "today"), ("datetime", "utcnow"),
}


def _regex_violations() -> list[str]:
    found = []
    for path in sorted(SRC.rglob("*.py")):
        for lineno, line in enumerate(path.read_text().splitlines(), 1):
            code = line.split("#", 1)[0]
            if _WALL_CLOCK.search(code):
                found.append(
                    f"{path.relative_to(SRC)}:{lineno}: {line.strip()}"
                )
    return found


def _ast_violations() -> list[str]:
    found = []
    for path in sorted(SRC.rglob("*.py")):
        tree = ast.parse(path.read_text(), filename=str(path))
        rel = path.relative_to(SRC)
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    root = alias.name.split(".", 1)[0]
                    if root in _BANNED_IMPORTS:
                        found.append(
                            f"{rel}:{node.lineno}: import {alias.name}"
                        )
            elif isinstance(node, ast.ImportFrom):
                module = (node.module or "").split(".", 1)[0]
                for alias in node.names:
                    if (module, alias.name) in _BANNED_CALLS:
                        found.append(
                            f"{rel}:{node.lineno}: from {node.module} "
                            f"import {alias.name}"
                        )
    return found


def test_no_wall_clock_reads():
    assert _regex_violations() == []


def test_no_wall_clock_imports():
    assert _ast_violations() == []


#: The compile fast path must stay on the virtual clock: persistence,
#: memoization, and the multiprocessing fan-out all replay recorded step
#: charges instead of measuring anything.
_FAST_PATH_MODULES = (
    "compiler/memo.py",
    "compiler/persist.py",
    "compiler/parallel.py",
    "compiler/cache.py",
    "sim/cycle.py",
)


def test_fast_path_modules_are_in_the_scanned_set():
    scanned = {
        str(path.relative_to(SRC)) for path in SRC.rglob("*.py")
    }
    for module in _FAST_PATH_MODULES:
        assert module in scanned, f"{module} moved out of the scan root"


BENCH = pathlib.Path(__file__).parent.parent / "benchmarks"

#: The compile-speed harness is the one place allowed to read the wall
#: clock — measuring real speedups is its entire job.  Everything else
#: under benchmarks/ reproduces paper artifacts on the virtual clock.
_BENCH_WALL_CLOCK_ALLOWED = {"test_compile_speed.py"}


def test_benchmarks_stay_virtual_except_the_speed_harness():
    found = []
    for path in sorted(BENCH.rglob("*.py")):
        if path.name in _BENCH_WALL_CLOCK_ALLOWED:
            continue
        for lineno, line in enumerate(path.read_text().splitlines(), 1):
            code = line.split("#", 1)[0]
            if _WALL_CLOCK.search(code):
                found.append(f"{path.name}:{lineno}: {line.strip()}")
    assert found == []


def test_tracer_requires_explicit_timestamps():
    """The tracing API has no implicit-now overloads at all."""
    import inspect

    from repro.trace.span import Tracer

    for method, stamp in (("begin", "at"), ("end", "at"),
                          ("event", "at"), ("instant", "at"),
                          ("add_span", "start")):
        params = inspect.signature(getattr(Tracer, method)).parameters
        assert stamp in params
        assert params[stamp].default is inspect.Parameter.empty
