"""Host-CPU EWOP execution and requantization."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.errors import SimulationError
from repro.sim.host import HostCpu, choose_shift, requantize
from repro.workloads.layers import EwopLayer, PoolLayer


class TestRequantize:
    def test_identity_at_zero_shift(self):
        acc = np.array([100, -200, 32767], dtype=np.int64)
        assert np.array_equal(requantize(acc, 0), acc.astype(np.int16))

    def test_round_half_up(self):
        acc = np.array([3, 5, -3], dtype=np.int64)
        # shift 1: 3 -> 2, 5 -> 3, -3 -> -1 (arithmetic shift of -2).
        assert list(requantize(acc, 1)) == [2, 3, -1]

    def test_saturation(self):
        acc = np.array([1 << 20], dtype=np.int64)
        assert requantize(acc, 2)[0] == 32767

    def test_negative_shift_rejected(self):
        with pytest.raises(SimulationError):
            requantize(np.zeros(1, dtype=np.int64), -1)

    @given(st.integers(-(1 << 40), 1 << 40), st.integers(0, 30))
    def test_always_int16(self, value, shift):
        out = requantize(np.array([value], dtype=np.int64), shift)
        assert -32768 <= int(out[0]) <= 32767

    def test_choose_shift_brings_in_range(self):
        acc = np.array([1 << 22, -(1 << 21)], dtype=np.int64)
        shift = choose_shift(acc)
        out = requantize(acc, shift)
        assert int(np.abs(out).max()) <= 32767
        # Minimal: one less shift would overflow.
        assert (int(np.abs(acc).max()) >> max(shift - 1, 0)) > 32767 or shift == 0

    def test_choose_shift_zero_for_small(self):
        assert choose_shift(np.array([100, -100], dtype=np.int64)) == 0


class TestHostOps:
    def test_relu(self):
        host = HostCpu()
        layer = EwopLayer("r", op="relu", n_elements=4)
        out = host.execute(layer, np.array([-3, 0, 5, -1], dtype=np.int16))
        assert list(out) == [0, 0, 5, 0]
        assert host.total_ops == 4

    def test_add_relu(self):
        host = HostCpu()
        layer = EwopLayer("a", op="add_relu", n_elements=3, ops_per_element=2)
        out = host.execute(
            layer,
            np.array([1, -5, 10], dtype=np.int16),
            skip=np.array([2, 3, -20], dtype=np.int16),
        )
        assert list(out) == [3, 0, 0]

    def test_add_requires_skip(self):
        host = HostCpu()
        layer = EwopLayer("a", op="add", n_elements=1)
        with pytest.raises(SimulationError, match="skip"):
            host.execute(layer, np.zeros(1, dtype=np.int16))

    def test_add_saturates(self):
        host = HostCpu()
        layer = EwopLayer("a", op="add", n_elements=1)
        out = host.execute(
            layer,
            np.array([30000], dtype=np.int16),
            skip=np.array([30000], dtype=np.int16),
        )
        assert out[0] == 32767

    def test_max_pool(self):
        host = HostCpu()
        layer = PoolLayer("p", channels=1, in_h=4, in_w=4, kernel=2, stride=2)
        x = np.arange(16, dtype=np.int16).reshape(1, 4, 4)
        out = host.execute(layer, x)
        assert out.shape == (1, 2, 2)
        assert out[0].tolist() == [[5, 7], [13, 15]]

    def test_avg_pool(self):
        host = HostCpu()
        layer = PoolLayer("p", channels=1, in_h=2, in_w=2, kernel=2, stride=2,
                          op="pool_avg")
        x = np.array([[[4, 8], [12, 16]]], dtype=np.int16)
        assert host.execute(layer, x)[0, 0, 0] == 10

    def test_padded_max_pool_ignores_padding(self):
        host = HostCpu()
        layer = PoolLayer("p", channels=1, in_h=2, in_w=2, kernel=3, stride=2,
                          padding=1)
        x = np.full((1, 2, 2), -5, dtype=np.int16)
        # Padding is -inf-like for max pooling, so the max is a real value.
        assert host.execute(layer, x).max() == -5

    def test_softmax_passthrough(self):
        host = HostCpu()
        layer = EwopLayer("s", op="softmax", n_elements=3, ops_per_element=3)
        x = np.array([5, -2, 9], dtype=np.int16)
        assert np.array_equal(host.execute(layer, x), x)

    def test_unknown_op_rejected(self):
        host = HostCpu()
        layer = EwopLayer("x", op="fft", n_elements=1)
        with pytest.raises(SimulationError, match="no implementation"):
            host.execute(layer, np.zeros(1, dtype=np.int16))

    def test_cycles_for(self):
        host = HostCpu(ops_per_cycle=8.0)
        layer = EwopLayer("r", op="relu", n_elements=100)
        assert host.cycles_for(layer) == 13  # ceil(100 / 8)

    def test_missing_pool_param_raises(self):
        host = HostCpu()
        layer = EwopLayer("p", op="pool_max", n_elements=4)
        with pytest.raises(Exception, match="parameter"):
            host.execute(layer, np.zeros((1, 2, 2), dtype=np.int16))
