"""Mapping vectors: structure, products, and the Eqn 1-5 index math."""

import itertools

import pytest
from hypothesis import given, settings, strategies as st

from repro.compiler.mapping import HW_LEVELS, MappingVectors
from repro.errors import MappingError


def _mm_mapping() -> MappingVectors:
    """A small MM mapping used across tests: loops (M, N, P)."""
    return MappingVectors.from_partial(
        ("M", "N", "P"),
        {
            "D1": {"M": 3},
            "D2": {"N": 2},
            "D3": {"P": 2},
            "X": {"N": 2},
            "L": {"M": 2},
            "T": {"M": 2, "P": 2},
        },
    )


class TestConstruction:
    def test_defaults_fill_ones(self):
        mapping = _mm_mapping()
        assert mapping.trips["D1"]["N"] == 1
        assert mapping.trips["T"]["N"] == 1

    def test_unknown_level_rejected(self):
        with pytest.raises(MappingError, match="unknown hardware level"):
            MappingVectors.from_partial(("M",), {"D9": {"M": 2}})

    def test_unknown_loop_rejected(self):
        with pytest.raises(MappingError, match="unknown workload loop"):
            MappingVectors.from_partial(("M",), {"D1": {"Q": 2}})

    def test_zero_trip_rejected(self):
        with pytest.raises(MappingError, match=">= 1"):
            MappingVectors.from_partial(("M",), {"D1": {"M": 0}})

    def test_empty_loops_rejected(self):
        with pytest.raises(MappingError, match="no workload loops"):
            MappingVectors.from_partial((), {})


class TestProducts:
    def test_level_products(self):
        mapping = _mm_mapping()
        assert mapping.level_product("D1") == 3
        assert mapping.t == 4
        assert mapping.l == 2
        assert mapping.x == 2

    def test_loop_products_eqn11(self):
        mapping = _mm_mapping()
        padded = mapping.padded_sizes()
        # M: 3 (D1) * 2 (L) * 2 (T) = 12; N: 2 * 2 = 4; P: 2 * 2 = 4.
        assert padded == {"M": 12, "N": 4, "P": 4}

    def test_used_tpes(self):
        assert _mm_mapping().used_tpes() == 3 * 2 * 2

    def test_tile_combines_levels(self):
        mapping = _mm_mapping()
        assert mapping.tile(("T", "L")) == {"M": 4, "N": 1, "P": 2}

    def test_t_matrix_shape(self):
        matrix = _mm_mapping().t_matrix()
        assert len(matrix) == 3  # K rows
        assert all(len(row) == 6 for row in matrix)

    def test_describe_mentions_nontrivial_trips(self):
        text = _mm_mapping().describe()
        assert "D1[M:3]" in text


class TestIndexMath:
    """Eqn 1: the hardware iteration space maps bijectively onto the
    padded workload iteration space."""

    def test_decompose_out_of_range(self):
        with pytest.raises(MappingError, match="out of range"):
            _mm_mapping().decompose_level_index("D1", 3)

    def test_bijection_small(self):
        mapping = _mm_mapping()
        seen = set()
        ranges = [
            range(mapping.level_product(level)) for level in HW_LEVELS
        ]
        for hw_tuple in itertools.product(*ranges):
            idx = mapping.workload_indices(*hw_tuple)
            assert idx not in seen, f"duplicate workload index {idx}"
            seen.add(idx)
        padded = mapping.padded_sizes()
        assert len(seen) == padded["M"] * padded["N"] * padded["P"]

    def test_indices_within_padded_bounds(self):
        mapping = _mm_mapping()
        padded = mapping.padded_sizes()
        ranges = [range(mapping.level_product(level)) for level in HW_LEVELS]
        for hw_tuple in itertools.product(*ranges):
            for name, value in zip(mapping.loop_names, mapping.workload_indices(*hw_tuple)):
                assert 0 <= value < padded[name]

    def test_outer_levels_most_significant(self):
        """Incrementing d3 moves the index by the whole inner block."""
        mapping = MappingVectors.from_partial(
            ("M",), {"D3": {"M": 2}, "T": {"M": 4}}
        )
        base = mapping.workload_indices(0, 0, 0, 0, 0, 3)
        bumped = mapping.workload_indices(1, 0, 0, 0, 0, 3)
        assert bumped[0] - base[0] == 4


@settings(max_examples=30, deadline=None)
@given(
    trips=st.lists(
        st.tuples(
            st.integers(1, 3), st.integers(1, 3), st.integers(1, 3),
            st.integers(1, 3), st.integers(1, 3), st.integers(1, 3),
        ),
        min_size=1,
        max_size=3,
    )
)
def test_bijection_property(trips):
    """For arbitrary trip assignments, hardware -> workload indexing is a
    bijection onto the padded index space."""
    names = tuple(f"L{i}" for i in range(len(trips)))
    partial = {
        level: {names[k]: trips[k][j] for k in range(len(names))}
        for j, level in enumerate(HW_LEVELS)
    }
    mapping = MappingVectors.from_partial(names, partial)
    ranges = [range(mapping.level_product(level)) for level in HW_LEVELS]
    seen = set()
    for hw_tuple in itertools.product(*ranges):
        seen.add(mapping.workload_indices(*hw_tuple))
    expected = 1
    for size in mapping.padded_sizes().values():
        expected *= size
    assert len(seen) == expected
