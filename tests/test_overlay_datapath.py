"""TPE and SuperBlock datapath models."""

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.overlay.superblock import SuperBlock
from repro.overlay.tpe import TPE


class TestTPE:
    def test_macc_basic(self):
        tpe = TPE(s_wbuf_words=8, s_actbuf_words=8)
        tpe.load_weights(0, np.array([3, -2], dtype=np.int16))
        tpe.load_activations(np.array([10, 5], dtype=np.int16))
        tpe.swap_actbuf()
        assert tpe.macc(0, 0) == 30
        assert tpe.macc(1, 1, cascade_in=30) == 30 - 10

    def test_double_buffer_isolation(self):
        """Loads go to the shadow half; compute sees old data until swap."""
        tpe = TPE(s_wbuf_words=4, s_actbuf_words=8)
        tpe.load_activations(np.array([7], dtype=np.int16))
        tpe.swap_actbuf()
        assert tpe.read_activation(0) == 7
        tpe.load_activations(np.array([9], dtype=np.int16))
        assert tpe.read_activation(0) == 7  # still the old half
        tpe.swap_actbuf()
        assert tpe.read_activation(0) == 9

    def test_weight_load_overflow(self):
        tpe = TPE(s_wbuf_words=4, s_actbuf_words=8)
        with pytest.raises(SimulationError, match="overflows WBUF"):
            tpe.load_weights(2, np.zeros(4, dtype=np.int16))

    def test_activation_tile_overflow(self):
        tpe = TPE(s_wbuf_words=4, s_actbuf_words=8)
        with pytest.raises(SimulationError, match="overflows ActBUF"):
            tpe.load_activations(np.zeros(5, dtype=np.int16))

    def test_out_of_range_addresses(self):
        tpe = TPE(s_wbuf_words=4, s_actbuf_words=8)
        with pytest.raises(SimulationError, match="WBUF address"):
            tpe.read_weight(4)
        with pytest.raises(SimulationError, match="ActBUF address"):
            tpe.read_activation(4)

    def test_int16_saturation_on_load(self):
        tpe = TPE(s_wbuf_words=2, s_actbuf_words=4)
        tpe.load_weights(0, np.array([100000], dtype=np.int64))
        assert tpe.read_weight(0) == 32767


class TestSuperBlock:
    def test_cascade_sums_all_tpes(self):
        block = SuperBlock(d1=3, s_wbuf_words=4, s_actbuf_words=8, s_psumbuf_words=16)
        for i, tpe in enumerate(block.tpes):
            tpe.load_weights(0, np.array([i + 1], dtype=np.int16))
            tpe.load_activations(np.array([2], dtype=np.int16))
            tpe.swap_actbuf()
        # (1 + 2 + 3) * 2 = 12 at the chain tail.
        assert block.cascade_macc([0, 0, 0], [0, 0, 0]) == 12

    def test_cascade_wrong_arity(self):
        block = SuperBlock(d1=2, s_wbuf_words=4, s_actbuf_words=8, s_psumbuf_words=16)
        with pytest.raises(SimulationError, match="address pairs"):
            block.cascade_macc([0], [0])

    def test_psum_accumulate_and_drain(self):
        block = SuperBlock(d1=1, s_wbuf_words=4, s_actbuf_words=8, s_psumbuf_words=16)
        block.accumulate_psum(0, 5)
        block.accumulate_psum(0, 7)
        block.accumulate_psum(1, -3)
        assert list(block.read_psums(2)) == [12, -3]

    def test_psum_halves_swap(self):
        block = SuperBlock(d1=1, s_wbuf_words=4, s_actbuf_words=8, s_psumbuf_words=16)
        block.accumulate_psum(0, 5)
        block.swap_psumbuf()
        assert list(block.read_psums(1)) == [0]
        block.swap_psumbuf()
        assert list(block.read_psums(1)) == [5]

    def test_clear_psums(self):
        block = SuperBlock(d1=1, s_wbuf_words=4, s_actbuf_words=8, s_psumbuf_words=16)
        block.accumulate_psum(0, 5)
        block.clear_psums()
        assert list(block.read_psums(1)) == [0]

    def test_psum_address_bounds(self):
        block = SuperBlock(d1=1, s_wbuf_words=4, s_actbuf_words=8, s_psumbuf_words=16)
        with pytest.raises(SimulationError, match="PSumBUF address"):
            block.accumulate_psum(8, 1)  # half is 8 words: addresses 0-7
        with pytest.raises(SimulationError, match="drain"):
            block.read_psums(9)

    def test_zero_tpes_rejected(self):
        with pytest.raises(SimulationError):
            SuperBlock(d1=0, s_wbuf_words=4, s_actbuf_words=8, s_psumbuf_words=16)
