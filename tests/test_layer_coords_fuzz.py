"""Property fuzz: host-layer coordinate maps and kernels vs naive enumerators.

Hypothesis draws random shapes and seeds; for every draw the host layers'
coordinate maps must enumerate their element lattice exactly (a bijection
onto the output tensor), and the vectorized integer kernels must agree
element-for-element with naive pure-Python reimplementations driven
through those coordinate maps.  Weight-streaming matmuls must be
coordinate-identical to their stored-weight twins — ``weight_source``
changes accounting, never addressing.
"""

from __future__ import annotations

import itertools
import math

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.sim.host import eltwise_int16, layernorm_int16, softmax_q15
from repro.workloads.layers import (
    EltwiseLayer,
    LayerNormLayer,
    MatMulLayer,
    SoftmaxLayer,
)

_SETTINGS = settings(max_examples=30, deadline=None)

shape_strategy = st.tuples(st.integers(1, 8), st.integers(1, 6))
seed_strategy = st.integers(0, 2**31 - 1)


def _enumerate(layer):
    """Every loop index of the layer's element lattice, in nest order."""
    dims = layer.loop_dims()
    for values in itertools.product(*(range(d.size) for d in dims)):
        yield dict(zip((d.name for d in dims), values))


def _random_int16(rng: np.random.Generator, shape) -> np.ndarray:
    return rng.integers(-32768, 32768, size=shape).astype(np.int16)


def _clip16(v: int) -> int:
    return max(-32768, min(32767, v))


# --------------------------------------------------------------------- #
# Coordinate maps.
# --------------------------------------------------------------------- #

@_SETTINGS
@given(shape=shape_strategy)
def test_host_coords_are_a_bijection_onto_the_output(shape):
    f, b = shape
    for layer in (
        EltwiseLayer("e", op="add", n_features=f, batch=b),
        SoftmaxLayer("s", n_features=f, batch=b),
        LayerNormLayer("n", n_features=f, batch=b),
    ):
        out_coords = []
        for idx in _enumerate(layer):
            act = layer.act_coord(idx)
            out = layer.out_coord(idx)
            assert act == out  # host layers are shape-preserving
            assert 0 <= out[0] < layer.out_shape()[0]
            assert 0 <= out[1] < layer.out_shape()[1]
            out_coords.append(out)
        assert len(out_coords) == layer.n_elements
        assert len(set(out_coords)) == layer.n_elements  # bijection
        assert dict(layer.loop_sizes) == {"F": f, "B": b}


@_SETTINGS
@given(shape=shape_strategy)
def test_eltwise_src_coord_aligns_with_act_coord(shape):
    f, b = shape
    layer = EltwiseLayer("e", op="mul", n_features=f, batch=b, shift=3)
    for idx in _enumerate(layer):
        assert layer.src_coord(idx) == layer.act_coord(idx)


@_SETTINGS
@given(
    in_features=st.integers(1, 12),
    out_features=st.integers(1, 10),
    batch=st.integers(1, 4),
)
def test_weight_source_mm_is_coordinate_identical(in_features, out_features,
                                                  batch):
    stored = MatMulLayer("mm", in_features=in_features,
                         out_features=out_features, batch=batch)
    streamed = MatMulLayer("mm", in_features=in_features,
                           out_features=out_features, batch=batch,
                           weight_source="producer")
    assert streamed.loop_dims() == stored.loop_dims()
    assert streamed.weight_words == stored.weight_words
    assert streamed.maccs == stored.maccs
    assert streamed.parameter_words == 0
    assert stored.parameter_words == stored.weight_words
    for idx in itertools.islice(_enumerate(stored), 64):
        assert streamed.weight_coord(idx) == stored.weight_coord(idx)
        assert streamed.act_coord(idx) == stored.act_coord(idx)
        assert streamed.out_coord(idx) == stored.out_coord(idx)


# --------------------------------------------------------------------- #
# Kernels vs naive per-element enumerators.
# --------------------------------------------------------------------- #

@_SETTINGS
@given(shape=shape_strategy, seed=seed_strategy,
       op=st.sampled_from(["add", "mul"]), shift=st.integers(0, 16))
def test_eltwise_matches_naive_enumerator(shape, seed, op, shift):
    rng = np.random.default_rng(seed)
    layer = EltwiseLayer("e", op=op, n_features=shape[0], batch=shape[1],
                         shift=shift)
    x = _random_int16(rng, shape)
    y = _random_int16(rng, shape)
    out = eltwise_int16(x, y, op, shift)
    assert out.shape == layer.out_shape()
    for idx in _enumerate(layer):
        a = int(x[layer.act_coord(idx)])
        b = int(y[layer.src_coord(idx)])
        wide = a + b if op == "add" else a * b
        if shift:
            wide = (wide + (1 << (shift - 1))) >> shift
        assert int(out[layer.out_coord(idx)]) == _clip16(wide), idx


def _naive_softmax_column(col: list[int], frac_bits: int) -> list[int]:
    """Scalar transcription of :func:`repro.sim.host.softmax_q15`."""
    m = max(col)
    raw = []
    for x in col:
        t = ((m - x) * 47274) >> frac_bits
        int_part, frac = t >> 15, t & 0x7FFF
        poly = 32768 + ((frac * (21507 + ((11261 * frac) >> 15))) >> 15)
        inv = (1 << 30) // poly
        raw.append(0 if int_part >= 40 else inv >> min(int_part, 40))
    s = sum(raw)
    return [_clip16((v * 32767 + s // 2) // s) for v in raw]


@_SETTINGS
@given(shape=shape_strategy, seed=seed_strategy,
       frac_bits=st.integers(0, 14))
def test_softmax_matches_naive_enumerator(shape, seed, frac_bits):
    rng = np.random.default_rng(seed)
    layer = SoftmaxLayer("s", n_features=shape[0], batch=shape[1],
                         frac_bits=frac_bits)
    x = _random_int16(rng, shape)
    out = softmax_q15(x, frac_bits)
    naive = {}
    for b in range(shape[1]):
        col = _naive_softmax_column([int(v) for v in x[:, b]], frac_bits)
        for f in range(shape[0]):
            naive[(f, b)] = col[f]
    for idx in _enumerate(layer):
        assert int(out[layer.out_coord(idx)]) == naive[layer.act_coord(idx)]


def _naive_layernorm_column(col: list[int], out_frac_bits: int) -> list[int]:
    """Scalar transcription of :func:`repro.sim.host.layernorm_int16`."""
    n = len(col)
    s = sum(col)
    mu = (2 * s + n) // (2 * n)
    centered = [v - mu for v in col]
    var_q16 = (sum(v * v for v in centered) << 16) // n
    std_q8 = max(math.isqrt(var_q16), 1)
    return [_clip16((v << (out_frac_bits + 8)) // std_q8) for v in centered]


@_SETTINGS
@given(shape=shape_strategy, seed=seed_strategy,
       out_frac_bits=st.integers(0, 14))
def test_layernorm_matches_naive_enumerator(shape, seed, out_frac_bits):
    rng = np.random.default_rng(seed)
    layer = LayerNormLayer("n", n_features=shape[0], batch=shape[1],
                           out_frac_bits=out_frac_bits)
    x = _random_int16(rng, shape)
    out = layernorm_int16(x, out_frac_bits)
    for idx in _enumerate(layer):
        col = _naive_layernorm_column(
            [int(v) for v in x[:, idx["B"]]], out_frac_bits
        )
        assert int(out[layer.out_coord(idx)]) == col[idx["F"]]


@_SETTINGS
@given(shape=shape_strategy, seed=seed_strategy)
def test_softmax_columns_sum_to_unity(shape, seed):
    rng = np.random.default_rng(seed)
    out = softmax_q15(_random_int16(rng, shape), 5).astype(np.int64)
    sums = out.sum(axis=0)
    # Per-element round-half-up leaves at most one count per element.
    assert np.all(np.abs(sums - 32767) <= shape[0])
