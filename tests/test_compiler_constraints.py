"""Feasibility checking (Eqns 10-11 + adjacency + capacities)."""

import pytest

from repro.compiler.constraints import check_constraints
from repro.compiler.mapping import MappingVectors
from repro.overlay.config import OverlayConfig
from repro.workloads.layers import ConvLayer


@pytest.fixture
def config():
    return OverlayConfig(
        d1=4, d2=2, d3=2,
        s_actbuf_words=64, s_wbuf_words=64, s_psumbuf_words=128,
    )


@pytest.fixture
def layer():
    return ConvLayer("c", 8, 4, in_h=8, in_w=8, kernel_h=3, kernel_w=3, padding=1)


CONV_LOOPS = ("M", "N", "H", "W", "R", "S")


def _mapping(partial) -> MappingVectors:
    return MappingVectors.from_partial(CONV_LOOPS, partial)


class TestCheckConstraints:
    def test_feasible_mapping_passes(self, config, layer):
        mapping = _mapping({
            "D1": {"N": 4}, "D2": {"M": 2}, "D3": {"H": 2},
            "X": {"M": 2, "N": 2, "H": 4, "R": 3, "S": 3},
            "T": {"W": 8},
        })
        assert check_constraints(layer, config, mapping) == []

    def test_adjacency_violation(self, config, layer):
        mapping = _mapping({
            "D1": {"H": 2},  # H is not a reduction loop
            "X": {"M": 8, "N": 8, "H": 4, "W": 8, "R": 3, "S": 3},
        })
        violations = check_constraints(layer, config, mapping)
        assert any("adjacency" in v for v in violations)

    def test_eqn10_spatial_overflow(self, config, layer):
        mapping = _mapping({
            "D1": {"N": 8},  # exceeds d1 = 4
            "X": {"M": 8, "H": 8, "W": 8, "R": 3, "S": 3},
        })
        violations = check_constraints(layer, config, mapping)
        assert any("spatial level D1" in v for v in violations)

    def test_eqn11_coverage(self, config, layer):
        mapping = _mapping({"X": {"M": 8, "N": 8, "H": 8, "W": 8, "R": 3}})
        violations = check_constraints(layer, config, mapping)
        assert any("loop S covered" in v for v in violations)

    def test_actbuf_capacity(self, config, layer):
        mapping = _mapping({
            "T": {"N": 8, "W": 8, "R": 3, "S": 3},  # footprint 8*3*10 = 240
            "X": {"M": 8, "H": 8},
        })
        violations = check_constraints(layer, config, mapping)
        assert any("ActBUF" in v for v in violations)

    def test_wbuf_capacity(self, config, layer):
        mapping = _mapping({
            "L": {"N": 8, "R": 3, "S": 3},
            "T": {"M": 4, "W": 2},  # pass slice 4*8*9 = 288 > 64
            "X": {"H": 8, "W": 4, "M": 1},
        })
        violations = check_constraints(layer, config, mapping)
        assert any("WBUF" in v for v in violations)

    def test_psumbuf_capacity(self, config, layer):
        mapping = _mapping({
            "T": {"M": 4, "H": 4, "W": 8},  # out tile 128 > 64 usable
            "X": {"M": 2, "N": 8, "H": 2, "R": 3, "S": 3},
        })
        violations = check_constraints(layer, config, mapping)
        assert any("PSumBUF" in v for v in violations)

    def test_wrong_loop_names_short_circuits(self, config, layer):
        mapping = MappingVectors.from_partial(("M", "N", "P"), {})
        violations = check_constraints(layer, config, mapping)
        assert len(violations) == 1
        assert "mapping loops" in violations[0]

    def test_multiple_violations_all_reported(self, config, layer):
        mapping = _mapping({
            "D1": {"H": 8},  # adjacency + spatial overflow + coverage gaps
        })
        violations = check_constraints(layer, config, mapping)
        assert len(violations) >= 3
