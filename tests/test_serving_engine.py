"""Event-driven serving loop: correctness, determinism, overload."""

import pytest

from repro.compiler.cache import CacheStats
from repro.errors import ServingError
from repro.serving.admission import AdmissionPolicy
from repro.serving.batcher import BatchPolicy, BatchServiceModel
from repro.serving.engine import ServingEngine
from repro.serving.request import (
    InferenceRequest,
    make_requests,
    poisson_arrivals,
    uniform_arrivals,
)
from repro.serving.scheduler import ReplicaService
from repro.workloads.layers import MatMulLayer
from repro.workloads.network import Network


class StubService:
    """Fixed 1 ms per batch regardless of size, N replicas."""

    def __init__(self, n_replicas: int = 1, service_s: float = 1e-3):
        self.n_replicas = n_replicas
        self._service_s = service_s

    def latency_s(self, batch_size: int) -> float:
        return self._service_s

    def occupancy_s(self, batch_size: int) -> float:
        return self._service_s

    def cache_stats(self) -> CacheStats:
        return CacheStats(hits=0, misses=0, evictions=0, size=0,
                          max_entries=None)

    def replica_names(self) -> list[str]:
        return [f"stub{i}" for i in range(self.n_replicas)]


def _requests(times, model="stub"):
    return make_requests(times, model)


class TestEngineSemantics:
    def test_all_requests_complete(self):
        engine = ServingEngine(StubService(), BatchPolicy(max_batch=4,
                                                          max_wait_s=1e-3))
        report = engine.run(_requests(uniform_arrivals(100.0, 20)))
        assert report.n_completed == 20
        assert report.n_rejected == 0
        ids = sorted(r.request_id for r in report.completed)
        assert ids == list(range(20))

    def test_latency_decomposition(self):
        """latency == queue wait + service, exactly."""
        engine = ServingEngine(
            StubService(service_s=2e-3),
            BatchPolicy(max_batch=1, max_wait_s=0.0),
        )
        report = engine.run(_requests([0.0, 0.1]))
        for req in report.completed:
            assert req.latency_s == pytest.approx(req.queue_wait_s + 2e-3)
            # Uncontended batch=1, no wait: service time only.
            assert req.queue_wait_s == pytest.approx(0.0)

    def test_burst_batches_together(self):
        """Requests landing at one instant form one full batch."""
        engine = ServingEngine(StubService(),
                               BatchPolicy(max_batch=4, max_wait_s=10.0))
        report = engine.run(_requests([1.0, 1.0, 1.0, 1.0]))
        assert {r.batch_size for r in report.completed} == {4}
        assert {r.dispatch_s for r in report.completed} == {1.0}

    def test_max_wait_bounds_formation(self):
        """A lone request launches at its deadline, not at max_batch."""
        engine = ServingEngine(StubService(),
                               BatchPolicy(max_batch=8, max_wait_s=5e-3))
        report = engine.run(_requests([1.0]))
        (req,) = report.completed
        assert req.dispatch_s == pytest.approx(1.005)
        assert req.batch_size == 1

    def test_queue_overflow_rejects(self):
        engine = ServingEngine(
            StubService(service_s=1.0),  # effectively stuck replica
            BatchPolicy(max_batch=1, max_wait_s=0.0),
            AdmissionPolicy(capacity=2),
        )
        report = engine.run(_requests([0.0, 0.0, 0.0, 0.0, 0.0]))
        # Same-instant arrivals are admitted before dispatch: two fill
        # the queue, three bounce off the capacity-2 bound.
        assert report.n_rejected == 3
        assert report.n_completed == 2

    def test_degradation_under_load(self):
        """Deep queues launch small batches instead of waiting."""
        engine = ServingEngine(
            StubService(service_s=1e-3),
            BatchPolicy(max_batch=64, max_wait_s=10.0),
            AdmissionPolicy(capacity=8, degrade_watermark=0.5),
        )
        report = engine.run(_requests(uniform_arrivals(2000.0, 30)))
        assert report.degraded_dispatches > 0
        # Without degradation nothing launches before the 10 s deadline;
        # with it everything except the tail stragglers (depth below the
        # watermark, which legitimately wait out max_wait) drains fast.
        finished = sorted(r.complete_s for r in report.completed)
        assert finished[-5] < 1.0

    def test_replicas_share_load(self):
        engine = ServingEngine(
            StubService(n_replicas=2, service_s=10e-3),
            BatchPolicy(max_batch=1, max_wait_s=0.0),
        )
        report = engine.run(_requests(uniform_arrivals(150.0, 40)))
        used = {r.replica for r in report.completed}
        assert used == {"stub0", "stub1"}

    def test_unsorted_requests_rejected(self):
        engine = ServingEngine(StubService())
        reqs = [
            InferenceRequest(request_id=0, model="m", arrival_s=1.0),
            InferenceRequest(request_id=1, model="m", arrival_s=0.5),
        ]
        with pytest.raises(ServingError):
            engine.run(reqs)

    def test_empty_run_rejected(self):
        with pytest.raises(ServingError):
            ServingEngine(StubService()).run([])

    def test_invalid_slo(self):
        with pytest.raises(ServingError):
            ServingEngine(StubService(), slo_s=0.0)


class TestEngineOnRealModel:
    @pytest.fixture
    def service(self, tiny_config):
        net = Network(
            name="mmnet", application="test",
            layers=(
                MatMulLayer("fc1", in_features=64, out_features=32),
                MatMulLayer("fc2", in_features=32, out_features=8),
            ),
        )
        return ReplicaService(BatchServiceModel(net, tiny_config), 2)

    def test_bit_deterministic_given_seed(self, service):
        engine = ServingEngine(service, BatchPolicy(max_batch=4,
                                                    max_wait_s=1e-3))

        def run():
            reqs = _requests(
                poisson_arrivals(5000.0, 100, seed=11), "mmnet"
            )
            return engine.run(reqs)

        a, b = run(), run()
        assert a.describe() == b.describe()
        assert a.latencies_s == b.latencies_s
        assert a.utilization == b.utilization

    def test_report_totals_consistent(self, service):
        engine = ServingEngine(service, BatchPolicy(max_batch=4,
                                                    max_wait_s=1e-3))
        report = engine.run(
            _requests(poisson_arrivals(2000.0, 60, seed=5), "mmnet")
        )
        assert report.n_offered == 60
        assert report.throughput_rps > 0
        assert report.makespan_s > 0
        assert report.cache_stats is not None
        assert report.cache_stats.misses > 0
        assert 0 <= report.mean_utilization <= 1.0
