"""Adjacency matrices (Fig. 5) and their hardware rationale."""

import pytest

from repro.compiler.adjacency import adjacency_matrix, needs_ewop_reduction
from repro.errors import MappingError
from repro.workloads.layers import EwopLayer


class TestConvAdjacency:
    @pytest.fixture
    def matrix(self, small_conv):
        return adjacency_matrix(small_conv)

    def test_d1_takes_reductions_only(self, matrix):
        assert matrix["D1"] == {"M": 0, "N": 1, "H": 0, "W": 0, "R": 1, "S": 1}

    def test_d2_takes_output_channels_only(self, matrix):
        """SIMD columns share activations, differ in weights: only M."""
        assert matrix["D2"]["M"] == 1
        assert sum(matrix["D2"].values()) == 1

    def test_d3_unrestricted(self, matrix):
        assert all(matrix["D3"].values())

    def test_l_takes_reductions_only(self, matrix):
        assert matrix["L"] == {"M": 0, "N": 1, "H": 0, "W": 0, "R": 1, "S": 1}

    def test_x_and_t_unrestricted(self, matrix):
        assert all(matrix["X"].values())
        assert all(matrix["T"].values())

    def test_matches_paper_printed_slice(self, matrix):
        """Fig. 5(b) prints the (M, N, W) columns; every printed entry."""
        printed = {
            "D1": (0, 1, 0), "D2": (1, 0, 0), "D3": (1, 1, 1),
            "X": (1, 1, 1), "L": (0, 1, 0), "T": (1, 1, 1),
        }
        for level, (m, n, w) in printed.items():
            assert (matrix[level]["M"], matrix[level]["N"], matrix[level]["W"]) == (m, n, w)


class TestMMAdjacency:
    @pytest.fixture
    def matrix(self, small_mm):
        return adjacency_matrix(small_mm)

    def test_matches_paper_fig5a(self, matrix):
        printed = {
            "D1": (1, 0, 0), "D2": (0, 1, 0), "D3": (1, 1, 1),
            "X": (1, 1, 1), "L": (1, 0, 1), "T": (1, 1, 1),
        }
        for level, (m, n, p) in printed.items():
            assert (matrix[level]["M"], matrix[level]["N"], matrix[level]["P"]) == (m, n, p)

    def test_returns_copies(self, small_mm):
        a = adjacency_matrix(small_mm)
        a["D1"]["N"] = 1
        assert adjacency_matrix(small_mm)["D1"]["N"] == 0


class TestEwopFlag:
    def test_reduction_on_d3_needs_ewop(self, small_conv):
        assert needs_ewop_reduction(small_conv, {"N": 2})
        assert needs_ewop_reduction(small_conv, {"R": 3})

    def test_output_loops_on_d3_do_not(self, small_conv):
        assert not needs_ewop_reduction(small_conv, {"M": 4, "H": 2})

    def test_trip_one_is_free(self, small_conv):
        assert not needs_ewop_reduction(small_conv, {"N": 1})

    def test_mm_reduction_is_m(self, small_mm):
        assert needs_ewop_reduction(small_mm, {"M": 2})
        assert not needs_ewop_reduction(small_mm, {"N": 2, "P": 2})


def test_ewop_layer_has_no_adjacency():
    with pytest.raises(MappingError, match="no adjacency"):
        adjacency_matrix(EwopLayer("e", op="relu", n_elements=1))
