"""Schedule cache: memoization, LRU bound, counters."""

import pytest

from repro.compiler.cache import ScheduleCache, layer_signature
from repro.errors import ScheduleError
from repro.workloads.layers import MatMulLayer


def _mm(i: int, features: int = 8) -> MatMulLayer:
    return MatMulLayer(f"mm{i}", in_features=features, out_features=8)


class TestMemoization:
    def test_shape_twins_hit(self, tiny_config):
        cache = ScheduleCache(tiny_config)
        a = cache.schedule(MatMulLayer("a", in_features=16, out_features=8))
        b = cache.schedule(MatMulLayer("b", in_features=16, out_features=8))
        assert cache.hits == 1 and cache.misses == 1
        assert a.mapping == b.mapping
        assert b.layer.name == "b"  # rebound to the twin, not renamed

    def test_signature_distinguishes_batch(self):
        a = MatMulLayer("x", in_features=8, out_features=8, batch=1)
        b = MatMulLayer("x", in_features=8, out_features=8, batch=2)
        assert layer_signature(a) != layer_signature(b)


class TestLruBound:
    def test_unbounded_by_default(self, tiny_config):
        cache = ScheduleCache(tiny_config)
        for i in range(4):
            cache.schedule(_mm(i, features=8 + 8 * i))
        assert len(cache) == 4
        assert cache.evictions == 0

    def test_eviction_past_bound(self, tiny_config):
        cache = ScheduleCache(tiny_config, max_entries=2)
        for i in range(4):
            cache.schedule(_mm(i, features=8 + 8 * i))
        assert len(cache) == 2
        assert cache.evictions == 2

    def test_lru_order_evicts_coldest(self, tiny_config):
        cache = ScheduleCache(tiny_config, max_entries=2)
        first = _mm(0, features=8)
        cache.schedule(first)            # miss: {8}
        cache.schedule(_mm(1, features=16))   # miss: {8, 16}
        cache.schedule(first)            # hit, refreshes 8
        cache.schedule(_mm(2, features=24))   # miss, evicts 16
        misses = cache.misses
        cache.schedule(first)            # still cached
        assert cache.misses == misses
        cache.schedule(_mm(3, features=16))   # 16 was evicted: miss
        assert cache.misses == misses + 1

    def test_invalid_bound(self, tiny_config):
        with pytest.raises(ScheduleError):
            ScheduleCache(tiny_config, max_entries=0)


class TestStats:
    def test_counters_snapshot(self, tiny_config):
        cache = ScheduleCache(tiny_config, max_entries=1)
        cache.schedule(_mm(0, features=8))
        cache.schedule(_mm(0, features=8))
        cache.schedule(_mm(1, features=16))
        stats = cache.stats()
        assert (stats.hits, stats.misses, stats.evictions) == (1, 2, 1)
        assert stats.size == 1
        assert stats.max_entries == 1
        assert stats.lookups == 3
        assert stats.hit_rate == pytest.approx(1 / 3)
        assert "evictions" in stats.describe()

    def test_empty_hit_rate(self, tiny_config):
        assert ScheduleCache(tiny_config).stats().hit_rate == 0.0
