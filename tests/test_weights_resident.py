"""Weight residency (§III-A1 preload) vs per-layer streaming."""

import dataclasses

import numpy as np
import pytest

from repro.compiler.codegen import compile_schedule
from repro.compiler.model import evaluate_mapping
from repro.compiler.search import schedule_layer
from repro.sim.cycle import CycleSimulator
from repro.sim.functional import random_layer_operands
from repro.workloads.layers import MatMulLayer


@pytest.fixture
def resident_config(tiny_config):
    return dataclasses.replace(tiny_config, weights_resident=True)


class TestModel:
    def test_residency_removes_weight_stream(self, tiny_config, resident_config,
                                             small_conv):
        streamed = schedule_layer(small_conv, tiny_config)
        resident_est = evaluate_mapping(
            small_conv, resident_config, streamed.mapping
        )
        assert resident_est.c_dram_rd < streamed.estimate.c_dram_rd
        # Everything else is untouched.
        assert resident_est.c_comp == streamed.estimate.c_comp
        assert resident_est.c_psumbus == streamed.estimate.c_psumbus
        assert resident_est.e_wbuf == pytest.approx(streamed.estimate.e_wbuf)

    def test_bandwidth_bound_mm_recovers(self, tiny_config, resident_config):
        """A batch-1 MM is weight-stream-bound; residency unbinds it."""
        layer = MatMulLayer("fc", in_features=64, out_features=48, batch=1)
        streamed = schedule_layer(layer, tiny_config)
        resident = schedule_layer(layer, resident_config)
        assert resident.cycles <= streamed.cycles
        assert resident.estimate.bottleneck != "dram_rd" or \
            resident.estimate.c_dram_rd < streamed.estimate.c_dram_rd

    def test_search_exploits_residency(self, tiny_config, resident_config,
                                       small_conv):
        """With streaming off, the search may pick schedules that would
        otherwise pay for weight duplication — never slower ones."""
        streamed = schedule_layer(small_conv, tiny_config)
        resident = schedule_layer(small_conv, resident_config)
        assert resident.cycles <= streamed.cycles


class TestSimulator:
    def test_no_weight_trace_when_resident(self, resident_config, small_conv, rng):
        schedule = schedule_layer(small_conv, resident_config)
        compiled = compile_schedule(schedule)
        weights, acts = random_layer_operands(small_conv, rng)
        run = CycleSimulator(resident_config).run_layer(compiled, weights, acts)
        assert run.golden_match
        assert run.trace.total_words("RD", "weight") == 0

    def test_streamed_still_traces_weights(self, tiny_config, small_conv, rng):
        schedule = schedule_layer(small_conv, tiny_config)
        compiled = compile_schedule(schedule)
        weights, acts = random_layer_operands(small_conv, rng)
        run = CycleSimulator(tiny_config).run_layer(compiled, weights, acts)
        assert run.trace.total_words("RD", "weight") > 0

    def test_resident_not_slower(self, tiny_config, resident_config,
                                 small_conv, rng):
        weights, acts = random_layer_operands(small_conv, rng)
        runs = {}
        for config in (tiny_config, resident_config):
            schedule = schedule_layer(small_conv, config)
            runs[config.weights_resident] = CycleSimulator(config).run_layer(
                compile_schedule(schedule), weights, acts
            )
        assert runs[True].cycles <= runs[False].cycles
        assert runs[True].golden_match
