"""Placement of FTDL overlays and the systolic baseline."""

import pytest

from repro.errors import ResourceError
from repro.fpga.devices import get_device
from repro.fpga.placement import place_overlay, place_systolic


@pytest.fixture
def vu125():
    return get_device("vu125")


class TestOverlayPlacement:
    def test_paper_config_fits(self, vu125):
        placement = place_overlay(vu125, 12, 5, 20)
        assert placement.n_dsp_used == 1200
        assert placement.dsp_utilization == pytest.approx(1.0)
        assert placement.style == "ftdl"

    def test_bram_accounting_includes_psumbuf(self, vu125):
        placement = place_overlay(vu125, 12, 5, 20)
        # 1200 TPE BRAMs + 100 SuperBlocks x 2 PSumBUF BRAMs.
        assert placement.n_bram_used == 1200 + 100 * 2

    def test_net_classes_present(self, vu125):
        placement = place_overlay(vu125, 12, 5, 20)
        names = {net.name for net in placement.nets}
        assert {"wbuf_rd", "actbuf_rd", "dsp_cascade", "psum_wr"} <= names

    def test_cascade_is_dedicated(self, vu125):
        placement = place_overlay(vu125, 12, 5, 20)
        cascade = next(n for n in placement.nets if n.name == "dsp_cascade")
        assert cascade.dedicated

    def test_wbuf_net_in_slow_domain(self, vu125):
        placement = place_overlay(vu125, 12, 5, 20)
        wbuf = next(n for n in placement.nets if n.name == "wbuf_rd")
        assert wbuf.clock_domain == "l"

    def test_net_lengths_scale_invariant(self, vu125):
        """The FTDL property: worst net distances do not grow with scale."""
        small = place_overlay(vu125, 12, 1, 5)
        large = place_overlay(vu125, 12, 5, 20)
        for name in ("wbuf_rd", "actbuf_rd", "psum_wr"):
            s = next(n for n in small.nets if n.name == name)
            l = next(n for n in large.nets if n.name == name)
            assert (l.dx_columns, l.dy_sites) == (s.dx_columns, s.dy_sites), name

    def test_too_many_columns_rejected(self, vu125):
        with pytest.raises(ResourceError, match="D2=6 exceeds"):
            place_overlay(vu125, 12, 6, 20)

    def test_column_overflow_rejected(self, vu125):
        with pytest.raises(ResourceError, match="D1\\*D3"):
            place_overlay(vu125, 13, 5, 20)

    def test_nonpositive_dimension_rejected(self, vu125):
        with pytest.raises(ResourceError):
            place_overlay(vu125, 0, 1, 1)

    def test_seed_deterministic(self, vu125):
        a = place_overlay(vu125, 12, 5, 20)
        b = place_overlay(vu125, 12, 5, 20)
        assert a.seed == b.seed

    def test_seed_differs_between_designs(self, vu125):
        a = place_overlay(vu125, 12, 5, 20)
        b = place_overlay(vu125, 12, 4, 20)
        assert a.seed != b.seed


class TestSystolicPlacement:
    def test_boundary_feed_spans_grow_with_scale(self, vu125):
        """The architecture-layout mismatch: feed nets stretch with size."""
        small = place_systolic(vu125, 8, 8)
        large = place_systolic(vu125, 32, 32)
        s = next(n for n in small.nets if n.name == "act_feed_boundary")
        l = next(n for n in large.nets if n.name == "act_feed_boundary")
        assert l.dx_columns > s.dx_columns
        assert l.dy_sites >= s.dy_sites

    def test_pe_count(self, vu125):
        assert place_systolic(vu125, 16, 16).n_dsp_used == 256

    def test_too_many_pes_rejected(self, vu125):
        with pytest.raises(ResourceError, match="exceed"):
            place_systolic(vu125, 40, 40)

    def test_nonpositive_shape_rejected(self, vu125):
        with pytest.raises(ResourceError):
            place_systolic(vu125, 0, 8)
