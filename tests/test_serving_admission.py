"""Admission control: bounded queue, backpressure, degradation band."""

import pytest

from repro.errors import ServingError
from repro.serving.admission import AdmissionController, AdmissionPolicy


class TestAdmissionPolicy:
    def test_invalid_capacity(self):
        with pytest.raises(ServingError):
            AdmissionPolicy(capacity=0)

    @pytest.mark.parametrize("watermark", [0.0, -0.5, 1.5])
    def test_invalid_watermark(self, watermark):
        with pytest.raises(ServingError):
            AdmissionPolicy(degrade_watermark=watermark)


class TestAdmissionController:
    def test_admits_below_capacity(self):
        ctl = AdmissionController(AdmissionPolicy(capacity=2))
        assert ctl.admit(0)
        assert ctl.admit(1)
        assert ctl.admitted == 2
        assert ctl.rejected == 0

    def test_rejects_at_capacity(self):
        ctl = AdmissionController(AdmissionPolicy(capacity=2))
        assert not ctl.admit(2)
        assert ctl.rejected == 1
        assert ctl.rejection_rate == 1.0

    def test_degraded_band(self):
        ctl = AdmissionController(
            AdmissionPolicy(capacity=100, degrade_watermark=0.75)
        )
        assert not ctl.degraded(74)
        assert ctl.degraded(75)
        assert ctl.degraded(100)

    def test_offered_counts_both(self):
        ctl = AdmissionController(AdmissionPolicy(capacity=1))
        ctl.admit(0)
        ctl.admit(1)
        assert ctl.offered == 2
        assert ctl.rejection_rate == pytest.approx(0.5)
