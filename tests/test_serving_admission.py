"""Admission control: bounded queue, backpressure, degradation band."""

import pytest

from repro.errors import ServingError
from repro.serving.admission import AdmissionController, AdmissionPolicy


class TestAdmissionPolicy:
    def test_invalid_capacity(self):
        with pytest.raises(ServingError):
            AdmissionPolicy(capacity=0)

    @pytest.mark.parametrize("watermark", [0.0, -0.5, 1.5])
    def test_invalid_watermark(self, watermark):
        with pytest.raises(ServingError):
            AdmissionPolicy(degrade_watermark=watermark)


class TestAdmissionController:
    def test_admits_below_capacity(self):
        ctl = AdmissionController(AdmissionPolicy(capacity=2))
        assert ctl.admit(0)
        assert ctl.admit(1)
        assert ctl.admitted == 2
        assert ctl.rejected == 0

    def test_rejects_at_capacity(self):
        ctl = AdmissionController(AdmissionPolicy(capacity=2))
        assert not ctl.admit(2)
        assert ctl.rejected == 1
        assert ctl.rejection_rate == 1.0

    def test_degraded_band(self):
        ctl = AdmissionController(
            AdmissionPolicy(capacity=100, degrade_watermark=0.75)
        )
        assert not ctl.degraded(74)
        assert ctl.degraded(75)
        assert ctl.degraded(100)

    def test_offered_counts_both(self):
        ctl = AdmissionController(AdmissionPolicy(capacity=1))
        ctl.admit(0)
        ctl.admit(1)
        assert ctl.offered == 2
        assert ctl.rejection_rate == pytest.approx(0.5)


class TestAdmissionEdgeCases:
    def test_queue_exactly_at_watermark(self):
        """The watermark boundary itself is degraded (>=, not >)."""
        ctl = AdmissionController(
            AdmissionPolicy(capacity=8, degrade_watermark=0.5)
        )
        assert not ctl.degraded(3)
        assert ctl.degraded(4)  # exactly 0.5 * 8

    def test_fractional_watermark_threshold(self):
        # 0.75 * 10 = 7.5: depth 7 is healthy, depth 8 is degraded.
        ctl = AdmissionController(
            AdmissionPolicy(capacity=10, degrade_watermark=0.75)
        )
        assert not ctl.degraded(7)
        assert ctl.degraded(8)

    def test_watermark_equals_capacity(self):
        """watermark=1.0 only degrades a full queue — which admission
        then rejects, so degradation and rejection meet at one depth."""
        ctl = AdmissionController(
            AdmissionPolicy(capacity=4, degrade_watermark=1.0)
        )
        assert not ctl.degraded(3)
        assert ctl.degraded(4)
        assert not ctl.admit(4)

    def test_capacity_one(self):
        ctl = AdmissionController(
            AdmissionPolicy(capacity=1, degrade_watermark=1.0)
        )
        assert ctl.admit(0)
        assert not ctl.admit(1)
        assert ctl.degraded(1)

    def test_degradation_toggles_with_depth(self):
        """Degradation is a pure function of depth: draining the queue
        below the watermark restores normal batch formation."""
        ctl = AdmissionController(
            AdmissionPolicy(capacity=8, degrade_watermark=0.5)
        )
        assert not ctl.degraded(2)
        assert ctl.degraded(6)
        assert not ctl.degraded(2)
        assert ctl.degraded(5)

    def test_fault_pressure_overrides_watermark(self):
        ctl = AdmissionController(
            AdmissionPolicy(capacity=100, degrade_watermark=0.75)
        )
        assert not ctl.degraded(0)
        ctl.fault_pressure = True
        assert ctl.degraded(0)
        ctl.fault_pressure = False
        assert not ctl.degraded(0)

    def test_degraded_queries_do_not_count_dispatches(self):
        ctl = AdmissionController(AdmissionPolicy(capacity=4))
        ctl.degraded(4)
        assert ctl.degraded_dispatches == 0
