"""SVG chart rendering: well-formedness and content."""

import xml.dom.minidom

import pytest

from repro.analysis.svg_plot import svg_lines, svg_scatter
from repro.errors import FTDLError


def _parse(svg: str):
    return xml.dom.minidom.parseString(svg)


class TestScatter:
    def test_well_formed_xml(self):
        svg = svg_scatter([1, 2, 3], [4, 5, 6], title="t & t", x_label="<x>")
        doc = _parse(svg)
        assert doc.documentElement.tagName == "svg"

    def test_one_circle_per_point(self):
        svg = svg_scatter([1, 2, 3, 4], [1, 2, 3, 4])
        assert svg.count("<circle") == 4

    def test_color_axis(self):
        svg = svg_scatter([1, 2], [1, 2], colors=[0.0, 1.0])
        _parse(svg)
        assert "E_WBUF" in svg
        # Low and high colours differ.
        fills = [part.split('"')[0] for part in svg.split('fill="rgb')[1:]]
        assert len(set(fills)) == 2

    def test_log_axis(self):
        svg = svg_scatter([1, 10, 100], [1, 2, 3], log_x=True)
        _parse(svg)
        assert ">10<" in svg  # decade tick label

    def test_log_rejects_nonpositive(self):
        with pytest.raises(FTDLError):
            svg_scatter([0, 1], [1, 2], log_x=True)

    def test_mismatched_rejected(self):
        with pytest.raises(FTDLError):
            svg_scatter([1, 2], [1])


class TestLines:
    def test_well_formed_with_legend(self):
        svg = svg_lines([1, 2, 3], {"a & b": [1, 2, 3], "c": [3, 2, 1]})
        _parse(svg)
        assert svg.count("<polyline") == 2
        assert "a &amp; b" in svg

    def test_series_length_checked(self):
        with pytest.raises(FTDLError):
            svg_lines([1, 2], {"a": [1]})

    def test_empty_series_rejected(self):
        with pytest.raises(FTDLError):
            svg_lines([1, 2], {})

    def test_constant_series_renders(self):
        svg = svg_lines([1, 2, 3], {"flat": [5, 5, 5]})
        _parse(svg)

    def test_axis_labels_present(self):
        svg = svg_lines([1, 2], {"s": [1, 2]}, x_label="DSPs",
                        y_label="fmax (MHz)")
        assert "DSPs" in svg and "fmax (MHz)" in svg
