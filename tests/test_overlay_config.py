"""Overlay configuration invariants."""

import pytest

from repro.errors import ResourceError
from repro.fpga.devices import get_device
from repro.overlay.config import OverlayConfig, PAPER_EXAMPLE_CONFIG
from repro.overlay.resources import resource_report


class TestDerivedQuantities:
    def test_paper_example_tpe_count(self):
        assert PAPER_EXAMPLE_CONFIG.n_tpe == 1200
        assert PAPER_EXAMPLE_CONFIG.n_superblocks == 100

    def test_paper_example_peak_gops(self):
        # 2 ops x 1200 TPEs x 650 MHz = 1560 GOPS.
        assert PAPER_EXAMPLE_CONFIG.peak_gops == pytest.approx(1560.0)

    def test_pipeline_latency_matches_paper(self):
        # Lat = D1 + 6 (§IV-B1).
        assert PAPER_EXAMPLE_CONFIG.pipeline_latency == 18

    def test_double_buffer_halves_usable_space(self):
        cfg = OverlayConfig(d1=2, d2=2, d3=2, s_actbuf_words=128)
        assert cfg.actbuf_usable_words == 64
        single = OverlayConfig(
            d1=2, d2=2, d3=2, s_actbuf_words=128, double_buffer=False
        )
        assert single.actbuf_usable_words == 128

    def test_dram_words_per_cycle(self):
        assert PAPER_EXAMPLE_CONFIG.dram_rd_words_per_cycle() == pytest.approx(20.0)

    def test_default_actbus_is_one_word_per_tpe(self):
        assert PAPER_EXAMPLE_CONFIG.actbus_wpc == 12.0

    def test_explicit_actbus_width_respected(self):
        cfg = OverlayConfig(d1=12, d2=5, d3=20, actbus_words_per_cycle=2.0)
        assert cfg.actbus_wpc == 2.0

    def test_with_grid_preserves_other_fields(self):
        other = PAPER_EXAMPLE_CONFIG.with_grid(6, 5, 40)
        assert other.n_tpe == 1200
        assert other.s_actbuf_words == PAPER_EXAMPLE_CONFIG.s_actbuf_words
        assert other.clk_h_mhz == PAPER_EXAMPLE_CONFIG.clk_h_mhz


class TestValidation:
    def test_nonpositive_dimension_rejected(self):
        with pytest.raises(ResourceError):
            OverlayConfig(d1=0, d2=1, d3=1)

    def test_tiny_buffer_rejected(self):
        with pytest.raises(ResourceError):
            OverlayConfig(d1=1, d2=1, d3=1, s_actbuf_words=1)

    def test_nonpositive_clock_rejected(self):
        with pytest.raises(ResourceError):
            OverlayConfig(d1=1, d2=1, d3=1, clk_h_mhz=0.0)


class TestResourceReport:
    def test_paper_config_fits_vu125(self):
        report = resource_report(PAPER_EXAMPLE_CONFIG, get_device("vu125"))
        assert report.fits
        assert report.n_dsp == 1200
        assert report.dsp_utilization == pytest.approx(1.0)

    def test_oversized_config_reported_not_raised(self):
        big = OverlayConfig(d1=13, d2=5, d3=20)
        report = resource_report(big, get_device("vu125"))
        assert not report.fits

    def test_describe_mentions_fit(self):
        report = resource_report(PAPER_EXAMPLE_CONFIG, get_device("vu125"))
        assert "fits" in report.describe()
