"""Cluster engine: ServingEngine equivalence, healing, tenancy, scaling."""

import pytest

from repro.cluster import (
    AutoscalePolicy,
    ClusterEngine,
    CorrelatedDramFault,
    FleetService,
    NetworkHeal,
    NetworkPartition,
    RackPowerLoss,
    RackPowerRestore,
    TenantPolicy,
    build_fleet,
    weight_load_s,
)
from repro.errors import ServingError
from repro.faults import (
    FaultSchedule,
    ReplicaCrash,
    ReplicaRecovery,
    generate_fault_schedule,
)
from repro.faults.monitor import HealthMonitor
from repro.overlay.config import OverlayConfig
from repro.serving.admission import AdmissionPolicy
from repro.serving.batcher import BatchPolicy, BatchServiceModel
from repro.serving.engine import ServingEngine
from repro.serving.request import RetryPolicy, make_requests, poisson_arrivals
from repro.serving.scheduler import ReplicaService
from repro.trace.metrics import MetricsRegistry
from repro.trace.span import Tracer
from repro.workloads.layers import MatMulLayer
from repro.workloads.network import Network

CONFIG = OverlayConfig(
    d1=3, d2=2, d3=2, s_actbuf_words=64, s_wbuf_words=256,
    s_psumbuf_words=512, clk_h_mhz=650.0,
)
#: Heavy enough that faults land while batches are in flight — the
#: equivalence below is only meaningful with live retries and SDC.
NETWORK = Network(
    name="mm", application="test",
    layers=(MatMulLayer(name="fc", in_features=192, out_features=160,
                        batch=2),),
)


#: ~2 ms per batch of 8 — slow enough that point events reliably catch
#: batches in flight and queues actually build under load.
HEAVY_NETWORK = Network(
    name="mm", application="test",
    layers=(MatMulLayer(name="fc", in_features=768, out_features=640,
                        batch=2),),
)


_MODELS: dict[str, BatchServiceModel] = {}


def model() -> BatchServiceModel:
    """Shared instance: batch-size compilations are cached across tests
    (service times are deterministic, so sharing cannot leak state)."""
    return _MODELS.setdefault("mm", BatchServiceModel(NETWORK, CONFIG))


def heavy_model() -> BatchServiceModel:
    return _MODELS.setdefault(
        "heavy", BatchServiceModel(HEAVY_NETWORK, CONFIG))


def arrivals(n=400, rate=9000.0, seed=1, deadline_s=20e-3):
    return make_requests(
        poisson_arrivals(rate, n, seed=seed), "mm", deadline_s=deadline_s,
    )


def board_schedule(names, seed=5, duration_s=0.08):
    return generate_fault_schedule(
        seed=seed, duration_s=duration_s, replicas=list(names),
        grid=CONFIG, crash_rate_hz=60.0, mean_repair_s=0.010,
        bitflip_rate_hz=200.0, correctable_fraction=0.3,
        tpe_fault_rate_hz=100.0, stuck_fraction=0.2,
        link_fault_rate_hz=30.0, slowdown_rate_hz=30.0,
    )


def snapshot(report):
    """Everything observable about a run, for bit-equality checks."""
    core = getattr(report, "core", report)
    return {
        "completed": [
            (r.request_id, r.complete_s, r.replica, r.attempts,
             r.batch_size)
            for r in core.completed
        ],
        "dropped": [
            (r.request_id, r.drop_reason, r.attempts) for r in core.dropped
        ],
        "n_rejected": core.n_rejected,
        "n_retries": core.n_retries,
        "makespan_s": core.makespan_s,
        "utilization": core.utilization,
        "queue_avg": core.queue_depth_time_avg,
        "queue_max": core.queue_depth_max,
        "degraded": core.degraded_dispatches,
        "fault_counts": core.fault_counts,
        "integrity_counts": core.integrity_counts,
        "health": (
            (core.health.crashes, core.health.recoveries,
             core.health.mttr_s, core.health.downtime_s)
            if core.health else None
        ),
    }


class TestServingEngineEquivalence:
    """A degenerate cluster (one rack, one tenant, no autoscaler, no
    hedging, board names = replica names, no domain events) must
    reproduce the single-board ServingEngine bit for bit — this is the
    contract that lets chaos and integrity compose with the fleet
    unchanged."""

    N_BOARDS = 2

    def _run_pair(self, integrity):
        names = [f"overlay{i}" for i in range(self.N_BOARDS)]
        schedule = board_schedule(names)
        kwargs = dict(
            batch_policy=BatchPolicy(max_batch=8, max_wait_s=0.5e-3),
            admission_policy=AdmissionPolicy(capacity=64),
            fault_schedule=schedule,
            retry_policy=RetryPolicy(max_attempts=4, backoff_base_s=0.2e-3),
            integrity_policy=integrity,
        )
        load = dict(n=800, rate=12000.0, deadline_s=5e-3)
        single = ServingEngine(
            ReplicaService(model(), n_replicas=self.N_BOARDS), **kwargs
        ).run(arrivals(**load))
        fleet = build_fleet(1, self.N_BOARDS, board_names=names)
        cluster = ClusterEngine(
            FleetService(model(), fleet), hedge_retries=False, **kwargs
        ).run(arrivals(**load))
        return single, cluster

    @pytest.mark.parametrize(
        "integrity", ["off", "detect", "detect-reexecute", "detect-correct"]
    )
    def test_bit_identical(self, integrity):
        single, cluster = self._run_pair(integrity)
        assert snapshot(single) == snapshot(cluster)

    def test_equivalence_run_is_nontrivial(self):
        # Guard against the comparison passing vacuously: the shared
        # fault schedule must actually cause retries, drops and SDC.
        single, cluster = self._run_pair("detect-correct")
        assert single.n_retries > 0
        assert single.n_dropped > 0
        assert single.integrity_counts.get("sdc_detected", 0) > 0
        assert cluster.conserved

    def test_cluster_report_wraps_core(self):
        _, cluster = self._run_pair("off")
        assert cluster.n_racks == 1
        assert cluster.n_boards == self.N_BOARDS
        assert cluster.availability == cluster.core.availability
        assert set(cluster.per_tenant) == {"default"}


class TestDomainFaults:
    def _fleet(self, n_racks=2, per_rack=2):
        topo = build_fleet(n_racks, per_rack)
        return topo, FleetService(model(), topo)

    def _run(self, service, events, requests=None, **kwargs):
        kwargs.setdefault(
            "batch_policy", BatchPolicy(max_batch=8, max_wait_s=0.5e-3))
        kwargs.setdefault(
            "retry_policy", RetryPolicy(max_attempts=5, backoff_base_s=0.2e-3))
        return ClusterEngine(
            service, fault_schedule=FaultSchedule.from_events(events),
            **kwargs,
        ).run(requests if requests is not None else arrivals())

    def test_rack_loss_drains_members_and_conserves(self):
        topo, service = self._fleet()
        report = self._run(service, [
            RackPowerLoss(5e-3, "rack0"),
            RackPowerRestore(20e-3, "rack0"),
        ])
        assert report.drains == 2          # both members of rack0
        assert report.readmits == 2
        assert report.cold_starts == 2     # power restore reloads weights
        assert report.conserved
        assert report.n_completed + report.n_dropped \
            + report.n_rejected == report.n_offered

    def test_rack_loss_mid_flight_retries_in_flight_work(self):
        topo, service = self._fleet(1, 2)
        requests = arrivals(n=200, rate=12000.0)
        report = self._run(service, [
            RackPowerLoss(requests[40].arrival_s, "rack0"),
            RackPowerRestore(requests[40].arrival_s + 2e-3, "rack0"),
        ], requests=requests)
        assert report.core.n_retries > 0
        assert report.conserved
        assert report.availability > 0.5

    def test_power_restore_pays_cold_start_partition_does_not(self):
        topo, service = self._fleet(1, 2)
        assert service.cold_start_s == pytest.approx(
            weight_load_s(model()))
        assert service.cold_start_s > 0
        lossy = self._run(service, [
            RackPowerLoss(5e-3, "rack0"),
            RackPowerRestore(10e-3, "rack0"),
        ])
        topo2, service2 = self._fleet(1, 2)
        parted = self._run(service2, [
            NetworkPartition(5e-3, "rack0"),
            NetworkHeal(10e-3, "rack0"),
        ])
        assert lossy.cold_starts == 2
        assert parted.cold_starts == 0
        assert parted.drains == 2 and parted.readmits == 2
        assert parted.conserved

    def test_losing_every_rack_strands_then_recovers_nothing(self):
        # No restore ever: queued + backing-off work is strand-dropped,
        # never leaked.
        topo, service = self._fleet(2, 2)
        report = self._run(service, [
            RackPowerLoss(3e-3, "rack0"),
            RackPowerLoss(3e-3, "rack1"),
        ])
        assert report.conserved
        assert report.n_dropped > 0
        stats = report.per_tenant["default"]
        assert stats.n_offered == stats.n_completed \
            + stats.n_rejected + stats.n_dropped

    def test_correlated_dram_aborts_without_integrity(self):
        topo, service = self._fleet(1, 2)
        report = self._run(service, [
            CorrelatedDramFault(4e-3, "rack0", n_flips=6, seed=9),
        ])
        assert report.core.fault_counts.get("dram_correlated") == 1
        assert report.conserved

    def test_correlated_dram_detected_by_integrity(self):
        topo = build_fleet(1, 2)
        service = FleetService(heavy_model(), topo)
        report = self._run(
            service,
            [CorrelatedDramFault(4e-3, "rack0", n_flips=6, seed=9)],
            integrity_policy="detect",
            requests=arrivals(n=300, rate=12000.0),
        )
        assert report.core.integrity_counts.get("sdc_detected", 0) > 0
        assert report.conserved

    def test_health_rolls_up_to_rack_domains(self):
        topo, service = self._fleet(2, 2)
        report = self._run(service, [
            RackPowerLoss(5e-3, "rack0"),
            RackPowerRestore(9e-3, "rack0"),
        ])
        health = report.core.health
        assert health is not None
        assert set(health.per_domain) == {"rack0", "rack1"}
        rack0 = health.per_domain["rack0"]
        assert rack0.n_members == 2
        assert rack0.crashes == 2 and rack0.recoveries == 2
        assert rack0.mttr_s == pytest.approx(4e-3)
        assert rack0.availability < 1.0
        assert health.per_domain["rack1"].availability == 1.0
        assert "domains" in health.describe()

    def test_mixed_domain_and_board_schedule(self):
        topo, service = self._fleet(2, 2)
        merged = FaultSchedule.merge(
            FaultSchedule.from_events([
                RackPowerLoss(5e-3, "rack0"),
                RackPowerRestore(12e-3, "rack0"),
            ]),
            FaultSchedule.from_events([
                ReplicaCrash(6e-3, "rack1/b0"),
                ReplicaRecovery(9e-3, "rack1/b0"),
            ]),
        )
        report = ClusterEngine(
            service,
            batch_policy=BatchPolicy(max_batch=8, max_wait_s=0.5e-3),
            retry_policy=RetryPolicy(max_attempts=5, backoff_base_s=0.2e-3),
            fault_schedule=merged,
        ).run(arrivals())
        assert report.core.fault_counts["rack_power_loss"] == 1
        assert report.core.fault_counts["crash"] == 1
        assert report.conserved


class TestHedging:
    def _run(self, hedge):
        topo = build_fleet(1, 3)
        service = FleetService(heavy_model(), topo)
        events = [
            ReplicaCrash(4e-3, "rack0/b0"),
            ReplicaRecovery(30e-3, "rack0/b0"),
        ]
        return ClusterEngine(
            service,
            batch_policy=BatchPolicy(max_batch=4, max_wait_s=0.2e-3),
            retry_policy=RetryPolicy(max_attempts=5, backoff_base_s=0.1e-3),
            fault_schedule=FaultSchedule.from_events(events),
            hedge_retries=hedge,
        ).run(arrivals(n=300, rate=15000.0))

    def test_retries_steer_off_the_failed_board(self):
        report = self._run(hedge=True)
        assert report.core.n_retries > 0
        assert report.hedged_dispatches > 0
        assert report.conserved

    def test_hedging_can_be_disabled(self):
        report = self._run(hedge=False)
        assert report.hedged_dispatches == 0
        assert report.conserved


class TestTenancy:
    def _requests(self, n=300, rate=9000.0):
        requests = arrivals(n=n, rate=rate)
        for i, request in enumerate(requests):
            request.tenant = ("alpha", "beta", "beta")[i % 3]
        return requests

    def test_per_tenant_accounting(self):
        topo = build_fleet(1, 2)
        report = ClusterEngine(
            FleetService(model(), topo),
            batch_policy=BatchPolicy(max_batch=8, max_wait_s=0.5e-3),
            tenant_policy=TenantPolicy(weights={"alpha": 2.0, "beta": 1.0}),
        ).run(self._requests())
        assert set(report.per_tenant) == {"alpha", "beta"}
        assert report.per_tenant["alpha"].n_offered == 100
        assert report.per_tenant["beta"].n_offered == 200
        assert report.conserved
        total = sum(t.n_offered for t in report.per_tenant.values())
        assert total == report.n_offered

    def test_quota_rejects_and_accounts(self):
        topo = build_fleet(1, 1)
        report = ClusterEngine(
            FleetService(heavy_model(), topo),
            batch_policy=BatchPolicy(max_batch=2, max_wait_s=0.5e-3),
            admission_policy=AdmissionPolicy(capacity=256),
            tenant_policy=TenantPolicy(quotas={"beta": 2}),
        ).run(self._requests(rate=20000.0))
        beta = report.per_tenant["beta"]
        assert beta.n_quota_rejected > 0
        assert beta.n_rejected >= beta.n_quota_rejected
        assert beta.conserved
        # Quota only throttles beta; alpha rides the global bound.
        assert report.per_tenant["alpha"].n_quota_rejected == 0
        assert report.conserved
        assert "quota-rejected" in report.describe()

    def test_quota_rejections_count_into_core_rejected(self):
        topo = build_fleet(1, 1)
        report = ClusterEngine(
            FleetService(model(), topo),
            batch_policy=BatchPolicy(max_batch=2, max_wait_s=0.5e-3),
            tenant_policy=TenantPolicy(quotas={"beta": 1}),
        ).run(self._requests(rate=20000.0))
        assert report.n_rejected == sum(
            t.n_rejected for t in report.per_tenant.values()
        )


class TestAutoscaling:
    def test_scales_up_under_load_and_reports(self):
        topo = build_fleet(1, 4)
        report = ClusterEngine(
            FleetService(model(), topo),
            batch_policy=BatchPolicy(max_batch=4, max_wait_s=0.2e-3),
            autoscale_policy=AutoscalePolicy(
                interval_s=1e-3, queue_high_per_board=2.0,
                min_active=1, max_step=1,
            ),
        ).run(arrivals(n=400, rate=20000.0))
        assert report.autoscale_ticks > 0
        assert report.scale_ups > 0
        assert report.cold_starts >= report.scale_ups
        assert report.conserved
        assert "autoscale" in report.describe()

    def test_emergency_activation_rescues_stranded_queue(self):
        # min_active=1 keeps only board b0 in the set; killing it with
        # no recovery forces the scaler's emergency path to activate a
        # standby board — without it the queue would strand-drop.
        topo = build_fleet(1, 2)
        report = ClusterEngine(
            FleetService(model(), topo),
            batch_policy=BatchPolicy(max_batch=8, max_wait_s=0.5e-3),
            retry_policy=RetryPolicy(max_attempts=6, backoff_base_s=0.2e-3),
            fault_schedule=FaultSchedule.from_events(
                [ReplicaCrash(4e-3, "rack0/b0")]),
            autoscale_policy=AutoscalePolicy(
                interval_s=1e-3, min_active=1, max_active=1,
            ),
        ).run(arrivals(n=200, rate=6000.0))
        assert report.scale_ups >= 1
        assert report.conserved
        assert report.availability > 0.5


class TestObservability:
    def _run(self, tracer=None, metrics=None):
        topo = build_fleet(2, 2)
        return ClusterEngine(
            FleetService(model(), topo),
            batch_policy=BatchPolicy(max_batch=8, max_wait_s=0.5e-3),
            retry_policy=RetryPolicy(max_attempts=5, backoff_base_s=0.2e-3),
            fault_schedule=FaultSchedule.from_events([
                RackPowerLoss(5e-3, "rack0"),
                RackPowerRestore(15e-3, "rack0"),
            ]),
            autoscale_policy=AutoscalePolicy(interval_s=2e-3),
            tracer=tracer, metrics=metrics,
        ).run(arrivals())

    def test_cluster_trace_instants(self):
        tracer = Tracer()
        self._run(tracer=tracer)
        names = {i.name for i in tracer.instants}
        assert "cluster.drain" in names
        assert "cluster.readmit" in names
        assert "fault.rack_power_loss" in names

    def test_cluster_metrics(self):
        from repro.trace import prometheus_text
        metrics = MetricsRegistry()
        self._run(metrics=metrics)
        text = prometheus_text(metrics)
        assert "cluster_drains" in text
        assert "cluster_readmits" in text
        assert "cluster_queue_depth" in text
        assert "cluster_rack_utilization" in text

    def test_windowed_p99_covers_makespan(self):
        report = self._run()
        curve = report.windowed_p99(5e-3)
        assert len(curve) >= 2
        assert all(p99 >= 0.0 for _, p99 in curve)
        with pytest.raises(ServingError):
            report.windowed_p99(0.0)


class TestValidation:
    def test_rejects_plain_replica_service(self):
        with pytest.raises(ServingError):
            ClusterEngine(ReplicaService(model(), n_replicas=2))

    def test_rejects_empty_requests(self):
        topo = build_fleet(1, 1)
        engine = ClusterEngine(FleetService(model(), topo))
        with pytest.raises(ServingError):
            engine.run([])

    def test_rejects_unsorted_arrivals(self):
        topo = build_fleet(1, 1)
        engine = ClusterEngine(FleetService(model(), topo))
        requests = arrivals(n=4)
        requests.reverse()
        with pytest.raises(ServingError):
            engine.run(requests)

    def test_rejects_nonpositive_slo(self):
        topo = build_fleet(1, 1)
        with pytest.raises(ServingError):
            ClusterEngine(FleetService(model(), topo), slo_s=0.0)


class TestDeterminism:
    def test_full_featured_run_is_bit_identical(self):
        def run():
            topo = build_fleet(2, 3)
            service = FleetService(model(), topo)
            from repro.cluster import generate_domain_fault_schedule
            faults = FaultSchedule.merge(
                generate_domain_fault_schedule(
                    seed=3, duration_s=0.05, topology=topo,
                    rack_loss_rate_hz=20.0, partition_rate_hz=10.0,
                    correlated_dram_rate_hz=10.0,
                ),
                board_schedule(topo.board_names, seed=4, duration_s=0.05),
            )
            requests = arrivals(n=400, rate=12000.0)
            for i, request in enumerate(requests):
                request.tenant = ("alpha", "beta")[i % 2]
            return ClusterEngine(
                service,
                batch_policy=BatchPolicy(max_batch=8, max_wait_s=0.5e-3),
                retry_policy=RetryPolicy(max_attempts=5, backoff_base_s=0.2e-3),
                integrity_policy="detect-correct",
                tenant_policy=TenantPolicy(
                    weights={"alpha": 2.0}, quotas={"beta": 32}),
                autoscale_policy=AutoscalePolicy(interval_s=2e-3),
            ).run(requests)

        a, b = run(), run()
        assert snapshot(a) == snapshot(b)
        assert a.describe() == b.describe()
        assert a.conserved and b.conserved


class TestDomainHealthMonitor:
    """Satellite: HealthMonitor rolls per-domain MTTR/availability into
    its report when given a domain mapping."""

    def test_per_domain_rollup(self):
        monitor = HealthMonitor(
            ["a", "b", "c"],
            domains={"a": "rack0", "b": "rack0", "c": "rack1"},
        )
        monitor.record_crash("a", 1.0)
        monitor.record_recovery("a", 3.0)
        monitor.record_crash("b", 2.0)
        monitor.record_recovery("b", 3.0)
        monitor.record_dram_uncorrectable("c", 4.0)
        report = monitor.finalize(10.0, 0.0)
        rack0 = report.per_domain["rack0"]
        assert rack0.crashes == 2 and rack0.recoveries == 2
        assert rack0.mttr_s == pytest.approx(1.5)
        assert rack0.downtime_s == pytest.approx(3.0)
        assert rack0.availability == pytest.approx(1 - 3.0 / 20.0)
        rack1 = report.per_domain["rack1"]
        assert rack1.crashes == 0
        assert rack1.dram_uncorrectable == 1
        assert rack1.availability == 1.0

    def test_no_domains_no_rollup(self):
        monitor = HealthMonitor(["a"])
        monitor.record_crash("a", 1.0)
        report = monitor.finalize(2.0, 0.0)
        assert report.per_domain == {}
        assert "domains" not in report.describe()

    def test_unknown_domain_member_rejected(self):
        from repro.errors import FaultError
        with pytest.raises(FaultError):
            HealthMonitor(["a"], domains={"zz": "rack0"})
