"""Network container, op accounting, and the Table I model set."""

import pytest

from repro.errors import WorkloadError
from repro.units import BYTES_PER_WORD
from repro.workloads.layers import ConvLayer, EwopLayer, MatMulLayer
from repro.workloads.mlperf import MLPERF_MODELS, build_model, table1_rows
from repro.workloads.network import Network, OpBreakdown


def _mini_network() -> Network:
    return Network(
        name="mini",
        application="test",
        layers=(
            ConvLayer("c1", 2, 4, in_h=4, in_w=4, kernel_h=3, kernel_w=3, padding=1),
            EwopLayer("relu", op="relu", n_elements=64),
            MatMulLayer("fc", in_features=64, out_features=10),
        ),
    )


class TestNetwork:
    def test_breakdown_sums_to_total(self):
        breakdown = _mini_network().op_breakdown()
        assert breakdown.total_ops == (
            breakdown.conv_ops + breakdown.mm_ops + breakdown.ewop_ops
        )
        assert breakdown.conv_fraction + breakdown.mm_fraction + \
            breakdown.ewop_fraction == pytest.approx(1.0)

    def test_accelerated_layers_excludes_ewop(self):
        names = [l.name for l in _mini_network().accelerated_layers()]
        assert names == ["c1", "fc"]

    def test_weight_bytes(self):
        net = _mini_network()
        assert net.weight_bytes == net.weight_words * BYTES_PER_WORD

    def test_weight_tying_counts_once(self):
        tied = Network(
            name="tied",
            application="test",
            layers=(
                MatMulLayer("a", 8, 8, weight_group="shared"),
                MatMulLayer("b", 8, 8, weight_group="shared"),
            ),
        )
        assert tied.weight_words == 64

    def test_inconsistent_weight_group_rejected(self):
        tied = Network(
            name="bad",
            application="test",
            layers=(
                MatMulLayer("a", 8, 8, weight_group="shared"),
                MatMulLayer("b", 8, 16, weight_group="shared"),
            ),
        )
        with pytest.raises(WorkloadError, match="inconsistent"):
            _ = tied.weight_words

    def test_duplicate_layer_names_rejected(self):
        with pytest.raises(WorkloadError, match="duplicate"):
            Network(
                name="dup",
                application="test",
                layers=(
                    MatMulLayer("x", 4, 4),
                    MatMulLayer("x", 8, 8),
                ),
            )

    def test_empty_network_rejected(self):
        with pytest.raises(WorkloadError, match="no layers"):
            Network(name="empty", application="test", layers=())


class TestTable1:
    """Paper Table I: op mix and weight budgets of the five models."""

    @pytest.fixture(scope="class")
    def rows(self):
        return {r.model: r for r in table1_rows()}

    def test_all_models_present(self, rows):
        assert set(rows) == set(MLPERF_MODELS)

    @pytest.mark.parametrize(
        "model,conv,mm,ewop,weights_mb",
        [
            ("GoogLeNet", 99.73, 0.07, 0.20, 13.7),
            ("ResNet50", 99.67, 0.05, 0.27, 51.0),
            ("AlphaGoZero", 99.86, 0.08, 0.06, 2.08),
            ("Sentimental-seqCNN", 89.86, 0.15, 9.99, 0.34506),
            ("Sentimental-seqLSTM", 0.00, 99.89, 0.11, 39.9),
        ],
    )
    def test_row_matches_paper(self, rows, model, conv, mm, ewop, weights_mb):
        """Within tolerance of the paper's characterization: op mix within
        a few percentage points, weights within 5 %."""
        row = rows[model]
        assert row.conv_pct == pytest.approx(conv, abs=2.0)
        assert row.mm_pct == pytest.approx(mm, abs=1.0)
        assert row.ewop_pct == pytest.approx(ewop, abs=2.0)
        assert row.weight_bytes == pytest.approx(weights_mb * 1e6, rel=0.05)

    def test_conv_mm_dominate_everywhere(self, rows):
        """The §II-A premise: CONV + MM account for ~90 %+ of every model."""
        for row in rows.values():
            assert row.conv_pct + row.mm_pct >= 89.0, row.model

    def test_googlenet_macc_scale(self):
        net = build_model("GoogLeNet")
        assert 1.4e9 < net.accelerated_maccs < 1.7e9

    def test_resnet50_macc_scale(self):
        net = build_model("ResNet50")
        assert 3.7e9 < net.accelerated_maccs < 4.3e9

    def test_resnet50_parameter_count(self):
        net = build_model("ResNet50")
        assert net.weight_words == pytest.approx(25.5e6, rel=0.02)

    def test_unknown_model_rejected(self):
        with pytest.raises(WorkloadError, match="unknown model"):
            build_model("VGG16")

    def test_build_model_memoizes(self):
        assert build_model("GoogLeNet") is build_model("GoogLeNet")

    def test_format_weights(self, rows):
        assert rows["GoogLeNet"].format_weights().endswith("M")
        assert rows["Sentimental-seqCNN"].format_weights().endswith("K")


class TestModelStructure:
    def test_googlenet_has_nine_inception_modules(self):
        net = build_model("GoogLeNet")
        modules = {
            l.name.split(".")[0]
            for l in net.layers
            if l.name[0] in "345" and "." in l.name
        }
        assert len([m for m in modules if m[0] in "345" and len(m) == 2]) == 9

    def test_resnet50_bottleneck_count(self):
        net = build_model("ResNet50")
        conv3 = [l.name for l in net.layers if l.name.endswith(".conv3")]
        assert len(conv3) == 3 + 4 + 6 + 3

    def test_seqlstm_ties_weights_across_steps(self):
        net = build_model("Sentimental-seqLSTM")
        gates = [l for l in net.accelerated_layers() if "gates" in l.name]
        assert len(gates) == 50
        assert len({l.weight_group for l in gates}) == 2

    def test_alphagozero_is_conv_tower(self):
        net = build_model("AlphaGoZero")
        convs = [l for l in net.accelerated_layers() if l.kind.value == "conv"]
        assert len(convs) == 1 + 9 * 2 + 2  # stem + tower + two head convs


def _host_heavy_network() -> Network:
    """One of each 0-MACC host kind plus one MM, for accounting tests."""
    from repro.workloads.layers import (
        EltwiseLayer, LayerNormLayer, SoftmaxLayer,
    )
    return Network(
        name="hosty",
        application="test",
        layers=(
            LayerNormLayer("ln", n_features=8, batch=4),
            MatMulLayer("fc", in_features=8, out_features=8, batch=4),
            EltwiseLayer("res", op="add", n_features=8, batch=4, source="@input"),
            EwopLayer("relu", op="relu", n_elements=32),
            SoftmaxLayer("sm", n_features=8, batch=4),
        ),
    )


class TestHostLayerAccounting:
    """0-MACC layers stay honest: counted as host ops, never as MACCs."""

    def test_host_kinds_carry_zero_maccs_and_weights(self):
        net = _host_heavy_network()
        for layer in net.host_layers():
            assert layer.maccs == 0, layer.name
            assert layer.weight_words == 0, layer.name
            assert layer.parameter_words == 0, layer.name
            assert layer.ops > 0, layer.name

    def test_breakdown_routes_each_kind_to_its_bucket(self):
        from repro.workloads.layers import (
            NORM_OPS_PER_ELEMENT, SOFTMAX_OPS_PER_ELEMENT,
        )
        b = _host_heavy_network().op_breakdown()
        assert b.eltwise_ops == 32
        assert b.ewop_ops == 32
        assert b.softmax_ops == 32 * SOFTMAX_OPS_PER_ELEMENT
        assert b.norm_ops == 32 * NORM_OPS_PER_ELEMENT
        assert b.host_ops == (b.ewop_ops + b.eltwise_ops
                              + b.softmax_ops + b.norm_ops)
        assert b.conv_ops == 0
        assert b.mm_ops == 2 * 8 * 8 * 4

    def test_maccs_ignore_host_ops(self):
        net = _host_heavy_network()
        assert net.op_breakdown().maccs == 8 * 8 * 4
        assert net.accelerated_maccs == 8 * 8 * 4

    def test_fractions_sum_to_one_with_host_kinds(self):
        b = _host_heavy_network().op_breakdown()
        assert b.conv_fraction + b.mm_fraction + b.host_fraction == \
            pytest.approx(1.0)

    def test_empty_breakdown_has_no_divide_by_zero(self):
        b = OpBreakdown(conv_ops=0, mm_ops=0, ewop_ops=0)
        assert b.total_ops == 0
        assert b.maccs == 0
        assert b.conv_fraction == 0.0
        assert b.mm_fraction == 0.0
        assert b.ewop_fraction == 0.0
        assert b.host_fraction == 0.0

    def test_host_only_network_evaluates_without_division_error(self):
        from repro.analysis.efficiency import evaluate_network
        from repro.overlay.config import OverlayConfig
        from repro.workloads.layers import SoftmaxLayer
        net = Network(
            name="host-only", application="test",
            layers=(SoftmaxLayer("sm", n_features=4, batch=2),),
        )
        result = evaluate_network(net, OverlayConfig(d1=3, d2=2, d3=2))
        assert result.total_cycles == 0
        assert result.fps == 0.0
        assert result.hardware_efficiency == 0.0
        assert result.attained_gops == 0.0
        assert result.mean_e_wbuf == 0.0
        assert result.host_ops == net.op_breakdown().host_ops

    def test_host_ops_superset_of_ewop_ops(self):
        from repro.analysis.efficiency import evaluate_network
        from repro.overlay.config import OverlayConfig
        net = _host_heavy_network()
        result = evaluate_network(net, OverlayConfig(d1=3, d2=2, d3=2))
        assert result.host_ewop_ops == 32
        assert result.host_ops > result.host_ewop_ops

    def test_weight_source_layer_stores_no_parameters(self):
        net = Network(
            name="streamed", application="test",
            layers=(
                MatMulLayer("k", in_features=8, out_features=8, batch=4),
                MatMulLayer("score", in_features=8, out_features=4, batch=4,
                            weight_source="k"),
            ),
        )
        assert net.weight_words == 8 * 8
        score = net.layers[1]
        assert score.weight_words == 8 * 4  # still sized for scheduling
        assert score.parameter_words == 0
