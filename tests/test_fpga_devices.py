"""Device floorplan models."""

import pytest

from repro.errors import DeviceError
from repro.fpga.devices import Device, FabricColumn, get_device, list_devices
from repro.fpga.primitives import PrimitiveKind


class TestCatalogue:
    def test_lists_known_devices(self):
        names = list_devices()
        assert "vu125" in names
        assert "7vx330t" in names

    def test_unknown_device_raises(self):
        with pytest.raises(DeviceError, match="unknown device"):
            get_device("xc7z020")

    def test_vu125_dsp_total(self):
        # The paper's example platform: 1200 DSPs in 5 columns of 240.
        dev = get_device("vu125")
        assert dev.n_dsp_total == 1200
        assert len(dev.dsp_columns) == 5
        assert dev.dsps_per_column == 240

    def test_7vx330t_dsp_total(self):
        assert get_device("7vx330t").n_dsp_total == 1120

    def test_bram_at_least_one_per_dsp(self):
        # The TPE pairing needs BRAM18 >= DSP on every catalogued part.
        for name in list_devices():
            dev = get_device(name)
            assert dev.n_bram18_total >= dev.n_dsp_total, name

    def test_every_device_validates(self):
        for name in list_devices():
            get_device(name).validate()


class TestColumnGeometry:
    def test_dsp_bram_spacing_is_small_constant(self):
        # The layout-aware pairing: nearest BRAM column within a few
        # fabric columns of every DSP column.
        for name in list_devices():
            dev = get_device(name)
            for col in dev.dsp_columns:
                assert dev.dsp_bram_spacing(col) <= 3, name

    def test_columns_sorted_and_unique(self):
        dev = get_device("vu125")
        indices = [c.index for c in dev.columns]
        assert indices == sorted(indices)
        assert len(set(indices)) == len(indices)

    def test_columns_of_filters_by_kind(self):
        dev = get_device("vu125")
        brams = dev.columns_of(PrimitiveKind.BRAM)
        assert all(c.kind == PrimitiveKind.BRAM for c in brams)
        assert sum(c.n_sites for c in brams) == dev.n_bram18_total


class TestValidation:
    def _device(self, columns) -> Device:
        base = get_device("vu125")
        return Device(
            name="broken",
            family=base.family,
            dsp=base.dsp,
            bram=base.bram,
            clb=base.clb,
            columns=columns,
            column_pitch_ns=base.column_pitch_ns,
            site_pitch_ns=base.site_pitch_ns,
            route_base_ns=base.route_base_ns,
            n_clb_total=base.n_clb_total,
        )

    def test_no_dsp_columns_rejected(self):
        device = self._device(
            (FabricColumn(0, PrimitiveKind.BRAM, 100),)
        )
        with pytest.raises(DeviceError, match="no DSP columns"):
            device.validate()

    def test_duplicate_indices_rejected(self):
        device = self._device(
            (
                FabricColumn(0, PrimitiveKind.DSP, 100),
                FabricColumn(0, PrimitiveKind.BRAM, 100),
            )
        )
        with pytest.raises(DeviceError, match="duplicate"):
            device.validate()

    def test_empty_column_rejected(self):
        device = self._device(
            (
                FabricColumn(0, PrimitiveKind.DSP, 0),
                FabricColumn(1, PrimitiveKind.BRAM, 100),
            )
        )
        with pytest.raises(DeviceError, match="no sites"):
            device.validate()

    def test_nearest_bram_without_brams_raises(self):
        device = self._device((FabricColumn(0, PrimitiveKind.DSP, 10),))
        with pytest.raises(DeviceError, match="no BRAM columns"):
            device.nearest_bram_column(device.dsp_columns[0])
