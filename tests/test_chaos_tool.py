"""Chaos CLI: golden output, determinism, argument validation."""

from pathlib import Path

import pytest

from repro.tools.chaos import build_parser, main

GOLDEN = Path(__file__).parent / "golden" / "chaos_smoke.txt"

#: The exact invocation the golden file was generated with (also run by
#: the CI chaos-smoke job).
GOLDEN_ARGS = [
    "--grid", "3,2,2", "--replicas", "2", "--rate", "1500",
    "--requests", "400", "--seed", "11", "--crash-rate", "12",
    "--mean-repair-s", "0.08", "--tpe-fault-rate", "4",
    "--bitflip-rate", "20", "--slowdown-rate", "3",
    "--deadline-ms", "25", "--slo-ms", "15",
]


class TestGolden:
    def test_matches_checked_in_golden(self, capsys):
        assert main(GOLDEN_ARGS) == 0
        out = capsys.readouterr().out
        assert out == GOLDEN.read_text()

    def test_bit_identical_across_runs(self, capsys):
        assert main(GOLDEN_ARGS) == 0
        first = capsys.readouterr().out
        assert main(GOLDEN_ARGS) == 0
        assert capsys.readouterr().out == first

    def test_seed_changes_report(self, capsys):
        args = [a if a != "11" else "12" for a in GOLDEN_ARGS]
        assert main(args) == 0
        assert capsys.readouterr().out != GOLDEN.read_text()


class TestCliSurface:
    def test_reports_reliability_metrics(self, capsys):
        assert main([
            "--grid", "3,2,2", "--replicas", "2", "--requests", "50",
            "--rate", "800", "--seed", "3", "--crash-rate", "6",
            "--mask-fractions", "0.1",
        ]) == 0
        out = capsys.readouterr().out
        assert "availability" in out
        assert "SLO-violation-rate" in out
        assert "MTTR" in out
        assert "degradation curve" in out

    def test_curve_can_be_skipped(self, capsys):
        assert main([
            "--grid", "3,2,2", "--requests", "20", "--seed", "0",
            "--crash-rate", "0", "--slowdown-rate", "0",
            "--tpe-fault-rate", "0", "--bitflip-rate", "0",
            "--link-fault-rate", "0", "--mask-fractions", "",
        ]) == 0
        assert "degradation curve" not in capsys.readouterr().out

    def test_bad_grid_is_error(self, capsys):
        assert main(["--grid", "banana"]) == 1
        assert "error" in capsys.readouterr().err

    def test_invalid_fault_rate_is_error(self, capsys):
        assert main([
            "--grid", "3,2,2", "--requests", "10", "--crash-rate", "-1",
        ]) == 1
        assert "error" in capsys.readouterr().err

    def test_unknown_model_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["--model", "NotAModel"])

    def test_defaults_parse(self):
        args = build_parser().parse_args([])
        assert args.model == "SmallCNN"
        assert args.seed == 0
        assert args.deadline_ms is None
