"""Command-line tools (argument parsing + end-to-end invocations)."""

import pytest

from repro.tools import characterize, compile as compile_tool, timing


class TestCompileTool:
    def test_single_conv(self, capsys):
        code = compile_tool.main(
            ["--conv", "8,4,16,16,3,3", "--padding", "1", "--grid", "3,2,2"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "cli_conv" in out and "cycles" in out

    def test_single_mm_with_isa_dump(self, capsys):
        code = compile_tool.main(
            ["--mm", "16,32,2", "--grid", "3,2,2", "--dump-isa"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "InstBUS stream" in out
        hex_lines = [l.strip() for l in out.splitlines() if l.startswith("  ")]
        assert all(len(l) == 32 for l in hex_lines)  # 16 bytes per inst

    def test_balance_objective(self, capsys):
        code = compile_tool.main(
            ["--conv", "8,4,16,16,3,3", "--grid", "3,2,2",
             "--objective", "balance"]
        )
        assert code == 0

    def test_bad_grid_rejected(self, capsys):
        with pytest.raises(SystemExit):
            compile_tool.main(["--mm", "4,4,1", "--grid", "3,2"])

    def test_model_and_layer_mutually_exclusive(self):
        with pytest.raises(SystemExit):
            compile_tool.main(["--model", "GoogLeNet", "--mm", "4,4,1"])


class TestTimingTool:
    def test_overlay_report(self, capsys):
        code = timing.main(["--device", "vu125", "--grid", "12,5,20"])
        out = capsys.readouterr().out
        assert code == 0
        assert "fmax" in out and "double-pumped" in out

    def test_systolic_report(self, capsys):
        code = timing.main(["--device", "vu125", "--systolic", "16,16"])
        out = capsys.readouterr().out
        assert code == 0
        assert "systolic" in out

    def test_paths_listing(self, capsys):
        code = timing.main(
            ["--device", "7vx330t", "--grid", "10,2,16", "--paths"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "dsp_cascade" in out

    def test_unknown_device_errors(self, capsys):
        code = timing.main(["--device", "nope", "--grid", "1,1,1"])
        assert code == 1
        assert "error" in capsys.readouterr().err

    def test_oversized_grid_errors(self, capsys):
        code = timing.main(["--device", "vu125", "--grid", "100,100,100"])
        assert code == 1


class TestCharacterizeTool:
    def test_table(self, capsys):
        code = characterize.main([])
        out = capsys.readouterr().out
        assert code == 0
        assert "GoogLeNet" in out and "Sentimental-seqLSTM" in out

    def test_single_model_with_layers(self, capsys):
        code = characterize.main(["--model", "AlphaGoZero", "--layers"])
        out = capsys.readouterr().out
        assert code == 0
        assert "res0.conv1" in out and "EWOP" in out

    def test_unknown_model_rejected(self):
        with pytest.raises(SystemExit):
            characterize.main(["--model", "VGG"])
