"""Vectorized functional engine: bit-identity against the reference.

The vectorized engine enumerates the same hardware-iteration lattice as
the per-MACC reference engine, so outputs, useful-MACC counts, and
issued-MACC counts must all be *exactly* equal — including zero padding,
strides, grouped channels, and 48-bit accumulator wrap.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.compiler import compile_schedule, schedule_layer
from repro.errors import SimulationError
from repro.fixedpoint import _ACC_HALF, _ACC_MOD, wrap48
from repro.overlay.config import OverlayConfig
from repro.sim.cycle import FUNCTIONAL_ENGINES, CycleSimulator
from repro.sim.functional import (
    conv2d_int16,
    golden_layer_output,
    random_layer_operands,
)
from repro.workloads.layers import ConvLayer, MatMulLayer

CONFIGS = [OverlayConfig(3, 2, 2), OverlayConfig(4, 2, 3)]

LAYERS = [
    ConvLayer("pad", in_channels=4, out_channels=6, in_h=9, in_w=9,
              kernel_h=3, kernel_w=3, stride=1, padding=1),
    ConvLayer("stride", in_channels=6, out_channels=4, in_h=11, in_w=11,
              kernel_h=3, kernel_w=3, stride=2, padding=0),
    ConvLayer("stride_pad", in_channels=3, out_channels=5, in_h=10, in_w=8,
              kernel_h=3, kernel_w=3, stride=2, padding=1),
    ConvLayer("grouped", in_channels=8, out_channels=8, in_h=7, in_w=7,
              kernel_h=3, kernel_w=3, stride=1, padding=1, groups=4),
    ConvLayer("depthwise", in_channels=6, out_channels=6, in_h=8, in_w=8,
              kernel_h=3, kernel_w=3, stride=1, padding=1, groups=6),
    ConvLayer("pointwise", in_channels=4, out_channels=4, in_h=8, in_w=8,
              kernel_h=1, kernel_w=1, stride=1, padding=0),
    ConvLayer("asym", in_channels=2, out_channels=3, in_h=12, in_w=5,
              kernel_h=5, kernel_w=3, stride=1, padding=2),
    MatMulLayer("fc", in_features=32, out_features=20, batch=1),
    MatMulLayer("batched", in_features=17, out_features=9, batch=6),
]


@pytest.mark.parametrize("layer", LAYERS, ids=lambda l: l.name)
@pytest.mark.parametrize("config", CONFIGS,
                         ids=lambda c: f"{c.d1}x{c.d2}x{c.d3}")
def test_engines_bit_identical(layer, config):
    compiled = compile_schedule(schedule_layer(layer, config))
    rng = np.random.default_rng(hash(layer.name) % 2**32)
    weights, acts = random_layer_operands(layer, rng)
    ref = CycleSimulator(config, functional_engine="reference")
    vec = CycleSimulator(config)  # vectorized is the default
    out_r, useful_r, issued_r = ref._functional(compiled, weights, acts)
    out_v, useful_v, issued_v = vec._functional(compiled, weights, acts)
    assert np.array_equal(out_r, out_v)
    assert (useful_r, issued_r) == (useful_v, issued_v)
    assert useful_v == layer.maccs
    assert np.array_equal(out_v, golden_layer_output(layer, weights, acts))


def test_run_layer_matches_between_engines():
    config = OverlayConfig(3, 2, 2)
    layer = LAYERS[0]
    compiled = compile_schedule(schedule_layer(layer, config))
    rng = np.random.default_rng(11)
    weights, acts = random_layer_operands(layer, rng)
    runs = [
        CycleSimulator(config, functional_engine=engine).run_layer(
            compiled, weights, acts
        )
        for engine in FUNCTIONAL_ENGINES
    ]
    first, second = runs
    assert np.array_equal(first.output, second.output)
    assert first.cycles == second.cycles
    assert first.useful_maccs == second.useful_maccs
    assert first.issued_maccs == second.issued_maccs
    assert first.golden_match and second.golden_match


def test_wrap_behaviour_is_preserved():
    """Large operands that wrap the 48-bit accumulator stay identical."""
    config = OverlayConfig(3, 2, 2)
    layer = MatMulLayer("hot", in_features=40, out_features=6, batch=2)
    compiled = compile_schedule(schedule_layer(layer, config))
    rng = np.random.default_rng(3)
    weights, acts = random_layer_operands(layer, rng, magnitude=32767)
    ref = CycleSimulator(config, functional_engine="reference")
    vec = CycleSimulator(config)
    out_r, *_ = ref._functional(compiled, weights, acts)
    out_v, *_ = vec._functional(compiled, weights, acts)
    assert np.array_equal(out_r, out_v)


def test_unknown_engine_rejected():
    with pytest.raises(SimulationError):
        CycleSimulator(OverlayConfig(3, 2, 2), functional_engine="magic")


class TestWrap48FastPath:
    def test_matches_object_path_at_boundaries(self):
        values = np.array(
            [0, 1, -1, _ACC_HALF - 1, _ACC_HALF, -_ACC_HALF,
             -_ACC_HALF - 1, _ACC_MOD, _ACC_MOD - 1, -_ACC_MOD,
             2**62, -(2**62), 2**63 - 1, -(2**63)],
            dtype=np.int64,
        )
        slow = (
            np.mod(values.astype(object) + _ACC_HALF, _ACC_MOD) - _ACC_HALF
        ).astype(np.int64)
        fast = wrap48(values)
        assert fast.dtype == np.int64
        assert np.array_equal(fast, slow)
        assert all(int(fast[i]) == wrap48(int(values[i]))
                   for i in range(values.size))

    def test_seeded_sweep_matches_scalar(self):
        rng = np.random.default_rng(99)
        values = rng.integers(-(2**63), 2**63 - 1, size=5000,
                              dtype=np.int64)
        fast = wrap48(values)
        assert all(int(fast[i]) == wrap48(int(values[i]))
                   for i in range(values.size))

    def test_float_arrays_keep_object_fallback(self):
        out = wrap48(np.array([float(_ACC_HALF)]))
        assert out.dtype == np.int64
        assert int(out[0]) == -_ACC_HALF


class TestVectorizedGoldenConv:
    def test_strided_padded_golden_unchanged(self):
        """sliding_window_view path equals the direct definition."""
        rng = np.random.default_rng(5)
        for stride, padding, groups in [(1, 0, 1), (1, 1, 1), (2, 1, 1),
                                        (3, 2, 1), (1, 1, 2), (2, 0, 2)]:
            n, m = 4, 6
            weights = rng.integers(-50, 50, size=(m, n // groups, 3, 3))
            acts = rng.integers(-50, 50, size=(n, 11, 9))
            got = conv2d_int16(weights.astype(np.int16),
                               acts.astype(np.int16),
                               stride=stride, padding=padding,
                               groups=groups)
            expect = _direct_conv(weights, acts, stride, padding, groups)
            assert np.array_equal(got, expect), (stride, padding, groups)


def _direct_conv(weights, acts, stride, padding, groups):
    """Quadruple-loop definition of the golden conv, for cross-checking."""
    m, n_g, r, s = weights.shape
    n, ih, iw = acts.shape
    oh = (ih + 2 * padding - r) // stride + 1
    ow = (iw + 2 * padding - s) // stride + 1
    m_g = m // groups
    out = np.zeros((m, oh, ow), dtype=object)
    for om in range(m):
        group = om // m_g
        for oy in range(oh):
            for ox in range(ow):
                acc = 0
                for dn in range(n_g):
                    for dr in range(r):
                        for ds in range(s):
                            yy = oy * stride + dr - padding
                            xx = ox * stride + ds - padding
                            if 0 <= yy < ih and 0 <= xx < iw:
                                acc += int(weights[om, dn, dr, ds]) * int(
                                    acts[group * n_g + dn, yy, xx]
                                )
                out[om, oy, ox] = acc
    return wrap48(out.astype(np.int64))
