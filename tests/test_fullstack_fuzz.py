"""Property-based full-stack fuzzing.

Hypothesis draws random layer shapes and overlay grids; every draw must
compile to a feasible schedule whose cycle-level execution is bit-exact
against the golden model.  This is the wide net behind the fixed
integration matrix.
"""

from __future__ import annotations

import numpy as np
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.compiler.codegen import compile_schedule
from repro.compiler.constraints import check_constraints
from repro.compiler.search import ScheduleSearch
from repro.overlay.config import OverlayConfig
from repro.sim.cycle import CycleSimulator
from repro.sim.functional import random_layer_operands
from repro.workloads.layers import ConvLayer, MatMulLayer

_SETTINGS = settings(
    max_examples=12,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

config_strategy = st.builds(
    OverlayConfig,
    d1=st.integers(1, 4),
    d2=st.integers(1, 3),
    d3=st.integers(1, 3),
    s_actbuf_words=st.sampled_from([32, 64, 128]),
    s_wbuf_words=st.sampled_from([64, 256]),
    s_psumbuf_words=st.sampled_from([128, 512]),
)

conv_strategy = st.builds(
    ConvLayer,
    name=st.just("fuzz_conv"),
    in_channels=st.integers(1, 6),
    out_channels=st.integers(1, 8),
    in_h=st.integers(3, 9),
    in_w=st.integers(3, 9),
    kernel_h=st.sampled_from([1, 3]),
    kernel_w=st.sampled_from([1, 3]),
    stride=st.integers(1, 2),
    padding=st.integers(0, 1),
)

mm_strategy = st.builds(
    MatMulLayer,
    name=st.just("fuzz_mm"),
    in_features=st.integers(1, 40),
    out_features=st.integers(1, 24),
    batch=st.integers(1, 5),
)


def _run_fullstack(layer, config, seed):
    schedule = ScheduleSearch(
        layer, config, spatial_beam=24, temporal_beam=24
    ).run()[0]
    assert check_constraints(layer, config, schedule.mapping) == []
    compiled = compile_schedule(schedule)
    weights, acts = random_layer_operands(
        layer, np.random.default_rng(seed)
    )
    run = CycleSimulator(config).run_layer(compiled, weights, acts)
    assert run.golden_match
    assert run.useful_maccs == layer.maccs
    assert run.issued_maccs >= run.useful_maccs


@_SETTINGS
@given(layer=conv_strategy, config=config_strategy, seed=st.integers(0, 99))
def test_fuzz_conv_fullstack(layer, config, seed):
    _run_fullstack(layer, config, seed)


@_SETTINGS
@given(layer=mm_strategy, config=config_strategy, seed=st.integers(0, 99))
def test_fuzz_mm_fullstack(layer, config, seed):
    _run_fullstack(layer, config, seed)


fault_knobs_strategy = st.fixed_dictionaries({
    "crash_rate_hz": st.sampled_from([0.0, 10.0, 40.0]),
    "slowdown_rate_hz": st.sampled_from([0.0, 10.0]),
    "tpe_fault_rate_hz": st.sampled_from([0.0, 10.0]),
    "bitflip_rate_hz": st.sampled_from([0.0, 30.0]),
    "link_fault_rate_hz": st.sampled_from([0.0, 10.0]),
})


@_SETTINGS
@given(
    knobs=fault_knobs_strategy,
    seed=st.integers(0, 999),
    n_replicas=st.integers(1, 3),
    deadline_ms=st.sampled_from([None, 10.0, 50.0]),
)
def test_fuzz_fault_schedule_serving(knobs, seed, n_replicas, deadline_ms):
    """Any seeded fault schedule must leave the serving engine with
    conserved request accounting, bounded rates, and bit-identical
    reruns."""
    from repro.faults import generate_fault_schedule
    from repro.overlay.config import OverlayConfig
    from repro.serving import (
        AdmissionPolicy,
        BatchPolicy,
        RetryPolicy,
        ServingEngine,
        make_requests,
        uniform_arrivals,
    )
    from tests.test_serving_faults import StubService

    grid = OverlayConfig(d1=3, d2=2, d3=2)
    service = StubService(n_replicas=n_replicas, service_s=1e-3)
    faults = generate_fault_schedule(
        seed=seed, duration_s=0.05, replicas=service.replica_names(),
        grid=grid, mean_repair_s=0.005, **knobs,
    )

    def run():
        engine = ServingEngine(
            StubService(n_replicas=n_replicas, service_s=1e-3),
            batch_policy=BatchPolicy(max_batch=4, max_wait_s=1e-3),
            admission_policy=AdmissionPolicy(capacity=32),
            fault_schedule=faults,
            retry_policy=RetryPolicy(),
        )
        deadline_s = deadline_ms * 1e-3 if deadline_ms else None
        requests = make_requests(
            uniform_arrivals(1000.0, 40), "fuzz", deadline_s=deadline_s
        )
        return engine.run(requests)

    report = run()
    # Conservation: every offered request is completed, dropped, or
    # rejected — never lost.
    assert report.n_completed + report.n_dropped + report.n_rejected == 40
    assert report.n_offered == 40
    assert 0.0 <= report.availability <= 1.0
    assert 0.0 <= report.drop_rate <= 1.0
    assert sum(report.drop_reasons.values()) == report.n_dropped
    if report.health is not None:
        assert 0.0 <= report.health.uptime_fraction <= 1.0
        assert report.health.mttr_s >= 0.0
    for req in report.completed:
        assert req.attempts >= 1
        if deadline_ms is not None:
            # The dispatch (or retry) that completed the request
            # respected its deadline.
            assert req.dispatch_s < req.arrival_s + deadline_ms * 1e-3
    # Identical seed + schedule => bit-identical report.
    rerun = run()
    assert rerun.describe() == report.describe()
    assert rerun.latencies_s == report.latencies_s


def test_forced_multipass_bit_exact(rng):
    """A PSumBUF too small for the output forces LoopX onto reduction
    loops (multipass accumulation with host-side adds across passes);
    the result must still be bit-exact."""
    config = OverlayConfig(
        d1=2, d2=2, d3=2,
        s_actbuf_words=32,
        s_wbuf_words=64,
        s_psumbuf_words=16,  # usable tile: 8 words
    )
    layer = ConvLayer(
        "multipass", in_channels=8, out_channels=6,
        in_h=6, in_w=6, kernel_h=3, kernel_w=3, padding=1,
    )
    schedule = ScheduleSearch(layer, config).run()[0]
    # The tiny PSumBUF makes a single-pass schedule impossible: with at
    # most 8 output words per pass the layer's 216 outputs need many
    # passes.
    assert schedule.mapping.x > 1
    compiled = compile_schedule(schedule)
    weights, acts = random_layer_operands(layer, rng)
    run = CycleSimulator(config).run_layer(compiled, weights, acts)
    assert run.golden_match


def test_reduction_on_x_accumulates_across_passes(rng):
    """Force a schedule where LoopX genuinely splits the reduction (the
    paper's multi-pass PSumBUS store/reload path)."""
    from repro.compiler.mapping import MappingVectors
    from repro.compiler.model import evaluate_mapping

    config = OverlayConfig(
        d1=2, d2=2, d3=1,
        s_actbuf_words=64, s_wbuf_words=64, s_psumbuf_words=128,
    )
    layer = MatMulLayer("mp", in_features=8, out_features=4, batch=2)
    mapping = MappingVectors.from_partial(
        ("M", "N", "P"),
        {"D1": {"M": 2}, "D2": {"N": 2}, "X": {"M": 4},
         "T": {"N": 2, "P": 2}},
    )
    assert check_constraints(layer, config, mapping) == []
    estimate = evaluate_mapping(layer, config, mapping)
    from repro.compiler.search import Schedule
    schedule = Schedule(
        layer=layer, config=config, mapping=mapping,
        estimate=estimate, objective="performance",
    )
    compiled = compile_schedule(schedule)
    weights, acts = random_layer_operands(layer, rng)
    run = CycleSimulator(config).run_layer(compiled, weights, acts)
    assert run.golden_match
    # The trace shows the multipass refetch stream.
    assert run.trace.total_words("RD", "psum") > 0


streamed_mm_strategy = st.builds(
    MatMulLayer,
    name=st.just("fuzz_score"),
    in_features=st.integers(1, 16),
    out_features=st.integers(1, 12),
    batch=st.integers(1, 6),
    weight_source=st.just("producer"),
)


@_SETTINGS
@given(layer=streamed_mm_strategy, config=config_strategy,
       seed=st.integers(0, 99))
def test_fuzz_streamed_mm_fullstack(layer, config, seed):
    """Attention-style weight-streaming matmuls compile and simulate
    exactly like stored-weight ones — streaming is accounting only."""
    _run_fullstack(layer, config, seed)


@settings(max_examples=8, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(
    d_model=st.sampled_from([8, 16, 24]),
    seq_len=st.integers(2, 10),
    n_classes=st.integers(2, 10),
    seed=st.integers(0, 99),
)
def test_fuzz_tiny_attention_chains_bit_true(d_model, seq_len, n_classes,
                                             seed):
    """Random tiny-attention shapes chain end to end through the
    sequential simulator: every layer golden-checked, reruns identical."""
    from repro.sim.pipeline import NetworkSimulator
    from repro.workloads.models import build_tiny_attention

    network = build_tiny_attention(
        d_model=d_model, seq_len=seq_len, n_classes=n_classes,
    )
    config = OverlayConfig(d1=3, d2=2, d3=2)
    rng = np.random.default_rng(seed)
    weights = {
        layer.name: random_layer_operands(layer, rng)[0]
        for layer in network.accelerated_layers()
        if getattr(layer, "weight_source", None) is None
    }
    first = network.layers[0]
    inputs = rng.integers(
        -127, 128, size=(first.n_features, first.batch)
    ).astype(np.int16)
    run = NetworkSimulator(config).run(
        network, inputs, weights, check_golden=True,
    )
    assert len(run.stages) == len(network.layers)
    assert run.output.shape == (n_classes, seq_len)
    rerun = NetworkSimulator(config).run(
        network, inputs, weights, check_golden=True,
    )
    assert np.array_equal(run.output, rerun.output)
    assert run.overlay_cycles == rerun.overlay_cycles
    assert run.host_cycles == rerun.host_cycles
