"""Prior-work registry and the implemented systolic comparator."""

import pytest

from repro.baselines.priorworks import PRIOR_WORKS, prior_work
from repro.baselines.systolic import SystolicArray
from repro.errors import FTDLError, ScheduleError
from repro.fpga.devices import get_device
from repro.workloads.layers import ConvLayer, MatMulLayer
from repro.workloads.mlperf import build_model


class TestPriorWorks:
    def test_ten_works_in_paper_order(self):
        keys = [w.key for w in PRIOR_WORKS]
        assert keys == [
            "[10]", "[2]", "[3]", "[4]", "[5]",
            "[7]", "[8]", "[21]", "[1]", "[9]",
        ]

    def test_lookup(self):
        assert prior_work("[9]").dsp_freq_mhz == 240.0

    def test_unknown_key(self):
        with pytest.raises(FTDLError, match="unknown prior work"):
            prior_work("[99]")

    def test_fps_formula_reproduces_table2_googlenet(self):
        """Paper Table II: [10] achieves 52.0 GoogLeNet FPS at 1200 DSPs.
        The paper's ops number implies ~3.14 GOP/frame."""
        fps = prior_work("[10]").fps(n_dsp=1200, model_ops=3_140_000_000)
        assert fps == pytest.approx(52.0, rel=0.02)

    def test_fps_formula_reproduces_table2_wei(self):
        fps = prior_work("[9]").fps(n_dsp=1200, model_ops=3_140_000_000)
        assert fps == pytest.approx(163.3, rel=0.02)

    def test_all_16_bit(self):
        assert all(w.quantization_bits == 16 for w in PRIOR_WORKS)

    def test_invalid_ops_rejected(self):
        with pytest.raises(FTDLError):
            prior_work("[10]").fps(1200, 0)


class TestSystolicArray:
    @pytest.fixture
    def vu125(self):
        return get_device("vu125")

    def test_fmax_below_250_at_scale(self, vu125):
        """The §I claim: a boundary-fed 1024-PE array lands below the
        250 MHz ceiling of prior designs."""
        array = SystolicArray(vu125, 32, 32)
        assert array.fmax_mhz < 250.0

    def test_small_array_faster_clock(self, vu125):
        small = SystolicArray(vu125, 8, 8)
        large = SystolicArray(vu125, 32, 32)
        assert small.fmax_mhz > large.fmax_mhz

    def test_layer_cycles_account_fill_and_drain(self, vu125):
        array = SystolicArray(vu125, 4, 4)
        layer = MatMulLayer("mm", in_features=8, out_features=8, batch=100)
        # 2 K-tiles x 2 M-tiles x (4 fill + 100 stream + 8 drain).
        assert array.layer_cycles(layer) == 2 * 2 * (4 + 100 + 8)

    def test_conv_lowered_by_im2col(self, vu125):
        array = SystolicArray(vu125, 8, 8)
        conv = ConvLayer("c", 4, 8, in_h=8, in_w=8, kernel_h=3, kernel_w=3, padding=1)
        run = array.run_layer(conv)
        assert run.useful_maccs == conv.maccs
        assert 0.0 < run.hardware_efficiency <= 1.0

    def test_network_run_sums_layers(self, vu125):
        array = SystolicArray(vu125, 16, 16)
        net = build_model("AlphaGoZero")
        total = sum(array.layer_cycles(l) for l in net.accelerated_layers())
        assert array.run_network(net).cycles == total

    def test_gops_consistent(self, vu125):
        array = SystolicArray(vu125, 16, 16)
        run = array.run_layer(
            MatMulLayer("mm", in_features=64, out_features=64, batch=64)
        )
        assert run.gops == pytest.approx(
            2 * run.useful_maccs / run.seconds / 1e9
        )

    def test_invalid_shape_rejected(self, vu125):
        with pytest.raises(ScheduleError):
            SystolicArray(vu125, 0, 4)
