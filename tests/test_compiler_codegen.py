"""Instruction generation and the schedule cache."""

import pytest

from repro.compiler.cache import ScheduleCache, layer_signature
from repro.compiler.codegen import compile_schedule
from repro.compiler.hwsearch import feasible_grids, search_hardware_config
from repro.compiler.search import schedule_layer
from repro.errors import ScheduleError
from repro.fpga.devices import get_device
from repro.overlay.config import OverlayConfig
from repro.overlay.isa import OpKind, decode_instruction
from repro.workloads.layers import ConvLayer, MatMulLayer


class TestCodegen:
    def test_row_program_structure(self, small_conv, tiny_config):
        compiled = compile_schedule(schedule_layer(small_conv, tiny_config))
        assert compiled.n_rows == compiled.schedule.mapping.level_product("D3")
        for program in compiled.row_programs:
            assert program[0].op == OpKind.LOAD_WEIGHT
            assert program[-1].op == OpKind.COMPUTE
            assert program[-1].last

    def test_compute_trips_match_mapping(self, small_conv, tiny_config):
        schedule = schedule_layer(small_conv, tiny_config)
        compute = compile_schedule(schedule).row_programs[0][-1]
        assert (compute.x, compute.l, compute.t) == (
            schedule.mapping.x, schedule.mapping.l, schedule.mapping.t
        )

    def test_tile_words_match_estimate(self, small_conv, tiny_config):
        schedule = schedule_layer(small_conv, tiny_config)
        compute = compile_schedule(schedule).row_programs[0][-1]
        assert compute.act_tile_words == schedule.estimate.actbuf_words
        assert compute.psum_tile_words == schedule.estimate.psumbuf_words

    def test_encoded_stream_round_trips(self, small_conv, tiny_config):
        compiled = compile_schedule(schedule_layer(small_conv, tiny_config))
        for raw, program in zip(compiled.encoded(), compiled.row_programs):
            assert len(raw) == 16 * len(program)
            decoded = [
                decode_instruction(raw[i:i + 16])
                for i in range(0, len(raw), 16)
            ]
            assert tuple(decoded) == program

    def test_double_buffer_flag_propagates(self, small_conv):
        config = OverlayConfig(
            d1=3, d2=2, d3=2, s_actbuf_words=64,
            s_wbuf_words=256, s_psumbuf_words=512, double_buffer=False,
        )
        compiled = compile_schedule(schedule_layer(small_conv, config))
        assert not compiled.row_programs[0][-1].double_buffer


class TestScheduleCache:
    def test_signature_distinguishes_shapes(self):
        a = ConvLayer("a", 4, 8, in_h=8, in_w=8, kernel_h=3, kernel_w=3)
        b = ConvLayer("b", 4, 8, in_h=8, in_w=8, kernel_h=3, kernel_w=3, stride=2)
        assert layer_signature(a) != layer_signature(b)

    def test_signature_ignores_names(self):
        a = ConvLayer("a", 4, 8, in_h=8, in_w=8, kernel_h=3, kernel_w=3)
        b = ConvLayer("b", 4, 8, in_h=8, in_w=8, kernel_h=3, kernel_w=3)
        assert layer_signature(a) == layer_signature(b)

    def test_cache_hit_reuses_search(self, tiny_config):
        cache = ScheduleCache(tiny_config)
        a = ConvLayer("a", 4, 8, in_h=8, in_w=8, kernel_h=3, kernel_w=3)
        b = ConvLayer("b", 4, 8, in_h=8, in_w=8, kernel_h=3, kernel_w=3)
        first = cache.schedule(a)
        second = cache.schedule(b)
        assert cache.misses == 1 and cache.hits == 1
        assert second.cycles == first.cycles
        assert second.layer is b  # rebound to the requesting layer

    def test_mm_and_conv_cached_separately(self, tiny_config, small_mm, small_conv):
        cache = ScheduleCache(tiny_config)
        cache.schedule(small_mm)
        cache.schedule(small_conv)
        assert cache.misses == 2


class TestHardwareSearch:
    def test_feasible_grids_product(self):
        for grid in feasible_grids(24):
            assert grid[0] * grid[1] * grid[2] == 24

    def test_device_constraints_prune(self):
        device = get_device("vu125")
        grids = feasible_grids(1200, device)
        assert all(d2 <= 5 and d1 * d3 <= 240 for d1, d2, d3 in grids)
        assert (12, 5, 20) in grids

    def test_nonpositive_budget_rejected(self):
        with pytest.raises(ScheduleError):
            feasible_grids(0)

    def test_objective3_finds_best_grid(self, small_conv):
        base = OverlayConfig(
            d1=4, d2=2, d3=2, s_actbuf_words=64,
            s_wbuf_words=256, s_psumbuf_words=512,
        )
        result = search_hardware_config(
            small_conv, base, spatial_beam=30, temporal_beam=30
        )
        assert result.best.config.n_tpe == 16
        cycles = [s.estimate.c_exe for _, s in result.ranking]
        assert cycles == sorted(cycles)
        assert result.best.estimate.c_exe == cycles[0]

    def test_objective3_at_least_matches_base_grid(self, small_conv):
        """The sweep includes the base grid, so the winner is never worse."""
        base = OverlayConfig(
            d1=4, d2=2, d3=2, s_actbuf_words=64,
            s_wbuf_words=256, s_psumbuf_words=512,
        )
        from repro.compiler.search import ScheduleSearch
        base_best = ScheduleSearch(
            small_conv, base, spatial_beam=30, temporal_beam=30
        ).run()[0]
        result = search_hardware_config(
            small_conv, base, spatial_beam=30, temporal_beam=30
        )
        assert result.best.estimate.c_exe <= base_best.estimate.c_exe
