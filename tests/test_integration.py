"""End-to-end integration: compile -> codegen -> simulate -> verify, for a
matrix of layer shapes, plus public-API sanity."""

import numpy as np
import pytest

import repro
from repro import (
    CycleSimulator,
    OverlayConfig,
    compile_schedule,
    schedule_layer,
)
from repro.compiler.search import ScheduleSearch
from repro.sim.functional import random_layer_operands
from repro.workloads.layers import ConvLayer, MatMulLayer

LAYER_MATRIX = [
    ConvLayer("sq3x3", 6, 8, in_h=8, in_w=8, kernel_h=3, kernel_w=3, padding=1),
    ConvLayer("pw1x1", 10, 12, in_h=6, in_w=6, kernel_h=1, kernel_w=1),
    ConvLayer("stride2", 4, 6, in_h=11, in_w=11, kernel_h=3, kernel_w=3,
              stride=2, padding=1),
    ConvLayer("rect", 3, 5, in_h=7, in_w=9, kernel_h=5, kernel_w=3,
              padding=2),
    ConvLayer("first", 3, 8, in_h=12, in_w=12, kernel_h=7, kernel_w=7,
              stride=2, padding=3),
    MatMulLayer("fc", in_features=32, out_features=12, batch=1),
    MatMulLayer("batched", in_features=16, out_features=8, batch=6),
    MatMulLayer("wide", in_features=48, out_features=4, batch=2),
]

CONFIG_MATRIX = [
    OverlayConfig(d1=3, d2=2, d3=2, s_actbuf_words=64, s_wbuf_words=256,
                  s_psumbuf_words=512),
    OverlayConfig(d1=2, d2=3, d3=3, s_actbuf_words=64, s_wbuf_words=128,
                  s_psumbuf_words=256),
    OverlayConfig(d1=6, d2=1, d3=2, s_actbuf_words=128, s_wbuf_words=512,
                  s_psumbuf_words=1024),
]


@pytest.mark.parametrize("layer", LAYER_MATRIX, ids=lambda l: l.name)
@pytest.mark.parametrize("cfg_index", range(len(CONFIG_MATRIX)))
def test_full_stack_bit_exact(layer, cfg_index, rng):
    """Every (layer, config) pair: the compiled schedule, executed on the
    architectural simulator, reproduces the golden output bit-exactly and
    issues exactly the layer's MACC count as useful work."""
    config = CONFIG_MATRIX[cfg_index]
    schedule = schedule_layer(layer, config)
    compiled = compile_schedule(schedule)
    weights, acts = random_layer_operands(layer, rng)
    run = CycleSimulator(config).run_layer(compiled, weights, acts)
    assert run.golden_match
    assert run.useful_maccs == layer.maccs
    # Timing: the simulator tracks the analytical estimate up to the
    # pipeline head/tail (first tile load + final drain) that the Eqn-12
    # steady-state model amortizes away — visible only on tiny layers.
    model = schedule.estimate.c_exe
    head_tail = 128
    assert model * 0.7 - head_tail <= run.cycles <= model * 1.3 + head_tail


def test_balance_objective_full_stack(rng):
    """Objective 2 schedules are just as functionally correct."""
    layer = ConvLayer("c", 8, 16, in_h=10, in_w=10, kernel_h=3, kernel_w=3,
                      padding=1)
    config = CONFIG_MATRIX[0]
    schedule = schedule_layer(layer, config, objective="balance")
    compiled = compile_schedule(schedule)
    weights, acts = random_layer_operands(layer, rng)
    run = CycleSimulator(config).run_layer(compiled, weights, acts)
    assert run.golden_match


def test_topk_schedules_all_functionally_correct(rng):
    """Not only the winner: every top-k schedule computes the same math."""
    layer = ConvLayer("c", 4, 6, in_h=6, in_w=6, kernel_h=3, kernel_w=3)
    config = CONFIG_MATRIX[0]
    weights, acts = random_layer_operands(layer, rng)
    sim = CycleSimulator(config)
    for schedule in ScheduleSearch(layer, config, top_k=5).run():
        run = sim.run_layer(compile_schedule(schedule), weights, acts)
        assert run.golden_match


def test_public_api_exports_resolve():
    for name in repro.__all__:
        assert getattr(repro, name) is not None


def test_quickstart_docstring_flow():
    """The __init__ docstring example must actually work (tiny version)."""
    from repro import Network, evaluate_network

    net = Network(
        name="doc",
        application="test",
        layers=(ConvLayer("c", 3, 4, in_h=8, in_w=8, kernel_h=3,
                          kernel_w=3, padding=1),),
    )
    result = evaluate_network(net, CONFIG_MATRIX[0])
    assert result.fps > 0
    assert "doc" in result.describe()
