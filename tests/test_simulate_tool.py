"""The simulate CLI."""

import pytest

from repro.tools import simulate


class TestSimulateTool:
    def test_conv_run(self, capsys):
        code = simulate.main(
            ["--conv", "8,6,8,8,3,3", "--padding", "1", "--grid", "3,2,2"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "MATCH (bit-exact)" in out
        assert "efficiency" in out

    def test_mm_run(self, capsys):
        code = simulate.main(["--mm", "10,24,4", "--grid", "2,2,2"])
        assert code == 0
        assert "MATCH" in capsys.readouterr().out

    def test_depthwise_run(self, capsys):
        code = simulate.main(
            ["--conv", "6,6,8,8,3,3", "--padding", "1", "--groups", "6",
             "--grid", "3,2,2"]
        )
        assert code == 0

    def test_seed_changes_operands_not_result(self, capsys):
        for seed in ("0", "1"):
            code = simulate.main(
                ["--mm", "8,8,2", "--grid", "2,2,1", "--seed", seed]
            )
            assert code == 0

    def test_invalid_shape_errors(self, capsys):
        code = simulate.main(
            ["--conv", "1,1,2,2,5,5", "--grid", "2,2,1"]
        )
        assert code == 1
        assert "error" in capsys.readouterr().err

    def test_mutually_exclusive(self):
        with pytest.raises(SystemExit):
            simulate.main(["--conv", "1,1,4,4,1,1", "--mm", "4,4,1"])
