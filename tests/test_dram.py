"""DRAM spec, bandwidth, trace, and power models."""

import pytest

from repro.dram.bandwidth import sustained_bandwidth_gbps, transfer_cycles
from repro.dram.power import estimate_power
from repro.dram.spec import DDR4_2400, DramSpec
from repro.errors import FTDLError, SimulationError
from repro.sim.trace import DramTrace, TraceEvent


class TestSpec:
    def test_default_sustains_about_26gbps(self):
        assert sustained_bandwidth_gbps(DDR4_2400) == pytest.approx(26.1, abs=0.2)

    def test_invalid_efficiency_rejected(self):
        with pytest.raises(FTDLError):
            DramSpec(
                name="bad", data_bits=64, clock_mhz=1200, peak_gbps=19.2,
                efficiency=1.5, energy_per_byte_rd_pj=50,
                energy_per_byte_wr_pj=50, background_power_w=1,
            )


class TestBandwidth:
    def test_transfer_cycles_26gbps(self):
        # 26 GB/s at 650 MHz = 40 B/cycle = 20 words/cycle.
        assert transfer_cycles(200, clk_mhz=650.0, bandwidth_gbps=26.0) == 10

    def test_rounds_up(self):
        assert transfer_cycles(201, clk_mhz=650.0, bandwidth_gbps=26.0) == 11

    def test_zero_words(self):
        assert transfer_cycles(0, 650.0, 26.0) == 0

    def test_invalid_inputs(self):
        with pytest.raises(FTDLError):
            transfer_cycles(-1, 650.0, 26.0)
        with pytest.raises(FTDLError):
            transfer_cycles(1, 0.0, 26.0)


class TestTrace:
    def test_record_and_totals(self):
        trace = DramTrace()
        trace.record(0, "RD", 100, "act")
        trace.record(5, "WR", 40, "psum")
        trace.record(9, "RD", 60, "weight")
        assert trace.total_words("RD") == 160
        assert trace.total_words("WR") == 40
        assert trace.total_words("RD", "weight") == 60
        assert trace.total_bytes("WR") == 80
        assert trace.last_cycle == 9

    def test_zero_word_events_dropped(self):
        trace = DramTrace()
        trace.record(0, "RD", 0, "act")
        assert not trace.events

    def test_bad_op_rejected(self):
        with pytest.raises(SimulationError):
            TraceEvent(0, "XX", 1, "act")

    def test_negative_rejected(self):
        with pytest.raises(SimulationError):
            TraceEvent(-1, "RD", 1, "act")

    def test_merge_offsets_cycles(self):
        a = DramTrace()
        a.record(0, "RD", 10, "act")
        b = DramTrace()
        b.record(3, "WR", 5, "psum")
        a.merge(b, cycle_offset=100)
        assert a.last_cycle == 103
        assert a.total_words() == 15


class TestDramPower:
    def _trace(self):
        trace = DramTrace()
        trace.record(0, "RD", 500_000, "act")
        trace.record(10, "WR", 250_000, "psum")
        return trace

    def test_energy_components(self):
        report = estimate_power(
            self._trace(), DDR4_2400, window_cycles=650_000, clk_mhz=650.0
        )
        assert report.read_energy_nj == pytest.approx(
            1_000_000 * DDR4_2400.energy_per_byte_rd_pj * 1e-3
        )
        assert report.write_energy_nj == pytest.approx(
            500_000 * DDR4_2400.energy_per_byte_wr_pj * 1e-3
        )
        assert report.window_seconds == pytest.approx(1e-3)

    def test_background_dominates_idle(self):
        report = estimate_power(
            DramTrace(), DDR4_2400, window_cycles=650_000, clk_mhz=650.0
        )
        assert report.total_energy_nj == report.background_energy_nj
        assert report.average_power_w == pytest.approx(
            DDR4_2400.background_power_w
        )

    def test_average_power_reasonable_for_streaming(self):
        """A saturating stream should sit in the single-digit watts."""
        words_per_ms = int(26e9 * 1e-3 / 2)  # 26 GB/s for 1 ms, 16-bit words
        trace = DramTrace()
        trace.record(0, "RD", words_per_ms, "act")
        report = estimate_power(trace, DDR4_2400, 650_000, 650.0)
        assert 1.0 < report.average_power_w < 10.0

    def test_invalid_window_rejected(self):
        with pytest.raises(FTDLError):
            estimate_power(DramTrace(), DDR4_2400, -1, 650.0)
