"""Multi-tenant fair-share queueing: stride scheduling and quotas."""

import math

import pytest

from repro.cluster import TenantPolicy, TenantQueueSet
from repro.errors import ServingError
from repro.serving.batcher import Batcher, BatchPolicy
from repro.serving.request import InferenceRequest


def req(rid, arrival_s=0.0, tenant="default", deadline_s=None):
    return InferenceRequest(
        request_id=rid, model="m", arrival_s=arrival_s,
        deadline_s=deadline_s, tenant=tenant,
    )


class TestTenantPolicy:
    def test_defaults(self):
        policy = TenantPolicy()
        assert policy.weight("anyone") == 1.0
        assert policy.quota("anyone") is None

    def test_lookup(self):
        policy = TenantPolicy(
            weights={"alpha": 2.0}, quotas={"alpha": 8},
            default_weight=0.5,
        )
        assert policy.weight("alpha") == 2.0
        assert policy.weight("beta") == 0.5
        assert policy.quota("alpha") == 8
        assert policy.quota("beta") is None

    @pytest.mark.parametrize("weights", [
        {"t": 0.0}, {"t": -1.0}, {"t": math.nan}, {"t": math.inf},
    ])
    def test_invalid_weight(self, weights):
        with pytest.raises(ServingError):
            TenantPolicy(weights=weights)

    def test_invalid_quota(self):
        with pytest.raises(ServingError):
            TenantPolicy(quotas={"t": 0})

    def test_invalid_default_weight(self):
        with pytest.raises(ServingError):
            TenantPolicy(default_weight=0.0)


class TestSingleTenantDegeneratesToBatcher:
    """One tenant -> the queue must behave exactly like the FIFO
    Batcher; this is half of the ServingEngine bit-equivalence."""

    POLICY = BatchPolicy(max_batch=4, max_wait_s=1e-3)

    def _pair(self):
        return (
            TenantQueueSet(self.POLICY, TenantPolicy()),
            Batcher(self.POLICY),
        )

    def test_pop_order_matches(self):
        tset, batcher = self._pair()
        for i in range(10):
            request = req(i, arrival_s=i * 1e-4)
            tset.push(request)
            batcher.push(request)
        while len(batcher):
            a = tset.pop(1.0)
            b = batcher.pop(1.0)
            assert [r.request_id for r in a.requests] == \
                [r.request_id for r in b.requests]
            assert a.formed_s == b.formed_s

    def test_ready_and_deadline_match(self):
        tset, batcher = self._pair()
        assert not tset.ready(0.0)
        for i in range(2):
            request = req(i, arrival_s=i * 1e-4)
            tset.push(request)
            batcher.push(request)
        for now in (0.0, 0.5e-3, 1.0e-3, 2e-3):
            assert tset.ready(now) == batcher.ready(now)
        assert tset.next_deadline() == batcher.next_deadline()
        assert tset.ready(0.0, degraded=True)

    def test_expiry_matches(self):
        tset, batcher = self._pair()
        for i, deadline in enumerate([5e-3, 2e-3, None]):
            request = req(i, deadline_s=deadline)
            tset.push(request)
            batcher.push(request)
        assert tset.next_expiry_s() == batcher.next_expiry_s() == 2e-3
        a = tset.expire(3e-3)
        b = batcher.expire(3e-3)
        assert [r.request_id for r in a] == [r.request_id for r in b]
        assert tset.depth == batcher.depth == 2


class TestStrideFairness:
    POLICY = BatchPolicy(max_batch=1, max_wait_s=1e-3)

    def _loaded(self, weights, n_per_tenant=30):
        tset = TenantQueueSet(self.POLICY, TenantPolicy(weights=weights))
        rid = 0
        for tenant in weights:
            for _ in range(n_per_tenant):
                tset.push(req(rid, tenant=tenant))
                rid += 1
        return tset

    def test_service_proportional_to_weight(self):
        tset = self._loaded({"heavy": 2.0, "light": 1.0})
        taken = [tset.pop(0.0).requests[0].tenant for _ in range(30)]
        assert taken.count("heavy") == 20
        assert taken.count("light") == 10

    def test_equal_weights_alternate_with_name_tiebreak(self):
        tset = self._loaded({"a": 1.0, "b": 1.0}, n_per_tenant=3)
        taken = [tset.pop(0.0).requests[0].tenant for _ in range(6)]
        assert taken == ["a", "b", "a", "b", "a", "b"]

    def test_batch_mixes_tenants(self):
        tset = TenantQueueSet(
            BatchPolicy(max_batch=4, max_wait_s=1e-3),
            TenantPolicy(weights={"a": 1.0, "b": 1.0}),
        )
        for i in range(4):
            tset.push(req(i, tenant="a" if i < 2 else "b"))
        batch = tset.pop(0.0)
        assert sorted(r.tenant for r in batch.requests) == \
            ["a", "a", "b", "b"]

    def test_idle_tenant_cannot_bank_credit(self):
        # "idle" sits out 20 pops; on return it must not receive a
        # make-up burst — pass catches up to the scheduler's vtime.
        tset = TenantQueueSet(
            self.POLICY, TenantPolicy(weights={"busy": 1.0, "idle": 1.0}),
        )
        tset.push(req(0, tenant="idle"))
        assert tset.pop(0.0).requests[0].tenant == "idle"
        rid = 1
        for _ in range(20):
            tset.push(req(rid, tenant="busy"))
            rid += 1
        for _ in range(20):
            assert tset.pop(0.0).requests[0].tenant == "busy"
        for i in range(4):
            tset.push(req(rid + i, tenant="idle"))
            tset.push(req(rid + 10 + i, tenant="busy"))
        taken = [tset.pop(0.0).requests[0].tenant for _ in range(8)]
        # Fair interleave, not an idle-tenant burst.
        assert taken.count("idle") == 4
        assert taken[:3] != ["idle", "idle", "idle"]

    def test_depth_accounting(self):
        tset = self._loaded({"a": 1.0, "b": 1.0}, n_per_tenant=2)
        assert tset.depth == len(tset) == 4
        assert tset.tenant_depth("a") == 2
        assert tset.tenant_depth("missing") == 0
        tset.pop(0.0)
        assert tset.depth == 3

    def test_pop_empty_raises(self):
        tset = TenantQueueSet(self.POLICY, TenantPolicy())
        with pytest.raises(ServingError):
            tset.pop(0.0)
        with pytest.raises(ServingError):
            tset.next_deadline()

    def test_pop_all_drains_everything(self):
        tset = self._loaded({"a": 1.0, "b": 1.0}, n_per_tenant=3)
        drained = tset.pop_all()
        assert len(drained) == 6
        assert tset.depth == 0
        assert tset.next_expiry_s() == math.inf

    def test_expire_spans_tenants(self):
        tset = TenantQueueSet(
            self.POLICY, TenantPolicy(weights={"a": 1.0, "b": 1.0}),
        )
        tset.push(req(0, tenant="a", deadline_s=1e-3))
        tset.push(req(1, tenant="b", deadline_s=2e-3))
        tset.push(req(2, tenant="b", deadline_s=9e-3))
        expired = tset.expire(5e-3)
        assert sorted(r.request_id for r in expired) == [0, 1]
        assert tset.tenant_depth("a") == 0
        assert tset.tenant_depth("b") == 1

    def test_lazy_expiry_heap_skips_departed(self):
        tset = TenantQueueSet(
            BatchPolicy(max_batch=2, max_wait_s=1e-3), TenantPolicy(),
        )
        tset.push(req(0, deadline_s=1e-3))
        tset.push(req(1, deadline_s=5e-3))
        tset.pop(0.0)  # takes both; heap entries are now stale
        assert tset.next_expiry_s() == math.inf
        assert tset.expire(10.0) == []
