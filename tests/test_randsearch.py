"""Random-sampling scheduler baseline."""

import pytest

from repro.compiler.constraints import check_constraints
from repro.compiler.randsearch import random_schedule_search
from repro.compiler.search import ScheduleSearch
from repro.errors import ScheduleError


class TestRandomSearch:
    def test_returns_feasible_schedule(self, small_conv, tiny_config):
        schedule, feasible = random_schedule_search(
            small_conv, tiny_config, budget=400, seed=1
        )
        assert feasible > 0
        assert check_constraints(
            small_conv, tiny_config, schedule.mapping
        ) == []

    def test_deterministic_per_seed(self, small_conv, tiny_config):
        a, _ = random_schedule_search(small_conv, tiny_config, budget=200, seed=7)
        b, _ = random_schedule_search(small_conv, tiny_config, budget=200, seed=7)
        assert a.estimate.c_exe == b.estimate.c_exe
        assert a.mapping.trips == b.mapping.trips

    def test_never_beats_structured_search(self, small_conv, tiny_config):
        structured = ScheduleSearch(small_conv, tiny_config).run()[0]
        random_best, _ = random_schedule_search(
            small_conv, tiny_config, budget=500, seed=3
        )
        assert random_best.estimate.c_exe >= structured.estimate.c_exe

    def test_more_budget_never_worse(self, small_mm, tiny_config):
        small, _ = random_schedule_search(small_mm, tiny_config, budget=50, seed=5)
        large, _ = random_schedule_search(small_mm, tiny_config, budget=800, seed=5)
        assert large.estimate.c_exe <= small.estimate.c_exe

    def test_bad_budget_rejected(self, small_mm, tiny_config):
        with pytest.raises(ScheduleError):
            random_schedule_search(small_mm, tiny_config, budget=0, seed=0)

    def test_mm_layer_supported(self, small_mm, tiny_config):
        schedule, _ = random_schedule_search(
            small_mm, tiny_config, budget=300, seed=2
        )
        assert schedule.estimate.useful_maccs == small_mm.maccs
